package luxvis_test

// Godoc examples for the public façade. Each compiles and runs as part
// of the test suite; outputs are asserted, so the documentation cannot
// rot.

import (
	"fmt"

	"luxvis"
)

// The minimal end-to-end run: scatter robots, run the paper's algorithm
// under the asynchronous scheduler, verify the goal predicate exactly.
func Example() {
	pts := luxvis.Generate(luxvis.Uniform, 32, 7)
	res, err := luxvis.Run(luxvis.NewLogVis(), pts,
		luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 7))
	if err != nil {
		panic(err)
	}
	fmt.Println("reached:", res.Reached)
	fmt.Println("collisions:", res.Collisions)
	fmt.Println("complete visibility (exact):", luxvis.CompleteVisibility(res.Final))
	// Output:
	// reached: true
	// collisions: 0
	// complete visibility (exact): true
}

// Complete Visibility is about obstruction: a robot strictly between two
// others blocks their view.
func ExampleCompleteVisibility() {
	blocked := []luxvis.Point{luxvis.Pt(0, 0), luxvis.Pt(5, 0), luxvis.Pt(10, 0)}
	open := []luxvis.Point{luxvis.Pt(0, 0), luxvis.Pt(5, 1), luxvis.Pt(10, 0)}
	fmt.Println(luxvis.CompleteVisibility(blocked))
	fmt.Println(luxvis.CompleteVisibility(open))
	// Output:
	// false
	// true
}

// Workload generators are deterministic per (family, n, seed).
func ExampleGenerate() {
	a := luxvis.Generate(luxvis.CircleStart, 5, 42)
	b := luxvis.Generate(luxvis.CircleStart, 5, 42)
	fmt.Println(len(a), a[0].Eq(b[0]))
	// Output: 5 true
}

// Schedulers are addressable by their table names.
func ExampleSchedulerByName() {
	for _, name := range luxvis.SchedulerNames() {
		fmt.Println(luxvis.SchedulerByName(name).Name())
	}
	// Output:
	// fsync
	// ssync
	// async-random
	// async-stale
	// async-rr
}

// The staleness-maximizing adversary is the hard case for an
// asynchronous algorithm: every robot decides against a pre-wave
// snapshot and moves while others have already relocated.
func ExampleNewAsyncStale() {
	pts := luxvis.Generate(luxvis.Onion, 24, 3)
	res, err := luxvis.Run(luxvis.NewLogVis(), pts,
		luxvis.DefaultOptions(luxvis.NewAsyncStale(), 3))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Reached, res.Collisions)
	// Output: true 0
}
