// Adversary: stress the algorithm with the degenerate and hostile
// inputs the paper's model allows — a perfectly collinear swarm, a deep
// onion of nested rings, and the staleness-maximizing asynchronous
// scheduler that executes every robot's move against a snapshot that is
// stale by up to N-1 relocations.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"luxvis"
)

func main() {
	scenarios := []struct {
		name   string
		family luxvis.Family
		sched  luxvis.Scheduler
	}{
		{"collinear swarm / random async", luxvis.LineConfig, luxvis.NewAsyncRandom()},
		{"evenly spaced line / stale adversary", luxvis.LineEven, luxvis.NewAsyncStale()},
		{"deep onion / stale adversary", luxvis.Onion, luxvis.NewAsyncStale()},
		{"two far clusters / stale adversary", luxvis.TwoClusters, luxvis.NewAsyncStale()},
	}

	for _, sc := range scenarios {
		pts := luxvis.Generate(sc.family, 40, 7)
		opt := luxvis.DefaultOptions(sc.sched, 7)
		res, err := luxvis.Run(luxvis.NewLogVis(), pts, opt)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if !res.Reached {
			status = "FAILED"
		}
		fmt.Printf("%-42s %-6s epochs=%-4d collisions=%d crossings=%d colors=%d\n",
			sc.name, status, res.Epochs, res.Collisions, res.PathCrossings, res.ColorsUsed)
	}

	// The non-rigid stress mode on top: the motion adversary may stop
	// any move partway (at least 30% is guaranteed). The algorithm
	// re-plans from fresh snapshots every cycle, so truncated moves
	// cost time, not correctness.
	pts := luxvis.Generate(luxvis.Uniform, 24, 7)
	opt := luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 7)
	opt.NonRigid = true
	res, err := luxvis.Run(luxvis.NewLogVis(), pts, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s %-6v epochs=%-4d collisions=%d\n",
		"uniform / non-rigid motion", res.Reached, res.Epochs, res.Collisions)
}
