// Quickstart: scatter a swarm, run the paper's O(log N) asynchronous
// Complete Visibility algorithm, and check the claims on the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"luxvis"
)

func main() {
	// 64 robots scattered uniformly; robot 0's light starts Off like
	// everyone else — robots are anonymous and oblivious.
	pts := luxvis.Generate(luxvis.Uniform, 64, 2026)

	// Run under the randomized asynchronous scheduler: Look, Compute
	// and Move phases of different robots interleave arbitrarily and
	// robots act on stale snapshots.
	res, err := luxvis.Run(luxvis.NewLogVis(), pts,
		luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Complete Visibility reached: %v\n", res.Reached)
	fmt.Printf("epochs: %d (an epoch = every robot completed ≥1 Look-Compute-Move cycle)\n", res.Epochs)
	fmt.Printf("distinct light colors used: %d (the algorithm declares 7)\n", res.ColorsUsed)
	fmt.Printf("collisions: %d, concurrent path crossings: %d\n", res.Collisions, res.PathCrossings)

	// Verify the goal predicate independently, with exact arithmetic:
	// every pair of robots sees each other, i.e. no robot lies on the
	// segment between two others.
	fmt.Printf("exact Complete Visibility check: %v\n", luxvis.CompleteVisibility(res.Final))
	fmt.Printf("strictly convex terminal shape:  %v\n", luxvis.StrictlyConvexPosition(res.Final))
}
