// Goroutines: the asynchronous robots realized as real concurrency —
// one goroutine per robot, each free-running Look-Compute-Move cycles
// with randomized delays over a shared world. The exact same Algorithm
// value runs unmodified under the discrete-event engine and under this
// runtime; asynchrony comes from the Go scheduler instead of a simulated
// adversary.
//
//	go run ./examples/goroutines
package main

import (
	"fmt"
	"log"
	"time"

	"luxvis"
)

func main() {
	algo := luxvis.NewLogVis()

	for _, n := range []int{8, 16, 32, 64} {
		pts := luxvis.Generate(luxvis.Clustered, n, 5)

		// Discrete-event engine first: adversarially scheduled.
		eng, err := luxvis.Run(algo, pts, luxvis.DefaultOptions(luxvis.NewAsyncRandom(), 5))
		if err != nil {
			log.Fatal(err)
		}

		// Then the same start under true concurrency.
		conc, err := luxvis.RunConcurrent(algo, pts, luxvis.ConcurrentOptions{
			Seed:      5,
			MaxWall:   60 * time.Second,
			MeanDelay: 100 * time.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("n=%-3d engine: reached=%v in %d epochs | goroutines: reached=%v in %v (%d cycles)\n",
			n, eng.Reached, eng.Epochs, conc.Reached, conc.Wall.Round(time.Millisecond), conc.Cycles)

		if !luxvis.CompleteVisibility(conc.Final) {
			log.Fatalf("n=%d: concurrent run ended without Complete Visibility", n)
		}
	}
	fmt.Println("both executions of the model agree: Complete Visibility reached everywhere")
}
