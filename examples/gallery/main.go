// Gallery: render a run of the algorithm as SVG figures — the initial
// swarm, the motion trajectories, and the terminal strictly convex
// configuration — for each workload family. The output reproduces the
// kind of figures robot-swarm papers print.
//
//	go run ./examples/gallery          # writes gallery/*.svg
//	go run ./examples/gallery -dir /tmp/figs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"luxvis"
	"luxvis/internal/geom"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/svgx"
)

func main() {
	dir := flag.String("dir", "gallery", "output directory for the SVG files")
	n := flag.Int("n", 40, "number of robots per figure")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, fam := range []luxvis.Family{luxvis.Uniform, luxvis.LineConfig, luxvis.Onion, luxvis.Wedge} {
		pts := luxvis.Generate(fam, *n, 11)

		opt := sim.DefaultOptions(sched.NewAsyncRandom(), 11)
		opt.RecordTrace = true
		res, err := sim.Run(luxvis.NewLogVis(), pts, opt)
		if err != nil {
			log.Fatal(err)
		}

		// Initial configuration.
		write(filepath.Join(*dir, fmt.Sprintf("%s-start.svg", fam)), func(f *os.File) error {
			return svgx.RenderConfiguration(f, pts, nil, 640, 640)
		})
		// Trajectories: every robot's polyline from start to landing.
		paths := make([][]geom.Point, *n)
		for i, p := range pts {
			paths[i] = []geom.Point{p}
		}
		for _, e := range res.Trace {
			if e.Kind == "step" {
				paths[e.Robot] = append(paths[e.Robot], e.Pos)
			}
		}
		write(filepath.Join(*dir, fmt.Sprintf("%s-paths.svg", fam)), func(f *os.File) error {
			return svgx.RenderTrajectories(f, paths, res.FinalColors, 640, 640)
		})
		// Terminal configuration, colored by final lights.
		write(filepath.Join(*dir, fmt.Sprintf("%s-final.svg", fam)), func(f *os.File) error {
			return svgx.RenderConfiguration(f, res.Final, res.FinalColors, 640, 640)
		})

		fmt.Printf("%-14s reached=%v epochs=%-4d figures: %s-{start,paths,final}.svg\n",
			fam, res.Reached, res.Epochs, fam)
	}
	fmt.Printf("figures written to %s/\n", *dir)
}

func write(path string, render func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		log.Fatal(err)
	}
}
