package baseline_test

import (
	"testing"

	"luxvis/internal/baseline"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func TestSeqVisName(t *testing.T) {
	b := baseline.NewSeqVis()
	if b.Name() != "seqvis" {
		t.Errorf("Name = %q", b.Name())
	}
	if len(b.Palette()) != len(core.NewLogVis().Palette()) {
		t.Error("baseline palette differs from LogVis")
	}
}

func TestSeqVisMutualExclusion(t *testing.T) {
	b := baseline.NewSeqVis()
	// An interior robot that would move must refrain while a Transit
	// robot is visible.
	s := model.Snapshot{
		Self: model.RobotView{Pos: geom.Pt(5, 2), Color: model.Interior},
		Others: []model.RobotView{
			{Pos: geom.Pt(0, 0), Color: model.Corner},
			{Pos: geom.Pt(10, 0), Color: model.Corner},
			{Pos: geom.Pt(5, 8), Color: model.Corner},
			{Pos: geom.Pt(7, 4), Color: model.Transit},
		},
	}
	act := b.Compute(s)
	if !act.IsStay(geom.Pt(5, 2)) {
		t.Errorf("moved despite visible Transit: %+v", act)
	}
	if act.Color == model.Transit || act.Color == model.Beacon {
		t.Errorf("refraining robot shows a mover's light: %v", act.Color)
	}
}

func TestSeqVisConverges(t *testing.T) {
	for _, fam := range []config.Family{config.Uniform, config.Onion, config.Line} {
		for _, n := range []int{4, 9, 16} {
			pts := config.Generate(fam, n, 3)
			opt := sim.DefaultOptions(sched.NewAsyncRandom(), 3)
			opt.MaxEpochs = 3000
			res, err := sim.Run(baseline.NewSeqVis(), pts, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Reached {
				t.Errorf("%s n=%d: baseline did not converge in %d epochs", fam, n, res.Epochs)
				continue
			}
			if res.Collisions != 0 {
				t.Errorf("%s n=%d: %d collisions", fam, n, res.Collisions)
			}
			if !exact.CompleteVisibilityHybrid(res.Final) {
				t.Errorf("%s n=%d: final config fails exact CV", fam, n)
			}
		}
	}
}

func TestSeqVisSlowerThanLogVis(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison sweep skipped in -short mode")
	}
	// The abstract's headline comparison, small-scale form: at a
	// moderate size the serialized baseline must need substantially
	// more epochs than LogVis. Averaged over seeds to damp noise.
	const n = 48
	var logSum, seqSum int
	for seed := int64(1); seed <= 3; seed++ {
		pts := config.Generate(config.Uniform, n, seed)
		lopt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
		lopt.MaxEpochs = 4000
		lres, err := sim.Run(core.NewLogVis(), pts, lopt)
		if err != nil {
			t.Fatal(err)
		}
		sopt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
		sopt.MaxEpochs = 4000
		sres, err := sim.Run(baseline.NewSeqVis(), pts, sopt)
		if err != nil {
			t.Fatal(err)
		}
		if !lres.Reached || !sres.Reached {
			t.Fatalf("seed %d: convergence failed (logvis=%v seqvis=%v)", seed, lres.Reached, sres.Reached)
		}
		logSum += lres.Epochs
		seqSum += sres.Epochs
	}
	if seqSum <= logSum {
		t.Errorf("baseline (%d epochs total) not slower than LogVis (%d)", seqSum, logSum)
	}
	t.Logf("n=%d: LogVis %d epochs vs SeqVis %d epochs (3 seeds)", n, logSum, seqSum)
}
