// Package baseline implements SeqVis, the O(N)-epoch asynchronous
// translation of the semi-synchronous Complete Visibility algorithm that
// the paper's abstract uses as its comparison point.
//
// A semi-synchronous algorithm may move many robots per round because a
// round is atomic: every mover decides against the same world state. The
// straightforward way to make such an algorithm safe under asynchrony —
// where a mover's snapshot can be arbitrarily stale — is mutual
// exclusion: a robot relocates only when it can see that nobody else is
// relocating, and ties are broken by a priority rule so at most one robot
// in any visibility neighbourhood departs at a time. That serialization
// is exactly what costs Θ(N) epochs and what the paper's O(log N)
// algorithm eliminates; experiment F1 charts the two growth laws side by
// side.
//
// SeqVis reuses the geometric decisions of core.LogVis (which robot class
// moves where) and wraps them in the mutual-exclusion discipline, so the
// comparison isolates the scheduling structure rather than unrelated
// geometry. The priority rule compares positions lexicographically; this
// is frame-dependent and stands in for the translation's handshake
// protocol (see DESIGN.md, substitution log).
package baseline

import (
	"luxvis/internal/core"
	"luxvis/internal/model"
)

// SeqVis is the serialized ASYNC translation of the semi-synchronous
// Complete Visibility algorithm. The zero value is ready to use.
type SeqVis struct {
	inner core.LogVis
}

// NewSeqVis returns a SeqVis baseline instance.
func NewSeqVis() *SeqVis { return &SeqVis{} }

// Name implements model.Algorithm.
func (*SeqVis) Name() string { return "seqvis" }

// Palette implements model.Algorithm: the same seven colors as LogVis.
func (b *SeqVis) Palette() []model.Color { return b.inner.Palette() }

// Compute implements model.Algorithm: LogVis's geometric decision under
// a visibility-neighbourhood mutual exclusion.
func (b *SeqVis) Compute(s model.Snapshot) model.Action {
	act := b.inner.Compute(s)
	if act.IsStay(s.Self.Pos) {
		return act
	}
	// Someone visible is mid-relocation: wait. One mover per visibility
	// neighbourhood at a time is the whole point of the translation —
	// an asynchronous mover cannot trust concurrent movers' stale
	// decisions, so it waits them out, which serializes progress and
	// costs Θ(N) epochs. (A stricter static priority rule would
	// deadlock: the unique highest-priority robot can be exactly the
	// one whose corridors are blocked.)
	for _, o := range s.Others {
		if o.Color == model.Transit || o.Color == model.Beacon {
			return model.Stay(s.Self.Pos, holdColor(act.Color))
		}
	}
	return act
}

// holdColor maps an in-flight color back to the stationary color of the
// robot's class, so a refraining robot never shows a mover's light.
func holdColor(moving model.Color) model.Color {
	switch moving {
	case model.Transit:
		return model.Interior
	case model.Beacon:
		return model.Side
	default:
		return moving
	}
}

// compile-time interface check
var _ model.Algorithm = (*SeqVis)(nil)
