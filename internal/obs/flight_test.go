package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden flight dump from the current engine output")

// rogueAlgo behaves (stays, light Off) for its first trigger computes,
// then lights an undeclared color forever — a deterministic palette
// violation partway into a run, with enough preceding events to wrap a
// small flight ring.
type rogueAlgo struct {
	calls   int
	trigger int
}

func (a *rogueAlgo) Name() string           { return "rogue" }
func (a *rogueAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (a *rogueAlgo) Compute(s model.Snapshot) model.Action {
	a.calls++
	if a.calls > a.trigger {
		return model.Stay(s.Self.Pos, model.Beacon)
	}
	return model.Stay(s.Self.Pos, model.Off)
}

// rogueRun executes the canonical flight-test scenario: four collinear
// robots (never CV, so only MaxEpochs ends the run) under FSYNC.
func rogueRun(t *testing.T, opt sim.Options) sim.Result {
	t.Helper()
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0), geom.Pt(15, 0)}
	res, err := sim.Run(&rogueAlgo{trigger: 12}, pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

func rogueOptions() sim.Options {
	opt := sim.DefaultOptions(sched.NewFSync(), 5)
	opt.MaxEpochs = 6
	return opt
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3, nil)
	f.RunStart(sim.RunInfo{N: 1})
	for i := 0; i < 5; i++ {
		f.Event(sim.TraceEvent{Event: i})
	}
	evs := f.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Event != i+2 {
			t.Errorf("event %d = %d, want %d (oldest-first)", i, ev.Event, i+2)
		}
	}
	// RunStart resets for the next run.
	f.RunStart(sim.RunInfo{N: 1})
	if got := f.Events(); len(got) != 0 {
		t.Errorf("ring not reset: %d events", len(got))
	}
}

func TestFlightRecorderDumpsOnViolation(t *testing.T) {
	var sink bytes.Buffer
	f := NewFlightRecorder(8, &sink)
	opt := rogueOptions()
	opt.Observer = f
	res := rogueRun(t, opt)

	if len(res.Violations) == 0 {
		t.Fatal("scenario produced no violations")
	}
	if !f.Dumped() {
		t.Fatal("flight recorder did not dump")
	}
	if err := f.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	h, evs, err := trace.ReadJSONL(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("dump is not a valid trace stream: %v", err)
	}
	if h.Algorithm != "rogue" || h.N != 4 {
		t.Errorf("header %+v", h)
	}
	if h.Note == "" {
		t.Error("dump header has no reason note")
	}
	if len(evs) != 8 {
		t.Errorf("dump has %d events, want ring size 8", len(evs))
	}
	// Exactly one dump per run, even though every later compute also
	// violates.
	if n := bytes.Count(sink.Bytes(), []byte(`"kind":"header"`)); n != 1 {
		t.Errorf("%d headers in sink, want 1", n)
	}
}

// TestFlightDumpMatchesTraceTail is the differential check behind the
// flight recorder's core promise: its event lines are byte-identical to
// the tail of the full RecordTrace stream of the same seed, cut at the
// first violation.
func TestFlightDumpMatchesTraceTail(t *testing.T) {
	const k = 8

	var sink bytes.Buffer
	opt := rogueOptions()
	f := NewFlightRecorder(k, &sink)
	opt.Observer = f
	flightRes := rogueRun(t, opt)

	opt2 := rogueOptions()
	opt2.RecordTrace = true
	fullRes := rogueRun(t, opt2)

	if len(flightRes.Violations) == 0 || len(fullRes.Violations) == 0 {
		t.Fatal("scenario produced no violations")
	}
	v := fullRes.Violations[0]
	// The palette check fires before the violating compute's trace event
	// lands, so the dump holds exactly the events strictly before it.
	var prefix []sim.TraceEvent
	for _, ev := range fullRes.Trace {
		if ev.Event < v.Event {
			prefix = append(prefix, ev)
		}
	}
	if len(prefix) < k {
		t.Fatalf("only %d events before the violation; want > ring size %d", len(prefix), k)
	}
	tail := prefix[len(prefix)-k:]

	var want bytes.Buffer
	if err := trace.Encode(&want, trace.HeaderOf(fullRes), trace.ConvertEvents(tail)); err != nil {
		t.Fatalf("Encode: %v", err)
	}

	// Headers differ by design (partial counters + reason note); the
	// event lines must agree byte for byte.
	gotLines := bytes.SplitN(sink.Bytes(), []byte("\n"), 2)
	wantLines := bytes.SplitN(want.Bytes(), []byte("\n"), 2)
	if !bytes.Equal(gotLines[1], wantLines[1]) {
		t.Fatalf("flight event lines diverge from trace tail:\n got:\n%s\nwant:\n%s",
			gotLines[1], wantLines[1])
	}
}

func TestFlightRecorderDumpsOnNonConvergence(t *testing.T) {
	var sink bytes.Buffer
	f := NewFlightRecorder(4, &sink)
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 3
	opt.Observer = f
	// A clean stay algorithm on a blocked line: no violation, but the
	// run ends without reaching CV — the recorder must still dump.
	res, err := sim.Run(&rogueAlgo{trigger: 1 << 30}, pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if res.Reached {
		t.Fatal("blocked line unexpectedly reached CV")
	}
	if !f.Dumped() {
		t.Error("no dump on a non-converged run")
	}
}

// TestGoldenFlightDump pins the complete dump — header (with partial
// counters and reason note) plus ring events — byte for byte.
func TestGoldenFlightDump(t *testing.T) {
	var sink bytes.Buffer
	opt := rogueOptions()
	f := NewFlightRecorder(8, &sink)
	opt.Observer = f
	rogueRun(t, opt)

	golden := filepath.Join("testdata", "flight_rogue_fsync_n4_seed5.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, sink.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, sink.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden dump (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("flight dump diverges from golden:\n got:\n%s\nwant:\n%s", sink.Bytes(), want)
	}
}

func TestFlightRecorderManualDump(t *testing.T) {
	f := NewFlightRecorder(4, nil)
	f.RunStart(sim.RunInfo{Algorithm: "x", N: 2})
	f.Event(sim.TraceEvent{Event: 0, Kind: "look"})
	var buf bytes.Buffer
	if err := f.DumpTo(&buf, "manual"); err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	h, evs, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if h.Algorithm != "x" || len(evs) != 1 {
		t.Errorf("header %+v, %d events", h, len(evs))
	}
	if f.Dumped() {
		t.Error("manual DumpTo must not consume the automatic dump")
	}
}
