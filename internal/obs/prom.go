package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// TextWriter emits the Prometheus text exposition format (version
// 0.0.4): `# HELP`/`# TYPE` comments followed by `name{labels} value`
// sample lines. It needs no client library and performs no buffering of
// its own; errors stick and are reported by Err, so callers can emit a
// whole page and check once.
//
// HELP and TYPE are written the first time a metric family name is used;
// later samples of the same family (other label sets) emit bare sample
// lines, as the format requires.
type TextWriter struct {
	w        io.Writer
	err      error
	families map[string]bool
}

// NewTextWriter returns a TextWriter emitting to w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: w, families: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (t *TextWriter) Err() error { return t.err }

// Counter emits one counter sample.
func (t *TextWriter) Counter(name, help string, v float64, labels ...Label) {
	t.family(name, help, "counter")
	t.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (t *TextWriter) Gauge(name, help string, v float64, labels ...Label) {
	t.family(name, help, "gauge")
	t.sample(name, labels, v)
}

// Histogram emits one histogram: cumulative `_bucket` samples with `le`
// labels (ending at `+Inf`), then `_sum` and `_count`.
func (t *TextWriter) Histogram(name, help string, h HistogramSnapshot, labels ...Label) {
	t.family(name, help, "histogram")
	for i, b := range h.Bounds {
		le := Label{Name: "le", Value: formatValue(b)}
		t.sample(name+"_bucket", append(append([]Label(nil), labels...), le), float64(h.Cumulative[i]))
	}
	inf := Label{Name: "le", Value: "+Inf"}
	t.sample(name+"_bucket", append(append([]Label(nil), labels...), inf), float64(h.Count))
	t.sample(name+"_sum", labels, h.Sum)
	t.sample(name+"_count", labels, float64(h.Count))
}

// family writes the HELP/TYPE preamble once per metric family.
func (t *TextWriter) family(name, help, typ string) {
	if t.err != nil || t.families[name] {
		return
	}
	t.families[name] = true
	_, t.err = fmt.Fprintf(t.w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(help), name, typ)
}

// sample writes one `name{labels} value` line.
func (t *TextWriter) sample(name string, labels []Label, v float64) {
	if t.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	_, t.err = io.WriteString(t.w, sb.String())
}

// formatValue renders a sample or `le` bound value.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ---------------------------------------------------------------------
// Cumulative histogram accumulator

// Histogram is a fixed-bound cumulative histogram safe for concurrent
// use: per-bucket atomic counters plus a CAS-accumulated sum. Unlike the
// sliding-window quantiles in internal/serve, a Histogram never forgets —
// it is the lifetime distribution Prometheus rate() and
// histogram_quantile() expect.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given upper bucket bounds,
// which must be strictly ascending and finite. The +Inf bucket is
// implicit.
func NewHistogram(bounds ...float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: non-finite histogram bound")
		}
		if i > 0 && bounds[i-1] >= b {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		val := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, in the shape
// the exposition format needs (cumulative bucket counts).
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds; the +Inf bucket is implicit.
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i].
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// Snapshot copies the histogram state. Buckets are read one by one, so a
// snapshot taken during concurrent observation is approximate in the way
// Prometheus scrapes always are (cumulative counts stay monotone within
// the snapshot by construction).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.bounds)),
	}
	var cum uint64
	for i := range h.counts {
		cum += uint64(h.counts[i].Load())
		if i < len(s.Cumulative) {
			s.Cumulative[i] = cum
		}
	}
	s.Count = cum
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// DefaultLatencyBucketsMs are the visserve request-latency bucket bounds
// in milliseconds: roughly logarithmic from sub-millisecond handler hits
// (cache) to the multi-minute experiment ceiling.
func DefaultLatencyBucketsMs() []float64 {
	return []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000, 120000}
}
