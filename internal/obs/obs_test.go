package obs

import (
	"testing"

	"luxvis/internal/sim"
)

// tagObserver records the order callbacks arrive in across a Multi.
type tagObserver struct {
	tag string
	log *[]string
}

func (o tagObserver) RunStart(sim.RunInfo)          { *o.log = append(*o.log, o.tag+":start") }
func (o tagObserver) Event(sim.TraceEvent)          { *o.log = append(*o.log, o.tag+":event") }
func (o tagObserver) CycleEnd(sim.CycleInfo)        { *o.log = append(*o.log, o.tag+":cycle") }
func (o tagObserver) MoveEnd(sim.MoveInfo)          { *o.log = append(*o.log, o.tag+":move") }
func (o tagObserver) EpochEnd(sim.EpochSample)      { *o.log = append(*o.log, o.tag+":epoch") }
func (o tagObserver) ViolationFound(sim.Violation)  { *o.log = append(*o.log, o.tag+":violation") }
func (o tagObserver) RunEnd(*sim.Result, error)     { *o.log = append(*o.log, o.tag+":end") }

func TestMultiDropsNilsAndPreservesFastPath(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	var log []string
	a := tagObserver{tag: "a", log: &log}
	if got := Multi(nil, a, nil); got != (a) {
		t.Errorf("Multi with one live member returned %T, want the member itself", got)
	}
}

func TestMultiFansOutInOrder(t *testing.T) {
	var log []string
	m := Multi(tagObserver{tag: "a", log: &log}, tagObserver{tag: "b", log: &log})
	m.RunStart(sim.RunInfo{})
	m.Event(sim.TraceEvent{})
	m.CycleEnd(sim.CycleInfo{})
	m.MoveEnd(sim.MoveInfo{})
	m.EpochEnd(sim.EpochSample{})
	m.ViolationFound(sim.Violation{})
	m.RunEnd(&sim.Result{}, nil)
	want := []string{
		"a:start", "b:start", "a:event", "b:event", "a:cycle", "b:cycle",
		"a:move", "b:move", "a:epoch", "b:epoch",
		"a:violation", "b:violation", "a:end", "b:end",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

func TestFuncsZeroValueIsSafe(t *testing.T) {
	var f Funcs // all callbacks nil: the canonical no-op observer
	f.RunStart(sim.RunInfo{})
	f.Event(sim.TraceEvent{})
	f.CycleEnd(sim.CycleInfo{})
	f.MoveEnd(sim.MoveInfo{})
	f.EpochEnd(sim.EpochSample{})
	f.ViolationFound(sim.Violation{})
	f.RunEnd(&sim.Result{}, nil)
}

func TestFuncsDispatch(t *testing.T) {
	got := 0
	f := &Funcs{OnEpochEnd: func(s sim.EpochSample) { got = s.Epoch }}
	f.EpochEnd(sim.EpochSample{Epoch: 7})
	f.Event(sim.TraceEvent{}) // nil field: no-op
	if got != 7 {
		t.Errorf("OnEpochEnd not dispatched: got %d", got)
	}
}
