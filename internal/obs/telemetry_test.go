package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"luxvis/internal/sim"
)

func telemetryLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestTelemetryWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewTelemetryWriter(&buf)
	w.RunStart(sim.RunInfo{Algorithm: "logvis", Scheduler: "fsync", N: 8, Seed: 2})
	w.Event(sim.TraceEvent{})   // no-op
	w.CycleEnd(sim.CycleInfo{}) // no-op
	w.MoveEnd(sim.MoveInfo{})   // no-op
	var phases [sim.NumPhases]int
	phases[sim.PhaseInterior] = 5
	w.EpochEnd(sim.EpochSample{Epoch: 1, Corners: 3, Interior: 5, CV: false, Phases: phases})
	w.ViolationFound(sim.Violation{Kind: sim.VPathCross, Event: 9})
	w.RunEnd(&sim.Result{Reached: true, Epochs: 4}, nil)
	if err := w.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}

	lines := telemetryLines(t, &buf)
	kinds := make([]string, len(lines))
	for i, m := range lines {
		kinds[i] = m["kind"].(string)
	}
	want := []string{"run-start", "epoch", "violation", "run-end"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("line %d kind = %q, want %q", i, kinds[i], want[i])
		}
	}
	ep := lines[1]
	if ep["epoch"].(float64) != 1 || ep["corners"].(float64) != 3 {
		t.Errorf("epoch line: %v", ep)
	}
	if ep["phases"].(map[string]any)["interior-depletion"].(float64) != 5 {
		t.Errorf("epoch phases: %v", ep["phases"])
	}
	end := lines[3]
	if end["reached"] != true {
		t.Errorf("run-end line: %v", end)
	}
	if _, present := end["aborted"]; present {
		t.Errorf("aborted present on a clean run: %v", end)
	}
}

func TestTelemetryWriterAborted(t *testing.T) {
	var buf bytes.Buffer
	w := NewTelemetryWriter(&buf)
	w.RunEnd(&sim.Result{}, errors.New("context deadline exceeded"))
	lines := telemetryLines(t, &buf)
	if len(lines) != 1 || lines[0]["aborted"] != "context deadline exceeded" {
		t.Errorf("lines = %v", lines)
	}
}

// errWriter fails after the first write to exercise the sticky error.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	e.n++
	if e.n > 1 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestTelemetryWriterStickyError(t *testing.T) {
	w := NewTelemetryWriter(&errWriter{})
	w.RunStart(sim.RunInfo{})
	w.EpochEnd(sim.EpochSample{Epoch: 1})
	w.EpochEnd(sim.EpochSample{Epoch: 2})
	if w.Err() == nil {
		t.Error("write error not recorded")
	}
}
