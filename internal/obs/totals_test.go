package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"luxvis/internal/sim"
)

func TestEngineTotalsSnapshot(t *testing.T) {
	tot := NewEngineTotals()
	tot.RunStart(sim.RunInfo{})
	tot.Event(sim.TraceEvent{})
	tot.Event(sim.TraceEvent{})
	tot.CycleEnd(sim.CycleInfo{Phase: sim.PhaseInterior, Moved: true})
	tot.CycleEnd(sim.CycleInfo{Phase: sim.PhaseCorner})
	tot.MoveEnd(sim.MoveInfo{})
	tot.EpochEnd(sim.EpochSample{Epoch: 1})
	tot.ViolationFound(sim.Violation{Kind: sim.VPalette})
	tot.ViolationFound(sim.Violation{Kind: "mystery"})
	tot.RunEnd(&sim.Result{Reached: true, Kernel: sim.KernelStats{
		RowsComputed: 100, RowsReused: 40, CVChecks: 7, LookNanos: 1500, CVNanos: 300,
	}}, nil)
	tot.RunEnd(&sim.Result{Kernel: sim.KernelStats{RowsComputed: 10}}, errors.New("ctx"))

	s := tot.Snapshot()
	if s.RunsStarted != 1 || s.RunsFinished != 2 || s.RunsAborted != 1 || s.CVReached != 1 {
		t.Errorf("run counters: %+v", s)
	}
	if s.Events != 2 || s.Cycles != 2 || s.Moves != 1 || s.Epochs != 1 {
		t.Errorf("volume counters: %+v", s)
	}
	if s.Violations[string(sim.VPalette)] != 1 || s.Violations["other"] != 1 {
		t.Errorf("violations: %v", s.Violations)
	}
	if s.PhaseCycles[sim.PhaseInterior.String()] != 1 ||
		s.PhaseMoves[sim.PhaseInterior.String()] != 1 ||
		s.PhaseCycles[sim.PhaseCorner.String()] != 1 {
		t.Errorf("phases: cycles=%v moves=%v", s.PhaseCycles, s.PhaseMoves)
	}
	// Every key is always present, even at zero.
	for _, k := range []string{"colocation", "pass-through", "path-cross", "palette", "bad-target", "other"} {
		if _, ok := s.Violations[k]; !ok {
			t.Errorf("missing violation key %q", k)
		}
	}
	for _, p := range sim.AllPhases() {
		if _, ok := s.PhaseCycles[p.String()]; !ok {
			t.Errorf("missing phase key %q", p)
		}
	}
	// Kernel counters accumulate across runs, aborted ones included.
	if s.VisRowsComputed != 110 || s.VisRowsReused != 40 || s.VisCVChecks != 7 ||
		s.VisLookNanos != 1500 || s.VisCVNanos != 300 {
		t.Errorf("kernel counters: %+v", s)
	}
}

// TestEngineTotalsConcurrent exercises the accumulator the way visserve
// does: one shared instance attached to many concurrent runs. Run under
// -race in CI.
func TestEngineTotalsConcurrent(t *testing.T) {
	tot := NewEngineTotals()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tot.RunStart(sim.RunInfo{})
				tot.Event(sim.TraceEvent{})
				tot.CycleEnd(sim.CycleInfo{Phase: sim.Phase(i % sim.NumPhases), Moved: i%2 == 0})
				tot.EpochEnd(sim.EpochSample{})
				tot.RunEnd(&sim.Result{Reached: i%2 == 0}, nil)
			}
		}()
	}
	wg.Wait()
	s := tot.Snapshot()
	if s.RunsStarted != workers*per || s.RunsFinished != workers*per {
		t.Errorf("runs: %+v", s)
	}
	if s.Cycles != workers*per || s.Events != workers*per {
		t.Errorf("volume: %+v", s)
	}
	var phaseSum int64
	for _, v := range s.PhaseCycles {
		phaseSum += v
	}
	if phaseSum != s.Cycles {
		t.Errorf("phase cycles sum %d != cycles %d", phaseSum, s.Cycles)
	}
}

func TestEngineTotalsWritePrometheus(t *testing.T) {
	tot := NewEngineTotals()
	tot.RunStart(sim.RunInfo{})
	tot.CycleEnd(sim.CycleInfo{Phase: sim.PhaseEdge})
	tot.ViolationFound(sim.Violation{Kind: sim.VPathCross})
	tot.RunEnd(&sim.Result{Kernel: sim.KernelStats{
		RowsComputed: 5, RowsReused: 3, CVChecks: 2, LookNanos: 2_000_000_000,
	}}, nil)
	var sb strings.Builder
	w := NewTextWriter(&sb)
	tot.WritePrometheus(w, "luxvis_engine")
	if err := w.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"luxvis_engine_runs_started_total 1",
		`luxvis_engine_violations_total{kind="path-cross"} 1`,
		`luxvis_engine_phase_cycles_total{phase="edge-depletion"} 1`,
		`luxvis_engine_phase_cycles_total{phase="other"} 0`,
		`luxvis_engine_vis_rows_total{path="computed"} 5`,
		`luxvis_engine_vis_rows_total{path="reused"} 3`,
		"luxvis_engine_vis_cv_checks_total 2",
		"luxvis_engine_vis_look_seconds_total 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE for the labeled family must appear exactly once.
	if n := strings.Count(out, "# TYPE luxvis_engine_violations_total counter"); n != 1 {
		t.Errorf("violations TYPE emitted %d times", n)
	}
}
