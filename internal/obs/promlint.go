package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a full Prometheus text exposition (format
// 0.0.4) against the line grammar and the family discipline this
// package's TextWriter promises:
//
//   - every line is a HELP comment, a TYPE comment, a sample, or blank;
//   - each family declares HELP immediately followed by TYPE, once;
//   - every sample belongs to a declared family (histogram samples to
//     their family's _bucket/_sum/_count series);
//   - metric and label names match the Prometheus charset, label values
//     are properly quoted and escaped, and sample values parse;
//   - each histogram has a terminal le="+Inf" bucket whose count equals
//     its _count, and its cumulative bucket counts are monotone.
//
// It exists so the /metrics surface can be golden-tested structurally:
// instead of pinning bytes that change with every new family, tests
// assert that whatever is exposed is well-formed.
func ValidateExposition(text string) error {
	v := &expoValidator{
		types:   make(map[string]string),
		helped:  make(map[string]bool),
		sampled: make(map[string]bool),
		hists:   make(map[string]*histCheck),
	}
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		// A single trailing newline leaves one empty final element.
		if line == "" {
			if i != len(lines)-1 {
				return fmt.Errorf("line %d: blank line inside the exposition", i+1)
			}
			continue
		}
		if err := v.line(line); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	if v.pendingHelp != "" {
		return fmt.Errorf("family %s: HELP without a following TYPE", v.pendingHelp)
	}
	for name, typ := range v.types {
		if !v.sampled[name] {
			return fmt.Errorf("family %s: declared %s but no samples", name, typ)
		}
	}
	for name, h := range v.hists {
		if err := h.check(name); err != nil {
			return err
		}
	}
	return nil
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// histCheck accumulates one histogram family's series for the
// cross-sample invariants.
type histCheck struct {
	buckets  []float64 // cumulative counts in exposition order
	infCount float64
	hasInf   bool
	count    float64
	hasCount bool
	sum      bool
}

func (h *histCheck) check(name string) error {
	if !h.hasInf {
		return fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", name)
	}
	if !h.hasCount || !h.sum {
		return fmt.Errorf("histogram %s: missing _sum or _count", name)
	}
	//lint:allow floateq exposition counts are exact integers on the wire; bit-exact equality is the invariant being validated
	if h.infCount != h.count {
		return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", name, h.infCount, h.count)
	}
	prev := math.Inf(-1)
	for i, c := range h.buckets {
		if c < prev {
			return fmt.Errorf("histogram %s: bucket %d count %g below previous %g (not cumulative)", name, i, c, prev)
		}
		prev = c
	}
	return nil
}

type expoValidator struct {
	types   map[string]string // family -> declared type
	helped  map[string]bool
	sampled map[string]bool
	hists   map[string]*histCheck
	// pendingHelp is a family whose HELP was seen but whose TYPE has not
	// arrived yet — the writer always pairs them immediately.
	pendingHelp string
}

func (v *expoValidator) line(line string) error {
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *expoValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	name := fields[2]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	switch fields[1] {
	case "HELP":
		if v.pendingHelp != "" {
			return fmt.Errorf("family %s: HELP without a following TYPE", v.pendingHelp)
		}
		if v.helped[name] {
			return fmt.Errorf("family %s: HELP declared twice", name)
		}
		v.helped[name] = true
		v.pendingHelp = name
		return nil
	case "TYPE":
		if v.pendingHelp != name {
			return fmt.Errorf("family %s: TYPE not immediately preceded by its HELP", name)
		}
		v.pendingHelp = ""
		if len(fields) != 4 {
			return fmt.Errorf("family %s: TYPE missing the type", name)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("family %s: unknown type %q", name, fields[3])
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("family %s: TYPE declared twice", name)
		}
		v.types[name] = fields[3]
		return nil
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
}

// sample parses one `name{labels} value` line and records it against
// its declared family.
func (v *expoValidator) sample(line string) error {
	if v.pendingHelp != "" {
		return fmt.Errorf("family %s: sample before its TYPE", v.pendingHelp)
	}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[end:]

	labels := map[string]string{}
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest)
		if err != nil {
			return fmt.Errorf("sample %s: %w", name, err)
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return fmt.Errorf("sample %s: missing value separator", name)
	}
	valStr := strings.TrimPrefix(rest, " ")
	if strings.ContainsRune(valStr, ' ') {
		// A second field would be a timestamp; the writer never emits one.
		return fmt.Errorf("sample %s: unexpected trailing fields %q", name, valStr)
	}
	val, err := parseSampleValue(valStr)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}

	family, series := v.familyOf(name)
	typ, ok := v.types[family]
	if !ok {
		return fmt.Errorf("sample %s: no HELP/TYPE declaration for family %s", name, family)
	}
	v.sampled[family] = true
	if typ == "histogram" {
		// One family can carry many label sets (per-endpoint latency);
		// the bucket invariants hold within a label set, not across them.
		key := family + histGroupKey(labels)
		h := v.hists[key]
		if h == nil {
			h = &histCheck{}
			v.hists[key] = h
		}
		switch series {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", family)
			}
			if le == "+Inf" {
				h.infCount, h.hasInf = val, true
			} else {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("histogram %s: bad le=%q", family, le)
				}
				h.buckets = append(h.buckets, val)
			}
		case "_sum":
			h.sum = true
		case "_count":
			h.count, h.hasCount = val, true
		default:
			return fmt.Errorf("histogram %s: bare sample %s (want _bucket/_sum/_count)", family, name)
		}
	} else if series != "" {
		return fmt.Errorf("sample %s: suffix series on non-histogram family %s", name, family)
	}
	return nil
}

// histGroupKey fingerprints a sample's labels minus the per-bucket le,
// so every series of one histogram label set lands in one histCheck.
func histGroupKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString("|")
		sb.WriteString(k)
		sb.WriteString("=")
		sb.WriteString(labels[k])
	}
	return sb.String()
}

// familyOf resolves a sample name to its declared family: itself, or
// for histogram series the name minus its _bucket/_sum/_count suffix —
// whichever has a declaration.
func (v *expoValidator) familyOf(name string) (family, series string) {
	if _, ok := v.types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, found := strings.CutSuffix(name, suf); found {
			if _, ok := v.types[base]; ok {
				return base, suf
			}
		}
	}
	return name, ""
}

// parseLabels consumes a {name="value",...} block, validating names and
// escape sequences, and returns the remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	out := map[string]string{}
	s = s[1:] // consume '{'
	for {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label block missing '='")
		}
		lname := s[:eq]
		if !labelNameRe.MatchString(lname) {
			return nil, "", fmt.Errorf("bad label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				i++
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", lname, s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, "", fmt.Errorf("label %s: unterminated value", lname)
		}
		if _, dup := out[lname]; dup {
			return nil, "", fmt.Errorf("label %s: duplicated", lname)
		}
		out[lname] = val.String()
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
			continue
		}
		if len(s) > 0 && s[0] == '}' {
			return out, s[1:], nil
		}
		return nil, "", fmt.Errorf("label block: expected ',' or '}'")
	}
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}
