package obs

import (
	"sync/atomic"

	"luxvis/internal/sim"
)

// violationKinds is the fixed set of engine violation kinds, in
// declaration order, plus a catch-all tail slot for kinds this package
// does not know (forward compatibility with new engine checks).
var violationKinds = [...]sim.ViolationKind{
	sim.VColocation, sim.VPassThrough, sim.VPathCross, sim.VPalette, sim.VBadTarget,
}

const otherViolationSlot = len(violationKinds) // index of the catch-all counter

func violationSlot(k sim.ViolationKind) int {
	for i, known := range violationKinds {
		if k == known {
			return i
		}
	}
	return otherViolationSlot
}

// EngineTotals accumulates lifetime engine counters across any number of
// runs, with lock-free atomic increments, and implements sim.Observer so
// it can be attached to every run a service executes (shared by all
// worker goroutines). It is the `luxvis_engine_*` section of visserve's
// Prometheus exposition. Every field is accessed through sync/atomic
// only — the `atomicmix` analyzer (cmd/vislint) rejects any plain
// load or store of these counters, so a snapshot can never tear.
type EngineTotals struct {
	runsStarted  atomic.Int64
	runsFinished atomic.Int64
	runsAborted  atomic.Int64
	cvReached    atomic.Int64
	epochs       atomic.Int64
	cycles       atomic.Int64
	moves        atomic.Int64
	events       atomic.Int64
	violations   [len(violationKinds) + 1]atomic.Int64
	phaseCycles  [sim.NumPhases]atomic.Int64
	phaseMoves   [sim.NumPhases]atomic.Int64

	// Visibility-kernel counters, accumulated from Result.Kernel at
	// RunEnd (see sim.KernelStats).
	visRowsComputed atomic.Int64
	visRowsReused   atomic.Int64
	visCVChecks     atomic.Int64
	visLookNanos    atomic.Int64
	visCVNanos      atomic.Int64
}

// NewEngineTotals returns a zeroed accumulator.
func NewEngineTotals() *EngineTotals { return &EngineTotals{} }

// RunStart implements sim.Observer.
func (t *EngineTotals) RunStart(sim.RunInfo) { t.runsStarted.Add(1) }

// Event implements sim.Observer.
func (t *EngineTotals) Event(sim.TraceEvent) { t.events.Add(1) }

// CycleEnd implements sim.Observer.
func (t *EngineTotals) CycleEnd(c sim.CycleInfo) {
	t.cycles.Add(1)
	t.phaseCycles[c.Phase].Add(1)
	if c.Moved {
		t.phaseMoves[c.Phase].Add(1)
	}
}

// MoveEnd implements sim.Observer.
func (t *EngineTotals) MoveEnd(sim.MoveInfo) { t.moves.Add(1) }

// EpochEnd implements sim.Observer.
func (t *EngineTotals) EpochEnd(sim.EpochSample) { t.epochs.Add(1) }

// ViolationFound implements sim.Observer.
func (t *EngineTotals) ViolationFound(v sim.Violation) {
	t.violations[violationSlot(v.Kind)].Add(1)
}

// RunEnd implements sim.Observer.
func (t *EngineTotals) RunEnd(res *sim.Result, aborted error) {
	t.runsFinished.Add(1)
	if aborted != nil {
		t.runsAborted.Add(1)
	}
	if res.Reached {
		t.cvReached.Add(1)
	}
	t.visRowsComputed.Add(res.Kernel.RowsComputed)
	t.visRowsReused.Add(res.Kernel.RowsReused)
	t.visCVChecks.Add(res.Kernel.CVChecks)
	t.visLookNanos.Add(res.Kernel.LookNanos)
	t.visCVNanos.Add(res.Kernel.CVNanos)
}

// EngineTotalsSnapshot is a point-in-time copy of EngineTotals.
type EngineTotalsSnapshot struct {
	RunsStarted  int64
	RunsFinished int64
	RunsAborted  int64
	CVReached    int64
	Epochs       int64
	Cycles       int64
	Moves        int64
	Events       int64
	// Violations maps every known violation kind (plus "other") to its
	// lifetime count; all keys are always present.
	Violations map[string]int64
	// PhaseCycles and PhaseMoves map phase names to lifetime counts.
	PhaseCycles map[string]int64
	PhaseMoves  map[string]int64
	// Visibility-kernel totals (see sim.KernelStats): rows computed
	// from scratch versus served by incremental revalidation, CV
	// evaluations, and the time both spent (nanoseconds are zero for
	// runs without timing, i.e. when only row counters were collected).
	VisRowsComputed int64
	VisRowsReused   int64
	VisCVChecks     int64
	VisLookNanos    int64
	VisCVNanos      int64
}

// Snapshot copies the counters.
func (t *EngineTotals) Snapshot() EngineTotalsSnapshot {
	s := EngineTotalsSnapshot{
		RunsStarted:  t.runsStarted.Load(),
		RunsFinished: t.runsFinished.Load(),
		RunsAborted:  t.runsAborted.Load(),
		CVReached:    t.cvReached.Load(),
		Epochs:       t.epochs.Load(),
		Cycles:       t.cycles.Load(),
		Moves:        t.moves.Load(),
		Events:       t.events.Load(),
		Violations:   make(map[string]int64, len(violationKinds)+1),
		PhaseCycles:  make(map[string]int64, sim.NumPhases),
		PhaseMoves:   make(map[string]int64, sim.NumPhases),

		VisRowsComputed: t.visRowsComputed.Load(),
		VisRowsReused:   t.visRowsReused.Load(),
		VisCVChecks:     t.visCVChecks.Load(),
		VisLookNanos:    t.visLookNanos.Load(),
		VisCVNanos:      t.visCVNanos.Load(),
	}
	for i, k := range violationKinds {
		s.Violations[string(k)] = t.violations[i].Load()
	}
	s.Violations["other"] = t.violations[otherViolationSlot].Load()
	for _, p := range sim.AllPhases() {
		s.PhaseCycles[p.String()] = t.phaseCycles[p].Load()
		s.PhaseMoves[p.String()] = t.phaseMoves[p].Load()
	}
	return s
}

// WritePrometheus emits the totals as `<prefix>_*` counter families in a
// deterministic order (violation kinds and phases in declaration order).
func (t *EngineTotals) WritePrometheus(w *TextWriter, prefix string) {
	w.Counter(prefix+"_runs_started_total", "Engine runs started.", float64(t.runsStarted.Load()))
	w.Counter(prefix+"_runs_finished_total", "Engine runs finished (including aborted ones).", float64(t.runsFinished.Load()))
	w.Counter(prefix+"_runs_aborted_total", "Engine runs aborted by cancellation or deadline.", float64(t.runsAborted.Load()))
	w.Counter(prefix+"_cv_reached_total", "Runs that terminated in verified Complete Visibility.", float64(t.cvReached.Load()))
	w.Counter(prefix+"_epochs_total", "Completed engine epochs across all runs.", float64(t.epochs.Load()))
	w.Counter(prefix+"_cycles_total", "Completed LCM cycles across all runs.", float64(t.cycles.Load()))
	w.Counter(prefix+"_moves_total", "Completed relocations across all runs.", float64(t.moves.Load()))
	w.Counter(prefix+"_events_total", "Engine micro-events (look/compute/step) across all runs.", float64(t.events.Load()))
	for i, k := range violationKinds {
		w.Counter(prefix+"_violations_total", "Safety violations by kind.",
			float64(t.violations[i].Load()), Label{Name: "kind", Value: string(k)})
	}
	w.Counter(prefix+"_violations_total", "Safety violations by kind.",
		float64(t.violations[otherViolationSlot].Load()), Label{Name: "kind", Value: "other"})
	for _, p := range sim.AllPhases() {
		w.Counter(prefix+"_phase_cycles_total", "Completed LCM cycles by phase attribution.",
			float64(t.phaseCycles[p].Load()), Label{Name: "phase", Value: p.String()})
	}
	for _, p := range sim.AllPhases() {
		w.Counter(prefix+"_phase_moves_total", "Completed relocations by phase attribution.",
			float64(t.phaseMoves[p].Load()), Label{Name: "phase", Value: p.String()})
	}
	w.Counter(prefix+"_vis_rows_total", "Visibility rows resolved, by path (computed from scratch or reused via incremental revalidation).",
		float64(t.visRowsComputed.Load()), Label{Name: "path", Value: "computed"})
	w.Counter(prefix+"_vis_rows_total", "Visibility rows resolved, by path (computed from scratch or reused via incremental revalidation).",
		float64(t.visRowsReused.Load()), Label{Name: "path", Value: "reused"})
	w.Counter(prefix+"_vis_cv_checks_total", "Complete Visibility evaluations (CV-cache misses).",
		float64(t.visCVChecks.Load()))
	w.Counter(prefix+"_vis_look_seconds_total", "Wall time spent computing snapshot visibility rows.",
		float64(t.visLookNanos.Load())/1e9)
	w.Counter(prefix+"_vis_cv_seconds_total", "Wall time spent in Complete Visibility checks.",
		float64(t.visCVNanos.Load())/1e9)
}
