package obs

import (
	"fmt"
	"io"
	"sync"

	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

// DefaultFlightEvents is the default flight-recorder ring capacity.
const DefaultFlightEvents = 512

// FlightRecorder keeps the last K engine events in a fixed-size ring and
// dumps them as a JSONL trace snapshot — the internal/trace encoding, so
// a flight dump's event lines are byte-identical to the tail of the full
// RecordTrace trace of the same run — when something goes wrong:
//
//   - on the first safety violation (before the violating event lands),
//   - on an aborted run (context cancellation or deadline), and
//   - on a run that ends without reaching Complete Visibility
//     (epoch/event cap exhaustion).
//
// At most one dump is written per run; the dump's header carries partial
// run counters (epochs and events observed so far) and a Note with the
// dump reason. This is the post-mortem path that costs O(K) memory and
// no per-run I/O, where Options.RecordTrace costs O(events) memory on
// every run, healthy or not.
//
// A FlightRecorder is safe for concurrent use but records one run at a
// time: RunStart resets the ring. Successive dumps (one per run) append
// to the same sink as concatenated JSONL streams.
type FlightRecorder struct {
	mu     sync.Mutex
	k      int
	sink   io.Writer
	info   sim.RunInfo
	ring   []sim.TraceEvent
	next   int
	count  int
	events int // total events observed this run
	epochs int
	dumped bool
	err    error
}

// NewFlightRecorder returns a recorder retaining the last k events
// (k <= 0 selects DefaultFlightEvents) that dumps to sink. A nil sink
// records but never writes; use Events or DumpTo to inspect manually.
func NewFlightRecorder(k int, sink io.Writer) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightEvents
	}
	return &FlightRecorder{k: k, sink: sink, ring: make([]sim.TraceEvent, 0, k)}
}

// RunStart implements sim.Observer: it resets the ring for a new run.
func (f *FlightRecorder) RunStart(info sim.RunInfo) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.info = info
	f.ring = f.ring[:0]
	f.next, f.count, f.events, f.epochs = 0, 0, 0, 0
	f.dumped = false
}

// Event implements sim.Observer.
func (f *FlightRecorder) Event(ev sim.TraceEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.events++
	if len(f.ring) < f.k {
		f.ring = append(f.ring, ev)
		f.count = len(f.ring)
		return
	}
	f.ring[f.next] = ev
	f.next = (f.next + 1) % f.k
}

// CycleEnd implements sim.Observer (no-op).
func (f *FlightRecorder) CycleEnd(sim.CycleInfo) {}

// MoveEnd implements sim.Observer (no-op).
func (f *FlightRecorder) MoveEnd(sim.MoveInfo) {}

// EpochEnd implements sim.Observer.
func (f *FlightRecorder) EpochEnd(s sim.EpochSample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epochs = s.Epoch
}

// ViolationFound implements sim.Observer: the first violation triggers
// the dump, capturing the events leading up to it.
func (f *FlightRecorder) ViolationFound(v sim.Violation) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dumpLocked(fmt.Sprintf("violation: %v", v))
}

// RunEnd implements sim.Observer: an aborted or non-converged run that
// has not dumped yet dumps now.
func (f *FlightRecorder) RunEnd(res *sim.Result, aborted error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case aborted != nil:
		f.dumpLocked(fmt.Sprintf("aborted: %v", aborted))
	case !res.Reached:
		f.dumpLocked("run ended without reaching Complete Visibility")
	}
}

// dumpLocked writes the ring to the sink once per run. f.mu is held.
func (f *FlightRecorder) dumpLocked(reason string) {
	if f.dumped {
		return
	}
	f.dumped = true
	if f.sink == nil {
		return
	}
	if err := f.writeToLocked(f.sink, reason); err != nil && f.err == nil {
		f.err = err
	}
}

// writeToLocked encodes the current ring as a JSONL snapshot. f.mu is held.
func (f *FlightRecorder) writeToLocked(w io.Writer, reason string) error {
	h := trace.Header{
		Kind:      "header",
		Algorithm: f.info.Algorithm,
		Scheduler: f.info.Scheduler,
		N:         f.info.N,
		Seed:      f.info.Seed,
		Epochs:    f.epochs,
		Events:    f.events,
		Reached:   false,
		Note:      fmt.Sprintf("flight-recorder dump (last %d of %d events): %s", f.count, f.events, reason),
	}
	return trace.Encode(w, h, trace.ConvertEvents(f.eventsLocked()))
}

// eventsLocked returns the retained events oldest-first. f.mu is held.
func (f *FlightRecorder) eventsLocked() []sim.TraceEvent {
	out := make([]sim.TraceEvent, 0, f.count)
	if f.count < f.k {
		return append(out, f.ring[:f.count]...)
	}
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Events returns a copy of the retained events, oldest first.
func (f *FlightRecorder) Events() []sim.TraceEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eventsLocked()
}

// DumpTo writes the current ring as a JSONL snapshot to w regardless of
// trigger state — the manual post-mortem hook.
func (f *FlightRecorder) DumpTo(w io.Writer, reason string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeToLocked(w, reason)
}

// Dumped reports whether the current run has written its dump.
func (f *FlightRecorder) Dumped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumped
}

// Err returns the first sink write error, if any.
func (f *FlightRecorder) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
