// Package obs is the engine observability layer: ready-made
// implementations of the sim.Observer callback interface, plus the text
// encodings that surface them. It is dependency-free beyond the standard
// library and the repo's own packages.
//
//   - Funcs adapts a sparse set of callbacks to the full interface.
//   - Multi fans one run's callbacks out to several observers.
//   - EngineTotals keeps lock-free lifetime counters across many runs
//     (epochs, cycles, violations by kind, phase attribution) — the
//     engine section of visserve's Prometheus exposition.
//   - FlightRecorder keeps a fixed-size ring of the last K engine events
//     and dumps a JSONL snapshot (internal/trace encoding) on the first
//     safety violation or on an aborted run — post-mortem traces without
//     paying Options.RecordTrace on every run.
//   - TelemetryWriter streams epoch-granular run telemetry as JSONL.
//   - TextWriter and Histogram implement the Prometheus text exposition
//     format (version 0.0.4) without a client library.
//
// Observers attached to internal/sim runs are called from one goroutine
// in deterministic order; observers shared across concurrent runs (the
// visserve worker pool, internal/rt robot goroutines) must be
// goroutine-safe. Everything in this package is safe for concurrent use.
package obs

import "luxvis/internal/sim"

// Funcs adapts individual callback functions to sim.Observer; nil fields
// are no-ops. The zero value is the canonical no-op observer (used by
// the overhead benchmark in bench_test.go).
type Funcs struct {
	OnRunStart  func(sim.RunInfo)
	OnEvent     func(sim.TraceEvent)
	OnCycleEnd  func(sim.CycleInfo)
	OnMoveEnd   func(sim.MoveInfo)
	OnEpochEnd  func(sim.EpochSample)
	OnViolation func(sim.Violation)
	OnRunEnd    func(*sim.Result, error)
}

// RunStart implements sim.Observer.
func (f *Funcs) RunStart(info sim.RunInfo) {
	if f.OnRunStart != nil {
		f.OnRunStart(info)
	}
}

// Event implements sim.Observer.
func (f *Funcs) Event(ev sim.TraceEvent) {
	if f.OnEvent != nil {
		f.OnEvent(ev)
	}
}

// CycleEnd implements sim.Observer.
func (f *Funcs) CycleEnd(c sim.CycleInfo) {
	if f.OnCycleEnd != nil {
		f.OnCycleEnd(c)
	}
}

// MoveEnd implements sim.Observer.
func (f *Funcs) MoveEnd(m sim.MoveInfo) {
	if f.OnMoveEnd != nil {
		f.OnMoveEnd(m)
	}
}

// EpochEnd implements sim.Observer.
func (f *Funcs) EpochEnd(s sim.EpochSample) {
	if f.OnEpochEnd != nil {
		f.OnEpochEnd(s)
	}
}

// ViolationFound implements sim.Observer.
func (f *Funcs) ViolationFound(v sim.Violation) {
	if f.OnViolation != nil {
		f.OnViolation(v)
	}
}

// RunEnd implements sim.Observer.
func (f *Funcs) RunEnd(res *sim.Result, aborted error) {
	if f.OnRunEnd != nil {
		f.OnRunEnd(res, aborted)
	}
}

// multi fans every callback out to its members, in order.
type multi []sim.Observer

// Multi combines observers into one that invokes each in argument order.
// Nil members are dropped; zero (remaining) observers yield nil, so the
// result can be assigned to sim.Options.Observer directly without
// defeating the engine's disabled-observation fast path.
func Multi(obs ...sim.Observer) sim.Observer {
	kept := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

func (m multi) RunStart(info sim.RunInfo) {
	for _, o := range m {
		o.RunStart(info)
	}
}

func (m multi) Event(ev sim.TraceEvent) {
	for _, o := range m {
		o.Event(ev)
	}
}

func (m multi) CycleEnd(c sim.CycleInfo) {
	for _, o := range m {
		o.CycleEnd(c)
	}
}

func (m multi) MoveEnd(mv sim.MoveInfo) {
	for _, o := range m {
		o.MoveEnd(mv)
	}
}

func (m multi) EpochEnd(s sim.EpochSample) {
	for _, o := range m {
		o.EpochEnd(s)
	}
}

func (m multi) ViolationFound(v sim.Violation) {
	for _, o := range m {
		o.ViolationFound(v)
	}
}

func (m multi) RunEnd(res *sim.Result, aborted error) {
	for _, o := range m {
		o.RunEnd(res, aborted)
	}
}
