package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"luxvis/internal/sim"
)

// TelemetryWriter streams epoch-granular run telemetry as JSON lines
// while a run executes: a run-start line, one line per epoch boundary
// (hull composition plus the epoch's phase attribution), one line per
// safety violation, and a run-end summary. It is the `vissim -telemetry`
// backend: a live, line-oriented view of where the O(log N) budget goes,
// cheap enough to leave on (one buffered write per epoch, not per
// event).
type TelemetryWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTelemetryWriter returns a writer streaming to w. Output is buffered
// and flushed at every line so a consumer tailing the stream sees epochs
// as they complete.
func NewTelemetryWriter(w io.Writer) *TelemetryWriter {
	bw := bufio.NewWriter(w)
	return &TelemetryWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Err returns the first write error, if any.
func (t *TelemetryWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit encodes one line and flushes.
func (t *TelemetryWriter) emit(v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err := t.enc.Encode(v); err != nil {
		t.err = err
		return
	}
	t.err = t.bw.Flush()
}

// phaseMap renders a per-phase counter array with phase-name keys.
func phaseMap(counts [sim.NumPhases]int) map[string]int {
	m := make(map[string]int, sim.NumPhases)
	for _, p := range sim.AllPhases() {
		m[p.String()] = counts[p]
	}
	return m
}

// RunStart implements sim.Observer.
func (t *TelemetryWriter) RunStart(info sim.RunInfo) {
	t.emit(struct {
		Kind      string `json:"kind"`
		Algorithm string `json:"algorithm"`
		Scheduler string `json:"scheduler"`
		N         int    `json:"n"`
		Seed      int64  `json:"seed"`
	}{"run-start", info.Algorithm, info.Scheduler, info.N, info.Seed})
}

// Event implements sim.Observer (no-op; telemetry is epoch-granular).
func (t *TelemetryWriter) Event(sim.TraceEvent) {}

// CycleEnd implements sim.Observer (no-op).
func (t *TelemetryWriter) CycleEnd(sim.CycleInfo) {}

// MoveEnd implements sim.Observer (no-op).
func (t *TelemetryWriter) MoveEnd(sim.MoveInfo) {}

// EpochEnd implements sim.Observer.
func (t *TelemetryWriter) EpochEnd(s sim.EpochSample) {
	t.emit(struct {
		Kind       string         `json:"kind"`
		Epoch      int            `json:"epoch"`
		Corners    int            `json:"corners"`
		Edge       int            `json:"edge"`
		Interior   int            `json:"interior"`
		MovesSoFar int            `json:"movesSoFar"`
		CV         bool           `json:"cv"`
		Phases     map[string]int `json:"phases"`
		PhaseMoves map[string]int `json:"phaseMoves"`
	}{"epoch", s.Epoch, s.Corners, s.EdgeRobots, s.Interior, s.MovesSoFar, s.CV,
		phaseMap(s.Phases), phaseMap(s.PhaseMoves)})
}

// ViolationFound implements sim.Observer.
func (t *TelemetryWriter) ViolationFound(v sim.Violation) {
	t.emit(struct {
		Kind      string `json:"kind"`
		Violation string `json:"violation"`
		Event     int    `json:"event"`
	}{"violation", v.String(), v.Event})
}

// RunEnd implements sim.Observer.
func (t *TelemetryWriter) RunEnd(res *sim.Result, aborted error) {
	abort := ""
	if aborted != nil {
		abort = aborted.Error()
	}
	t.emit(struct {
		Kind       string `json:"kind"`
		Reached    bool   `json:"reached"`
		Epochs     int    `json:"epochs"`
		Events     int    `json:"events"`
		Cycles     int    `json:"cycles"`
		Moves      int    `json:"moves"`
		Violations int    `json:"violations"`
		Aborted    string `json:"aborted,omitempty"`
	}{"run-end", res.Reached, res.Epochs, res.Events, res.Cycles, res.Moves,
		len(res.Violations), abort})
}
