package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)

func TestTextWriterGrammar(t *testing.T) {
	var sb strings.Builder
	w := NewTextWriter(&sb)
	w.Counter("jobs_total", "Jobs.", 3)
	w.Counter("jobs_total", "Jobs.", 4, Label{Name: "kind", Value: "run"})
	w.Gauge("depth", "Queue depth.", 1.5)
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(3)
	w.Histogram("lat_ms", "Latency.", h.Snapshot(), Label{Name: "endpoint", Value: "/v1/run"})
	if err := w.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}

	out := sb.String()
	help, typ := 0, 0
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			help++
		case strings.HasPrefix(line, "# TYPE "):
			typ++
		default:
			if !sampleLine.MatchString(line) {
				t.Errorf("malformed sample line %q", line)
			}
		}
	}
	// Three families (jobs_total once despite two samples), one HELP and
	// one TYPE each.
	if help != 3 || typ != 3 {
		t.Errorf("HELP=%d TYPE=%d, want 3/3\n%s", help, typ, out)
	}
	for _, want := range []string{
		"jobs_total 3",
		`jobs_total{kind="run"} 4`,
		"depth 1.5",
		`lat_ms_bucket{endpoint="/v1/run",le="+Inf"} 2`,
		`lat_ms_count{endpoint="/v1/run"} 2`,
		`lat_ms_sum{endpoint="/v1/run"} 3.5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTextWriterEscaping(t *testing.T) {
	var sb strings.Builder
	w := NewTextWriter(&sb)
	w.Counter("m", "line\nbreak and back\\slash", 1,
		Label{Name: "v", Value: "q\"uote\nnl\\bs"})
	out := sb.String()
	if !strings.Contains(out, `# HELP m line\nbreak and back\\slash`) {
		t.Errorf("HELP not escaped: %q", out)
	}
	if !strings.Contains(out, `m{v="q\"uote\nnl\\bs"} 1`) {
		t.Errorf("label not escaped: %q", out)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(DefaultLatencyBucketsMs()...)
	values := []float64{0.1, 0.5, 0.6, 7, 7, 40, 99.9, 100, 3000, 500000}
	var sum float64
	for _, v := range values {
		h.Observe(v)
		sum += v
	}
	s := h.Snapshot()
	if s.Count != uint64(len(values)) {
		t.Errorf("Count = %d, want %d", s.Count, len(values))
	}
	if math.Abs(s.Sum-sum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", s.Sum, sum)
	}
	prev := uint64(0)
	for i, c := range s.Cumulative {
		if c < prev {
			t.Errorf("bucket %d not monotone: %d after %d", i, c, prev)
		}
		prev = c
	}
	// An observation above every bound lands only in the implicit +Inf
	// bucket: the last finite cumulative count must exclude it.
	if last := s.Cumulative[len(s.Cumulative)-1]; last != uint64(len(values))-1 {
		t.Errorf("last finite bucket = %d, want %d", last, len(values)-1)
	}
	// Boundary semantics: le is inclusive (v <= bound).
	h2 := NewHistogram(10)
	h2.Observe(10)
	if got := h2.Snapshot().Cumulative[0]; got != 1 {
		t.Errorf("le=10 bucket after Observe(10) = %d, want 1", got)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("Count = %d, want %d", s.Count, workers*per)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1.5:          "1.5",
		1000:         "1000",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	// Round-trip: every finite rendering must parse back exactly.
	for _, v := range []float64{0.1, 123456.789, 1e-9} {
		back, err := strconv.ParseFloat(formatValue(v), 64)
		if err != nil || back != v {
			t.Errorf("round-trip %v -> %q -> %v (%v)", v, formatValue(v), back, err)
		}
	}
}
