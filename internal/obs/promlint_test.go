package obs_test

import (
	"strings"
	"testing"

	"luxvis/internal/obs"
)

// TestValidateExpositionAcceptsTextWriter: whatever the package's own
// writer emits — counters, labeled gauges, multi-label-set histograms —
// must validate. This is the structural golden test for the /metrics
// surface.
func TestValidateExpositionAcceptsTextWriter(t *testing.T) {
	var sb strings.Builder
	pw := obs.NewTextWriter(&sb)
	pw.Counter("luxvis_frames_total", "Frames published.", 12345)
	pw.Gauge("luxvis_build_info", "Build identity; the value is always 1.", 1,
		obs.Label{Name: "version", Value: `luxvis (devel) rev "quoted"\slash`},
		obs.Label{Name: "go_version", Value: "go1.24.0"})
	h := obs.NewHistogram(1, 5, 25)
	for _, v := range []float64{0.5, 2, 3, 30} {
		h.Observe(v)
	}
	pw.Histogram("luxvis_latency_ms", "Latency.", h.Snapshot(),
		obs.Label{Name: "endpoint", Value: "/v1/run"})
	pw.Histogram("luxvis_latency_ms", "Latency.", h.Snapshot(),
		obs.Label{Name: "endpoint", Value: "/v1/experiment"})
	if err := pw.Err(); err != nil {
		t.Fatalf("TextWriter: %v", err)
	}
	if err := obs.ValidateExposition(sb.String()); err != nil {
		t.Fatalf("writer output failed validation: %v\n%s", err, sb.String())
	}
}

// TestValidateExpositionRejects pins the failure modes: each malformed
// exposition must be caught, with the grammar or pairing rule named.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			name: "sample without declaration",
			text: "orphan_total 1\n",
			want: "no HELP/TYPE",
		},
		{
			name: "TYPE without preceding HELP",
			text: "# TYPE a_total counter\na_total 1\n",
			want: "not immediately preceded",
		},
		{
			name: "HELP without TYPE",
			text: "# HELP a_total help text\na_total 1\n",
			want: "sample before its TYPE",
		},
		{
			name: "HELP then mismatched TYPE",
			text: "# HELP a_total x\n# TYPE b_total counter\n",
			want: "not immediately preceded",
		},
		{
			name: "unknown type",
			text: "# HELP a_total x\n# TYPE a_total countish\na_total 1\n",
			want: "unknown type",
		},
		{
			name: "duplicate family",
			text: "# HELP a_total x\n# TYPE a_total counter\na_total 1\n# HELP a_total x\n# TYPE a_total counter\n",
			want: "HELP declared twice",
		},
		{
			name: "declared but never sampled",
			text: "# HELP a_total x\n# TYPE a_total counter\n",
			want: "no samples",
		},
		{
			name: "bad metric name",
			text: "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
			want: "bad metric name",
		},
		{
			name: "bad label name",
			text: "# HELP a x\n# TYPE a gauge\na{9l=\"v\"} 1\n",
			want: "bad label name",
		},
		{
			name: "unterminated label value",
			text: "# HELP a x\n# TYPE a gauge\na{l=\"v} 1\n",
			want: "unterminated",
		},
		{
			name: "bad escape",
			text: "# HELP a x\n# TYPE a gauge\na{l=\"v\\t\"} 1\n",
			want: "bad escape",
		},
		{
			name: "bad sample value",
			text: "# HELP a x\n# TYPE a gauge\na twelve\n",
			want: "bad sample value",
		},
		{
			name: "blank line inside",
			text: "# HELP a x\n# TYPE a gauge\n\na 1\n",
			want: "blank line",
		},
		{
			name: "histogram without +Inf",
			text: "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 3\nh_count 2\n",
			want: "+Inf",
		},
		{
			name: "histogram +Inf disagrees with count",
			text: "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 2\n",
			want: "!= _count",
		},
		{
			name: "histogram not cumulative",
			text: "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 6\nh_sum 3\nh_count 6\n",
			want: "not cumulative",
		},
		{
			name: "suffix series on a gauge",
			text: "# HELP g x\n# TYPE g gauge\ng 1\ng_count 1\n",
			want: "suffix series on non-histogram",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := obs.ValidateExposition(tc.text)
			if err == nil {
				t.Fatalf("validation accepted malformed exposition:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
