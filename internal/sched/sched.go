// Package sched implements the activation schedulers of the three classic
// robot models — fully synchronous (FSYNC), semi-synchronous (SSYNC) and
// asynchronous (ASYNC) — over a single event-granular execution engine.
//
// The engine (internal/sim) advances one robot by one micro-event at a
// time: an Idle robot Looks, a Looked robot Computes, a Computed/Moving
// robot advances its move by one sub-step. A scheduler's only job is to
// pick which robot advances next and how many sub-steps a move takes.
// Every classical scheduler is a policy over this event stream:
//
//   - FSYNC keeps all robots in lockstep, so all Looks of a round happen
//     before any move of that round;
//   - SSYNC picks a random non-empty subset per round and runs it
//     atomically;
//   - ASYNC interleaves arbitrarily, which is where stale snapshots (a
//     robot moving on the basis of a world that has since changed) come
//     from. Two ASYNC policies are provided: a uniformly random one with
//     a fairness window, and an adversarial one that maximizes snapshot
//     staleness by batching all Looks before any motion and then moving
//     robots serially.
package sched

import (
	"fmt"
	"math/rand"
	"strings"
)

// Stage is a robot's position within its current Look-Compute-Move cycle.
type Stage uint8

const (
	// Idle: the robot has no pending cycle; its next event is a Look.
	Idle Stage = iota
	// Looked: a snapshot is held; the next event is a Compute.
	Looked
	// Computed: an action is held; the next event starts the move.
	Computed
	// Moving: the robot is partway along its motion segment.
	Moving
)

func (s Stage) String() string {
	switch s {
	case Idle:
		return "idle"
	case Looked:
		return "looked"
	case Computed:
		return "computed"
	case Moving:
		return "moving"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Status is the scheduler-visible state of one robot.
type Status struct {
	Stage Stage
	// Cycles is the number of complete LCM cycles finished since the
	// start of the run.
	Cycles int
	// StepsLeft is the number of move sub-steps remaining (Moving only).
	StepsLeft int
	// LastEvent is the index of the last event that advanced this robot,
	// or -1 if it has never been activated.
	LastEvent int
}

// Scheduler picks the next robot to advance. Implementations may be
// stateful; the engine calls Reset once per run before any Next call.
// Schedulers must be fair: every robot is advanced infinitely often.
type Scheduler interface {
	// Name identifies the scheduler in experiment tables.
	Name() string
	// Reset prepares the scheduler for a fresh run of n robots.
	Reset(n int)
	// Next returns the index of the robot to advance by one event.
	// now is the global event counter. The returned index must be in
	// [0, len(st)).
	Next(st []Status, now int, rng *rand.Rand) int
	// MoveSteps returns the number of sub-steps to split a newly
	// started move into (≥ 1). More sub-steps expose more intermediate
	// positions to other robots' Looks.
	MoveSteps(rng *rand.Rand) int
}

// FairnessWindow is the default bound on starvation used by the
// randomized schedulers: a robot not activated for this many events is
// advanced with priority. Without it, the ASYNC adversary would be
// allowed to freeze a robot forever and no algorithm could terminate.
const FairnessWindow = 4096

// mostStarved returns the index of the robot with the oldest LastEvent if
// it exceeds the window, else -1.
func mostStarved(st []Status, now, window int) int {
	idx, oldest := -1, now
	for i := range st {
		if st[i].LastEvent < oldest {
			oldest = st[i].LastEvent
			idx = i
		}
	}
	if idx >= 0 && now-oldest >= window {
		return idx
	}
	return -1
}

// ---------------------------------------------------------------------
// FSYNC

// FSync is the fully synchronous scheduler: all robots Look from the same
// world state, then all Compute, then all moves complete, and the next
// round begins. One round is exactly one epoch.
type FSync struct{}

// NewFSync returns the fully synchronous scheduler.
func NewFSync() *FSync { return &FSync{} }

// Name implements Scheduler.
func (*FSync) Name() string { return "fsync" }

// Reset implements Scheduler.
func (*FSync) Reset(int) {}

// Next keeps the swarm in lockstep: among the robots with the fewest
// completed cycles, advance the one at the earliest stage (lowest index
// breaking ties). This reproduces Look-all, Compute-all, Move-all rounds.
func (*FSync) Next(st []Status, _ int, _ *rand.Rand) int {
	minCycles := st[0].Cycles
	for _, s := range st[1:] {
		if s.Cycles < minCycles {
			minCycles = s.Cycles
		}
	}
	best := -1
	var bestStage Stage
	for i, s := range st {
		if s.Cycles != minCycles {
			continue
		}
		if best == -1 || s.Stage < bestStage {
			best, bestStage = i, s.Stage
		}
	}
	return best
}

// MoveSteps implements Scheduler: synchronous moves are atomic.
func (*FSync) MoveSteps(*rand.Rand) int { return 1 }

// ---------------------------------------------------------------------
// SSYNC

// SSync is the semi-synchronous scheduler: each round a random non-empty
// subset of robots executes a full atomic LCM cycle; the rest sleep. The
// probability of selection is p per robot (default 0.5), with at least
// one robot forced in.
type SSync struct {
	// P is the per-robot selection probability per round.
	P float64

	selected []bool
	base     []int // cycle count of each robot at round start
	rounds   int
	started  bool
}

// NewSSync returns a semi-synchronous scheduler with selection
// probability p per robot per round (p ≤ 0 or > 1 defaults to 0.5).
func NewSSync(p float64) *SSync {
	if p <= 0 || p > 1 {
		p = 0.5
	}
	return &SSync{P: p}
}

// Name implements Scheduler.
func (s *SSync) Name() string { return "ssync" }

// Reset implements Scheduler.
func (s *SSync) Reset(n int) {
	s.selected = make([]bool, n)
	s.base = make([]int, n)
	s.rounds = 0
	s.started = false
}

// Rounds returns the number of completed SSYNC rounds so far.
func (s *SSync) Rounds() int { return s.rounds }

// Next runs the current round's subset in lockstep; when every selected
// robot has completed one cycle, a fresh non-empty subset is drawn.
func (s *SSync) Next(st []Status, _ int, rng *rand.Rand) int {
	if !s.started || s.roundDone(st) {
		if s.started {
			s.rounds++
		}
		s.draw(st, rng)
		s.started = true
	}
	// Advance the selected, not-yet-done robot at the earliest stage so
	// the subset acts atomically (all Looks before any move).
	best := -1
	var bestStage Stage
	for i, t := range st {
		if !s.selected[i] || t.Cycles > s.base[i] {
			continue
		}
		if best == -1 || t.Stage < bestStage {
			best, bestStage = i, t.Stage
		}
	}
	if best < 0 {
		// Unreachable by construction (roundDone would have drawn a new
		// subset); return a valid index to satisfy the contract.
		return 0
	}
	return best
}

// roundDone reports whether every selected robot completed a cycle since
// the round began.
func (s *SSync) roundDone(st []Status) bool {
	for i := range st {
		if s.selected[i] && st[i].Cycles == s.base[i] {
			return false
		}
	}
	return true
}

// draw selects the next round's non-empty subset and records the cycle
// baseline.
func (s *SSync) draw(st []Status, rng *rand.Rand) {
	any := false
	for i := range s.selected {
		s.selected[i] = rng.Float64() < s.P
		any = any || s.selected[i]
	}
	if !any {
		s.selected[rng.Intn(len(s.selected))] = true
	}
	for i := range st {
		s.base[i] = st[i].Cycles
	}
}

// MoveSteps implements Scheduler: semi-synchronous moves are atomic.
func (*SSync) MoveSteps(*rand.Rand) int { return 1 }

// ---------------------------------------------------------------------
// ASYNC (randomized)

// AsyncRandom advances a uniformly random robot each event and splits
// moves into a random number of sub-steps, so Looks routinely observe
// robots mid-move and snapshots go stale — the standard randomized ASYNC
// adversary.
type AsyncRandom struct {
	// MaxSubSteps bounds how finely a move is split (≥ 1).
	MaxSubSteps int
	// Window is the fairness window in events (0 = FairnessWindow).
	Window int
}

// NewAsyncRandom returns the randomized asynchronous scheduler.
func NewAsyncRandom() *AsyncRandom { return &AsyncRandom{MaxSubSteps: 4} }

// Name implements Scheduler.
func (*AsyncRandom) Name() string { return "async-random" }

// Reset implements Scheduler.
func (*AsyncRandom) Reset(int) {}

// Next implements Scheduler.
func (a *AsyncRandom) Next(st []Status, now int, rng *rand.Rand) int {
	w := a.Window
	if w <= 0 {
		w = FairnessWindow
	}
	if i := mostStarved(st, now, w); i >= 0 {
		return i
	}
	return rng.Intn(len(st))
}

// MoveSteps implements Scheduler.
func (a *AsyncRandom) MoveSteps(rng *rand.Rand) int {
	m := a.MaxSubSteps
	if m < 1 {
		m = 1
	}
	return 1 + rng.Intn(m)
}

// ---------------------------------------------------------------------
// ASYNC (adversarial staleness)

// AsyncStale is the staleness-maximizing asynchronous adversary: in each
// wave it first lets every robot Look and Compute (freezing all decisions
// against the same old world), then executes the moves one robot at a
// time. Robots late in the serial order therefore move on snapshots that
// are stale by up to n-1 completed relocations — the worst interleaving a
// correct ASYNC algorithm must survive. It also maximizes sub-steps so
// intermediate positions are exposed.
type AsyncStale struct {
	// SubSteps is the number of sub-steps per move (≥ 1, default 4).
	SubSteps int

	order []int
	n     int
}

// NewAsyncStale returns the adversarial asynchronous scheduler.
func NewAsyncStale() *AsyncStale { return &AsyncStale{SubSteps: 4} }

// Name implements Scheduler.
func (*AsyncStale) Name() string { return "async-stale" }

// Reset implements Scheduler.
func (a *AsyncStale) Reset(n int) {
	a.n = n
	a.order = nil
}

// Next implements Scheduler.
func (a *AsyncStale) Next(st []Status, _ int, rng *rand.Rand) int {
	// A wave boundary is the only moment every robot is Idle; draw the
	// serial execution order for the new wave there.
	allIdle := true
	for _, t := range st {
		if t.Stage != Idle {
			allIdle = false
			break
		}
	}
	if allIdle || a.order == nil || len(a.order) != len(st) {
		a.order = rng.Perm(len(st))
	}
	// Phase 1 of a wave: everyone Looks, then everyone Computes, so all
	// decisions are frozen against the same pre-wave world.
	for i, t := range st {
		if t.Stage == Idle && !a.behind(st, i) {
			return i
		}
	}
	for i, t := range st {
		if t.Stage == Looked {
			return i
		}
	}
	// Phase 2: execute the pending moves serially in the wave order,
	// completing one robot's move before starting the next, so late
	// movers act on snapshots stale by up to n-1 relocations.
	for _, i := range a.order {
		if st[i].Stage == Moving {
			return i
		}
	}
	for _, i := range a.order {
		if st[i].Stage == Computed {
			return i
		}
	}
	return 0 // unreachable: some robot always has an available event
}

// behind reports whether robot i has completed more cycles than the
// slowest robot (it must wait for the wave to finish).
func (a *AsyncStale) behind(st []Status, i int) bool {
	min := st[0].Cycles
	for _, t := range st[1:] {
		if t.Cycles < min {
			min = t.Cycles
		}
	}
	return st[i].Cycles > min
}

// MoveSteps implements Scheduler.
func (a *AsyncStale) MoveSteps(*rand.Rand) int {
	if a.SubSteps < 1 {
		return 1
	}
	return a.SubSteps
}

// ---------------------------------------------------------------------
// ASYNC (deterministic round-robin)

// AsyncRoundRobin advances robots cyclically, one micro-event each, with
// a fixed number of move sub-steps. It is a fully deterministic member
// of the ASYNC class (every interleaving it produces is a legal ASYNC
// schedule) — useful for bisecting bugs, because runs are reproducible
// without a seed. Note that round-robin is *kind* to algorithms (stale
// windows are short and regular); it complements, not replaces, the
// randomized and adversarial schedulers.
type AsyncRoundRobin struct {
	// SubSteps is the number of sub-steps per move (≥ 1, default 2).
	SubSteps int
	next     int
}

// NewAsyncRoundRobin returns the deterministic asynchronous scheduler.
func NewAsyncRoundRobin() *AsyncRoundRobin { return &AsyncRoundRobin{SubSteps: 2} }

// Name implements Scheduler.
func (*AsyncRoundRobin) Name() string { return "async-rr" }

// Reset implements Scheduler.
func (a *AsyncRoundRobin) Reset(int) { a.next = 0 }

// Next implements Scheduler.
func (a *AsyncRoundRobin) Next(st []Status, _ int, _ *rand.Rand) int {
	r := a.next % len(st)
	a.next++
	return r
}

// MoveSteps implements Scheduler.
func (a *AsyncRoundRobin) MoveSteps(*rand.Rand) int {
	if a.SubSteps < 1 {
		return 1
	}
	return a.SubSteps
}

// ---------------------------------------------------------------------

// ByNameErr returns a fresh scheduler by its table name, or an error
// naming every known scheduler for an unknown name. User-facing callers
// (command-line flags, the HTTP service) should use this form so typos
// surface as a clear message instead of a crash.
func ByNameErr(name string) (Scheduler, error) {
	switch name {
	case "fsync":
		return NewFSync(), nil
	case "ssync":
		return NewSSync(0.5), nil
	case "async-random", "async":
		return NewAsyncRandom(), nil
	case "async-stale", "adversary":
		return NewAsyncStale(), nil
	case "async-rr", "round-robin":
		return NewAsyncRoundRobin(), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// ByName returns a fresh scheduler by its table name. It panics on an
// unknown name (with the known names in the message): experiment tables
// are compiled in, so an unknown name there is a programming error.
// Callers resolving user input should prefer ByNameErr.
func ByName(name string) Scheduler {
	s, err := ByNameErr(name)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Names lists the scheduler table names in canonical order.
func Names() []string {
	return []string{"fsync", "ssync", "async-random", "async-stale", "async-rr"}
}
