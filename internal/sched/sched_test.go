package sched

import (
	"math/rand"
	"strings"
	"testing"
)

// fakeEngine advances robot stages the way the real engine does, so the
// scheduler policies can be exercised without geometry: Look → Compute →
// (steps × MoveStep) → Idle with cycle count incremented. Every robot
// always "moves", taking the scheduler's step count.
type fakeEngine struct {
	st    []Status
	steps []int
	now   int
}

func newFakeEngine(n int) *fakeEngine {
	fe := &fakeEngine{st: make([]Status, n), steps: make([]int, n)}
	for i := range fe.st {
		fe.st[i].LastEvent = -1
	}
	return fe
}

func (fe *fakeEngine) advance(s Scheduler, rng *rand.Rand) int {
	r := s.Next(fe.st, fe.now, rng)
	if r < 0 || r >= len(fe.st) {
		panic("scheduler returned invalid robot")
	}
	switch fe.st[r].Stage {
	case Idle:
		fe.st[r].Stage = Looked
	case Looked:
		fe.st[r].Stage = Computed
		fe.steps[r] = s.MoveSteps(rng)
		fe.st[r].StepsLeft = fe.steps[r]
	case Computed:
		fe.st[r].Stage = Moving
		fe.st[r].StepsLeft--
		if fe.st[r].StepsLeft == 0 {
			fe.st[r].Stage = Idle
			fe.st[r].Cycles++
		}
	case Moving:
		fe.st[r].StepsLeft--
		if fe.st[r].StepsLeft <= 0 {
			fe.st[r].Stage = Idle
			fe.st[r].Cycles++
		}
	}
	fe.now++
	fe.st[r].LastEvent = fe.now
	return r
}

func TestStageString(t *testing.T) {
	for s, want := range map[Stage]string{Idle: "idle", Looked: "looked", Computed: "computed", Moving: "moving"} {
		if got := s.String(); got != want {
			t.Errorf("Stage %d = %q", s, got)
		}
	}
}

func TestFSyncLockstep(t *testing.T) {
	const n = 5
	fe := newFakeEngine(n)
	s := NewFSync()
	s.Reset(n)
	rng := rand.New(rand.NewSource(1))

	// The first n events must be Looks of all n robots (no Compute
	// before every robot has Looked).
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		r := fe.advance(s, rng)
		if seen[r] {
			t.Fatalf("robot %d activated twice during Look wave", r)
		}
		seen[r] = true
		if fe.st[r].Stage != Looked {
			t.Fatalf("event %d was not a Look", i)
		}
	}
	// Next n events are Computes.
	for i := 0; i < n; i++ {
		r := fe.advance(s, rng)
		if fe.st[r].Stage != Computed && fe.st[r].Stage != Idle {
			t.Fatalf("wave 2 event %d: stage %v", i, fe.st[r].Stage)
		}
	}
	// Run several full rounds: cycle counts must stay balanced (lockstep).
	for i := 0; i < 500; i++ {
		fe.advance(s, rng)
		min, max := fe.st[0].Cycles, fe.st[0].Cycles
		for _, st := range fe.st {
			if st.Cycles < min {
				min = st.Cycles
			}
			if st.Cycles > max {
				max = st.Cycles
			}
		}
		if max-min > 1 {
			t.Fatalf("FSYNC cycle imbalance: min=%d max=%d", min, max)
		}
	}
}

func TestFSyncMoveSteps(t *testing.T) {
	if got := NewFSync().MoveSteps(rand.New(rand.NewSource(1))); got != 1 {
		t.Errorf("FSYNC MoveSteps = %d", got)
	}
}

func TestSSyncRounds(t *testing.T) {
	const n = 8
	fe := newFakeEngine(n)
	s := NewSSync(0.5)
	s.Reset(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		fe.advance(s, rng)
	}
	if s.Rounds() == 0 {
		t.Fatal("no SSYNC rounds completed")
	}
	// Every robot must make progress over many rounds (selection is
	// random but unbiased).
	for i, st := range fe.st {
		if st.Cycles == 0 {
			t.Errorf("robot %d starved across %d rounds", i, s.Rounds())
		}
	}
}

func TestSSyncDefaultProbability(t *testing.T) {
	if s := NewSSync(0); s.P != 0.5 {
		t.Errorf("default P = %v", s.P)
	}
	if s := NewSSync(2); s.P != 0.5 {
		t.Errorf("clamped P = %v", s.P)
	}
	if s := NewSSync(0.25); s.P != 0.25 {
		t.Errorf("explicit P = %v", s.P)
	}
}

func TestSSyncAtomicRounds(t *testing.T) {
	// With selection probability 1 every robot runs every round, so
	// SSYNC degenerates to lockstep: cycle counts never differ by more
	// than 1. (With p < 1 the spread legitimately drifts with selection
	// luck, so lockstep is only checkable at p = 1.)
	const n = 6
	fe := newFakeEngine(n)
	s := NewSSync(1)
	s.Reset(n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		fe.advance(s, rng)
		min, max := fe.st[0].Cycles, fe.st[0].Cycles
		for _, st := range fe.st {
			if st.Cycles < min {
				min = st.Cycles
			}
			if st.Cycles > max {
				max = st.Cycles
			}
		}
		if max-min > 1 {
			t.Fatalf("SSYNC(p=1) not lockstep: spread %d", max-min)
		}
	}
}

// TestMostStarvedTable pins the starvation detector's edges directly:
// the helper every fairness window is built on must be safe on an empty
// status slice, pick the oldest robot (lowest index on ties) when the
// whole swarm is past the window, and stay quiet while everyone is
// fresh.
func TestMostStarvedTable(t *testing.T) {
	cases := []struct {
		name   string
		st     []Status
		now    int
		window int
		want   int
	}{
		{"empty status slice", nil, 100, 10, -1},
		{"single robot fresh", []Status{{LastEvent: 95}}, 100, 10, -1},
		{"single robot starved", []Status{{LastEvent: 0}}, 100, 10, 0},
		{"single robot exactly at window", []Status{{LastEvent: 90}}, 100, 10, 0},
		{"single robot one inside window", []Status{{LastEvent: 91}}, 100, 10, -1},
		{"never-activated sentinel", []Status{{LastEvent: -1}}, 0, 10, -1},
		{"all starved picks oldest", []Status{{LastEvent: 5}, {LastEvent: 2}, {LastEvent: 8}}, 100, 10, 1},
		{"all-starved tie keeps lowest index", []Status{{LastEvent: 2}, {LastEvent: 2}, {LastEvent: 2}}, 100, 10, 0},
		{"one starved among fresh", []Status{{LastEvent: 99}, {LastEvent: 3}, {LastEvent: 98}}, 100, 10, 1},
		{"nobody starved", []Status{{LastEvent: 99}, {LastEvent: 97}, {LastEvent: 98}}, 100, 10, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := mostStarved(tc.st, tc.now, tc.window); got != tc.want {
				t.Errorf("mostStarved(%v, now=%d, window=%d) = %d, want %d",
					tc.st, tc.now, tc.window, got, tc.want)
			}
		})
	}
}

// TestSSyncRoundDoneTable drives the round-boundary predicate through
// its degenerate shapes: the empty swarm, a vacuously-done round with
// nobody selected, and the single-robot swarm where every round is a
// solo cycle.
func TestSSyncRoundDoneTable(t *testing.T) {
	cases := []struct {
		name     string
		selected []bool
		base     []int
		cycles   []int
		want     bool
	}{
		{"empty status slice", nil, nil, nil, true},
		{"nobody selected is vacuously done", []bool{false, false}, []int{0, 0}, []int{0, 0}, true},
		{"single robot pending", []bool{true}, []int{0}, []int{0}, false},
		{"single robot done", []bool{true}, []int{0}, []int{1}, true},
		{"unselected progress does not count", []bool{true, false}, []int{0, 0}, []int{0, 5}, false},
		{"unselected laggard does not block", []bool{false, true}, []int{0, 0}, []int{0, 1}, true},
		{"all selected, one pending", []bool{true, true, true}, []int{2, 2, 2}, []int{3, 2, 3}, false},
		{"all selected, all done", []bool{true, true, true}, []int{2, 2, 2}, []int{3, 3, 3}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSSync(0.5)
			s.selected = tc.selected
			s.base = tc.base
			st := make([]Status, len(tc.cycles))
			for i, c := range tc.cycles {
				st[i].Cycles = c
			}
			if got := s.roundDone(st); got != tc.want {
				t.Errorf("roundDone(selected=%v base=%v cycles=%v) = %v, want %v",
					tc.selected, tc.base, tc.cycles, got, tc.want)
			}
		})
	}
}

func TestAsyncRandomFairness(t *testing.T) {
	const n = 10
	fe := newFakeEngine(n)
	s := NewAsyncRandom()
	s.Reset(n)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		fe.advance(s, rng)
	}
	for i, st := range fe.st {
		if st.Cycles < 100 {
			t.Errorf("robot %d completed only %d cycles", i, st.Cycles)
		}
	}
}

func TestAsyncRandomStarvationWindow(t *testing.T) {
	// With a tiny fairness window, the most starved robot is forced.
	const n = 4
	s := &AsyncRandom{MaxSubSteps: 1, Window: 8}
	s.Reset(n)
	st := make([]Status, n)
	for i := range st {
		st[i].LastEvent = 100
	}
	st[2].LastEvent = 0 // starved beyond the window
	rng := rand.New(rand.NewSource(5))
	if got := s.Next(st, 108, rng); got != 2 {
		t.Errorf("starved robot not prioritized: got %d", got)
	}
}

func TestAsyncRandomMoveStepsRange(t *testing.T) {
	s := NewAsyncRandom()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		steps := s.MoveSteps(rng)
		if steps < 1 || steps > s.MaxSubSteps {
			t.Fatalf("MoveSteps = %d outside [1, %d]", steps, s.MaxSubSteps)
		}
	}
}

func TestAsyncStaleWaves(t *testing.T) {
	const n = 6
	fe := newFakeEngine(n)
	s := NewAsyncStale()
	s.Reset(n)
	rng := rand.New(rand.NewSource(7))

	// Phase 1: the first n events must be Looks of all robots.
	for i := 0; i < n; i++ {
		r := fe.advance(s, rng)
		if fe.st[r].Stage != Looked {
			t.Fatalf("stale wave event %d was not a Look", i)
		}
	}
	// Then all Computes.
	for i := 0; i < n; i++ {
		r := fe.advance(s, rng)
		if fe.st[r].Stage != Computed {
			t.Fatalf("stale wave event %d was not a Compute", i)
		}
	}
	// Then moves execute serially: at most one robot in Moving stage at
	// any time.
	for i := 0; i < n*s.SubSteps; i++ {
		fe.advance(s, rng)
		moving := 0
		for _, st := range fe.st {
			if st.Stage == Moving {
				moving++
			}
		}
		if moving > 1 {
			t.Fatalf("stale adversary allowed %d concurrent movers", moving)
		}
	}
	// Long run: all robots progress (waves are fair).
	for i := 0; i < 10000; i++ {
		fe.advance(s, rng)
	}
	for i, st := range fe.st {
		if st.Cycles < 50 {
			t.Errorf("robot %d completed only %d cycles under stale adversary", i, st.Cycles)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s := ByName(name)
		if s == nil || s.Name() != name {
			t.Errorf("ByName(%q) = %v", name, s)
		}
	}
	if ByName("async").Name() != "async-random" {
		t.Error("alias async not resolved")
	}
	if ByName("round-robin").Name() != "async-rr" {
		t.Error("alias round-robin not resolved")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scheduler name did not panic")
		}
	}()
	ByName("nope")
}

func TestAsyncRoundRobinDeterministic(t *testing.T) {
	const n = 5
	mk := func() []int {
		fe := newFakeEngine(n)
		s := NewAsyncRoundRobin()
		s.Reset(n)
		rng := rand.New(rand.NewSource(99))
		var order []int
		for i := 0; i < 200; i++ {
			order = append(order, fe.advance(s, rng))
		}
		return order
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-robin diverged at event %d", i)
		}
	}
	// Coverage: every robot progresses.
	fe := newFakeEngine(n)
	s := NewAsyncRoundRobin()
	s.Reset(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		fe.advance(s, rng)
	}
	for i, st := range fe.st {
		if st.Cycles == 0 {
			t.Errorf("robot %d starved under round-robin", i)
		}
	}
}

func TestByNameErr(t *testing.T) {
	for _, name := range Names() {
		s, err := ByNameErr(name)
		if err != nil || s == nil {
			t.Fatalf("ByNameErr(%q) = %v, %v", name, s, err)
		}
		if s.Name() != name {
			t.Fatalf("ByNameErr(%q).Name() = %q", name, s.Name())
		}
	}
	s, err := ByNameErr("bogus")
	if err == nil || s != nil {
		t.Fatalf("ByNameErr(bogus) = %v, %v; want nil, error", s, err)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("ByNameErr(bogus) error %q does not list %q", err, name)
		}
	}
}

func TestByNamePanicListsKnownNames(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ByName(bogus) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "fsync") {
			t.Fatalf("ByName(bogus) panic %v does not list known schedulers", r)
		}
	}()
	ByName("bogus")
}
