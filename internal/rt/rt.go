// Package rt realizes the asynchronous robots-with-lights model with
// real concurrency: one goroutine per robot, each free-running through
// Look-Compute-Move cycles with randomized delays between stages and
// between move sub-steps, over a mutex-guarded shared world. Where
// internal/sim *adversarially schedules* asynchrony event by event, rt
// lets the Go scheduler and timing jitter produce it — the same
// algorithm binary runs unmodified in both. Experiment F5 uses this
// runtime to show the algorithm tolerates genuine (not just simulated)
// interleavings and to measure wall-clock scaling.
package rt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sim"
)

// Options configures a concurrent run.
type Options struct {
	// Seed drives all per-robot randomized delays.
	Seed int64
	// MaxWall aborts the run after this wall-clock duration
	// (default 30s).
	MaxWall time.Duration
	// MeanDelay is the average sleep between LCM stages (default
	// 200µs). Larger values increase interleaving diversity and run
	// time alike.
	MeanDelay time.Duration
	// SubSteps is the number of sub-segments a move is split into, with
	// a sleep between each, so robots are routinely observed mid-move
	// (default 3).
	SubSteps int
	// CrashAfterCycles maps robot id → crash fault: the robot halts
	// forever once it has completed that many LCM cycles (0 halts it
	// before its first Look). A halted robot keeps its position and last
	// published light — frozen scenery that still obstructs visibility —
	// and the run then terminates on survivor-CV: mutual visibility among
	// the live robots only. At least one robot must stay alive.
	CrashAfterCycles map[int]int
	// SensorJitter, when positive, perturbs each coordinate every robot
	// *observes* during Look by a uniform error in [-SensorJitter,
	// +SensorJitter]. Ground-truth positions are untouched; only the
	// snapshot handed to Compute lies.
	SensorJitter float64
	// Observer receives run callbacks, like sim.Options.Observer, with
	// two differences dictated by real concurrency: it MUST be
	// goroutine-safe (CycleEnd arrives from n robot goroutines, EpochEnd
	// from the monitor goroutine, concurrently), and only RunStart,
	// CycleEnd, EpochEnd and RunEnd are ever invoked — rt has no global
	// event clock, so Event, MoveEnd and ViolationFound never fire.
	// Callbacks run outside the world lock and may block without
	// stalling other robots; the `locksafe` analyzer (cmd/vislint)
	// enforces this contract statically across the package. Nil
	// disables observation at zero cost.
	Observer sim.Observer
}

// Result reports a concurrent run.
type Result struct {
	// Reached reports whether the swarm reached a stable Complete
	// Visibility configuration before MaxWall.
	Reached bool
	// Epochs counts completed epochs (every robot finished ≥ 1 cycle).
	Epochs int
	// Cycles is the total number of completed LCM cycles.
	Cycles int
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// Crashed lists the robots halted by CrashAfterCycles, ascending.
	Crashed []int
	// Final is the terminal configuration.
	Final []geom.Point
	// FinalColors are the terminal lights.
	FinalColors []model.Color
}

// world is the shared state; every access goes through mu.
type world struct {
	mu  sync.Mutex
	pos []geom.Point
	col []model.Color

	// changeSeq increments on every observable change (position or
	// color); robots record the sequence at Look so the monitor can
	// detect stability.
	changeSeq uint64
	// cleanLookSeq[i] is the changeSeq at the Look of robot i's last
	// completed cycle.
	cleanLookSeq []uint64
	// inFlight[i] marks robots between Compute-with-move and move end.
	inFlight []bool
	// cycles[i] counts completed cycles of robot i.
	cycles []int
	// crashed[i] marks robots halted by a crash fault; their goroutines
	// have exited and they are frozen scenery from then on.
	crashed []bool
}

// Run executes algo from start with one goroutine per robot and returns
// when the swarm stabilizes in Complete Visibility or MaxWall elapses.
func Run(algo model.Algorithm, start []geom.Point, opt Options) (Result, error) {
	return RunCtx(context.Background(), algo, start, opt)
}

// RunCtx is Run with caller cancellation layered under the MaxWall
// clock: the run stops when the swarm stabilizes, MaxWall elapses, or
// parent is done — whichever comes first. A parent-initiated stop
// returns the partial result alongside parent's error; a nil parent
// behaves like Run.
func RunCtx(parent context.Context, algo model.Algorithm, start []geom.Point, opt Options) (Result, error) {
	if parent == nil {
		parent = context.Background()
	}
	if algo == nil {
		return Result{}, errors.New("rt: nil algorithm")
	}
	n := len(start)
	if n == 0 {
		return Result{}, errors.New("rt: empty start configuration")
	}
	if opt.MaxWall <= 0 {
		opt.MaxWall = 30 * time.Second
	}
	if opt.MeanDelay <= 0 {
		opt.MeanDelay = 200 * time.Microsecond
	}
	if opt.SubSteps <= 0 {
		opt.SubSteps = 3
	}
	if len(opt.CrashAfterCycles) >= n {
		return Result{}, fmt.Errorf("rt: crash faults on %d of %d robots leave no survivor",
			len(opt.CrashAfterCycles), n)
	}
	for id, after := range opt.CrashAfterCycles {
		if id < 0 || id >= n {
			return Result{}, fmt.Errorf("rt: crash fault names robot %d of %d", id, n)
		}
		if after < 0 {
			return Result{}, fmt.Errorf("rt: crash fault for robot %d after %d cycles", id, after)
		}
	}
	if opt.SensorJitter < 0 || math.IsNaN(opt.SensorJitter) || math.IsInf(opt.SensorJitter, 0) {
		return Result{}, fmt.Errorf("rt: sensor jitter %v is not a finite non-negative amplitude",
			opt.SensorJitter)
	}

	w := &world{
		pos:          append([]geom.Point(nil), start...),
		col:          make([]model.Color, n),
		cleanLookSeq: make([]uint64, n),
		inFlight:     make([]bool, n),
		cycles:       make([]int, n),
		crashed:      make([]bool, n),
	}
	for i := range w.cleanLookSeq {
		w.cleanLookSeq[i] = ^uint64(0) // never looked
	}

	ctx, cancel := context.WithTimeout(parent, opt.MaxWall)
	defer cancel()

	if opt.Observer != nil {
		opt.Observer.RunStart(sim.RunInfo{
			Algorithm: algo.Name(), Scheduler: "rt-async", N: n, Seed: opt.Seed,
		})
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seed := int64(uint64(opt.Seed) ^ uint64(id)*0x9e3779b97f4a7c15)
			robotLoop(ctx, w, algo, id, rand.New(rand.NewSource(seed)), opt)
		}(i)
	}

	started := time.Now()
	res := monitor(ctx, w, n, opt.Observer)
	cancel()
	wg.Wait()

	res.Wall = time.Since(started)
	w.mu.Lock()
	res.Final = append([]geom.Point(nil), w.pos...)
	res.FinalColors = append([]model.Color(nil), w.col...)
	total := 0
	for _, c := range w.cycles {
		total += c
	}
	res.Cycles = total
	for i, c := range w.crashed {
		if c {
			res.Crashed = append(res.Crashed, i)
		}
	}
	w.mu.Unlock()
	abortErr := parent.Err()
	if opt.Observer != nil {
		// rt has no sim.Result of its own; RunEnd gets a partial one
		// carrying the fields both result types share.
		opt.Observer.RunEnd(&sim.Result{
			Algorithm: algo.Name(), Scheduler: "rt-async", N: n, Seed: opt.Seed,
			Reached: res.Reached, Epochs: res.Epochs, Cycles: res.Cycles,
		}, abortErr)
	}
	if abortErr != nil {
		return res, fmt.Errorf("rt: run aborted after %d epochs (%d cycles): %w",
			res.Epochs, res.Cycles, abortErr)
	}
	return res, nil
}

// robotLoop free-runs one robot's LCM cycles until the context ends.
func robotLoop(ctx context.Context, w *world, algo model.Algorithm, id int, rng *rand.Rand, opt Options) {
	nap := func() bool {
		d := time.Duration(rng.Int63n(int64(2*opt.MeanDelay) + 1))
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}
	// Per-robot row cache: Look computes its visibility row under the
	// world lock without allocating once the cache is warm.
	var rc geom.RowCache
	crashAfter, hasCrash := -1, false
	if after, ok := opt.CrashAfterCycles[id]; ok {
		crashAfter, hasCrash = after, true
	}
	// The jitter rng is separate from the delay rng so sensor error
	// draws don't shift the timing sequence of an otherwise identical
	// seed.
	var jrng *rand.Rand
	if opt.SensorJitter > 0 {
		jrng = rand.New(rand.NewSource(int64(uint64(opt.Seed) ^ uint64(id)*0x5ca1ab1ec0ffee)))
	}
	myCycles := 0
	for {
		// Explicit cancellation poll at the top of every cycle. nap()
		// also exits on ctx.Done, but that select lives inside a stored
		// closure where neither a reader skimming the loop nor the
		// goleak analyzer can see it; this check keeps the loop's exit
		// path on its own first line.
		if ctx.Err() != nil {
			return
		}
		if hasCrash && myCycles >= crashAfter {
			// Crash fault: halt forever at a cycle boundary, frozen with
			// the position and light already published. The monitor sees
			// the flag and stops waiting on this robot. The change bump
			// makes the crash observable: the cached CV verdict is
			// invalidated (the survivor set changed even though no point
			// moved) and stability then requires every survivor to have
			// looked at the post-crash world.
			w.mu.Lock()
			w.crashed[id] = true
			w.changeSeq++
			w.mu.Unlock()
			return
		}
		if !nap() {
			return
		}
		// Look.
		w.mu.Lock()
		lookSeq := w.changeSeq
		snap := snapshotLocked(w, id, &rc)
		w.mu.Unlock()
		if jrng != nil {
			// Sensor error: lie to Compute about where the others are;
			// the world itself is untouched. Outside the lock — the
			// snapshot is already a private copy.
			for k := range snap.Others {
				snap.Others[k].Pos.X += (2*jrng.Float64() - 1) * opt.SensorJitter
				snap.Others[k].Pos.Y += (2*jrng.Float64() - 1) * opt.SensorJitter
			}
		}

		if !nap() {
			return
		}
		// Compute.
		act := algo.Compute(snap)

		// Publish the light.
		w.mu.Lock()
		if w.col[id] != act.Color {
			w.col[id] = act.Color
			w.changeSeq++
		}
		from := w.pos[id]
		moving := !act.IsStay(from)
		w.inFlight[id] = moving
		w.mu.Unlock()

		// Move in sub-steps.
		if moving {
			for s := 1; s <= opt.SubSteps; s++ {
				if !nap() {
					return
				}
				w.mu.Lock()
				w.pos[id] = from.Lerp(act.Target, float64(s)/float64(opt.SubSteps))
				w.changeSeq++
				w.mu.Unlock()
			}
		}

		// Cycle complete.
		w.mu.Lock()
		w.inFlight[id] = false
		w.cleanLookSeq[id] = lookSeq
		w.cycles[id]++
		cyc := w.cycles[id]
		w.mu.Unlock()
		myCycles = cyc
		if opt.Observer != nil {
			// Outside the world lock: a slow observer must not serialize
			// the swarm. Event is the robot-local cycle ordinal — rt has
			// no global event clock.
			opt.Observer.CycleEnd(sim.CycleInfo{
				Event: cyc, Robot: id, Phase: sim.PhaseOf(act.Color), Moved: moving,
			})
		}
	}
}

// snapshotLocked builds robot id's obstructed-visibility snapshot using
// the robot's own row cache; the caller holds w.mu. Pure computation —
// no channel operations or callbacks — so it is locksafe-clean under
// the world lock.
func snapshotLocked(w *world, id int, rc *geom.RowCache) model.Snapshot {
	vis := rc.VisibleSet(w.pos, id)
	others := make([]model.RobotView, len(vis))
	for k, j := range vis {
		others[k] = model.RobotView{Pos: w.pos[j], Color: w.col[j]}
	}
	return model.Snapshot{
		Self:   model.RobotView{Pos: w.pos[id], Color: w.col[id]},
		Others: others,
	}
}

// monitor watches for stability: Complete Visibility holds, nobody is in
// flight, and every robot has completed a cycle whose Look saw the final
// world version. It also accounts epochs, notifying obs (outside the
// world lock) at each boundary. Crashed robots are frozen scenery
// throughout: they cannot hold an epoch or stability open, and once any
// robot has crashed the terminal predicate becomes survivor-CV — mutual
// visibility among live robots, with the halted ones still obstructing.
func monitor(ctx context.Context, w *world, n int, obs sim.Observer) Result {
	res := Result{}
	// The CV check runs on a position copy outside the world lock, so
	// the kernel's worker fan-out (channel sends) never happens under
	// w.mu.
	kern := geom.NewKernel(0)
	defer kern.Close()
	epochMark := make([]int, n)
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	var lastSeqChecked uint64
	lastSeqChecked = ^uint64(0)
	cvCached := false
	var alive []bool
	for {
		select {
		case <-ctx.Done():
			return res
		case <-tick.C:
		}
		w.mu.Lock()
		// Epoch accounting over live robots only: a halted robot would
		// freeze the epoch clock forever.
		allCycled := true
		anyCrashed := false
		for i := 0; i < n; i++ {
			if w.crashed[i] {
				anyCrashed = true
				continue
			}
			if w.cycles[i] <= epochMark[i] {
				allCycled = false
				break
			}
		}
		if allCycled {
			copy(epochMark, w.cycles)
			res.Epochs++
		}
		epochDone := allCycled
		// Stability: no live robot in flight, all live clean looks at
		// the current world version.
		stable := true
		for i := 0; i < n && stable; i++ {
			if w.crashed[i] {
				continue
			}
			if w.inFlight[i] || w.cleanLookSeq[i] != w.changeSeq {
				stable = false
			}
		}
		var pos []geom.Point
		if stable {
			if w.changeSeq != lastSeqChecked {
				pos = append([]geom.Point(nil), w.pos...)
				if anyCrashed {
					alive = alive[:0]
					for i := 0; i < n; i++ {
						alive = append(alive, !w.crashed[i])
					}
				}
			}
		}
		seq := w.changeSeq
		w.mu.Unlock()

		if epochDone && obs != nil {
			// Only Epoch is meaningful here; rt tracks no per-phase or
			// hull breakdown at epoch granularity.
			obs.EpochEnd(sim.EpochSample{Epoch: res.Epochs})
		}
		if stable {
			if pos != nil {
				if len(alive) > 0 {
					// Survivor-CV, exact: the stable state is checked once
					// per world version, so the rational predicate's cost
					// is off the hot path.
					cvCached = exact.CompleteVisibilityAmong(pos, alive)
				} else {
					//lint:allow ctxflow kernel dispatch is bounded compute on an internal worker pool, not open-ended waiting; a ctx parameter would tax the hot path
					cvCached = kern.CompleteVisibilityFast(pos)
				}
				lastSeqChecked = seq
			}
			if cvCached {
				res.Reached = true
				return res
			}
		}
	}
}
