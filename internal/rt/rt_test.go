package rt

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, []geom.Point{geom.Pt(0, 0)}, Options{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Run(core.NewLogVis(), nil, Options{}); err == nil {
		t.Error("empty start accepted")
	}
}

func TestGoroutineRunSmall(t *testing.T) {
	pts := config.Generate(config.Uniform, 12, 5)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      1,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("goroutine run did not stabilize (epochs=%d cycles=%d)", res.Epochs, res.Cycles)
	}
	if !exact.CompleteVisibilityHybrid(res.Final) {
		t.Error("final configuration fails exact CV")
	}
	if !geom.StrictlyConvexPosition(res.Final) {
		t.Error("final configuration not strictly convex")
	}
	if res.Cycles == 0 || res.Epochs == 0 {
		t.Errorf("no progress recorded: %+v", res)
	}
}

func TestGoroutineRunLine(t *testing.T) {
	pts := config.Generate(config.Line, 9, 2)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      2,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("line start did not stabilize under real concurrency")
	}
}

func TestGoroutineAgreesWithEngine(t *testing.T) {
	// The same algorithm must converge in both executions of the
	// model — the discrete-event engine and the concurrent runtime.
	pts := config.Generate(config.Clustered, 14, 7)

	eng, err := sim.Run(core.NewLogVis(), pts, sim.DefaultOptions(sched.NewAsyncRandom(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Reached {
		t.Fatal("engine run did not converge")
	}

	conc, err := Run(core.NewLogVis(), pts, Options{
		Seed:      7,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !conc.Reached {
		t.Fatal("concurrent run did not converge")
	}
	// Final configurations differ (different interleavings) but both
	// must satisfy the goal predicate with the same swarm size.
	if len(conc.Final) != len(eng.Final) {
		t.Errorf("swarm size changed: %d vs %d", len(conc.Final), len(eng.Final))
	}
}

func TestRunCtxHonorsCallerCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	cancel()
	pts := config.Generate(config.Uniform, 8, 1)
	start := time.Now()
	_, err := RunCtx(parent, core.NewLogVis(), pts, Options{Seed: 1, MaxWall: time.Minute})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("RunCtx took %v to honor a pre-cancelled context", elapsed)
	}
}

func TestRunCtxCallerDeadlineBeatsMaxWall(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// A line configuration takes many cycles to resolve; MaxWall alone
	// would let it run for a minute.
	pts := config.Generate(config.Line, 24, 1)
	start := time.Now()
	_, err := RunCtx(parent, core.NewLogVis(), pts, Options{Seed: 1, MaxWall: time.Minute})
	elapsed := time.Since(start)
	if err == nil {
		// The swarm may legitimately stabilize within 50ms on a fast
		// machine; only a deadline error is asserted otherwise.
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("RunCtx took %v to honor a 50ms caller deadline", elapsed)
	}
}

// stayRT never moves; crash and jitter tests need ground truth pinned
// to the start configuration.
type stayRT struct{}

func (stayRT) Name() string           { return "stay-rt" }
func (stayRT) Palette() []model.Color { return []model.Color{model.Off} }
func (stayRT) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Off)
}

// spyRT stays put while recording every observed position; Compute runs
// concurrently from n goroutines, so the log is mutex-guarded.
type spyRT struct {
	mu   sync.Mutex
	seen []geom.Point
}

func (*spyRT) Name() string           { return "spy-rt" }
func (*spyRT) Palette() []model.Color { return []model.Color{model.Off} }
func (s *spyRT) Compute(snap model.Snapshot) model.Action {
	s.mu.Lock()
	for _, o := range snap.Others {
		s.seen = append(s.seen, o.Pos)
	}
	s.mu.Unlock()
	return model.Stay(snap.Self.Pos, model.Off)
}

func TestStressorValidationRT(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	cases := []struct {
		name string
		opt  Options
	}{
		{"no survivor", Options{CrashAfterCycles: map[int]int{0: 1, 1: 1}}},
		{"robot out of range", Options{CrashAfterCycles: map[int]int{5: 1}}},
		{"negative cycle count", Options{CrashAfterCycles: map[int]int{0: -1}}},
		{"negative jitter", Options{SensorJitter: -1}},
		{"NaN jitter", Options{SensorJitter: math.NaN()}},
		{"infinite jitter", Options{SensorJitter: math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := Run(stayRT{}, pts, tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestCrashSurvivorCVRT halts one corner of an already-CV square: the
// surviving triangle satisfies survivor-CV immediately (the frozen
// corner is convex, so it obstructs nobody) and the run must terminate
// as Reached with the crash recorded.
func TestCrashSurvivorCVRT(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	res, err := Run(stayRT{}, pts, Options{
		Seed:             3,
		MaxWall:          15 * time.Second,
		MeanDelay:        50 * time.Microsecond,
		CrashAfterCycles: map[int]int{3: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("survivor-CV not reached: %+v", res)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 3 {
		t.Fatalf("Crashed = %v, want [3]", res.Crashed)
	}
	if !res.Final[3].Eq(pts[3]) {
		t.Errorf("crashed robot moved: %v", res.Final[3])
	}
}

// TestCrashObstructsSurvivorCVRT is the negative twin: the victim
// freezes strictly between two collinear survivors, so survivor-CV can
// never hold — the run must time out not-Reached, with the crash still
// recorded. The frozen robot keeps obstructing even though it is dead.
func TestCrashObstructsSurvivorCVRT(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	res, err := Run(stayRT{}, pts, Options{
		Seed:             4,
		MaxWall:          750 * time.Millisecond,
		MeanDelay:        50 * time.Microsecond,
		CrashAfterCycles: map[int]int{1: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("survivor-CV granted through a frozen obstructor")
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 1 {
		t.Fatalf("Crashed = %v, want [1]", res.Crashed)
	}
}

// TestSensorJitterRT runs a staying swarm under sensor error: the run
// still stabilizes (ground truth never moves), every observation stays
// within the amplitude of a true position, and at least one observation
// is actually perturbed — the snapshots lie, the world does not.
func TestSensorJitterRT(t *testing.T) {
	const amp = 0.01
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
	spy := &spyRT{}
	res, err := Run(spy, pts, Options{
		Seed:         5,
		MaxWall:      15 * time.Second,
		MeanDelay:    50 * time.Microsecond,
		SensorJitter: amp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("jittered stay run did not stabilize: %+v", res)
	}
	for i, p := range res.Final {
		if !p.Eq(pts[i]) {
			t.Fatalf("jitter moved ground truth: robot %d at %v", i, p)
		}
	}
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.seen) == 0 {
		t.Fatal("no observations recorded")
	}
	perturbed := false
	for _, q := range spy.seen {
		best := math.Inf(1)
		exactHit := false
		for _, p := range pts {
			dx, dy := math.Abs(q.X-p.X), math.Abs(q.Y-p.Y)
			if d := math.Max(dx, dy); d < best {
				best = d
			}
			if q.Eq(p) {
				exactHit = true
			}
		}
		if best > amp+1e-12 {
			t.Fatalf("observation %v further than the amplitude from every true position (%g)", q, best)
		}
		if !exactHit {
			perturbed = true
		}
	}
	if !perturbed {
		t.Error("no observation was ever perturbed")
	}
}
