package rt

import (
	"context"
	"errors"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, []geom.Point{geom.Pt(0, 0)}, Options{}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Run(core.NewLogVis(), nil, Options{}); err == nil {
		t.Error("empty start accepted")
	}
}

func TestGoroutineRunSmall(t *testing.T) {
	pts := config.Generate(config.Uniform, 12, 5)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      1,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("goroutine run did not stabilize (epochs=%d cycles=%d)", res.Epochs, res.Cycles)
	}
	if !exact.CompleteVisibilityHybrid(res.Final) {
		t.Error("final configuration fails exact CV")
	}
	if !geom.StrictlyConvexPosition(res.Final) {
		t.Error("final configuration not strictly convex")
	}
	if res.Cycles == 0 || res.Epochs == 0 {
		t.Errorf("no progress recorded: %+v", res)
	}
}

func TestGoroutineRunLine(t *testing.T) {
	pts := config.Generate(config.Line, 9, 2)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      2,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("line start did not stabilize under real concurrency")
	}
}

func TestGoroutineAgreesWithEngine(t *testing.T) {
	// The same algorithm must converge in both executions of the
	// model — the discrete-event engine and the concurrent runtime.
	pts := config.Generate(config.Clustered, 14, 7)

	eng, err := sim.Run(core.NewLogVis(), pts, sim.DefaultOptions(sched.NewAsyncRandom(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Reached {
		t.Fatal("engine run did not converge")
	}

	conc, err := Run(core.NewLogVis(), pts, Options{
		Seed:      7,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !conc.Reached {
		t.Fatal("concurrent run did not converge")
	}
	// Final configurations differ (different interleavings) but both
	// must satisfy the goal predicate with the same swarm size.
	if len(conc.Final) != len(eng.Final) {
		t.Errorf("swarm size changed: %d vs %d", len(conc.Final), len(eng.Final))
	}
}

func TestRunCtxHonorsCallerCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	cancel()
	pts := config.Generate(config.Uniform, 8, 1)
	start := time.Now()
	_, err := RunCtx(parent, core.NewLogVis(), pts, Options{Seed: 1, MaxWall: time.Minute})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("RunCtx took %v to honor a pre-cancelled context", elapsed)
	}
}

func TestRunCtxCallerDeadlineBeatsMaxWall(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// A line configuration takes many cycles to resolve; MaxWall alone
	// would let it run for a minute.
	pts := config.Generate(config.Line, 24, 1)
	start := time.Now()
	_, err := RunCtx(parent, core.NewLogVis(), pts, Options{Seed: 1, MaxWall: time.Minute})
	elapsed := time.Since(start)
	if err == nil {
		// The swarm may legitimately stabilize within 50ms on a fast
		// machine; only a deadline error is asserted otherwise.
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("RunCtx took %v to honor a 50ms caller deadline", elapsed)
	}
}
