package rt

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/stream"
	"luxvis/internal/trace"
)

// TestHubAttachedToConcurrentRuntime attaches a stream hub as the
// Observer of the goroutine-per-robot runtime, where CycleEnd arrives
// from n robot goroutines and EpochEnd from the monitor goroutine
// concurrently. rt emits no per-event stream, so the hub runs with
// EpochMarks on: the broadcast is header + epoch marks + end. The test
// (run under -race in CI) pins the goroutine-safety contract on both
// sides: concurrent callbacks never corrupt the hub, every subscriber
// drains a well-formed, gap-free stream to io.EOF, and RunEnd closes
// the stream exactly once.
func TestHubAttachedToConcurrentRuntime(t *testing.T) {
	var ctr stream.Counters
	hub := stream.NewHub(stream.HubOptions{
		EpochMarks: true,
		Counters:   &ctr,
		Note:       "rt live stream",
	})
	defer hub.Release()

	const nSubs = 8
	type drain struct {
		frames []stream.Frame
		err    error
	}
	results := make([]drain, nSubs)
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < nSubs; i++ {
		sub := hub.Subscribe(0)
		wg.Add(1)
		go func(i int, sub *stream.Subscriber) {
			defer wg.Done()
			defer sub.Close()
			for {
				f, err := sub.Next(ctx)
				if err != nil {
					results[i].err = err
					return
				}
				results[i].frames = append(results[i].frames, f)
			}
		}(i, sub)
	}

	pts := config.Generate(config.Uniform, 10, 11)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      11,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
		Observer:  hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("run did not stabilize: %+v", res)
	}
	wg.Wait()

	if !hub.Done() {
		t.Fatal("hub not closed after RunEnd")
	}
	if hub.EndNote() == nil {
		t.Fatal("no end note after RunEnd")
	}
	if info := hub.Info(); info.Scheduler != "rt-async" || info.N != 10 {
		t.Errorf("hub header info = %+v", info)
	}

	for i := range results {
		if !errors.Is(results[i].err, io.EOF) {
			t.Fatalf("subscriber %d: drain ended with %v, want io.EOF", i, results[i].err)
		}
		frames := results[i].frames
		// Subscribed before the run with default ring capacity and only
		// epoch-granular frames to carry: nothing may be dropped.
		if len(frames) != res.Epochs+1 {
			t.Errorf("subscriber %d: %d frames, want header + %d epoch marks", i, len(frames), res.Epochs)
		}
		for j, f := range frames {
			if f.Seq != uint64(j+1) {
				t.Fatalf("subscriber %d: frame %d has seq %d, want %d", i, j, f.Seq, j+1)
			}
		}
		if frames[0].Kind != "header" {
			t.Fatalf("subscriber %d: first frame kind %q", i, frames[0].Kind)
		}
		var hdr trace.Header
		if err := json.Unmarshal(frames[0].Data, &hdr); err != nil {
			t.Fatalf("subscriber %d: header does not decode: %v", i, err)
		}
		if hdr.Scheduler != "rt-async" {
			t.Errorf("subscriber %d: header scheduler %q", i, hdr.Scheduler)
		}
		prevEpoch := 0
		for j, f := range frames[1:] {
			if f.Kind != "epoch" {
				t.Fatalf("subscriber %d: frame %d kind %q, want epoch", i, j+1, f.Kind)
			}
			var mark trace.EpochMark
			if err := json.Unmarshal(f.Data, &mark); err != nil {
				t.Fatalf("subscriber %d: epoch mark does not decode: %v", i, err)
			}
			if mark.Epoch != prevEpoch+1 {
				t.Fatalf("subscriber %d: epoch mark %d after epoch %d", i, mark.Epoch, prevEpoch)
			}
			prevEpoch = mark.Epoch
		}
		if prevEpoch != res.Epochs {
			t.Errorf("subscriber %d: last epoch mark %d, result has %d epochs", i, prevEpoch, res.Epochs)
		}
	}

	snap := ctr.Snapshot()
	if snap.DroppedTotal != 0 {
		t.Errorf("dropped %d frames on an epoch-granular stream", snap.DroppedTotal)
	}
	if snap.FramesTotal != int64(res.Epochs+1) {
		t.Errorf("frames published %d, want %d", snap.FramesTotal, res.Epochs+1)
	}
}
