package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sim"
)

// atomicObserver counts callbacks with atomics only — the rt runtime
// invokes CycleEnd from every robot goroutine concurrently, so this is
// also the race detector's probe of the observer contract.
type atomicObserver struct {
	starts, cycles, moves, epochs, ends atomic.Int64
	phaseCycles                         [sim.NumPhases]atomic.Int64

	mu     sync.Mutex
	info   sim.RunInfo
	result *sim.Result
	endErr error
}

func (o *atomicObserver) RunStart(info sim.RunInfo) {
	o.starts.Add(1)
	o.mu.Lock()
	o.info = info
	o.mu.Unlock()
}
func (o *atomicObserver) Event(sim.TraceEvent) {}
func (o *atomicObserver) CycleEnd(c sim.CycleInfo) {
	o.cycles.Add(1)
	if c.Phase >= 0 && int(c.Phase) < sim.NumPhases {
		o.phaseCycles[c.Phase].Add(1)
	}
	if c.Moved {
		o.moves.Add(1)
	}
}
func (o *atomicObserver) MoveEnd(sim.MoveInfo)         {}
func (o *atomicObserver) EpochEnd(sim.EpochSample)     { o.epochs.Add(1) }
func (o *atomicObserver) ViolationFound(sim.Violation) {}
func (o *atomicObserver) RunEnd(r *sim.Result, err error) {
	o.ends.Add(1)
	o.mu.Lock()
	o.result = r
	o.endErr = err
	o.mu.Unlock()
}

func TestObserverCallbacks(t *testing.T) {
	obs := &atomicObserver{}
	pts := config.Generate(config.Uniform, 10, 7)
	res, err := Run(core.NewLogVis(), pts, Options{
		Seed:      3,
		MaxWall:   20 * time.Second,
		MeanDelay: 50 * time.Microsecond,
		Observer:  obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("run did not stabilize: %+v", res)
	}

	if got := obs.starts.Load(); got != 1 {
		t.Errorf("RunStart fired %d times", got)
	}
	if got := obs.ends.Load(); got != 1 {
		t.Errorf("RunEnd fired %d times", got)
	}
	obs.mu.Lock()
	info, final, endErr := obs.info, obs.result, obs.endErr
	obs.mu.Unlock()
	if info.Algorithm != "logvis" || info.Scheduler != "rt-async" || info.N != 10 || info.Seed != 3 {
		t.Errorf("RunInfo = %+v", info)
	}
	if endErr != nil {
		t.Errorf("RunEnd err = %v on a clean run", endErr)
	}
	if final == nil || !final.Reached || final.Scheduler != "rt-async" {
		t.Errorf("RunEnd result = %+v", final)
	}

	// Every completed robot cycle is observed exactly once, and the
	// phase attribution partitions them.
	if got := obs.cycles.Load(); got != int64(res.Cycles) {
		t.Errorf("CycleEnd fired %d times, result has %d cycles", got, res.Cycles)
	}
	if got := obs.moves.Load(); got > obs.cycles.Load() {
		t.Errorf("observed %d moved cycles out of %d", got, obs.cycles.Load())
	}
	var phaseSum int64
	for i := range obs.phaseCycles {
		phaseSum += obs.phaseCycles[i].Load()
	}
	if phaseSum != obs.cycles.Load() {
		t.Errorf("phase cycles sum %d != cycles %d", phaseSum, obs.cycles.Load())
	}
	if got := obs.epochs.Load(); got != int64(res.Epochs) {
		t.Errorf("EpochEnd fired %d times, result has %d epochs", got, res.Epochs)
	}
}

func TestObserverRunEndOnAbort(t *testing.T) {
	obs := &atomicObserver{}
	// Zero MaxWall aborts almost immediately; RunEnd must still fire,
	// with the abort error attached.
	pts := config.Generate(config.Line, 24, 1)
	_, err := Run(core.NewLogVis(), pts, Options{
		Seed:     1,
		MaxWall:  time.Millisecond,
		Observer: obs,
	})
	if got := obs.ends.Load(); got != 1 {
		t.Fatalf("RunEnd fired %d times", got)
	}
	obs.mu.Lock()
	endErr := obs.endErr
	obs.mu.Unlock()
	if err != nil && endErr == nil {
		t.Errorf("Run returned %v but RunEnd saw no error", err)
	}
	if err == nil && endErr != nil {
		t.Errorf("Run succeeded but RunEnd saw %v", endErr)
	}
}
