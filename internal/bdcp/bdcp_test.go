package bdcp

import (
	"math"
	"math/rand"
	"testing"

	"luxvis/internal/geom"
)

func arcCurve(chord, sagitta float64) ArcCurve {
	return ArcCurve{Arc: geom.ArcThrough(geom.Pt(0, 0), geom.Pt(chord, 0), sagitta)}
}

func randomLanders(k int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, k)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, -5-rng.Float64()*50)
	}
	return pts
}

func TestSimulatePlacesEveryone(t *testing.T) {
	for _, k := range []int{1, 2, 5, 16, 50} {
		res, err := Simulate(arcCurve(100, -6), randomLanders(k, int64(k)), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := len(res.Params); got != k+2 {
			t.Fatalf("k=%d: %d placed params (incl. 2 beacons)", k, got)
		}
		for i := 1; i < len(res.Params); i++ {
			if res.Params[i] <= res.Params[i-1] {
				t.Fatalf("k=%d: params not strictly increasing: %v", k, res.Params)
			}
		}
	}
}

func TestSimulateDoubling(t *testing.T) {
	// The headline property of the primitive: rounds grow like log₂ k.
	for _, k := range []int{4, 8, 16, 32, 64, 128} {
		res, err := Simulate(arcCurve(1000, -40), randomLanders(k, 7), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		bound := DoublingBound(k) + 3 // slack: proposals can collide on one interval
		if res.Rounds > bound*2 {
			t.Errorf("k=%d: %d rounds, doubling bound %d", k, res.Rounds, bound)
		}
	}
	// Monotonic sanity: k=128 must take only a few more rounds than k=8.
	r8, _ := Simulate(arcCurve(1000, -40), randomLanders(8, 7), Options{})
	r128, _ := Simulate(arcCurve(1000, -40), randomLanders(128, 7), Options{})
	if r128.Rounds > 4*r8.Rounds+8 {
		t.Errorf("rounds grew too fast: k=8→%d, k=128→%d", r8.Rounds, r128.Rounds)
	}
}

func TestSimulatePlacedPerRoundMonotone(t *testing.T) {
	res, err := Simulate(arcCurve(500, -20), randomLanders(40, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for i, c := range res.PlacedPerRound {
		if c <= prev {
			t.Fatalf("round %d placed count %d did not grow (prev %d)", i+1, c, prev)
		}
		prev = c
	}
	if prev != 40 {
		t.Errorf("final placed count = %d", prev)
	}
}

func TestSimulatePositionsOnCurve(t *testing.T) {
	curve := arcCurve(200, -9)
	res, err := Simulate(curve, randomLanders(20, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Positions {
		q := curve.At(res.Params[i])
		if p.Dist(q) > 1e-9 {
			t.Errorf("position %d not on curve: %v vs %v", i, p, q)
		}
	}
	// Points on a strictly convex curve are in strictly convex position.
	if !geom.StrictlyConvexPosition(res.Positions) {
		t.Error("placed points not strictly convex")
	}
}

func TestSegmentCurve(t *testing.T) {
	c := SegmentCurve{Seg: geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0))}
	if !c.At(0.5).Eq(geom.Pt(5, 0)) {
		t.Errorf("At = %v", c.At(0.5))
	}
	if got := c.ParamOf(geom.Pt(3, 4)); !floatEq(got, 0.3) {
		t.Errorf("ParamOf = %v", got)
	}
	res, err := Simulate(c, randomLanders(10, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params) != 12 {
		t.Errorf("segment curve placed %d", len(res.Params))
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, randomLanders(3, 1), Options{}); err == nil {
		t.Error("nil curve accepted")
	}
	// Impossible round budget must surface as an error.
	_, err := Simulate(arcCurve(100, -5), randomLanders(40, 1), Options{MaxRounds: 1})
	if err == nil {
		t.Error("MaxRounds=1 with 40 landers did not error")
	}
}

func TestDoublingBound(t *testing.T) {
	cases := map[int]int{0: 0, 1: 2, 3: 3, 7: 4, 8: int(math.Ceil(math.Log2(9))) + 1}
	for k, want := range cases {
		if got := DoublingBound(k); got != want {
			t.Errorf("DoublingBound(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	res, err := Simulate(arcCurve(100, -5), randomLanders(5, 9), Options{Margin: 0.7, PerIntervalPerRound: -2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params) != 7 {
		t.Errorf("defaulted options placed %d", len(res.Params))
	}
}

func floatEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
