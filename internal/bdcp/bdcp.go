// Package bdcp implements Beacon-Directed Curve Positioning, the
// primitive behind the paper's O(log N) bound, in isolation: given a
// strictly convex curve with two endpoint beacons and k robots to place,
// robots repeatedly claim the empty interval nearest to them and land at
// a point of the curve interior to the interval; every landing splits an
// interval in two, so the number of occupied positions doubles per round
// and all k robots are placed in O(log k) rounds.
//
// The package runs the primitive as a round-based process (the
// full asynchronous treatment lives in internal/core; here the doubling
// behaviour itself is the object of study, reproduced for experiment F3)
// and records per-round placement counts so the harness can chart
// placed(t) against 2^t.
package bdcp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"luxvis/internal/geom"
)

// Curve is a 1-parameter strictly convex curve with points addressed by
// a parameter in [0, 1]. geom.Arc satisfies it via ArcCurve.
type Curve interface {
	// At returns the curve point at parameter t ∈ [0, 1].
	At(t float64) geom.Point
	// ParamOf returns the parameter of the curve point nearest to p.
	ParamOf(p geom.Point) float64
}

// ArcCurve adapts a geom.Arc to the Curve interface.
type ArcCurve struct{ Arc geom.Arc }

// At implements Curve.
func (c ArcCurve) At(t float64) geom.Point { return c.Arc.At(t) }

// ParamOf implements Curve.
func (c ArcCurve) ParamOf(p geom.Point) float64 { return c.Arc.ParamOf(p) }

// SegmentCurve adapts a straight segment to the Curve interface (the
// degenerate curve; placements on it are collinear, so it exercises the
// interval bookkeeping without the convexity property).
type SegmentCurve struct{ Seg geom.Segment }

// At implements Curve.
func (c SegmentCurve) At(t float64) geom.Point { return c.Seg.At(t) }

// ParamOf implements Curve.
func (c SegmentCurve) ParamOf(p geom.Point) float64 {
	_, t := c.Seg.ClosestPoint(p)
	return t
}

// Options tunes a Simulate run.
type Options struct {
	// Margin is the fraction of an interval kept clear at each end when
	// placing (default 1/4; must be in (0, 0.5)).
	Margin float64
	// PerIntervalPerRound caps landings per interval per round (the
	// BDCP discipline is 1; values > 1 model optimistic parallelism).
	PerIntervalPerRound int
	// MaxRounds aborts a run that fails to place everyone (default
	// 4 + 4·log₂(k+2)).
	MaxRounds int
}

// Result reports a Simulate run.
type Result struct {
	// Rounds is the number of rounds needed to place every robot.
	Rounds int
	// PlacedPerRound[i] is the cumulative number of placed robots after
	// round i+1.
	PlacedPerRound []int
	// Params are the final curve parameters of all placed robots,
	// beacons included, in increasing order.
	Params []float64
	// Positions are the corresponding curve points.
	Positions []geom.Point
}

// Simulate places the robots at `from` onto the curve. The two curve
// endpoints (parameters 0 and 1) act as the initial beacons. Each round,
// every unplaced robot proposes the interval whose segment is nearest to
// it; each interval accepts its PerIntervalPerRound nearest proposers,
// who land at their squashed perpendicular-foot parameters. The run ends
// when everyone is placed.
//
// Simulate errors if two robots would land on the same parameter (the
// callers' configurations keep feet distinct; an exact tie would be a
// collision in the full model).
func Simulate(curve Curve, from []geom.Point, opt Options) (Result, error) {
	if curve == nil {
		return Result{}, errors.New("bdcp: nil curve")
	}
	if opt.Margin <= 0 || opt.Margin >= 0.5 {
		opt.Margin = 0.25
	}
	if opt.PerIntervalPerRound <= 0 {
		opt.PerIntervalPerRound = 1
	}
	k := len(from)
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 4 + 4*int(math.Ceil(math.Log2(float64(k)+2)))
	}

	placed := []float64{0, 1} // beacon parameters, kept sorted
	type lander struct {
		pos    geom.Point
		landed bool
	}
	landers := make([]lander, k)
	for i, p := range from {
		landers[i] = lander{pos: p}
	}
	res := Result{}
	remaining := k
	for round := 0; remaining > 0; round++ {
		if round >= opt.MaxRounds {
			return res, fmt.Errorf("bdcp: %d robots unplaced after %d rounds", remaining, round)
		}
		// Collect proposals: interval index -> proposing lander indices.
		type proposal struct {
			lander int
			dist   float64
			t      float64 // squashed landing parameter
		}
		proposals := make(map[int][]proposal)
		for li := range landers {
			if landers[li].landed {
				continue
			}
			iv, d, t := nearestInterval(curve, placed, landers[li].pos, opt.Margin)
			proposals[iv] = append(proposals[iv], proposal{lander: li, dist: d, t: t})
		}
		// Each interval accepts its nearest proposers. Intervals are
		// visited in ascending index order — proposals is a map, and map
		// iteration order would make the landing order (hence Params and
		// PlacedPerRound) differ between runs of the same seed.
		intervals := make([]int, 0, len(proposals))
		//lint:allow detsource keys are sorted before use; this loop only collects them
		for iv := range proposals {
			intervals = append(intervals, iv)
		}
		sort.Ints(intervals)
		var newParams []float64
		for _, iv := range intervals {
			props := proposals[iv]
			sort.Slice(props, func(a, b int) bool { return props[a].dist < props[b].dist })
			take := opt.PerIntervalPerRound
			if take > len(props) {
				take = len(props)
			}
			for _, pr := range props[:take] {
				landers[pr.lander].landed = true
				newParams = append(newParams, pr.t)
				remaining--
			}
		}
		placed = append(placed, newParams...)
		sort.Float64s(placed)
		for i := 1; i < len(placed); i++ {
			// Epsilon-banded, not exact: two landing parameters closer
			// than the geometry tolerance put robots on (float-)coincident
			// curve points, which is the collision the margin logic must
			// prevent — exact duplicates are just its worst case.
			if placed[i]-placed[i-1] <= geom.Eps {
				return res, fmt.Errorf("bdcp: landing parameters %v and %v collide in round %d",
					placed[i-1], placed[i], round+1)
			}
		}
		res.Rounds++
		res.PlacedPerRound = append(res.PlacedPerRound, k-remaining)
	}
	res.Params = placed
	res.Positions = make([]geom.Point, len(placed))
	for i, t := range placed {
		res.Positions[i] = curve.At(t)
	}
	return res, nil
}

// nearestInterval finds the placed-parameter interval whose curve
// segment is nearest to p and returns its index, the distance, and the
// squashed landing parameter inside it.
func nearestInterval(curve Curve, placed []float64, p geom.Point, margin float64) (idx int, dist float64, t float64) {
	best := math.Inf(1)
	bestIdx, bestT := 0, 0.0
	for i := 0; i+1 < len(placed); i++ {
		a, b := curve.At(placed[i]), curve.At(placed[i+1])
		seg := geom.Seg(a, b)
		d := seg.Dist(p)
		if d < best {
			best = d
			bestIdx = i
			// Foot parameter within the interval, squashed into the
			// open middle with the same monotone map the full
			// algorithm uses (see core.LogVis).
			_, ft := geom.ProjectOntoLine(a, b, p)
			ft = squash(ft, margin)
			bestT = placed[i] + ft*(placed[i+1]-placed[i])
		}
	}
	return bestIdx, best, bestT
}

// squash maps a raw foot parameter into (0, 1) strictly monotonically,
// keeping values inside [m, 1-m] exact.
func squash(t, m float64) float64 {
	switch {
	case t < m:
		x := m - t
		return m - (m/2)*(x/(x+1))
	case t > 1-m:
		x := t - (1 - m)
		return 1 - m + (m/2)*(x/(x+1))
	default:
		return t
	}
}

// DoublingBound returns the textbook BDCP round bound ⌈log₂(k+1)⌉ + 1
// for placing k robots between two beacons with one landing per interval
// per round.
func DoublingBound(k int) int {
	if k <= 0 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(k)+1))) + 1
}
