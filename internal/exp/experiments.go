package exp

import (
	"fmt"
	"math/rand"
	"time"

	"luxvis/internal/bdcp"
	"luxvis/internal/config"
	"luxvis/internal/geom"
	"luxvis/internal/rt"
	"luxvis/internal/stats"
)

// ---------------------------------------------------------------------
// T1 — the O(log N) time claim

// T1Result reports experiment T1.
type T1Result struct {
	Cells  []Cell
	Growth stats.GrowthReport
}

// T1LogGrowth measures LogVis epochs against N under the randomized
// ASYNC scheduler and fits candidate growth laws; the paper's claim is
// that the log law explains the series.
func T1LogGrowth(cfg Config) (T1Result, error) {
	ns := cfg.ns([]int{8, 16, 32, 64, 128, 256, 512}, []int{8, 16, 32, 64})
	seeds := cfg.seeds(5, 2)
	var res T1Result
	var xs, ys []float64
	w := newTab(cfg.out())
	fmt.Fprintln(w, "T1: LogVis epochs to Complete Visibility (ASYNC, uniform)")
	fmt.Fprintln(w, "N\tepochs(mean)\tepochs(p95)\treached\tseeds")
	for _, n := range ns {
		st, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Cells = append(res.Cells, Cell{N: n, Stats: st})
		xs = append(xs, float64(n))
		ys = append(ys, st.Epochs.Mean)
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%d/%d\t%d\n",
			n, st.Epochs.Mean, st.Epochs.P95, st.Reached, st.Runs, seeds)
	}
	growth, err := stats.ClassifyGrowth(xs, ys)
	if err != nil {
		return res, err
	}
	res.Growth = growth
	fmt.Fprintf(w, "fit\tlog₂: %.2f·log₂N%+.2f (R²=%.3f)\tsqrt: R²=%.3f\tlinear: R²=%.3f\tbest=%s\n",
		growth.Log.Slope, growth.Log.Intercept, growth.Log.R2,
		growth.Sqrt.R2, growth.Linear.R2, growth.Best)
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// T2 — the O(1) colors claim

// T2Result reports experiment T2.
type T2Result struct {
	Cells []Cell
	// MaxColors is the largest number of distinct colors any run ever
	// lit; the claim is that it does not grow with N.
	MaxColors int
	// Palette is the declared palette size.
	Palette int
}

// T2Colors measures the number of distinct colors lit across the N
// sweep.
func T2Colors(cfg Config) (T2Result, error) {
	ns := cfg.ns([]int{8, 32, 128, 256}, []int{8, 32, 64})
	seeds := cfg.seeds(4, 2)
	res := T2Result{Palette: len(logVis().Palette())}
	w := newTab(cfg.out())
	fmt.Fprintln(w, "T2: distinct colors lit (LogVis, ASYNC, uniform)")
	fmt.Fprintln(w, "N\tcolors(max over runs)\tdeclared palette")
	for _, n := range ns {
		st, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Cells = append(res.Cells, Cell{N: n, Stats: st})
		if st.MaxColors > res.MaxColors {
			res.MaxColors = st.MaxColors
		}
		fmt.Fprintf(w, "%d\t%d\t%d\n", n, st.MaxColors, res.Palette)
	}
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// T3 — the collision-freedom claim

// T3Result reports experiment T3.
type T3Result struct {
	Rows []T3Row
	// Collisions is the grand total of exact colocations and
	// pass-throughs (the claim: zero).
	Collisions int
	// PathCrossings is the grand total of concurrent path crossings
	// (the claim: zero; see DESIGN.md on the reconstruction deviation).
	PathCrossings int
	Runs          int
}

// T3Row is one scheduler's tally.
type T3Row struct {
	Scheduler     string
	Runs          int
	Collisions    int
	PathCrossings int
	MinPairDist   float64
}

// T3Safety counts safety violations across schedulers and sizes; every
// count is verified with exact rational arithmetic.
func T3Safety(cfg Config) (T3Result, error) {
	ns := cfg.ns([]int{16, 64, 128}, []int{16, 48})
	seeds := cfg.seeds(4, 2)
	var res T3Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "T3: safety violations (LogVis, uniform; exact arithmetic)")
	fmt.Fprintln(w, "scheduler\truns\tcollisions\tpath-crossings\tmin pair dist")
	for _, schedName := range []string{"fsync", "ssync", "async-random", "async-stale"} {
		row := T3Row{Scheduler: schedName, MinPairDist: 1e18}
		for _, n := range ns {
			st, results, err := runBatch(cfg.ctx(), logVis, schedName, config.Uniform, n, seeds, cfg.MaxEpochs)
			if err != nil {
				return res, err
			}
			row.Runs += st.Runs
			row.Collisions += st.Collisions
			row.PathCrossings += st.PathCrosses
			for _, r := range results {
				if r.MinPairDist < row.MinPairDist {
					row.MinPairDist = r.MinPairDist
				}
			}
		}
		res.Rows = append(res.Rows, row)
		res.Runs += row.Runs
		res.Collisions += row.Collisions
		res.PathCrossings += row.PathCrossings
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3g\n",
			row.Scheduler, row.Runs, row.Collisions, row.PathCrossings, row.MinPairDist)
	}
	fmt.Fprintf(w, "total\t%d\t%d\t%d\t\n", res.Runs, res.Collisions, res.PathCrossings)
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// T4 — the universal-correctness claim

// T4Result reports experiment T4.
type T4Result struct {
	Rows []T4Row
	// AllReached reports whether every run of every family reached
	// Complete Visibility.
	AllReached bool
}

// T4Row is one workload family's tally.
type T4Row struct {
	Family  config.Family
	Runs    int
	Reached int
	Epochs  float64
}

// T4Correctness verifies Complete Visibility is reached from every
// workload family.
func T4Correctness(cfg Config) (T4Result, error) {
	n := 48
	if cfg.Quick {
		n = 24
	}
	seeds := cfg.seeds(4, 2)
	res := T4Result{AllReached: true}
	w := newTab(cfg.out())
	fmt.Fprintln(w, "T4: correctness per initial-configuration family (LogVis, ASYNC)")
	fmt.Fprintf(w, "family\truns\treached\tepochs(mean)\t(N=%d)\n", n)
	for _, fam := range config.Families() {
		st, _, err := runBatch(cfg.ctx(), logVis, "async-random", fam, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		row := T4Row{Family: fam, Runs: st.Runs, Reached: st.Reached, Epochs: st.Epochs.Mean}
		res.Rows = append(res.Rows, row)
		if row.Reached != row.Runs {
			res.AllReached = false
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t\n", fam, row.Runs, row.Reached, row.Epochs)
	}
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F1 — the headline comparison: O(log N) vs the O(N) translation

// F1Result reports experiment F1.
type F1Result struct {
	Ns       []int
	LogVis   []float64 // mean epochs
	Baseline []float64
	// SpeedupAtMax is baseline/logvis mean-epoch ratio at the largest N.
	SpeedupAtMax float64
	LogGrowth    stats.GrowthReport
	BaseGrowth   stats.GrowthReport
}

// F1VsBaseline produces the paper's headline figure: epochs of the
// O(log N) algorithm against the Θ(N) translation of the
// semi-synchronous algorithm, on identical inputs.
func F1VsBaseline(cfg Config) (F1Result, error) {
	ns := cfg.ns([]int{8, 16, 32, 64, 96, 128}, []int{8, 16, 32})
	seeds := cfg.seeds(3, 2)
	var res F1Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F1: LogVis vs SeqVis baseline (ASYNC, uniform; mean epochs)")
	fmt.Fprintln(w, "N\tlogvis\tseqvis\tratio")
	for _, n := range ns {
		ls, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		bs, _, err := runBatch(cfg.ctx(), seqVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Ns = append(res.Ns, n)
		res.LogVis = append(res.LogVis, ls.Epochs.Mean)
		res.Baseline = append(res.Baseline, bs.Epochs.Mean)
		ratio := bs.Epochs.Mean / ls.Epochs.Mean
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f×\n", n, ls.Epochs.Mean, bs.Epochs.Mean, ratio)
	}
	last := len(res.Ns) - 1
	res.SpeedupAtMax = res.Baseline[last] / res.LogVis[last]
	xs := make([]float64, len(res.Ns))
	for i, n := range res.Ns {
		xs[i] = float64(n)
	}
	var err error
	if res.LogGrowth, err = stats.ClassifyGrowth(xs, res.LogVis); err != nil {
		return res, err
	}
	if res.BaseGrowth, err = stats.ClassifyGrowth(xs, res.Baseline); err != nil {
		return res, err
	}
	fmt.Fprintf(w, "growth\tlogvis best=%s\tseqvis best=%s\tspeedup@N=%d: %.1f×\n",
		res.LogGrowth.Best, res.BaseGrowth.Best, res.Ns[last], res.SpeedupAtMax)
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F2 — scheduler sensitivity

// F2Result reports experiment F2.
type F2Result struct {
	Rows map[string]float64 // scheduler -> mean epochs
}

// F2Schedulers measures LogVis epochs under each scheduler at fixed N.
func F2Schedulers(cfg Config) (F2Result, error) {
	n := 64
	if cfg.Quick {
		n = 32
	}
	seeds := cfg.seeds(4, 2)
	res := F2Result{Rows: map[string]float64{}}
	w := newTab(cfg.out())
	fmt.Fprintf(w, "F2: LogVis epochs per scheduler (uniform, N=%d)\n", n)
	fmt.Fprintln(w, "scheduler\tepochs(mean)\tepochs(max)\treached")
	for _, schedName := range []string{"fsync", "ssync", "async-random", "async-stale"} {
		st, _, err := runBatch(cfg.ctx(), logVis, schedName, config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Rows[schedName] = st.Epochs.Mean
		fmt.Fprintf(w, "%s\t%.1f\t%.0f\t%d/%d\n",
			schedName, st.Epochs.Mean, st.Epochs.Max, st.Reached, st.Runs)
	}
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F3 — the BDCP doubling primitive

// F3Result reports experiment F3.
type F3Result struct {
	Ks     []int
	Rounds []float64
	Bound  []int
	Growth stats.GrowthReport
}

// F3BDCP measures Beacon-Directed Curve Positioning rounds against the
// number of robots to place: rounds ≈ log₂ k.
func F3BDCP(cfg Config) (F3Result, error) {
	ks := cfg.ns([]int{4, 8, 16, 32, 64, 128, 256, 512}, []int{4, 16, 64})
	seeds := cfg.seeds(5, 2)
	var res F3Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F3: BDCP placement rounds vs robots to place")
	fmt.Fprintln(w, "k\trounds(mean)\tdoubling bound")
	curve := bdcp.ArcCurve{Arc: geom.ArcThrough(geom.Pt(0, 0), geom.Pt(1000, 0), -40)}
	for _, k := range ks {
		var sum float64
		for seed := int64(1); seed <= int64(seeds); seed++ {
			rng := rand.New(rand.NewSource(seed))
			landers := make([]geom.Point, k)
			for i := range landers {
				landers[i] = geom.Pt(rng.Float64()*1000, -10-rng.Float64()*300)
			}
			r, err := bdcp.Simulate(curve, landers, bdcp.Options{})
			if err != nil {
				return res, err
			}
			sum += float64(r.Rounds)
		}
		mean := sum / float64(seeds)
		res.Ks = append(res.Ks, k)
		res.Rounds = append(res.Rounds, mean)
		res.Bound = append(res.Bound, bdcp.DoublingBound(k))
		fmt.Fprintf(w, "%d\t%.1f\t%d\n", k, mean, bdcp.DoublingBound(k))
	}
	xs := make([]float64, len(res.Ks))
	for i, k := range res.Ks {
		xs[i] = float64(k)
	}
	growth, err := stats.ClassifyGrowth(xs, res.Rounds)
	if err != nil {
		return res, err
	}
	res.Growth = growth
	fmt.Fprintf(w, "fit\tbest=%s (log R²=%.3f, linear R²=%.3f)\t\n",
		growth.Best, growth.Log.R2, growth.Linear.R2)
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F4 — workload ablation

// F4Result reports experiment F4.
type F4Result struct {
	Rows map[config.Family]float64 // family -> mean epochs
}

// F4Workloads measures LogVis epochs per initial-configuration family.
func F4Workloads(cfg Config) (F4Result, error) {
	n := 64
	if cfg.Quick {
		n = 32
	}
	seeds := cfg.seeds(4, 2)
	res := F4Result{Rows: map[config.Family]float64{}}
	w := newTab(cfg.out())
	fmt.Fprintf(w, "F4: LogVis epochs per workload family (ASYNC, N=%d)\n", n)
	fmt.Fprintln(w, "family\tepochs(mean)\tdist/robot\treached")
	for _, fam := range config.Families() {
		st, _, err := runBatch(cfg.ctx(), logVis, "async-random", fam, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Rows[fam] = st.Epochs.Mean
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d/%d\n",
			fam, st.Epochs.Mean, st.DistPerBot.Mean, st.Reached, st.Runs)
	}
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F5 — the goroutine realization

// F5Result reports experiment F5.
type F5Result struct {
	Ns      []int
	Wall    []time.Duration
	Reached []bool
}

// F5Goroutines runs LogVis with one goroutine per robot and measures
// wall-clock time to stabilization.
func F5Goroutines(cfg Config) (F5Result, error) {
	ns := cfg.ns([]int{8, 16, 32, 64}, []int{8, 16})
	var res F5Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F5: goroutine-per-robot runtime (LogVis, uniform)")
	fmt.Fprintln(w, "N\twall\tcycles\tepochs\treached")
	for _, n := range ns {
		pts := config.Generate(config.Uniform, n, 1)
		//lint:allow detsource F5 measures the real-async goroutine runtime, whose wall-clock scheduling is the quantity under study; its tables report distributions, not replayable traces
		r, err := rt.RunCtx(cfg.ctx(), logVis(), pts, rt.Options{
			Seed:      1,
			MaxWall:   60 * time.Second,
			MeanDelay: 100 * time.Microsecond,
		})
		if err != nil {
			return res, err
		}
		res.Ns = append(res.Ns, n)
		res.Wall = append(res.Wall, r.Wall)
		res.Reached = append(res.Reached, r.Reached)
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%v\n",
			n, r.Wall.Round(time.Millisecond), r.Cycles, r.Epochs, r.Reached)
	}
	return res, w.Flush()
}

// ---------------------------------------------------------------------
// F6 — movement cost ablation

// F6Result reports experiment F6.
type F6Result struct {
	Ns           []int
	LogVisDist   []float64 // mean distance per robot
	BaselineDist []float64
	LogVisMoves  []float64 // mean moves per robot
	BaseMoves    []float64
}

// F6Movement compares total movement cost (distance and move count per
// robot) between LogVis and the baseline.
func F6Movement(cfg Config) (F6Result, error) {
	ns := cfg.ns([]int{16, 32, 64}, []int{16, 32})
	seeds := cfg.seeds(3, 2)
	var res F6Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F6: movement cost per robot (ASYNC, uniform)")
	fmt.Fprintln(w, "N\tlogvis dist\tseqvis dist\tlogvis moves\tseqvis moves")
	for _, n := range ns {
		ls, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		bs, _, err := runBatch(cfg.ctx(), seqVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Ns = append(res.Ns, n)
		res.LogVisDist = append(res.LogVisDist, ls.DistPerBot.Mean)
		res.BaselineDist = append(res.BaselineDist, bs.DistPerBot.Mean)
		res.LogVisMoves = append(res.LogVisMoves, ls.Moves.Mean)
		res.BaseMoves = append(res.BaseMoves, bs.Moves.Mean)
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f\t%.2f\n",
			n, ls.DistPerBot.Mean, bs.DistPerBot.Mean, ls.Moves.Mean, bs.Moves.Mean)
	}
	return res, w.Flush()
}
