package exp

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"luxvis/internal/svgx"
)

// Figures runs the chartable experiments (T1, F1, F3) under cfg and
// writes one SVG figure each into dir. It returns the written paths.
func Figures(cfg Config, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, series []svgx.Series, opt svgx.ChartOptions) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := svgx.RenderLineChart(f, series, opt); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// T1: epochs vs N with the fitted log curve overlaid.
	t1, err := T1LogGrowth(cfg)
	if err != nil {
		return written, err
	}
	var xs, ys, fitYs []float64
	for _, c := range t1.Cells {
		xs = append(xs, float64(c.N))
		ys = append(ys, c.Stats.Epochs.Mean)
	}
	for _, x := range xs {
		fitYs = append(fitYs, t1.Growth.Log.Slope*log2(x)+t1.Growth.Log.Intercept)
	}
	if err := write("t1-epochs-vs-n.svg", []svgx.Series{
		{Name: "measured", Xs: xs, Ys: ys},
		{Name: fmt.Sprintf("log fit R²=%.2f", t1.Growth.Log.R2), Xs: xs, Ys: fitYs},
	}, svgx.ChartOptions{
		Title: "T1: LogVis epochs vs N (ASYNC)", XLabel: "N (log scale)",
		YLabel: "epochs", LogX: true,
	}); err != nil {
		return written, err
	}

	// F1: the headline comparison.
	f1, err := F1VsBaseline(cfg)
	if err != nil {
		return written, err
	}
	fxs := make([]float64, len(f1.Ns))
	for i, n := range f1.Ns {
		fxs[i] = float64(n)
	}
	if err := write("f1-logvis-vs-baseline.svg", []svgx.Series{
		{Name: "LogVis (O(log N))", Xs: fxs, Ys: f1.LogVis},
		{Name: "SeqVis (Θ(N))", Xs: fxs, Ys: f1.Baseline},
	}, svgx.ChartOptions{
		Title: "F1: asynchronous epochs, LogVis vs SeqVis", XLabel: "N (log scale)",
		YLabel: "epochs", LogX: true,
	}); err != nil {
		return written, err
	}

	// F3: BDCP rounds vs the doubling bound.
	f3, err := F3BDCP(cfg)
	if err != nil {
		return written, err
	}
	kxs := make([]float64, len(f3.Ks))
	bound := make([]float64, len(f3.Ks))
	for i, k := range f3.Ks {
		kxs[i] = float64(k)
		bound[i] = float64(f3.Bound[i])
	}
	if err := write("f3-bdcp-rounds.svg", []svgx.Series{
		{Name: "measured rounds", Xs: kxs, Ys: f3.Rounds},
		{Name: "⌈log₂(k+1)⌉+1 bound", Xs: kxs, Ys: bound},
	}, svgx.ChartOptions{
		Title: "F3: BDCP placement rounds vs k", XLabel: "k (log scale)",
		YLabel: "rounds", LogX: true,
	}); err != nil {
		return written, err
	}
	// F7: convergence dynamics of one run — corners vs epoch.
	f7, err := F7Convergence(cfg)
	if err != nil {
		return written, err
	}
	var exs, corners, interior []float64
	for _, smp := range f7.Samples {
		exs = append(exs, float64(smp.Epoch))
		corners = append(corners, float64(smp.Corners))
		interior = append(interior, float64(smp.Interior))
	}
	if len(exs) >= 2 {
		if err := write("f7-convergence.svg", []svgx.Series{
			{Name: "hull corners", Xs: exs, Ys: corners},
			{Name: "interior robots", Xs: exs, Ys: interior},
		}, svgx.ChartOptions{
			Title:  fmt.Sprintf("F7: convergence dynamics (N=%d)", f7.N),
			XLabel: "epoch", YLabel: "robots",
		}); err != nil {
			return written, err
		}
	}
	return written, nil
}

func log2(x float64) float64 { return math.Log2(x) }
