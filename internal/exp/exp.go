// Package exp is the experiment harness behind EXPERIMENTS.md: one
// entry per table/figure of the reproduction (T1-T4, F1-F6), each
// regenerating its table from scratch — workload generation, runs,
// aggregation, growth-law fits — and printing the rows the document
// quotes. cmd/visbench and bench_test.go are thin wrappers around this
// package.
//
// The paper itself is a theory paper; the "tables" reproduced here are
// the simulation-grade analogues of its five claims (see DESIGN.md).
package exp

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/metrics"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// Config scales an experiment.
type Config struct {
	// Quick shrinks sweeps for CI and benchmarks.
	Quick bool
	// Seeds is the number of repetitions per cell (0 = default).
	Seeds int
	// MaxEpochs bounds each run (0 = default 4096).
	MaxEpochs int
	// Out receives the printed table (nil = io.Discard).
	Out io.Writer
	// Ctx cancels the experiment (nil = context.Background()): every
	// engine run launched by the harness aborts at its next epoch
	// boundary once Ctx is done, and the experiment returns the
	// cancellation error.
	Ctx context.Context
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func (c Config) seeds(def, quick int) int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return quick
	}
	return def
}

func (c Config) ns(full, quick []int) []int {
	if c.Quick {
		return quick
	}
	return full
}

// Cell is one sweep cell: an aggregated batch of runs.
type Cell struct {
	N     int
	Label string
	Stats metrics.RunStats
}

// runBatch executes `seeds` runs of one algorithm/scheduler/family/N
// cell — in parallel, one goroutine per seed, since runs are fully
// independent (fresh algorithm value, fresh scheduler, seed-determined
// randomness) — and aggregates them. Results are ordered by seed, so
// aggregation is deterministic regardless of completion order. The
// context is threaded into every per-seed run: once it is done, each
// in-flight engine aborts at its next epoch boundary and runBatch
// returns the cancellation error.
func runBatch(ctx context.Context, alg func() model.Algorithm, schedName string, fam config.Family, n, seeds, maxEpochs int) (metrics.RunStats, []sim.Result, error) {
	results := make([]sim.Result, seeds)
	errs := make([]error, seeds)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i + 1)
			pts := config.Generate(fam, n, seed)
			opt := sim.DefaultOptions(sched.ByName(schedName), seed)
			if maxEpochs > 0 {
				opt.MaxEpochs = maxEpochs
			}
			res, err := sim.RunCtx(ctx, alg(), pts, opt)
			if err != nil {
				errs[i] = fmt.Errorf("n=%d seed=%d: %w", n, seed, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return metrics.RunStats{}, nil, err
		}
	}
	return metrics.Aggregate(results), results, nil
}

func logVis() model.Algorithm    { return core.NewLogVis() }
func seqVis() model.Algorithm    { return baseline.NewSeqVis() }
func circleVis() model.Algorithm { return circlevis.NewCircleVis() }
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Names lists the experiment identifiers in canonical order.
func Names() []string {
	return []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "A1", "A2", "R1"}
}

// Run executes one experiment by name and prints its table to cfg.Out.
// It returns an error for unknown names or failed runs; experiment
// *outcomes* (e.g. a non-zero collision count) are data, not errors.
func Run(name string, cfg Config) error {
	switch name {
	case "T1":
		_, err := T1LogGrowth(cfg)
		return err
	case "T2":
		_, err := T2Colors(cfg)
		return err
	case "T3":
		_, err := T3Safety(cfg)
		return err
	case "T4":
		_, err := T4Correctness(cfg)
		return err
	case "F1":
		_, err := F1VsBaseline(cfg)
		return err
	case "F2":
		_, err := F2Schedulers(cfg)
		return err
	case "F3":
		_, err := F3BDCP(cfg)
		return err
	case "F4":
		_, err := F4Workloads(cfg)
		return err
	case "F5":
		_, err := F5Goroutines(cfg)
		return err
	case "F6":
		_, err := F6Movement(cfg)
		return err
	case "F7":
		_, err := F7Convergence(cfg)
		return err
	case "F8":
		_, err := F8ThreeWay(cfg)
		return err
	case "F9":
		_, err := F9NonRigid(cfg)
		return err
	case "A1":
		_, err := A1Sagitta(cfg)
		return err
	case "A2":
		_, err := A2Guard(cfg)
		return err
	case "R1":
		_, err := R1Robustness(cfg)
		return err
	default:
		return fmt.Errorf("exp: unknown experiment %q (known: %v)", name, Names())
	}
}
