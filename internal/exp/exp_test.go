package exp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Quick: true, Seeds: 1, Out: buf}
}

func TestT1Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := T1LogGrowth(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range res.Cells {
		if c.Stats.Reached != c.Stats.Runs {
			t.Errorf("N=%d: %d/%d reached", c.N, c.Stats.Reached, c.Stats.Runs)
		}
	}
	if !strings.Contains(buf.String(), "T1:") {
		t.Error("table header missing")
	}
}

func TestT2Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := T2Colors(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxColors > res.Palette {
		t.Errorf("colors used (%d) exceed the declared palette (%d)", res.MaxColors, res.Palette)
	}
	if res.Palette != 7 {
		t.Errorf("palette = %d", res.Palette)
	}
}

func TestT3Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := T3Safety(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("collisions = %d, the paper's claim is 0", res.Collisions)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestT4Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := T4Correctness(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllReached {
		t.Error("not every family reached Complete Visibility")
	}
}

func TestF1Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F1VsBaseline(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupAtMax <= 1 {
		t.Errorf("baseline not slower at max N (speedup %.2f)", res.SpeedupAtMax)
	}
}

func TestF2Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F2Schedulers(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestF3Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F3BDCP(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// The primitive's rounds must stay near the doubling bound.
	for i := range res.Ks {
		if res.Rounds[i] > float64(res.Bound[i]*2+4) {
			t.Errorf("k=%d: rounds %.1f far above bound %d", res.Ks[i], res.Rounds[i], res.Bound[i])
		}
	}
}

func TestF4Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F4Workloads(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("families covered = %d", len(res.Rows))
	}
}

func TestF6Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F6Movement(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ns) == 0 {
		t.Fatal("no cells")
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seeds: 1, Out: &buf}
	// F5 spins real goroutine swarms; cover it via Run with the
	// smallest quick config.
	for _, name := range []string{"T2", "F5"} {
		if err := Run(name, cfg); err != nil {
			t.Errorf("Run(%s): %v", name, err)
		}
	}
	if err := Run("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestA1Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := A1Sagitta(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells")
	}
	// Our variant must always converge.
	for _, c := range res.Cells {
		if c.Variant == "quadratic (ours)" && c.Reached != c.Runs {
			t.Errorf("our sagitta law failed at N=%d", c.N)
		}
	}
}

func TestA2Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := A2Guard(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Variant == "guarded (ours)" && c.Coll != 0 {
			t.Errorf("guarded variant collided at N=%d", c.N)
		}
	}
}

func TestF7Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F7Convergence(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	// Interior population must be non-increasing-to-zero overall:
	// the final sample has no interior robots.
	last := res.Samples[len(res.Samples)-1]
	if last.Interior != 0 {
		t.Errorf("run ended with %d interior robots", last.Interior)
	}
	if last.Corners != res.N {
		t.Errorf("run ended with %d corners of %d", last.Corners, res.N)
	}
}

func TestF8Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F8ThreeWay(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ns) == 0 {
		t.Fatal("no cells")
	}
}

func TestF9Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := F9NonRigid(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != res.Runs {
		t.Errorf("non-rigid runs reached %d/%d", res.Reached, res.Runs)
	}
}

func TestRobustnessMatrixSmoke(t *testing.T) {
	var buf bytes.Buffer
	res, err := R1Robustness(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("matrix has %d stressor rows, want >= 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The differential harness is the experiment's backbone: every
		// run of every cell must audit clean against the engine.
		if row.AuditOK != row.Runs {
			t.Errorf("%s: audit parity %d/%d", row.Stressor, row.AuditOK, row.Runs)
		}
		if row.Collisions != 0 {
			t.Errorf("%s: %d collisions, the claim is exact zero", row.Stressor, row.Collisions)
		}
		if row.Stressor == "none" && row.Reached != row.Runs {
			t.Errorf("clean row reached %d/%d", row.Reached, row.Runs)
		}
	}
	if !strings.Contains(buf.String(), "audit parity") {
		t.Error("matrix header missing")
	}
}

func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Quick: true, Seeds: 2, Ctx: ctx}
	if err := Run("T1", cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run(T1) with cancelled ctx = %v, want context.Canceled", err)
	}
}
