package exp

import (
	"context"
	"fmt"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// The ablation experiments demonstrate why two of the reconstruction's
// design decisions exist by switching each off and measuring the damage.
// They are the "ablation benches for the design choices DESIGN.md calls
// out".

// AblationCell is one (variant, N) measurement.
type AblationCell struct {
	Variant string
	N       int
	Reached int
	Runs    int
	Epochs  float64
	Cross   int
	Coll    int
}

// A1Result reports ablation A1.
type A1Result struct{ Cells []AblationCell }

// A1Sagitta compares the quadratic landing-sagitta law against the
// naive constant-fraction law. With constant fractions, each landing
// generation bulges past the previous one's local curvature, swallowing
// earlier landers back into the hull — the run churns and may not
// converge at all.
func A1Sagitta(cfg Config) (A1Result, error) {
	ns := cfg.ns([]int{64, 128, 256}, []int{48, 96})
	seeds := cfg.seeds(3, 2)
	variants := []struct {
		name string
		mk   func() model.Algorithm
	}{
		{"quadratic (ours)", func() model.Algorithm { return core.NewLogVis() }},
		{"constant-fraction", func() model.Algorithm {
			return &core.LogVis{AblateConstantSagitta: true}
		}},
	}
	var res A1Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "A1: landing-sagitta law ablation (LogVis, ASYNC, uniform)")
	fmt.Fprintln(w, "variant\tN\treached\tepochs(mean)\tcrossings")
	for _, v := range variants {
		for _, n := range ns {
			cell, err := ablationCell(cfg.ctx(), v.name, v.mk, n, seeds, 600)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
			fmt.Fprintf(w, "%s\t%d\t%d/%d\t%.1f\t%d\n",
				cell.Variant, cell.N, cell.Reached, cell.Runs, cell.Epochs, cell.Cross)
		}
	}
	return res, w.Flush()
}

// A2Result reports ablation A2.
type A2Result struct{ Cells []AblationCell }

// A2Guard compares the one-landing-per-interval Transit guard against
// running without it. Without the guard, concurrent landers race into
// the same interval; the engine's exact checker counts the resulting
// concurrent path crossings (and any collisions).
func A2Guard(cfg Config) (A2Result, error) {
	ns := cfg.ns([]int{64, 128}, []int{48})
	seeds := cfg.seeds(3, 2)
	variants := []struct {
		name string
		mk   func() model.Algorithm
	}{
		{"guarded (ours)", func() model.Algorithm { return core.NewLogVis() }},
		{"no transit guard", func() model.Algorithm {
			return &core.LogVis{AblateNoTransitGuard: true}
		}},
	}
	var res A2Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "A2: Transit-guard ablation (LogVis, ASYNC, uniform)")
	fmt.Fprintln(w, "variant\tN\treached\tepochs(mean)\tcrossings\tcollisions")
	for _, v := range variants {
		for _, n := range ns {
			cell, err := ablationCell(cfg.ctx(), v.name, v.mk, n, seeds, 600)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
			fmt.Fprintf(w, "%s\t%d\t%d/%d\t%.1f\t%d\t%d\n",
				cell.Variant, cell.N, cell.Reached, cell.Runs, cell.Epochs, cell.Cross, cell.Coll)
		}
	}
	return res, w.Flush()
}

// ablationCell runs one variant at one N across seeds.
func ablationCell(ctx context.Context, name string, mk func() model.Algorithm, n, seeds, maxEpochs int) (AblationCell, error) {
	cell := AblationCell{Variant: name, N: n}
	var epochSum float64
	for seed := int64(1); seed <= int64(seeds); seed++ {
		pts := config.Generate(config.Uniform, n, seed)
		opt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
		opt.MaxEpochs = maxEpochs
		r, err := sim.RunCtx(ctx, mk(), pts, opt)
		if err != nil {
			return cell, err
		}
		cell.Runs++
		if r.Reached {
			cell.Reached++
		}
		epochSum += float64(r.Epochs)
		cell.Cross += r.PathCrossings
		cell.Coll += r.Collisions
	}
	cell.Epochs = epochSum / float64(cell.Runs)
	return cell, nil
}
