// ---------------------------------------------------------------------
// R1 — the robustness matrix
//
// The paper's claims are stated for a clean ASYNC model: fair
// scheduling, fault-free robots, perfect sensors, rigid (or adversary-
// truncated-but-uniform) motion. R1 stresses each of those assumptions
// through internal/scenario — adversarial-but-legal schedulers, crash
// faults, sensor jitter, skewed non-rigid truncation — and re-measures
// the claims per stressor. Every cell runs with a recorded trace and is
// re-derived by the independent auditor (internal/verify), so each
// number in the matrix is engine/auditor-agreed, not self-reported.

package exp

import (
	"fmt"
	"sync"

	"luxvis/internal/config"
	"luxvis/internal/scenario"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/verify"
)

// R1Row is one stressor's tally across its seeded runs.
type R1Row struct {
	// Stressor is the scenario name (see scenario.Stressors).
	Stressor string
	// Scenario is the parseable configuration the row ran under.
	Scenario string
	// Runs and Reached count total runs and runs that terminated in the
	// goal predicate — full CV, or survivor-CV once robots crashed.
	Runs    int
	Reached int
	// Epochs is the mean epoch count of the row's runs; compare against
	// the "none" row to read the stressor's slowdown.
	Epochs float64
	// Collisions and Crossings are summed exact counts. Collision-
	// freedom is the claim expected to hold everywhere; crossings are
	// the known conservative-concurrency residual (EXPERIMENTS.md T3)
	// and are reported, not asserted.
	Collisions int
	Crossings  int
	// MaxColors is the largest per-run distinct color count — the O(1)
	// palette claim under stress.
	MaxColors int
	// Crashed is the total number of robots halted by the row's crash
	// fault across all runs.
	Crashed int
	// AuditOK counts runs where the independent auditor reproduced every
	// engine verdict (collisions, crossings, palette, crashed set,
	// terminal predicate). The matrix is trustworthy iff AuditOK == Runs
	// in every row.
	AuditOK int
}

// R1Result reports experiment R1.
type R1Result struct {
	Rows []R1Row
	// N and Seeds record the matrix's scale.
	N, Seeds int
}

// r1Run executes one cell run and audits it. The boolean reports
// engine/auditor agreement on every re-derivable verdict.
func r1Run(cfg Config, nc scenario.NamedConfig, n int, seed int64) (sim.Result, bool, error) {
	pts := config.Generate(config.Uniform, n, seed)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
	opt.RecordTrace = true
	if cfg.MaxEpochs > 0 {
		opt.MaxEpochs = cfg.MaxEpochs
	}
	if err := nc.Cfg.Apply(&opt, n); err != nil {
		return sim.Result{}, false, fmt.Errorf("R1 %s: %w", nc.Name, err)
	}
	res, err := sim.RunCtx(cfg.ctx(), logVis(), pts, opt)
	if err != nil {
		return sim.Result{}, false, fmt.Errorf("R1 %s n=%d seed=%d: %w", nc.Name, n, seed, err)
	}
	rep, err := verify.Audit(pts, logVis().Palette(), res)
	if err != nil {
		// An audit *error* (trace inconsistency, crashed-set mismatch) is
		// a parity failure, not a harness failure: report the cell as
		// disagreeing so the matrix surfaces it.
		return res, false, nil
	}
	enginePalette := 0
	for _, v := range res.Violations {
		if v.Kind == sim.VPalette {
			enginePalette++
		}
	}
	ok := rep.Colocations+rep.PassThroughs == res.Collisions &&
		rep.PathCrossings == res.PathCrossings &&
		rep.PaletteViolations == enginePalette &&
		rep.Crashes == len(res.Crashed) &&
		(!res.Reached || rep.SurvivorCV)
	return res, ok, nil
}

// R1Robustness sweeps the scenario stressor axis against the paper's
// claims and prints the robustness matrix.
func R1Robustness(cfg Config) (R1Result, error) {
	n := 24
	if cfg.Quick {
		n = 12
	}
	seeds := cfg.seeds(5, 2)
	res := R1Result{N: n, Seeds: seeds}
	w := newTab(cfg.out())
	fmt.Fprintf(w, "R1: robustness matrix (LogVis, uniform, n=%d, %d seeds; async-random unless the scenario overrides)\n", n, seeds)
	fmt.Fprintln(w, "stressor\tscenario\treached\tepochs\tcollisions\tcrossings\tmax colors\tcrashed\taudit parity")
	for _, nc := range scenario.Stressors(n) {
		row := R1Row{Stressor: nc.Name, Scenario: nc.Cfg.String()}
		// Seeds run in parallel (Apply builds a fresh scheduler per run,
		// so nothing is shared); results fold in seed order so the row is
		// deterministic regardless of completion order.
		results := make([]sim.Result, seeds)
		oks := make([]bool, seeds)
		errs := make([]error, seeds)
		var wg sync.WaitGroup
		for i := 0; i < seeds; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], oks[i], errs[i] = r1Run(cfg, nc, n, int64(i+1))
			}(i)
		}
		wg.Wait()
		var epochSum int
		for i := 0; i < seeds; i++ {
			if errs[i] != nil {
				return res, errs[i]
			}
			r := results[i]
			row.Runs++
			if r.Reached {
				row.Reached++
			}
			epochSum += r.Epochs
			row.Collisions += r.Collisions
			row.Crossings += r.PathCrossings
			if r.ColorsUsed > row.MaxColors {
				row.MaxColors = r.ColorsUsed
			}
			row.Crashed += len(r.Crashed)
			if oks[i] {
				row.AuditOK++
			}
		}
		row.Epochs = float64(epochSum) / float64(row.Runs)
		res.Rows = append(res.Rows, row)
		scn := row.Scenario
		if scn == "" {
			scn = "(clean)"
		}
		fmt.Fprintf(w, "%s\t%s\t%d/%d\t%.1f\t%d\t%d\t%d\t%d\t%d/%d\n",
			row.Stressor, scn, row.Reached, row.Runs, row.Epochs,
			row.Collisions, row.Crossings, row.MaxColors, row.Crashed,
			row.AuditOK, row.Runs)
	}
	return res, w.Flush()
}
