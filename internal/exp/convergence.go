package exp

import (
	"fmt"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// F7Result reports experiment F7: the convergence dynamics of one run.
type F7Result struct {
	N       int
	Samples []sim.EpochSample
}

// F7Convergence records the hull composition at every epoch boundary of
// a single representative run: the corner count should roughly double
// per epoch through the main Interior Depletion phase — the observable
// trace of the BDCP doubling argument.
func F7Convergence(cfg Config) (F7Result, error) {
	n := 256
	if cfg.Quick {
		n = 64
	}
	pts := config.Generate(config.Uniform, n, 1)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 1)
	opt.SampleEpochs = true
	if cfg.MaxEpochs > 0 {
		opt.MaxEpochs = cfg.MaxEpochs
	}
	res, err := sim.RunCtx(cfg.ctx(), core.NewLogVis(), pts, opt)
	if err != nil {
		return F7Result{}, err
	}
	out := F7Result{N: n, Samples: res.EpochSamples}
	w := newTab(cfg.out())
	fmt.Fprintf(w, "F7: convergence dynamics (LogVis, ASYNC, uniform, N=%d, reached=%v)\n", n, res.Reached)
	fmt.Fprintln(w, "epoch\tcorners\tedge\tinterior\tmoves(cum)\tCV\tcyc:int\tcyc:edge\tcyc:corner\tflights")
	for _, s := range out.Samples {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\t%d\t%d\n",
			s.Epoch, s.Corners, s.EdgeRobots, s.Interior, s.MovesSoFar, s.CV,
			s.Phases[sim.PhaseInterior], s.Phases[sim.PhaseEdge], s.Phases[sim.PhaseCorner],
			s.PhaseMoves[sim.PhaseInterior])
	}
	return out, w.Flush()
}

// F8Result reports experiment F8.
type F8Result struct {
	Ns        []int
	LogVis    []float64
	CircleVis []float64
	LogDist   []float64
	CircDist  []float64
}

// F8ThreeWay compares the paper's LogVis against CircleVis, the
// move-onto-a-common-circle reference strategy: epochs and movement
// cost. CircleVis parallelizes well but pays for radial serialization on
// shared rays and travels farther (everyone walks to the enclosing
// circle); LogVis lands robots on the nearest boundary stretch.
func F8ThreeWay(cfg Config) (F8Result, error) {
	ns := cfg.ns([]int{16, 32, 64, 128}, []int{16, 32})
	seeds := cfg.seeds(3, 2)
	var res F8Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F8: LogVis vs CircleVis reference (ASYNC, uniform)")
	fmt.Fprintln(w, "N\tlogvis epochs\tcirclevis epochs\tlogvis dist\tcirclevis dist\tcirclevis reached")
	for _, n := range ns {
		ls, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		cs, _, err := runBatch(cfg.ctx(), circleVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		res.Ns = append(res.Ns, n)
		res.LogVis = append(res.LogVis, ls.Epochs.Mean)
		res.CircleVis = append(res.CircleVis, cs.Epochs.Mean)
		res.LogDist = append(res.LogDist, ls.DistPerBot.Mean)
		res.CircDist = append(res.CircDist, cs.DistPerBot.Mean)
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%d/%d\n",
			n, ls.Epochs.Mean, cs.Epochs.Mean,
			ls.DistPerBot.Mean, cs.DistPerBot.Mean, cs.Reached, cs.Runs)
	}
	return res, w.Flush()
}

// F9Result reports experiment F9.
type F9Result struct {
	Ns       []int
	Rigid    []float64 // mean epochs
	NonRigid []float64
	Reached  int
	Runs     int
}

// F9NonRigid stresses the algorithm under the non-rigid motion
// adversary — every move may be truncated to a fraction of its intended
// segment (at least 30%). The paper assumes rigid moves; oblivious
// re-planning from fresh snapshots should still converge, only slower.
// This is an extension experiment beyond the paper's model.
func F9NonRigid(cfg Config) (F9Result, error) {
	ns := cfg.ns([]int{16, 32, 64, 128}, []int{16, 32})
	seeds := cfg.seeds(3, 2)
	var res F9Result
	w := newTab(cfg.out())
	fmt.Fprintln(w, "F9: non-rigid motion stress (LogVis, ASYNC, uniform)")
	fmt.Fprintln(w, "N\trigid epochs\tnon-rigid epochs\tslowdown\tnon-rigid reached")
	for _, n := range ns {
		rs, _, err := runBatch(cfg.ctx(), logVis, "async-random", config.Uniform, n, seeds, cfg.MaxEpochs)
		if err != nil {
			return res, err
		}
		// Non-rigid runs need their own loop: runBatch has no Options
		// hook for the motion adversary.
		var epochSum float64
		reached, runs := 0, 0
		for seed := int64(1); seed <= int64(seeds); seed++ {
			pts := config.Generate(config.Uniform, n, seed)
			opt := sim.DefaultOptions(sched.NewAsyncRandom(), seed)
			opt.NonRigid = true
			if cfg.MaxEpochs > 0 {
				opt.MaxEpochs = cfg.MaxEpochs
			}
			r, err := sim.RunCtx(cfg.ctx(), logVis(), pts, opt)
			if err != nil {
				return res, err
			}
			runs++
			if r.Reached {
				reached++
			}
			epochSum += float64(r.Epochs)
		}
		mean := epochSum / float64(runs)
		res.Ns = append(res.Ns, n)
		res.Rigid = append(res.Rigid, rs.Epochs.Mean)
		res.NonRigid = append(res.NonRigid, mean)
		res.Reached += reached
		res.Runs += runs
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f×\t%d/%d\n",
			n, rs.Epochs.Mean, mean, mean/rs.Epochs.Mean, reached, runs)
	}
	return res, w.Flush()
}
