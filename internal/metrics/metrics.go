// Package metrics derives the quantities the experiment tables report
// from engine results and raw configurations: visibility-graph density,
// hull composition, movement cost, and aggregations of repeated runs.
package metrics

import (
	"math"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
	"luxvis/internal/stats"
)

// HullStats summarizes the hull composition of a configuration.
type HullStats struct {
	N         int
	Corners   int
	EdgeRobot int
	Interior  int
	// Depth is the number of convex-hull peeling layers.
	Depth int
	// Area and Perimeter describe the outer hull.
	Area, Perimeter float64
}

// HullOf computes HullStats for a configuration.
func HullOf(pts []geom.Point) HullStats {
	hs := HullStats{N: len(pts)}
	if len(pts) == 0 {
		return hs
	}
	h := geom.ConvexHull(pts)
	hs.Area = h.Area()
	hs.Perimeter = h.Perimeter()
	for _, p := range pts {
		switch h.Classify(p) {
		case geom.HullCorner:
			hs.Corners++
		case geom.HullEdge:
			hs.EdgeRobot++
		default:
			hs.Interior++
		}
	}
	hs.Depth = PeelDepth(pts)
	return hs
}

// PeelDepth returns the number of convex-hull peeling layers of pts
// (the "onion depth"). A configuration in convex position has depth 1.
func PeelDepth(pts []geom.Point) int {
	rest := append([]geom.Point(nil), pts...)
	depth := 0
	for len(rest) > 0 {
		depth++
		h := geom.ConvexHull(rest)
		next := rest[:0]
		for _, p := range rest {
			if c := h.Classify(p); c != geom.HullCorner && c != geom.HullEdge {
				next = append(next, p)
			}
		}
		if len(next) == len(rest) {
			// Numerical stall; every remaining point claims to be
			// interior of its own hull, which cannot happen — stop
			// rather than loop.
			break
		}
		rest = next
	}
	return depth
}

// VisibilityDensity returns the fraction of robot pairs that are
// mutually visible, in [0, 1]; 1 means Complete Visibility. Singleton
// and empty configurations are fully visible by convention.
func VisibilityDensity(pts []geom.Point) float64 {
	n := len(pts)
	if n < 2 {
		return 1
	}
	pairs := n * (n - 1) / 2
	return float64(geom.VisibilityCount(pts)) / float64(pairs)
}

// RunStats aggregates a batch of engine results for one experiment cell
// (one algorithm, one scheduler, one N, many seeds).
type RunStats struct {
	Runs        int
	Reached     int
	Epochs      stats.Summary
	FirstCV     stats.Summary
	Moves       stats.Summary
	DistPerBot  stats.Summary
	MaxColors   int
	Collisions  int
	PathCrosses int
}

// Aggregate folds a batch of results into RunStats. It panics on an
// empty batch — aggregating nothing is a harness bug.
func Aggregate(results []sim.Result) RunStats {
	if len(results) == 0 {
		panic("metrics: Aggregate of empty result batch")
	}
	rs := RunStats{Runs: len(results)}
	epochs := make([]float64, 0, len(results))
	firstCV := make([]float64, 0, len(results))
	moves := make([]float64, 0, len(results))
	dist := make([]float64, 0, len(results))
	for _, r := range results {
		if r.Reached {
			rs.Reached++
		}
		epochs = append(epochs, float64(r.Epochs))
		if r.FirstCVEpoch >= 0 {
			firstCV = append(firstCV, float64(r.FirstCVEpoch))
		}
		moves = append(moves, float64(r.Moves)/math.Max(1, float64(r.N)))
		dist = append(dist, r.TotalDist/math.Max(1, float64(r.N)))
		if r.ColorsUsed > rs.MaxColors {
			rs.MaxColors = r.ColorsUsed
		}
		rs.Collisions += r.Collisions
		rs.PathCrosses += r.PathCrossings
	}
	rs.Epochs = stats.Summarize(epochs)
	if len(firstCV) > 0 {
		rs.FirstCV = stats.Summarize(firstCV)
	}
	rs.Moves = stats.Summarize(moves)
	rs.DistPerBot = stats.Summarize(dist)
	return rs
}
