package metrics

import (
	"math"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

func TestHullOf(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4), // corners
		geom.Pt(2, 0), // edge
		geom.Pt(2, 2), // interior
	}
	hs := HullOf(pts)
	if hs.N != 6 || hs.Corners != 4 || hs.EdgeRobot != 1 || hs.Interior != 1 {
		t.Errorf("HullOf = %+v", hs)
	}
	if math.Abs(hs.Area-16) > 1e-9 {
		t.Errorf("Area = %v", hs.Area)
	}
	if hs.Depth != 2 {
		t.Errorf("Depth = %d", hs.Depth)
	}
	if got := HullOf(nil); got.N != 0 {
		t.Errorf("empty HullOf = %+v", got)
	}
}

func TestPeelDepth(t *testing.T) {
	// Triangle: depth 1. Triangle + center: depth 2.
	tri := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(4, 8)}
	if got := PeelDepth(tri); got != 1 {
		t.Errorf("triangle depth = %d", got)
	}
	withCenter := append(append([]geom.Point{}, tri...), geom.Pt(4, 3))
	if got := PeelDepth(withCenter); got != 2 {
		t.Errorf("triangle+center depth = %d", got)
	}
	// Nested squares: depth = number of rings.
	var nested []geom.Point
	for r := 1; r <= 3; r++ {
		s := float64(r * 4)
		nested = append(nested,
			geom.Pt(-s, -s), geom.Pt(s, -s), geom.Pt(s, s), geom.Pt(-s, s))
	}
	if got := PeelDepth(nested); got != 3 {
		t.Errorf("nested squares depth = %d", got)
	}
}

func TestVisibilityDensity(t *testing.T) {
	if got := VisibilityDensity(nil); got != 1 {
		t.Errorf("empty density = %v", got)
	}
	tri := []geom.Point{geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(4, 8)}
	if got := VisibilityDensity(tri); got != 1 {
		t.Errorf("triangle density = %v", got)
	}
	line := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	if got := VisibilityDensity(line); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("line density = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	results := []sim.Result{
		{N: 10, Reached: true, Epochs: 5, FirstCVEpoch: 3, Moves: 20, TotalDist: 100, ColorsUsed: 5},
		{N: 10, Reached: true, Epochs: 7, FirstCVEpoch: -1, Moves: 30, TotalDist: 200, ColorsUsed: 6, Collisions: 1},
		{N: 10, Reached: false, Epochs: 100, FirstCVEpoch: 50, Moves: 10, TotalDist: 50, ColorsUsed: 4, PathCrossings: 2},
	}
	rs := Aggregate(results)
	if rs.Runs != 3 || rs.Reached != 2 {
		t.Errorf("Aggregate runs/reached = %d/%d", rs.Runs, rs.Reached)
	}
	if rs.MaxColors != 6 {
		t.Errorf("MaxColors = %d", rs.MaxColors)
	}
	if rs.Collisions != 1 || rs.PathCrosses != 2 {
		t.Errorf("violations = %d/%d", rs.Collisions, rs.PathCrosses)
	}
	if rs.Epochs.Min != 5 || rs.Epochs.Max != 100 {
		t.Errorf("epochs summary = %+v", rs.Epochs)
	}
	if rs.FirstCV.N != 2 {
		t.Errorf("FirstCV sample size = %d (unset epochs must be excluded)", rs.FirstCV.N)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Aggregate did not panic")
		}
	}()
	Aggregate(nil)
}
