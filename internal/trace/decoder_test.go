package trace_test

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

func sampleResult() sim.Result {
	return sim.Result{
		Algorithm: "logvis", Scheduler: "fsync", N: 3, Seed: 9,
		Epochs: 2, Events: 3, Reached: true,
		Trace: []sim.TraceEvent{
			{Event: 0, Robot: 0, Kind: "look", Pos: geom.Pt(1, 2)},
			{Event: 1, Robot: 1, Kind: "compute", Pos: geom.Pt(3, 4), Epoch: 1},
			{Event: 2, Robot: 2, Kind: "step", Pos: geom.Pt(5, 6), Epoch: 2},
		},
	}
}

// TestDecoderMatchesReadJSONL proves the streaming decoder and the
// slice-materializing wrapper see the identical stream.
func TestDecoderMatchesReadJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, sampleResult()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	encoded := buf.Bytes()

	h1, evs1, err := trace.ReadJSONL(bytes.NewReader(encoded))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}

	dec, err := trace.NewDecoder(bytes.NewReader(encoded))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if !reflect.DeepEqual(dec.Header(), h1) {
		t.Fatalf("decoder header %+v != ReadJSONL header %+v", dec.Header(), h1)
	}
	var evs2 []trace.Event
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		evs2 = append(evs2, e)
	}
	if len(evs1) != len(evs2) {
		t.Fatalf("event count: ReadJSONL %d, Decoder %d", len(evs1), len(evs2))
	}
	for i := range evs1 {
		if evs1[i] != evs2[i] {
			t.Fatalf("event %d: ReadJSONL %+v, Decoder %+v", i, evs1[i], evs2[i])
		}
	}
	if evs2[1].Epoch != 1 || evs2[2].Epoch != 2 {
		t.Fatalf("epoch stamps lost in decode: %+v", evs2)
	}
}

// TestDecoderRawForwardsBytes proves Raw yields the exact line bytes, so
// relays can forward a stored trace byte-identical to the source.
func TestDecoderRawForwardsBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, sampleResult()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	wantLines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	dec, err := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	got := []string{string(dec.Raw())} // header line
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, string(dec.Raw()))
	}
	if len(got) != len(wantLines) {
		t.Fatalf("line count: got %d, want %d", len(got), len(wantLines))
	}
	for i := range got {
		if got[i] != wantLines[i] {
			t.Fatalf("line %d: got %q, want %q", i, got[i], wantLines[i])
		}
	}
}

// TestDecoderSkipsBlankAndUnknown: blank lines are framing noise, and
// unknown kinds (epoch marks) decode as events with their Kind intact so
// callers can skip them.
func TestDecoderSkipsBlankAndUnknown(t *testing.T) {
	in := `{"kind":"header","algorithm":"logvis","scheduler":"fsync","n":1,"seed":1,"epochs":1,"events":1,"reached":true}

{"kind":"epoch","epoch":3,"cv":true}
{"kind":"look","event":0,"robot":0,"x":1,"y":2,"color":"off"}
`
	dec, err := trace.NewDecoder(strings.NewReader(in))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	e1, err := dec.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if e1.Kind != "epoch" || e1.Epoch != 3 {
		t.Fatalf("epoch mark decoded as %+v", e1)
	}
	e2, err := dec.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if e2.Kind != "look" || e2.Robot != 0 {
		t.Fatalf("event decoded as %+v", e2)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

const decoderTestHeader = `{"kind":"header","algorithm":"a","scheduler":"s","n":1,"seed":1,"epochs":0,"events":0,"reached":false}`

// TestDecoderMalformedInput pins the exact error text of the decoder's
// malformed-stream edges. The texts are contract: visreplay and the
// live-stream relay surface them verbatim to users staring at a
// truncated download or a log file that was never a trace.
func TestDecoderMalformedInput(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string
	}{
		{
			name: "truncated final line",
			// The stream ends mid-record, as a cut-off download does; the
			// scanner still yields the partial token, and the JSON error
			// names the truncation.
			in:      decoderTestHeader + "\n" + `{"kind":"look","event":0,"rob`,
			wantErr: "trace: decoding event: unexpected end of JSON input",
		},
		{
			name:    "missing epoch stamp",
			in:      decoderTestHeader + "\n" + `{"kind":"epoch","cv":true}` + "\n",
			wantErr: "trace: epoch mark missing its epoch stamp",
		},
		{
			name:    "oversized record",
			in:      decoderTestHeader + "\n" + `{"kind":"look","event":0,"pad":"` + strings.Repeat("x", trace.MaxLineBytes) + `"}` + "\n",
			wantErr: "trace: record exceeds 1048576 bytes (corrupt or oversized line)",
		},
		{
			name:    "interleaved garbage line",
			in:      decoderTestHeader + "\n" + `{"kind":"look","event":0,"robot":0,"x":1,"y":2,"color":"off"}` + "\ngarbage here\n",
			wantErr: "trace: decoding event: invalid character 'g' looking for beginning of value",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec, err := trace.NewDecoder(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("NewDecoder: %v", err)
			}
			for {
				_, err = dec.Next()
				if err != nil {
					break
				}
			}
			if err == io.EOF {
				t.Fatalf("stream decoded clean; want error %q", tc.wantErr)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error = %q; want %q", err.Error(), tc.wantErr)
			}
		})
	}
}

// FuzzDecoder: the decoder must return errors, never panic or hang, on
// arbitrary byte streams. The seed corpus (here and in testdata/fuzz)
// covers each pinned malformed edge: truncated record, stampless epoch
// mark, oversized line, interleaved garbage.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte(decoderTestHeader + "\n" + `{"kind":"look","event":0,"rob`))
	f.Add([]byte(decoderTestHeader + "\n" + `{"kind":"epoch","cv":true}` + "\n"))
	f.Add([]byte(decoderTestHeader + "\n" + `{"kind":"look","pad":"` + strings.Repeat("x", trace.MaxLineBytes) + `"}` + "\n"))
	f.Add([]byte(decoderTestHeader + "\n" + `{"kind":"look","event":0}` + "\ngarbage here\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := trace.NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := dec.Next(); err != nil {
				return
			}
		}
	})
}

// TestDecoderErrors pins the failure modes: empty stream, missing
// header, corrupt line.
func TestDecoderErrors(t *testing.T) {
	if _, err := trace.NewDecoder(strings.NewReader("")); err == nil {
		t.Fatal("empty stream: want error")
	}
	if _, err := trace.NewDecoder(strings.NewReader(`{"kind":"look"}`)); err == nil {
		t.Fatal("missing header: want error")
	}
	dec, err := trace.NewDecoder(strings.NewReader(
		`{"kind":"header","algorithm":"a","scheduler":"s","n":1,"seed":1,"epochs":0,"events":0,"reached":false}` + "\nnot-json\n"))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupt line: want decode error, got %v", err)
	}
}
