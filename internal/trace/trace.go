// Package trace serializes engine runs for inspection and replay:
// JSON-lines event logs, CSV summaries for spreadsheet analysis, and a
// compact run header. The formats are stable line-oriented encodings so
// traces can be streamed, diffed and post-processed with standard tools.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

// Header describes a recorded run; it is the first line of a JSONL
// trace stream.
type Header struct {
	Kind      string `json:"kind"` // always "header"
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	Epochs    int    `json:"epochs"`
	Events    int    `json:"events"`
	Reached   bool   `json:"reached"`
	// Crashed lists the robots halted by crash faults, ascending; absent
	// for clean runs. The stream's "crash" events are the authoritative
	// record — this field is summary provenance for tools that read only
	// the header.
	Crashed []int `json:"crashed,omitempty"`
	// Note carries free-form provenance for partial streams — the
	// flight recorder stamps its dump reason here. Empty (and absent
	// from the JSON) for full RecordTrace traces.
	Note string `json:"note,omitempty"`
}

// Event is one engine event in a JSONL trace stream.
type Event struct {
	Kind  string  `json:"kind"` // "look" | "compute" | "step" | "crash"
	Event int     `json:"event"`
	Robot int     `json:"robot"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Color string  `json:"color"`
	// Epoch is the number of completed epochs when the event fired.
	// Events in the first epoch carry 0 and omit the field, which keeps
	// pre-epoch-stamp traces and new ones decoding identically.
	Epoch int `json:"epoch,omitempty"`
}

// EpochMark is an optional epoch-boundary record in a JSONL stream. The
// engine's RecordTrace output never contains marks (its event lines are
// the canonical stream); live stream sources that have no per-event
// stream — the concurrent runtime — emit marks so subscribers still see
// progress. Consumers that only understand events skip unknown kinds.
type EpochMark struct {
	Kind  string `json:"kind"` // always "epoch"
	Epoch int    `json:"epoch"`
	// CV reports whether Complete Visibility held at the boundary.
	CV bool `json:"cv"`
}

// HeaderOf builds the trace header for a completed run.
func HeaderOf(res sim.Result) Header {
	return Header{
		Kind:      "header",
		Algorithm: res.Algorithm,
		Scheduler: res.Scheduler,
		N:         res.N,
		Seed:      res.Seed,
		Epochs:    res.Epochs,
		Events:    res.Events,
		Reached:   res.Reached,
		Crashed:   res.Crashed,
	}
}

// ConvertEvents maps engine trace events to their wire encoding.
func ConvertEvents(evs []sim.TraceEvent) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = Event{
			Kind:  e.Kind,
			Event: e.Event,
			Robot: e.Robot,
			X:     e.Pos.X,
			Y:     e.Pos.Y,
			Color: e.Color.String(),
			Epoch: e.Epoch,
		}
	}
	return out
}

// Encode writes a header and events as JSON lines. It is the one
// encoding of the trace stream: RecordTrace dumps (WriteJSONL) and
// flight-recorder dumps (internal/obs) both go through it, which is what
// makes their event lines byte-comparable.
func Encode(w io.Writer, h Header, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", ev.Event, err)
		}
	}
	return bw.Flush()
}

// WriteJSONL writes a run (header plus recorded events) as JSON lines.
// The result must have been produced with Options.RecordTrace, otherwise
// only the header is emitted.
func WriteJSONL(w io.Writer, res sim.Result) error {
	return Encode(w, HeaderOf(res), ConvertEvents(res.Trace))
}

// ReadJSONL parses a JSONL trace stream back into a header and events.
// It materializes the whole event slice; callers that want bounded
// memory (or the raw line bytes) should use Decoder directly.
func ReadJSONL(r io.Reader) (Header, []Event, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return Header{}, nil, err
	}
	var events []Event
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			return Header{}, nil, err
		}
		events = append(events, e)
	}
	return dec.Header(), events, nil
}

// WritePositionsCSV writes a configuration as a two-column CSV
// (x,y with a header row).
func WritePositionsCSV(w io.Writer, pts []geom.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRunCSV writes one summary row per result, with a header row, for
// spreadsheet-side analysis of experiment sweeps.
func WriteRunCSV(w io.Writer, results []sim.Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"algorithm", "scheduler", "n", "seed", "reached", "epochs",
		"first_cv_epoch", "events", "cycles", "moves", "total_dist",
		"colors", "collisions", "path_crossings",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Algorithm, r.Scheduler,
			strconv.Itoa(r.N), strconv.FormatInt(r.Seed, 10),
			strconv.FormatBool(r.Reached), strconv.Itoa(r.Epochs),
			strconv.Itoa(r.FirstCVEpoch), strconv.Itoa(r.Events),
			strconv.Itoa(r.Cycles), strconv.Itoa(r.Moves),
			strconv.FormatFloat(r.TotalDist, 'g', -1, 64),
			strconv.Itoa(r.ColorsUsed), strconv.Itoa(r.Collisions),
			strconv.Itoa(r.PathCrossings),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
