package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

// Randomized round-trip: arbitrary traces must serialize and parse back
// bit-for-bit, including awkward float values.
func TestJSONLRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	kinds := []string{"look", "compute", "step"}
	for trial := 0; trial < 50; trial++ {
		res := sim.Result{
			Algorithm: "logvis",
			Scheduler: "async-random",
			N:         1 + rng.Intn(50),
			Seed:      rng.Int63(),
			Epochs:    rng.Intn(1000),
			Events:    rng.Intn(100000),
			Reached:   rng.Intn(2) == 0,
		}
		nEvents := rng.Intn(200)
		for e := 0; e < nEvents; e++ {
			res.Trace = append(res.Trace, sim.TraceEvent{
				Event: e,
				Robot: rng.Intn(res.N),
				Kind:  kinds[rng.Intn(3)],
				Pos: geom.Pt(
					(rng.Float64()-0.5)*1e6,
					rng.NormFloat64()*1e-9, // tiny magnitudes round-trip too
				),
			})
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, res); err != nil {
			t.Fatal(err)
		}
		h, events, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.N != res.N || h.Seed != res.Seed || h.Reached != res.Reached {
			t.Fatalf("trial %d: header mismatch: %+v", trial, h)
		}
		if len(events) != nEvents {
			t.Fatalf("trial %d: %d events, want %d", trial, len(events), nEvents)
		}
		for i, e := range events {
			orig := res.Trace[i]
			if e.Event != orig.Event || e.Robot != orig.Robot || e.Kind != orig.Kind ||
				e.X != orig.Pos.X || e.Y != orig.Pos.Y {
				t.Fatalf("trial %d event %d: %+v != %+v", trial, i, e, orig)
			}
		}
	}
}

func TestReadJSONLGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not json at all",
		`{"kind":"header"` + "\n", // truncated
	} {
		if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("garbage input %q accepted", in)
		}
	}
	// A valid header followed by garbage events must error, not hang.
	in := `{"kind":"header","algorithm":"x","n":1}` + "\n" + "garbage\n"
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Error("garbage event accepted")
	}
}

func TestRunCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	res := sim.Result{Algorithm: `log,vis"x`, Scheduler: "s", N: 1}
	if err := WriteRunCSV(&buf, []sim.Result{res}); err != nil {
		t.Fatal(err)
	}
	// The CSV writer must quote the comma-bearing field.
	if !strings.Contains(buf.String(), `"log,vis""x"`) {
		t.Errorf("csv escaping wrong: %q", buf.String())
	}
}
