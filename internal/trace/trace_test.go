package trace

import (
	"bytes"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		Algorithm: "logvis",
		Scheduler: "async-random",
		N:         3,
		Seed:      42,
		Epochs:    7,
		Events:    100,
		Reached:   true,
		Trace: []sim.TraceEvent{
			{Event: 1, Robot: 0, Kind: "look", Pos: geom.Pt(1, 2)},
			{Event: 2, Robot: 0, Kind: "compute", Pos: geom.Pt(1, 2)},
			{Event: 3, Robot: 0, Kind: "step", Pos: geom.Pt(2, 3)},
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	h, events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Algorithm != "logvis" || h.N != 3 || !h.Reached || h.Epochs != 7 {
		t.Errorf("header = %+v", h)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[2].Kind != "step" || events[2].X != 2 || events[2].Y != 3 {
		t.Errorf("event = %+v", events[2])
	}
}

func TestReadJSONLRejectsHeaderless(t *testing.T) {
	r := strings.NewReader(`{"kind":"step","event":1}` + "\n")
	if _, _, err := ReadJSONL(r); err == nil {
		t.Error("headerless stream accepted")
	}
}

func TestWritePositionsCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3.5, -4)}
	if err := WritePositionsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,y" {
		t.Errorf("csv = %q", buf.String())
	}
	if lines[2] != "3.5,-4" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteRunCSV(t *testing.T) {
	var buf bytes.Buffer
	results := []sim.Result{sampleResult(), sampleResult()}
	if err := WriteRunCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "algorithm,scheduler,n,seed") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "logvis,async-random,3,42,true,7") {
		t.Errorf("row = %q", lines[1])
	}
}
