package trace

import (
	"bytes"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		Algorithm: "logvis",
		Scheduler: "async-random",
		N:         3,
		Seed:      42,
		Epochs:    7,
		Events:    100,
		Reached:   true,
		Trace: []sim.TraceEvent{
			{Event: 1, Robot: 0, Kind: "look", Pos: geom.Pt(1, 2)},
			{Event: 2, Robot: 0, Kind: "compute", Pos: geom.Pt(1, 2)},
			{Event: 3, Robot: 0, Kind: "step", Pos: geom.Pt(2, 3)},
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	h, events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Algorithm != "logvis" || h.N != 3 || !h.Reached || h.Epochs != 7 {
		t.Errorf("header = %+v", h)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[2].Kind != "step" || events[2].X != 2 || events[2].Y != 3 {
		t.Errorf("event = %+v", events[2])
	}
}

// TestJSONLCrashRoundTrip pins the crash-fault wire format: the header
// carries the crashed set as summary provenance and "crash" events
// survive the round trip, so visreplay -verify can rebuild the engine's
// crashed set from a serialized trace.
func TestJSONLCrashRoundTrip(t *testing.T) {
	res := sampleResult()
	res.Crashed = []int{1, 2}
	res.Trace = append(res.Trace,
		sim.TraceEvent{Event: 4, Robot: 1, Kind: "crash", Pos: geom.Pt(5, 6)},
		sim.TraceEvent{Event: 5, Robot: 2, Kind: "crash", Pos: geom.Pt(7, 8)},
	)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, res); err != nil {
		t.Fatal(err)
	}
	h, events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Crashed) != 2 || h.Crashed[0] != 1 || h.Crashed[1] != 2 {
		t.Errorf("header crashed = %v", h.Crashed)
	}
	if events[3].Kind != "crash" || events[3].Robot != 1 || events[3].X != 5 {
		t.Errorf("crash event = %+v", events[3])
	}
	// Clean runs keep the field out of the wire entirely.
	var clean bytes.Buffer
	if err := WriteJSONL(&clean, sampleResult()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "crashed") {
		t.Error("clean header serialized a crashed field")
	}
}

func TestReadJSONLRejectsHeaderless(t *testing.T) {
	r := strings.NewReader(`{"kind":"step","event":1}` + "\n")
	if _, _, err := ReadJSONL(r); err == nil {
		t.Error("headerless stream accepted")
	}
}

func TestWritePositionsCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []geom.Point{geom.Pt(1, 2), geom.Pt(3.5, -4)}
	if err := WritePositionsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,y" {
		t.Errorf("csv = %q", buf.String())
	}
	if lines[2] != "3.5,-4" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteRunCSV(t *testing.T) {
	var buf bytes.Buffer
	results := []sim.Result{sampleResult(), sampleResult()}
	if err := WriteRunCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "algorithm,scheduler,n,seed") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "logvis,async-random,3,42,true,7") {
		t.Errorf("row = %q", lines[1])
	}
}
