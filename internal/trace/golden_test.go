package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden trace from the current engine output")

// TestGoldenTrace pins the engine's full event stream for one canonical
// run (LogVis, async-random, uniform N=32, seed=7) byte for byte. Any
// change to scheduler order, engine event sequencing, movement
// geometry, color transitions or the JSONL encoding shows up here as a
// diff — deliberate changes re-bless with -update-golden.
func TestGoldenTrace(t *testing.T) {
	pts := config.Generate(config.Uniform, 32, 7)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 7)
	opt.RecordTrace = true
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, res); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	golden := filepath.Join("testdata", "logvis_async-random_n32_seed7.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden trace (regenerate with -update-golden): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Locate the first divergent line for a readable failure.
	gotLines := bytes.Split(buf.Bytes(), []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("trace length changed: got %d lines, golden has %d",
		len(gotLines), len(wantLines))
}
