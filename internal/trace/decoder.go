package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MaxLineBytes bounds one JSONL record line. A trace line is a few
// hundred bytes; the bound exists so a corrupt or hostile stream cannot
// make the decoder buffer without limit.
const MaxLineBytes = 1 << 20

// Decoder reads a JSONL trace stream one record at a time with bounded
// memory: only the current line is ever held, so arbitrarily long
// streams — live run streams included — can be consumed without
// materializing the event slice ReadJSONL returns.
//
// NewDecoder consumes the header line eagerly; Next then yields one
// event per call until io.EOF. Raw exposes the exact bytes of the last
// record returned (without the newline), which lets relays — the replay
// endpoint serving a stored trace — forward lines byte-identical to the
// source instead of re-encoding them.
type Decoder struct {
	sc     *bufio.Scanner
	header Header
	raw    []byte
}

// NewDecoder reads the stream header from r and returns a decoder
// positioned at the first event.
func NewDecoder(r io.Reader) (*Decoder, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	d := &Decoder{sc: sc}
	line, err := d.nextLine()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: decoding header: %w", io.ErrUnexpectedEOF)
	} else if err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if err := json.Unmarshal(line, &d.header); err != nil {
		return nil, fmt.Errorf("trace: decoding header: %w", err)
	}
	if d.header.Kind != "header" {
		return nil, fmt.Errorf("trace: stream does not start with a header (kind %q)", d.header.Kind)
	}
	return d, nil
}

// Header returns the stream header read by NewDecoder.
func (d *Decoder) Header() Header { return d.header }

// Next returns the next record in the stream, io.EOF at the end, or a
// decode error. Records of unknown kind (e.g. "epoch" marks) are
// returned as-is with their Kind set; callers that only understand
// engine events skip kinds they do not handle.
func (d *Decoder) Next() (Event, error) {
	line, err := d.nextLine()
	if err != nil {
		return Event{}, err
	}
	var e Event
	if err := json.Unmarshal(line, &e); err != nil {
		return Event{}, fmt.Errorf("trace: decoding event: %w", err)
	}
	// An "epoch" record exists only to carry its stamp (every real
	// emitter numbers epochs from 1); a zero stamp means the line was
	// produced by something that is not a trace writer.
	if e.Kind == "epoch" && e.Epoch == 0 {
		return Event{}, fmt.Errorf("trace: epoch mark missing its epoch stamp")
	}
	return e, nil
}

// Raw returns the raw bytes of the last record returned by Next (or the
// header, before the first Next), without a trailing newline. The slice
// is only valid until the next Next call.
func (d *Decoder) Raw() []byte { return d.raw }

// nextLine advances to the next non-blank line, returning io.EOF at the
// end of the stream.
func (d *Decoder) nextLine() ([]byte, error) {
	for d.sc.Scan() {
		line := d.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		d.raw = line
		return line, nil
	}
	if err := d.sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			// Name the bound instead of leaking the scanner's message: the
			// caller's next question is "how big is too big".
			return nil, fmt.Errorf("trace: record exceeds %d bytes (corrupt or oversized line)", MaxLineBytes)
		}
		return nil, err
	}
	return nil, io.EOF
}

// trimSpace strips ASCII whitespace without allocating (bytes.TrimSpace
// covers Unicode, which JSONL framing never needs).
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}
