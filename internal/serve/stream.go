package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/obs"
	"luxvis/internal/sim"
	"luxvis/internal/stream"
)

// Streaming endpoints. A run started with POST /v1/runs executes
// asynchronously on the same bounded worker pool as /v1/run, with a
// stream.Hub attached as its observer. Any number of clients can then
// follow the run live via GET /v1/runs/{id}/stream — each frame is
// encoded once by the hub and fanned out; a slow client is dropped-from
// or evicted per the hub policy and can resume with Last-Event-ID.
// Finished runs are retained (bounded) so the same endpoint replays
// them from the hub's history ring; stored trace files replay through
// GET /v1/replay/{name} when Options.TraceDir is set.
//
// Content negotiation: Accept: text/event-stream gets SSE (id: is the
// resume cursor, data: is one trace-JSONL line, the terminal frame is
// event: end); anything else gets raw NDJSON — exactly the trace JSONL
// encoding, so `curl .../stream | visreplay -` works.

// streamRun is one asynchronous, streamable run.
type streamRun struct {
	id      string
	req     RunRequest
	family  string
	hub     *stream.Hub
	started time.Time

	mu      sync.Mutex
	state   string // "queued" | "running" | "done" | "failed"
	summary *RunSummary
	runErr  error
}

func (sr *streamRun) setRunning() {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.state == "queued" {
		sr.state = "running"
	}
}

// finish records the terminal state and makes sure the hub is closed
// even when the engine never reached RunEnd (queue rejection, abort
// before the first epoch).
func (sr *streamRun) finish(res *RunSummary, err error) {
	sr.mu.Lock()
	if err != nil {
		sr.state = "failed"
		sr.runErr = err
	} else {
		sr.state = "done"
		sr.summary = res
	}
	sr.mu.Unlock()
	sr.hub.Close(err)
}

func (sr *streamRun) status() (state string, summary *RunSummary, runErr error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.state, sr.summary, sr.runErr
}

// streamRegistry tracks streamable runs by id: the in-flight ones plus a
// bounded tail of completed ones retained for replay-from-cache.
//
// Retention and goroutine-lifecycle contract (the dynamic half of what
// the goleak analyzer proves statically): the registry owns no
// goroutines and closes no channels — each run's engine goroutine is
// the runner's, exits via its context or run end, and its hub is
// closed by RunEnd before completed() is called. Eviction is therefore
// pure bookkeeping: Release (idempotent) returns the evicted hub's
// ring accounting, while subscribers mid-drain on it still finish —
// a closed hub serves retained history to io.EOF, so forgetting a run
// can never park a consumer goroutine forever.
type streamRegistry struct {
	retain int

	mu   sync.Mutex
	seq  int64
	runs map[string]*streamRun
	// doneOrder lists completed run ids oldest-first; once it exceeds
	// retain, the oldest hub is released and its run forgotten.
	doneOrder []string
}

func newStreamRegistry(retain int) *streamRegistry {
	return &streamRegistry{retain: retain, runs: make(map[string]*streamRun)}
}

func (g *streamRegistry) add(req RunRequest, family string, hub *stream.Hub) *streamRun {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	sr := &streamRun{
		id:      fmt.Sprintf("r%d", g.seq),
		req:     req,
		family:  family,
		hub:     hub,
		started: time.Now(),
		state:   "queued",
	}
	g.runs[sr.id] = sr
	return sr
}

func (g *streamRegistry) get(id string) (*streamRun, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sr, ok := g.runs[id]
	return sr, ok
}

// remove forgets a run that never started (submit failure).
func (g *streamRegistry) remove(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.runs, id)
}

// completed moves a finished run into the bounded retention tail,
// evicting (and releasing) the oldest beyond the retain limit.
func (g *streamRegistry) completed(sr *streamRun) {
	var evicted []*streamRun
	g.mu.Lock()
	g.doneOrder = append(g.doneOrder, sr.id)
	for len(g.doneOrder) > g.retain {
		oldest := g.doneOrder[0]
		g.doneOrder = g.doneOrder[1:]
		if old, ok := g.runs[oldest]; ok {
			delete(g.runs, oldest)
			evicted = append(evicted, old)
		}
	}
	g.mu.Unlock()
	// Release returns ring accounting to the shared counters; subscribers
	// mid-drain on an evicted hub still finish (the hub itself is GC-safe,
	// only the registry forgets it).
	for _, old := range evicted {
		old.hub.Release()
	}
}

func (g *streamRegistry) list() []*streamRun {
	g.mu.Lock()
	out := make([]*streamRun, 0, len(g.runs))
	for _, sr := range g.runs {
		out = append(out, sr)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].started.Before(out[j].started) })
	return out
}

// StreamRunStatus is the GET /v1/runs/{id} (and list element) response.
type StreamRunStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler"`
	Family    string `json:"family"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	// Frames is the number of stream frames published so far; Retained
	// is how many the resume ring still holds, starting at OldestSeq.
	Frames      uint64      `json:"frames"`
	Retained    int         `json:"retained"`
	OldestSeq   uint64      `json:"oldestSeq"`
	Subscribers int         `json:"subscribers"`
	StartedAt   time.Time   `json:"startedAt"`
	StreamPath  string      `json:"streamPath"`
	Summary     *RunSummary `json:"summary,omitempty"`
	Error       string      `json:"error,omitempty"`
}

func (sr *streamRun) statusJSON() StreamRunStatus {
	state, summary, runErr := sr.status()
	st := sr.hub.Stats()
	out := StreamRunStatus{
		ID:          sr.id,
		State:       state,
		Algorithm:   sr.req.Algorithm,
		Scheduler:   sr.req.Scheduler,
		Family:      sr.family,
		N:           sr.req.N,
		Seed:        sr.req.Seed,
		Frames:      st.Frames,
		Retained:    st.Depth,
		OldestSeq:   st.OldestSeq,
		Subscribers: st.Subscribers,
		StartedAt:   sr.started,
		StreamPath:  "/v1/runs/" + sr.id + "/stream",
		Summary:     summary,
	}
	if runErr != nil {
		out.Error = runErr.Error()
	}
	return out
}

// handleRunsCreate starts an asynchronous streamable run: 202 with the
// run id and stream path; the engine executes on the worker pool.
func (s *Server) handleRunsCreate(w http.ResponseWriter, r *http.Request) {
	req, err := parseRunRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	algo, scheduler, fam, err := s.validate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	hub := stream.NewHub(stream.HubOptions{
		History:  s.opt.StreamHistory,
		Counters: s.streamCtr,
		Note:     "live stream",
	})
	sr := s.streams.add(req, string(fam), hub)

	// The run deliberately outlives the creating request: the POST
	// returns 202 immediately and clients follow the run over the stream
	// endpoint, so the job's lifetime is bounded by its own timeout, not
	// by r.Context().
	ctx, cancel := context.WithTimeout(context.Background(), s.timeoutFor(req.TimeoutMs))

	j := &job{
		ctx:    ctx,
		key:    req.cacheKey(),
		done:   make(chan struct{}),
		server: s,
		run: func(ctx context.Context) (*RunSummary, error) {
			sr.setRunning()
			c := req.canonical()
			pts := config.Generate(fam, c.N, c.Seed)
			opt := sim.DefaultOptions(scheduler, c.Seed)
			opt.MaxEpochs = c.MaxEpochs
			opt.NonRigid = c.NonRigid
			if c.NonRigid {
				opt.MinMoveFrac = c.MinMoveFrac
			}
			opt.SkipSafetyChecks = c.SkipChecks
			entry := s.runs.add(req, string(fam))
			defer s.runs.remove(entry.id)
			opt.Observer = obs.Multi(s.totals, entry.observer(), hub)
			res, err := sim.RunCtx(ctx, algo, pts, opt)
			if err != nil {
				return nil, err
			}
			return &RunSummary{
				Algorithm:     res.Algorithm,
				Scheduler:     res.Scheduler,
				Family:        string(fam),
				N:             res.N,
				Seed:          res.Seed,
				NonRigid:      req.NonRigid,
				Reached:       res.Reached,
				Epochs:        res.Epochs,
				FirstCVEpoch:  res.FirstCVEpoch,
				Events:        res.Events,
				Cycles:        res.Cycles,
				Moves:         res.Moves,
				TotalDist:     res.TotalDist,
				ColorsUsed:    res.ColorsUsed,
				Collisions:    res.Collisions,
				PathCrossings: res.PathCrossings,
				MinPairDist:   res.MinPairDist,
			}, nil
		},
	}
	if err := s.submitTracked(j); err != nil {
		cancel()
		sr.finish(nil, err)
		s.streams.remove(sr.id)
		hub.Release()
		s.rejectJob(w, err)
		return
	}
	go s.finishAsync(sr, j, cancel)

	writeJSON(w, http.StatusAccepted, StreamRunStatus{
		ID:         sr.id,
		State:      "queued",
		Algorithm:  req.Algorithm,
		Scheduler:  req.Scheduler,
		Family:     string(fam),
		N:          req.N,
		Seed:       req.Seed,
		StartedAt:  sr.started,
		StreamPath: "/v1/runs/" + sr.id + "/stream",
	})
}

// finishAsync settles an async job once its worker closes done: terminal
// state, job accounting, and completed-run retention.
func (s *Server) finishAsync(sr *streamRun, j *job, cancel context.CancelFunc) {
	<-j.done
	cancel()
	sr.finish(j.res, j.err)
	switch {
	case j.err == nil:
		s.metrics.jobCompleted()
	case errors.Is(j.err, context.DeadlineExceeded) || errors.Is(j.err, context.Canceled):
		s.metrics.jobTimedOut()
	default:
		s.metrics.jobFailed()
	}
	s.streams.completed(sr)
}

// StreamRunList is the GET /v1/runs response.
type StreamRunList struct {
	Count int               `json:"count"`
	Runs  []StreamRunStatus `json:"runs"`
}

func (s *Server) handleRunsList(w http.ResponseWriter, r *http.Request) {
	runs := s.streams.list()
	out := StreamRunList{Count: len(runs), Runs: make([]StreamRunStatus, 0, len(runs))}
	for _, sr := range runs {
		out.Runs = append(out.Runs, sr.statusJSON())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRunStatus(w http.ResponseWriter, r *http.Request) {
	sr, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sr.statusJSON())
}

// streamParams are the per-request stream shaping knobs.
type streamParams struct {
	after     uint64  // resume cursor: Last-Event-ID header or ?after=
	speed     float64 // ?speed= replay pace multiplier
	speedSet  bool
	fromEpoch int // ?from= epoch seek
	sse       bool
}

func parseStreamParams(r *http.Request) (streamParams, error) {
	var p streamParams
	q := r.URL.Query()
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad Last-Event-ID %q: %w", v, err)
		}
		p.after = x
	}
	// ?after= overrides the header: it is the explicit, curl-able form.
	if v := q.Get("after"); v != "" {
		x, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad after=%q: %w", v, err)
		}
		p.after = x
	}
	if v := q.Get("speed"); v != "" {
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 {
			return p, fmt.Errorf("bad speed=%q (want a multiplier >= 0; 0 = unpaced)", v)
		}
		p.speed = x
		p.speedSet = true
	}
	if v := q.Get("from"); v != "" {
		x, err := strconv.Atoi(v)
		if err != nil || x < 0 {
			return p, fmt.Errorf("bad from=%q (want an epoch >= 0)", v)
		}
		p.fromEpoch = x
	}
	p.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	return p, nil
}

// streamTo pumps src to the client in the negotiated encoding, flushing
// per frame so consumers see events as they happen. endNote, when
// non-nil, is sent as the SSE terminal event after a clean end of
// stream (NDJSON stays a pure trace stream — header and event lines
// only, byte-compatible with a stored trace file).
func (s *Server) streamTo(w http.ResponseWriter, r *http.Request, src stream.Source, opt stream.ReplayOptions, gap uint64, endNote func() []byte) {
	rc := http.NewResponseController(w)
	if gap > 0 {
		// The resume cursor predates the ring: the client lost gap frames.
		w.Header().Set("X-Stream-Gap", strconv.FormatUint(gap, 10))
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(f stream.Frame) error {
		var err error
		if sse {
			_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", f.Seq, f.Data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", f.Data)
		}
		if err != nil {
			return err
		}
		return rc.Flush()
	}
	err := stream.Replay(r.Context(), src, opt, emit)
	switch {
	case err == nil:
		if sse && endNote != nil {
			if note := endNote(); note != nil {
				// Terminal SSE frame: a write error here means the client
				// hung up after receiving the whole stream.
				_, _ = fmt.Fprintf(w, "event: end\ndata: %s\n\n", note)
				//lint:allow errsink best-effort flush of the terminal frame; the stream is complete and the connection is about to close
				_ = rc.Flush()
			}
		}
	case errors.Is(err, stream.ErrEvicted):
		if sse {
			// Best-effort eviction notice on a connection we are
			// abandoning anyway.
			_, _ = fmt.Fprint(w, "event: error\ndata: {\"error\":\"evicted: subscriber fell too far behind\"}\n\n")
			//lint:allow errsink best-effort flush of the eviction notice on a connection being abandoned
			_ = rc.Flush()
		}
	default:
		// Client went away or the run context ended: the transport is
		// already torn down, nothing to report.
	}
}

// handleRunStream serves GET /v1/runs/{id}/stream: live fan-out while
// the run executes, replay from the hub's retained history once it has
// finished. Live streams default to unpaced (the run itself is the
// clock); finished-run replays default to 1x synthetic pace.
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	sr, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	p, err := parseStreamParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	speed := 0.0
	if sr.hub.Done() {
		speed = 1.0
	}
	if p.speedSet {
		speed = p.speed
	}
	sub := sr.hub.Subscribe(p.after)
	defer sub.Close()
	s.streamTo(w, r, sub, stream.ReplayOptions{Speed: speed, FromEpoch: p.fromEpoch}, sub.Gap(), sr.hub.EndNote)
}

// traceName accepts plain file names only — path separators and dot
// prefixes never reach the filesystem.
var traceName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// handleTraceReplay serves GET /v1/replay/{name}: a stored trace file
// from Options.TraceDir replayed as a timed stream, 1x by default.
func (s *Server) handleTraceReplay(w http.ResponseWriter, r *http.Request) {
	if s.opt.TraceDir == "" {
		writeError(w, http.StatusNotFound, "trace replay is not enabled (start with a trace directory)")
		return
	}
	name := r.PathValue("name")
	if !traceName.MatchString(name) {
		writeError(w, http.StatusBadRequest, "bad trace name %q", name)
		return
	}
	p, err := parseStreamParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	f, err := os.Open(filepath.Join(s.opt.TraceDir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "trace %q not found", name)
		return
	}
	defer f.Close()
	src, dec, err := stream.NewFileSource(f)
	if err != nil {
		writeError(w, http.StatusBadRequest, "trace %q: %v", name, err)
		return
	}
	speed := 1.0
	if p.speedSet {
		speed = p.speed
	}
	endNote := func() []byte {
		h := dec.Header()
		note, err := json.Marshal(map[string]any{
			"kind": "end", "reached": h.Reached, "epochs": h.Epochs, "events": h.Events,
		})
		if err != nil {
			return nil
		}
		return note
	}
	s.streamTo(w, r, src, stream.ReplayOptions{
		Speed:     speed,
		FromEpoch: p.fromEpoch,
		AfterSeq:  p.after,
	}, 0, endNote)
}
