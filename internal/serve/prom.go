package serve

import (
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"luxvis/internal/obs"
	"luxvis/internal/version"
)

// wantsPrometheus reports whether the client negotiated the Prometheus
// text exposition: any Accept header naming text/plain or an
// OpenMetrics media type. Absent or wildcard Accept keeps the JSON
// snapshot, so existing clients see no change.
func wantsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePrometheus renders the full metric surface in the Prometheus
// text exposition format (0.0.4): serve-layer counters and gauges,
// per-endpoint cumulative latency histograms, and the lifetime engine
// totals accumulated from every run this process executed.
func (s *Server) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", obs.PromContentType)
	pw := obs.NewTextWriter(w)

	jc := s.metrics.counters()
	pw.Counter("visserve_jobs_accepted_total", "Jobs admitted to the queue.", float64(jc.Accepted))
	pw.Counter("visserve_jobs_completed_total", "Jobs that finished successfully.", float64(jc.Completed))
	pw.Counter("visserve_jobs_rejected_total", "Jobs shed at submission (full queue or shutdown).", float64(jc.Rejected))
	pw.Counter("visserve_jobs_timeout_total", "Jobs that hit their deadline.", float64(jc.Timeouts))
	pw.Counter("visserve_jobs_failed_total", "Jobs that failed with an engine or experiment error.", float64(jc.Failed))

	pw.Gauge("visserve_queue_depth", "Jobs currently waiting for a worker.", float64(len(s.queue)))
	pw.Gauge("visserve_queue_capacity", "Maximum queued jobs before load shedding.", float64(cap(s.queue)))
	pw.Gauge("visserve_workers_total", "Size of the worker pool.", float64(s.opt.Workers))
	pw.Gauge("visserve_workers_busy", "Workers currently executing a job.", float64(s.metrics.busyWorkers()))

	cs := s.cache.stats()
	pw.Counter("visserve_cache_hits_total", "Result-cache hits.", float64(cs.Hits))
	pw.Counter("visserve_cache_misses_total", "Result-cache misses.", float64(cs.Misses))
	pw.Gauge("visserve_cache_size", "Result-cache entries.", float64(cs.Size))
	pw.Gauge("visserve_cache_capacity", "Result-cache capacity.", float64(cs.Capacity))

	pw.Gauge("visserve_runs_inflight", "Engine runs currently executing.", float64(s.runs.len()))
	pw.Gauge("visserve_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())

	// Per-endpoint latency histograms, sorted for a stable exposition.
	hists := s.metrics.histograms()
	endpoints := make([]string, 0, len(hists))
	for ep := range hists {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		pw.Histogram("visserve_request_duration_ms",
			"HTTP handler latency in milliseconds (lifetime cumulative histogram).",
			hists[ep], obs.Label{Name: "endpoint", Value: ep})
	}

	s.totals.WritePrometheus(pw, "luxvis_engine")
	s.streamCtr.WritePrometheus(pw, "luxvis_stream")

	// Build identity as a constant-1 info gauge, the Prometheus idiom
	// for exposing labels rather than a measurement.
	pw.Gauge("luxvis_build_info", "Build identity; the value is always 1.", 1,
		obs.Label{Name: "version", Value: version.Short()},
		obs.Label{Name: "go_version", Value: runtime.Version()})
	if err := pw.Err(); err != nil {
		// The response is already streaming; nothing useful to send.
		return
	}
}
