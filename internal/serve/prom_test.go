package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"luxvis/internal/serve"
)

// getProm scrapes /metrics with the Prometheus Accept header.
func getProm(t *testing.T, ts *httptest.Server) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type")
}

var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	// A run first, so engine totals and latency histograms are non-empty.
	if code := getJSON(t, ts.URL+"/v1/run?n=12&seed=3&scheduler=async-rr", nil); code != http.StatusOK {
		t.Fatalf("/v1/run status %d", code)
	}

	// Default Accept: the JSON snapshot, exactly as before.
	m := metricsSnapshot(t, ts)
	if m.Jobs.Completed != 1 {
		t.Errorf("JSON snapshot jobs: %+v", m.Jobs)
	}
	lat, ok := m.LatencyMs["/v1/run"]
	if !ok {
		t.Fatalf("JSON snapshot missing /v1/run latency: %v", m.LatencyMs)
	}
	if lat.Count != 1 || lat.WindowCount != 1 {
		t.Errorf("latency Count=%d WindowCount=%d, want 1/1", lat.Count, lat.WindowCount)
	}

	// Prometheus Accept: the text exposition.
	body, ct := getProm(t, ts)
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"visserve_jobs_completed_total 1",
		"visserve_workers_total 2",
		"visserve_cache_misses_total 1",
		`visserve_request_duration_ms_count{endpoint="/v1/run"} 1`,
		`visserve_request_duration_ms_bucket{endpoint="/v1/run",le="+Inf"} 1`,
		"luxvis_engine_runs_started_total 1",
		"luxvis_engine_cv_reached_total 1",
		`luxvis_engine_phase_cycles_total{phase="interior-depletion"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestConcurrentScrapes hammers both /metrics encodings while runs
// execute; run under -race in CI to prove the atomic snapshot paths.
func TestConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			getJSON(t, ts.URL+"/v1/run?n=10&scheduler=async-rr&seed="+string(rune('1'+seed)), nil)
		}(i)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				getProm(t, ts)
			} else {
				metricsSnapshot(t, ts)
			}
		}(i)
	}
	wg.Wait()
}

func TestDebugHandler(t *testing.T) {
	s, ts := newTestServer(t, serve.Options{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/run?n=8&scheduler=async-rr&seed=2", nil); code != http.StatusOK {
		t.Fatalf("/v1/run status %d", code)
	}

	ds := httptest.NewServer(s.DebugHandler())
	defer ds.Close()

	var runs serve.DebugRuns
	if code := getJSON(t, ds.URL+"/debug/runs", &runs); code != http.StatusOK {
		t.Fatalf("/debug/runs status %d", code)
	}
	if runs.Count != 0 || len(runs.Runs) != 0 {
		t.Errorf("in-flight runs after completion: %+v", runs)
	}

	// pprof index answers on the debug listener.
	resp, err := http.Get(ds.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}
