package serve

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"luxvis/internal/obs"
	"luxvis/internal/sim"
	"luxvis/internal/version"
)

// runRegistry tracks in-flight engine runs so /debug/runs can show what
// the worker pool is doing right now, with each run's current epoch.
type runRegistry struct {
	mu sync.Mutex
	// All fields below are guarded by mu.
	seq  int64
	runs map[int64]*runEntry
}

// runEntry is one in-flight run. epoch is atomic because the engine
// goroutine stores it (via the observer) while handler goroutines load
// it for the listing.
type runEntry struct {
	id        int64
	algorithm string
	scheduler string
	family    string
	n         int
	seed      int64
	started   time.Time
	epoch     atomic.Int64
}

func newRunRegistry() *runRegistry {
	return &runRegistry{runs: make(map[int64]*runEntry)}
}

func (g *runRegistry) add(req RunRequest, family string) *runEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	e := &runEntry{
		id:        g.seq,
		algorithm: req.Algorithm,
		scheduler: req.Scheduler,
		family:    family,
		n:         req.N,
		seed:      req.Seed,
		started:   time.Now(),
	}
	g.runs[e.id] = e
	return e
}

func (g *runRegistry) remove(id int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.runs, id)
}

func (g *runRegistry) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// observer returns the per-run observer that keeps the entry's epoch
// counter current while the engine runs.
func (e *runEntry) observer() sim.Observer {
	return &obs.Funcs{
		OnEpochEnd: func(s sim.EpochSample) { e.epoch.Store(int64(s.Epoch)) },
	}
}

// DebugRun is one row of the /debug/runs listing.
type DebugRun struct {
	ID        int64  `json:"id"`
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler"`
	Family    string `json:"family"`
	N         int    `json:"n"`
	Seed      int64  `json:"seed"`
	// Epoch is the run's last completed epoch (0 while the first epoch
	// is still in flight).
	Epoch     int64     `json:"epoch"`
	RunningMs int64     `json:"runningMs"`
	StartedAt time.Time `json:"startedAt"`
}

// DebugRuns is the /debug/runs response.
type DebugRuns struct {
	Count int        `json:"count"`
	Runs  []DebugRun `json:"runs"`
}

func (g *runRegistry) list() DebugRuns {
	g.mu.Lock()
	entries := make([]*runEntry, 0, len(g.runs))
	for _, e := range g.runs {
		entries = append(entries, e)
	}
	g.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	out := DebugRuns{Count: len(entries), Runs: make([]DebugRun, 0, len(entries))}
	for _, e := range entries {
		out.Runs = append(out.Runs, DebugRun{
			ID:        e.id,
			Algorithm: e.algorithm,
			Scheduler: e.scheduler,
			Family:    e.family,
			N:         e.n,
			Seed:      e.seed,
			Epoch:     e.epoch.Load(),
			RunningMs: time.Since(e.started).Milliseconds(),
			StartedAt: e.started,
		})
	}
	return out
}

func (s *Server) handleDebugRuns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.runs.list())
}

// DebugHandler returns the operator-only handler: net/http/pprof under
// /debug/pprof/ and the in-flight run listing under /debug/runs. It is
// meant for a separate loopback listener (visserve -debug-addr), never
// the public one — profiles expose memory contents.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/runs", s.handleDebugRuns)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:allow errsink best-effort banner on the loopback debug listener; an http.ResponseWriter error here means the client hung up and there is no stream state to protect
		_, _ = w.Write([]byte(version.String() + "\ndebug endpoints: /debug/runs /debug/pprof/ /healthz\n"))
	})
	return mux
}
