// Package serve exposes the simulator as a concurrent HTTP JSON
// service: run requests are executed on a bounded worker pool behind a
// bounded queue (load beyond the queue is shed with 429), every job
// carries a deadline that the engine honors at epoch boundaries, and
// completed runs land in a seed-keyed LRU cache so repeated identical
// requests never re-simulate.
//
// Endpoints:
//
//	GET/POST /v1/run         run one scenario, JSON summary
//	POST     /v1/experiment  run one experiment table, text output
//	GET      /healthz        liveness + build identity
//	GET      /metrics        queue/worker/cache/latency snapshot (JSON),
//	                         or Prometheus text when Accept: text/plain
//
// DebugHandler serves a second, operator-only handler (pprof and
// /debug/runs) intended for a loopback listener.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"luxvis/internal/baseline"
	"luxvis/internal/circlevis"
	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exp"
	"luxvis/internal/model"
	"luxvis/internal/obs"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/stream"
	"luxvis/internal/version"
)

// Options configures a Server. The zero value is usable: every field
// has a default.
type Options struct {
	// Workers is the number of concurrent simulation workers
	// (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are shed with 429 (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 512).
	CacheSize int
	// DefaultTimeout caps a job's run time when the request does not
	// set timeoutMs (default 2 minutes).
	DefaultTimeout time.Duration
	// MaxN rejects run requests above this swarm size (default 16384).
	MaxN int
	// StreamHistory is the per-run stream hub history-ring capacity:
	// how far back Last-Event-ID resume (and finished-run replay) can
	// reach (default stream.DefaultHistory).
	StreamHistory int
	// StreamRetain bounds how many finished streamable runs are kept
	// for replay before the oldest is forgotten (default 64).
	StreamRetain int
	// TraceDir, when set, enables GET /v1/replay/{name}: stored trace
	// files under this directory are served as timed streams.
	TraceDir string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 512
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxN <= 0 {
		o.MaxN = 16384
	}
	if o.StreamRetain <= 0 {
		o.StreamRetain = 64
	}
	return o
}

// Server runs simulations over a bounded worker pool and serves them
// over HTTP. Create with New, mount Handler, stop with Close.
type Server struct {
	opt     Options
	queue   chan *job
	wg      sync.WaitGroup
	cache   *lru
	metrics *serverMetrics
	totals  *obs.EngineTotals
	runs    *runRegistry
	streams *streamRegistry
	// streamCtr aggregates hub/subscriber accounting across every
	// streamable run — the luxvis_stream_* families.
	streamCtr *stream.Counters
	started   time.Time

	mu sync.Mutex
	// closed is guarded by mu: submissions and Close race on the queue
	// channel, and a send on a closed channel panics, so both sides
	// agree under the lock before touching it.
	closed bool
}

// job is one queued simulation request. The worker fills res/err and
// then closes done; the close is the happens-before edge that makes
// the fields safe to read on the handler side.
type job struct {
	ctx    context.Context
	run    func(context.Context) (*RunSummary, error)
	key    string // cache key; "" disables caching (experiments)
	res    *RunSummary
	err    error
	done   chan struct{}
	server *Server
}

// New starts a Server with opt.Workers workers already running.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:       opt,
		queue:     make(chan *job, opt.QueueDepth),
		cache:     newLRU(opt.CacheSize),
		metrics:   newServerMetrics(),
		totals:    obs.NewEngineTotals(),
		runs:      newRunRegistry(),
		streams:   newStreamRegistry(opt.StreamRetain),
		streamCtr: &stream.Counters{},
		started:   time.Now(),
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A job whose deadline already passed while queued is dead on
		// arrival: don't burn a worker on it.
		if err := j.ctx.Err(); err != nil {
			j.err = err
			close(j.done)
			continue
		}
		s.metrics.workerBusy(+1)
		j.res, j.err = j.run(j.ctx)
		if j.err == nil && j.key != "" {
			// Cache even when the waiting handler has already given
			// up: the next identical request then hits.
			s.cache.put(j.key, j.res)
		}
		s.metrics.workerBusy(-1)
		close(j.done)
	}
}

var (
	errClosed = errors.New("serve: server is shutting down")
	errFull   = errors.New("serve: job queue is full")
)

// submit enqueues j without blocking: a full queue is load to shed, not
// to absorb.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	select {
	// The send can never race Close's close(s.queue): both run under
	// s.mu, and the closed flag checked above flips before the close.
	case s.queue <- j: //lint:allow chanown send and close are serialized by s.mu via the closed flag
		return nil
	default:
		return errFull
	}
}

// Close stops accepting jobs and drains the in-flight ones; it returns
// early (with ctx.Err) if ctx expires first, leaving workers to finish
// in the background.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the HTTP handler for all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/run", s.timed("/v1/run", s.handleRun))
	mux.HandleFunc("/v1/experiment", s.timed("/v1/experiment", s.handleExperiment))
	// Streaming surface: async runs fan out live over SSE/NDJSON and
	// replay from retained history after they finish. The stream
	// endpoints are not wrapped in timed(): a subscriber holds its
	// connection for the run's lifetime, which would drown the latency
	// histogram's request-scale buckets.
	mux.HandleFunc("POST /v1/runs", s.timed("/v1/runs", s.handleRunsCreate))
	mux.HandleFunc("GET /v1/runs", s.handleRunsList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunStatus)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleRunStream)
	mux.HandleFunc("GET /v1/replay/{name}", s.handleTraceReplay)
	return mux
}

// timed wraps a handler with the per-endpoint latency histogram.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.metrics.observe(endpoint, float64(time.Since(start).Microseconds())/1000)
	}
}

// RunRequest is the /v1/run request body (POST) or query-parameter set
// (GET). Zero/absent fields take the documented defaults.
type RunRequest struct {
	Algorithm string `json:"algorithm"` // logvis (default) | seqvis | circlevis
	Scheduler string `json:"scheduler"` // sched.Names(); default async-random
	Family    string `json:"family"`    // config.Families(); default uniform
	N         int    `json:"n"`         // default 32
	Seed      int64  `json:"seed"`      // default 1
	NonRigid  bool   `json:"nonRigid"`
	// MinMoveFrac is the guaranteed fraction of a non-rigid move, in
	// (0, 1] (default 0.3). Only meaningful with nonRigid; ignored (and
	// absent from the run's cache identity) otherwise.
	MinMoveFrac float64 `json:"minMoveFrac"`
	MaxEpochs   int     `json:"maxEpochs"` // default engine default (4096)
	// SkipChecks disables per-step safety verification — the engine's
	// raw-throughput mode for large N.
	SkipChecks bool `json:"skipChecks"`
	// TimeoutMs caps this run's wall time (default Options.DefaultTimeout).
	// On expiry the engine aborts at the next epoch boundary and the
	// request fails with 504.
	TimeoutMs int `json:"timeoutMs"`
}

// RunSummary is the /v1/run response.
type RunSummary struct {
	Algorithm     string  `json:"algorithm"`
	Scheduler     string  `json:"scheduler"`
	Family        string  `json:"family"`
	N             int     `json:"n"`
	Seed          int64   `json:"seed"`
	NonRigid      bool    `json:"nonRigid"`
	Reached       bool    `json:"reached"`
	Epochs        int     `json:"epochs"`
	FirstCVEpoch  int     `json:"firstCVEpoch"`
	Events        int     `json:"events"`
	Cycles        int     `json:"cycles"`
	Moves         int     `json:"moves"`
	TotalDist     float64 `json:"totalDist"`
	ColorsUsed    int     `json:"colorsUsed"`
	Collisions    int     `json:"collisions"`
	PathCrossings int     `json:"pathCrossings"`
	MinPairDist   float64 `json:"minPairDist"`
	// Cached reports whether this response was served from the LRU
	// cache without re-running the engine.
	Cached bool `json:"cached"`
}

// errorJSON is the error response body for every non-2xx status.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"version":       version.String(),
		"uptimeSeconds": int64(time.Since(s.started).Seconds()),
	})
}

// MetricsSnapshot is the /metrics response.
type MetricsSnapshot struct {
	Jobs    JobCounters `json:"jobs"`
	Queue   QueueStats  `json:"queue"`
	Workers WorkerStats `json:"workers"`
	Cache   CacheStats  `json:"cache"`
	// LatencyMs maps endpoint path to its latency histogram.
	LatencyMs map[string]LatencySummary `json:"latencyMs"`
}

// QueueStats reports the job queue's occupancy.
type QueueStats struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// WorkerStats reports pool utilization.
type WorkerStats struct {
	Total int `json:"total"`
	Busy  int `json:"busy"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Content negotiation: Prometheus scrapers ask for text/plain (or
	// OpenMetrics); everyone else keeps getting the original JSON
	// snapshot, byte-compatible with pre-Prometheus clients.
	if wantsPrometheus(r) {
		s.writePrometheus(w)
		return
	}
	jobs, busy, lat := s.metrics.snapshot()
	writeJSON(w, http.StatusOK, MetricsSnapshot{
		Jobs:      jobs,
		Queue:     QueueStats{Depth: len(s.queue), Capacity: cap(s.queue)},
		Workers:   WorkerStats{Total: s.opt.Workers, Busy: busy},
		Cache:     s.cache.stats(),
		LatencyMs: lat,
	})
}

// parseRunRequest decodes a RunRequest from a POST JSON body or GET
// query parameters and fills defaults.
func parseRunRequest(r *http.Request) (RunRequest, error) {
	req := RunRequest{Algorithm: "logvis", Scheduler: "async-random", Family: "uniform", N: 32, Seed: 1}
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
		if req.Algorithm == "" {
			req.Algorithm = "logvis"
		}
		if req.Scheduler == "" {
			req.Scheduler = "async-random"
		}
		if req.Family == "" {
			req.Family = "uniform"
		}
		if req.N == 0 {
			req.N = 32
		}
	case http.MethodGet:
		q := r.URL.Query()
		if v := q.Get("algorithm"); v != "" {
			req.Algorithm = v
		}
		if v := q.Get("scheduler"); v != "" {
			req.Scheduler = v
		}
		if v := q.Get("family"); v != "" {
			req.Family = v
		}
		for _, f := range []struct {
			name string
			dst  *int
		}{{"n", &req.N}, {"maxEpochs", &req.MaxEpochs}, {"timeoutMs", &req.TimeoutMs}} {
			if v := q.Get(f.name); v != "" {
				x, err := strconv.Atoi(v)
				if err != nil {
					return req, fmt.Errorf("bad %s=%q: %w", f.name, v, err)
				}
				*f.dst = x
			}
		}
		if v := q.Get("seed"); v != "" {
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad seed=%q: %w", v, err)
			}
			req.Seed = x
		}
		if v := q.Get("minMoveFrac"); v != "" {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return req, fmt.Errorf("bad minMoveFrac=%q: %w", v, err)
			}
			req.MinMoveFrac = x
		}
		for _, f := range []struct {
			name string
			dst  *bool
		}{{"nonRigid", &req.NonRigid}, {"skipChecks", &req.SkipChecks}} {
			if v := q.Get(f.name); v != "" {
				x, err := strconv.ParseBool(v)
				if err != nil {
					return req, fmt.Errorf("bad %s=%q: %w", f.name, v, err)
				}
				*f.dst = x
			}
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	return req, nil
}

// algorithmByName maps the wire name to a fresh algorithm instance.
func algorithmByName(name string) (model.Algorithm, error) {
	switch name {
	case "logvis":
		return core.NewLogVis(), nil
	case "seqvis":
		return baseline.NewSeqVis(), nil
	case "circlevis":
		return circlevis.NewCircleVis(), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (known: logvis, seqvis, circlevis)", name)
	}
}

// validate checks req against the server limits and resolves every
// name, returning the pieces needed to run it.
func (s *Server) validate(req RunRequest) (model.Algorithm, sched.Scheduler, config.Family, error) {
	algo, err := algorithmByName(req.Algorithm)
	if err != nil {
		return nil, nil, "", err
	}
	scheduler, err := sched.ByNameErr(req.Scheduler)
	if err != nil {
		return nil, nil, "", err
	}
	fam := config.Family(req.Family)
	known := false
	for _, f := range config.Families() {
		if fam == f {
			known = true
			break
		}
	}
	if !known {
		names := make([]string, len(config.Families()))
		for i, f := range config.Families() {
			names[i] = string(f)
		}
		return nil, nil, "", fmt.Errorf("unknown family %q (known: %s)", req.Family, strings.Join(names, ", "))
	}
	if req.N < 1 || req.N > s.opt.MaxN {
		return nil, nil, "", fmt.Errorf("n=%d out of range [1, %d]", req.N, s.opt.MaxN)
	}
	if req.MaxEpochs < 0 {
		return nil, nil, "", fmt.Errorf("maxEpochs=%d must be >= 0", req.MaxEpochs)
	}
	if req.TimeoutMs < 0 {
		return nil, nil, "", fmt.Errorf("timeoutMs=%d must be >= 0", req.TimeoutMs)
	}
	// Non-finite floats must be rejected here: the engine's own range
	// clamp is written as `!(f > 0 && f <= 1)` so NaN falls back to the
	// default there, but a NaN reaching cacheKey would also stringify to
	// a key no equivalent request ever matches. 0 means "default".
	if math.IsNaN(req.MinMoveFrac) || math.IsInf(req.MinMoveFrac, 0) {
		return nil, nil, "", fmt.Errorf("minMoveFrac=%v must be finite", req.MinMoveFrac)
	}
	if req.MinMoveFrac < 0 || req.MinMoveFrac > 1 {
		return nil, nil, "", fmt.Errorf("minMoveFrac=%v out of range [0, 1]", req.MinMoveFrac)
	}
	return algo, scheduler, fam, nil
}

// canonical returns req with every defaultable field resolved to the
// value the engine will actually run with: maxEpochs=0 becomes the
// engine default, minMoveFrac collapses to 0 for rigid runs (the engine
// never reads it) and to the engine default for non-rigid runs that
// left it unset. Requests that are equivalent — one spelling a default
// explicitly, the other omitting it — canonicalize identically, so
// they share one cache entry and one in-flight job. Must be called
// after validate: it assumes finite, in-range numeric fields.
func (req RunRequest) canonical() RunRequest {
	c := req
	if c.MaxEpochs == 0 {
		c.MaxEpochs = sim.DefaultMaxEpochs
	}
	if !c.NonRigid {
		c.MinMoveFrac = 0
		//lint:allow floateq exact 0 is the wire sentinel for "unset", not a computed value
	} else if c.MinMoveFrac == 0 {
		c.MinMoveFrac = sim.DefaultMinMoveFrac
	}
	return c
}

// cacheKey is the canonical identity of a run: the request is
// canonicalized first, then every field that can change the Result is
// formatted in. The timeout is not part of the identity (it changes
// whether a run finishes, not what a finished run computes).
func (req RunRequest) cacheKey() string {
	c := req.canonical()
	return fmt.Sprintf("%s|%s|%s|n=%d|seed=%d|nonRigid=%t|minMoveFrac=%g|maxEpochs=%d|skipChecks=%t",
		c.Algorithm, c.Scheduler, c.Family, c.N, c.Seed,
		c.NonRigid, c.MinMoveFrac, c.MaxEpochs, c.SkipChecks)
}

func (s *Server) timeoutFor(ms int) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.opt.DefaultTimeout
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, err := parseRunRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "not allowed") {
			status = http.StatusMethodNotAllowed
		}
		writeError(w, status, "%v", err)
		return
	}
	algo, scheduler, fam, err := s.validate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	key := req.cacheKey()
	if cached, ok := s.cache.get(key); ok {
		out := *cached
		out.Cached = true
		writeJSON(w, http.StatusOK, out)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()

	j := &job{
		ctx:    ctx,
		key:    key,
		done:   make(chan struct{}),
		server: s,
		run: func(ctx context.Context) (*RunSummary, error) {
			c := req.canonical()
			pts := config.Generate(fam, c.N, c.Seed)
			opt := sim.DefaultOptions(scheduler, c.Seed)
			opt.MaxEpochs = c.MaxEpochs
			opt.NonRigid = c.NonRigid
			if c.NonRigid {
				opt.MinMoveFrac = c.MinMoveFrac
			}
			opt.SkipSafetyChecks = c.SkipChecks
			// Lifetime engine totals for /metrics plus a per-run epoch
			// tracker for /debug/runs; both are lock-free on the engine
			// side.
			entry := s.runs.add(req, string(fam))
			defer s.runs.remove(entry.id)
			opt.Observer = obs.Multi(s.totals, entry.observer())
			res, err := sim.RunCtx(ctx, algo, pts, opt)
			if err != nil {
				return nil, err
			}
			return &RunSummary{
				Algorithm:     res.Algorithm,
				Scheduler:     res.Scheduler,
				Family:        string(fam),
				N:             res.N,
				Seed:          res.Seed,
				NonRigid:      req.NonRigid,
				Reached:       res.Reached,
				Epochs:        res.Epochs,
				FirstCVEpoch:  res.FirstCVEpoch,
				Events:        res.Events,
				Cycles:        res.Cycles,
				Moves:         res.Moves,
				TotalDist:     res.TotalDist,
				ColorsUsed:    res.ColorsUsed,
				Collisions:    res.Collisions,
				PathCrossings: res.PathCrossings,
				MinPairDist:   res.MinPairDist,
			}, nil
		},
	}
	s.dispatch(w, j)
}

// ExperimentRequest is the /v1/experiment request body.
type ExperimentRequest struct {
	Name      string `json:"name"` // exp.Names()
	Quick     bool   `json:"quick"`
	Seeds     int    `json:"seeds"`
	MaxEpochs int    `json:"maxEpochs"`
	TimeoutMs int    `json:"timeoutMs"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req ExperimentRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	known := false
	for _, name := range exp.Names() {
		if req.Name == name {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusBadRequest, "unknown experiment %q (known: %s)",
			req.Name, strings.Join(exp.Names(), ", "))
		return
	}
	if req.Seeds < 0 || req.MaxEpochs < 0 || req.TimeoutMs < 0 {
		writeError(w, http.StatusBadRequest, "seeds, maxEpochs and timeoutMs must be >= 0")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMs))
	defer cancel()

	// The handler may time out while the worker still writes, so the
	// buffer is locked per write — never across the run itself, which
	// blocks on the experiment's worker pool.
	out := &lockedBuffer{}
	j := &job{
		ctx:  ctx,
		done: make(chan struct{}),
		run: func(ctx context.Context) (*RunSummary, error) {
			cfg := exp.Config{
				Quick:     req.Quick,
				Seeds:     req.Seeds,
				MaxEpochs: req.MaxEpochs,
				Out:       out,
				Ctx:       ctx,
			}
			return nil, exp.Run(req.Name, cfg)
		},
	}
	if err := s.submitTracked(j); err != nil {
		s.rejectJob(w, err)
		return
	}
	select {
	case <-j.done:
		if j.err != nil {
			s.failJob(w, j.err)
			return
		}
		s.metrics.jobCompleted()
		text := out.String()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = fmt.Fprint(w, text)
	case <-ctx.Done():
		s.metrics.jobTimedOut()
		writeError(w, http.StatusGatewayTimeout,
			"experiment aborted: %v (runs stop at their next epoch boundary)", ctx.Err())
	}
}

// lockedBuffer is a mutex-guarded string accumulator shared between an
// experiment worker (writing progress) and its handler (snapshotting
// the output). The lock is held only for the duration of one write or
// read, never across the experiment run.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// submitTracked submits with accepted/rejected accounting.
func (s *Server) submitTracked(j *job) error {
	if err := s.submit(j); err != nil {
		s.metrics.jobRejected()
		return err
	}
	s.metrics.jobAccepted()
	return nil
}

func (s *Server) rejectJob(w http.ResponseWriter, err error) {
	if errors.Is(err, errFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

func (s *Server) failJob(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.metrics.jobTimedOut()
		writeError(w, http.StatusGatewayTimeout, "%v", err)
		return
	}
	s.metrics.jobFailed()
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// dispatch runs the common submit/await/respond path for run jobs.
func (s *Server) dispatch(w http.ResponseWriter, j *job) {
	if err := s.submitTracked(j); err != nil {
		s.rejectJob(w, err)
		return
	}
	select {
	case <-j.done:
		if j.err != nil {
			s.failJob(w, j.err)
			return
		}
		s.metrics.jobCompleted()
		writeJSON(w, http.StatusOK, *j.res)
	case <-j.ctx.Done():
		// The handler answers promptly; the worker (if it picked the
		// job up) aborts at its next epoch boundary and the accounting
		// for its slot resolves then.
		s.metrics.jobTimedOut()
		writeError(w, http.StatusGatewayTimeout,
			"run aborted: %v (engine stops at the next epoch boundary)", j.ctx.Err())
	}
}
