package serve

import (
	"math"
	"strings"
	"testing"

	"luxvis/internal/sim"
)

// baseReq mirrors the defaults parseRunRequest fills in.
func baseReq() RunRequest {
	return RunRequest{Algorithm: "logvis", Scheduler: "async-random", Family: "uniform", N: 32, Seed: 1}
}

// TestCacheKeyCanonicalPairs pins the canonicalization contract: a
// request spelling a default explicitly and one omitting it are the
// same run, so they must hash to the same cache entry; requests whose
// engine-visible parameters differ must not.
func TestCacheKeyCanonicalPairs(t *testing.T) {
	mod := func(f func(*RunRequest)) RunRequest {
		r := baseReq()
		f(&r)
		return r
	}
	equivalent := []struct {
		name string
		a, b RunRequest
	}{
		{"explicit default maxEpochs",
			baseReq(),
			mod(func(r *RunRequest) { r.MaxEpochs = sim.DefaultMaxEpochs })},
		{"explicit default minMoveFrac on non-rigid",
			mod(func(r *RunRequest) { r.NonRigid = true }),
			mod(func(r *RunRequest) { r.NonRigid = true; r.MinMoveFrac = sim.DefaultMinMoveFrac })},
		{"minMoveFrac ignored on rigid runs",
			baseReq(),
			mod(func(r *RunRequest) { r.MinMoveFrac = 0.7 })},
		{"timeout is not part of the run identity",
			baseReq(),
			mod(func(r *RunRequest) { r.TimeoutMs = 5000 })},
	}
	for _, tc := range equivalent {
		if ka, kb := tc.a.cacheKey(), tc.b.cacheKey(); ka != kb {
			t.Errorf("%s: keys differ:\n  %s\n  %s", tc.name, ka, kb)
		}
	}
	distinct := []struct {
		name string
		a, b RunRequest
	}{
		{"minMoveFrac changes non-rigid runs",
			mod(func(r *RunRequest) { r.NonRigid = true; r.MinMoveFrac = 0.3 }),
			mod(func(r *RunRequest) { r.NonRigid = true; r.MinMoveFrac = 0.5 })},
		{"maxEpochs below the default is a different run",
			baseReq(),
			mod(func(r *RunRequest) { r.MaxEpochs = 100 })},
		{"rigid and non-rigid differ",
			baseReq(),
			mod(func(r *RunRequest) { r.NonRigid = true })},
		{"skipChecks differs",
			baseReq(),
			mod(func(r *RunRequest) { r.SkipChecks = true })},
	}
	for _, tc := range distinct {
		if ka, kb := tc.a.cacheKey(), tc.b.cacheKey(); ka == kb {
			t.Errorf("%s: keys collide: %s", tc.name, ka)
		}
	}
}

// TestValidateRejectsNonFiniteMinMoveFrac covers the float boundary:
// NaN slips through naive range checks (NaN<=0 and NaN>1 are both
// false) and would both bypass the engine clamp and mint an
// unmatchable cache key, so validate must reject it outright.
func TestValidateRejectsNonFiniteMinMoveFrac(t *testing.T) {
	s := New(Options{})
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1, 1.5} {
		req := baseReq()
		req.NonRigid = true
		req.MinMoveFrac = bad
		if _, _, _, err := s.validate(req); err == nil {
			t.Errorf("validate accepted minMoveFrac=%v", bad)
		} else if !strings.Contains(err.Error(), "minMoveFrac") {
			t.Errorf("minMoveFrac=%v: error does not name the field: %v", bad, err)
		}
	}
	req := baseReq()
	req.NonRigid = true
	req.MinMoveFrac = 0.5
	if _, _, _, err := s.validate(req); err != nil {
		t.Errorf("validate rejected valid minMoveFrac=0.5: %v", err)
	}
}
