package serve

import (
	"sync"
	"sync/atomic"

	"luxvis/internal/obs"
	"luxvis/internal/stats"
)

// latWindow is the number of most-recent latency samples retained per
// endpoint; the quantiles in the JSON /metrics snapshot summarize this
// sliding window. The Prometheus exposition reports the lifetime
// cumulative histogram instead (see endpointLat.hist).
const latWindow = 4096

// latRing is a fixed-capacity ring of latency samples (milliseconds).
type latRing struct {
	buf   []float64
	next  int
	count int // total observations ever, not just retained
}

func (r *latRing) add(ms float64) {
	if len(r.buf) < latWindow {
		r.buf = append(r.buf, ms)
	} else {
		r.buf[r.next] = ms
		r.next = (r.next + 1) % latWindow
	}
	r.count++
}

// endpointLat bundles one endpoint's two latency views: the sliding
// window behind the JSON quantiles, and the lifetime cumulative
// histogram behind the Prometheus exposition.
type endpointLat struct {
	ring latRing
	hist *obs.Histogram
}

// LatencySummary is the per-endpoint latency summary reported by the
// JSON /metrics snapshot, computed with internal/stats order statistics.
//
// Semantics: Count is the lifetime number of observations since startup;
// WindowCount is the number of samples in the retained sliding window
// (at most 4096), and the mean/quantile/max fields describe that window
// only. For lifetime distributions scrape the Prometheus exposition,
// whose histograms never forget.
type LatencySummary struct {
	// Count is the total number of observations since startup.
	Count int `json:"count"`
	// WindowCount is the number of retained samples the remaining
	// fields summarize (the most recent min(Count, 4096) observations).
	WindowCount int     `json:"windowCount"`
	MeanMs      float64 `json:"meanMs"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P95Ms       float64 `json:"p95Ms"`
	MaxMs       float64 `json:"maxMs"`
}

// serverMetrics is the counter state behind /metrics. The job-lifecycle
// counters and the busy-worker gauge are plain atomics — the request
// path increments them without any lock churn; only the per-endpoint
// latency table (a map populated lazily) takes a mutex, once per
// completed request.
type serverMetrics struct {
	accepted  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	timeouts  atomic.Int64
	failed    atomic.Int64
	busy      atomic.Int64

	mu sync.Mutex
	// latencies is guarded by mu (map access and ring writes).
	latencies map[string]*endpointLat
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{latencies: make(map[string]*endpointLat)}
}

func (m *serverMetrics) jobAccepted() { m.accepted.Add(1) }

func (m *serverMetrics) jobCompleted() { m.completed.Add(1) }

func (m *serverMetrics) jobRejected() { m.rejected.Add(1) }

func (m *serverMetrics) jobTimedOut() { m.timeouts.Add(1) }

func (m *serverMetrics) jobFailed() { m.failed.Add(1) }

func (m *serverMetrics) workerBusy(delta int) { m.busy.Add(int64(delta)) }

func (m *serverMetrics) busyWorkers() int { return int(m.busy.Load()) }

// observe records one endpoint latency in milliseconds, in both the
// window ring and the lifetime histogram.
func (m *serverMetrics) observe(endpoint string, ms float64) {
	m.mu.Lock()
	e := m.latencies[endpoint]
	if e == nil {
		e = &endpointLat{hist: obs.NewHistogram(obs.DefaultLatencyBucketsMs()...)}
		m.latencies[endpoint] = e
	}
	e.ring.add(ms)
	m.mu.Unlock()
	e.hist.Observe(ms)
}

// JobCounters is the job-lifecycle section of /metrics.
type JobCounters struct {
	Accepted  int `json:"accepted"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Timeouts  int `json:"timeouts"`
	Failed    int `json:"failed"`
}

// counters reads the job-lifecycle counters. Each counter is itself
// exact; the set is read without a barrier, which is the usual
// monotone-scrape consistency metrics endpoints provide.
func (m *serverMetrics) counters() JobCounters {
	return JobCounters{
		Accepted:  int(m.accepted.Load()),
		Completed: int(m.completed.Load()),
		Rejected:  int(m.rejected.Load()),
		Timeouts:  int(m.timeouts.Load()),
		Failed:    int(m.failed.Load()),
	}
}

// snapshot returns the counters, busy gauge and per-endpoint latency
// summaries — the one consistent read path both /metrics encodings use.
func (m *serverMetrics) snapshot() (JobCounters, int, map[string]LatencySummary) {
	jc := m.counters()
	busy := m.busyWorkers()
	m.mu.Lock()
	defer m.mu.Unlock()
	lat := make(map[string]LatencySummary, len(m.latencies))
	for ep, e := range m.latencies {
		if len(e.ring.buf) == 0 {
			continue
		}
		s := stats.Summarize(e.ring.buf)
		lat[ep] = LatencySummary{
			Count:       e.ring.count,
			WindowCount: len(e.ring.buf),
			MeanMs:      s.Mean,
			P50Ms:       s.Median,
			P90Ms:       s.P90,
			P95Ms:       s.P95,
			MaxMs:       s.Max,
		}
	}
	return jc, busy, lat
}

// histograms returns each endpoint's lifetime latency histogram.
func (m *serverMetrics) histograms() map[string]obs.HistogramSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]obs.HistogramSnapshot, len(m.latencies))
	for ep, e := range m.latencies {
		out[ep] = e.hist.Snapshot()
	}
	return out
}
