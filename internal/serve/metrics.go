package serve

import (
	"sync"

	"luxvis/internal/stats"
)

// latWindow is the number of most-recent latency samples retained per
// endpoint; the histogram in /metrics summarizes this sliding window.
const latWindow = 4096

// latRing is a fixed-capacity ring of latency samples (milliseconds).
type latRing struct {
	buf   []float64
	next  int
	count int // total observations ever, not just retained
}

func (r *latRing) add(ms float64) {
	if len(r.buf) < latWindow {
		r.buf = append(r.buf, ms)
	} else {
		r.buf[r.next] = ms
		r.next = (r.next + 1) % latWindow
	}
	r.count++
}

// LatencySummary is the per-endpoint latency histogram reported by
// /metrics, computed from the retained sample window with
// internal/stats order statistics.
type LatencySummary struct {
	// Count is the total number of observations since startup (the
	// quantiles cover the most recent latWindow of them).
	Count  int     `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P95Ms  float64 `json:"p95Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// serverMetrics is the mutex-guarded counter state behind /metrics.
type serverMetrics struct {
	mu sync.Mutex
	// All fields below are guarded by mu.
	accepted  int
	completed int
	rejected  int
	timeouts  int
	failed    int
	busy      int
	latencies map[string]*latRing
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{latencies: make(map[string]*latRing)}
}

func (m *serverMetrics) jobAccepted() {
	m.mu.Lock()
	m.accepted++
	m.mu.Unlock()
}

func (m *serverMetrics) jobCompleted() {
	m.mu.Lock()
	m.completed++
	m.mu.Unlock()
}

func (m *serverMetrics) jobRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *serverMetrics) jobTimedOut() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

func (m *serverMetrics) jobFailed() {
	m.mu.Lock()
	m.failed++
	m.mu.Unlock()
}

func (m *serverMetrics) workerBusy(delta int) {
	m.mu.Lock()
	m.busy += delta
	m.mu.Unlock()
}

func (m *serverMetrics) busyWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.busy
}

// observe records one endpoint latency in milliseconds.
func (m *serverMetrics) observe(endpoint string, ms float64) {
	m.mu.Lock()
	r := m.latencies[endpoint]
	if r == nil {
		r = &latRing{}
		m.latencies[endpoint] = r
	}
	r.add(ms)
	m.mu.Unlock()
}

// JobCounters is the job-lifecycle section of /metrics.
type JobCounters struct {
	Accepted  int `json:"accepted"`
	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Timeouts  int `json:"timeouts"`
	Failed    int `json:"failed"`
}

// snapshot returns the counters and per-endpoint latency summaries.
func (m *serverMetrics) snapshot() (JobCounters, int, map[string]LatencySummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jc := JobCounters{
		Accepted:  m.accepted,
		Completed: m.completed,
		Rejected:  m.rejected,
		Timeouts:  m.timeouts,
		Failed:    m.failed,
	}
	lat := make(map[string]LatencySummary, len(m.latencies))
	for ep, r := range m.latencies {
		if len(r.buf) == 0 {
			continue
		}
		s := stats.Summarize(r.buf)
		lat[ep] = LatencySummary{
			Count:  r.count,
			MeanMs: s.Mean,
			P50Ms:  s.Median,
			P90Ms:  s.P90,
			P95Ms:  s.P95,
			MaxMs:  s.Max,
		}
	}
	return jc, m.busy, lat
}
