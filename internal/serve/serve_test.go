package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"luxvis/internal/serve"
)

// newTestServer starts a Server plus an httptest front end and returns
// both with cleanup registered.
func newTestServer(t *testing.T, opt serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func metricsSnapshot(t *testing.T, ts *httptest.Server) serve.MetricsSnapshot {
	t.Helper()
	var m serve.MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	return m
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	var body map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("/healthz body %v", body)
	}
	if v, ok := body["version"].(string); !ok || v == "" {
		t.Fatalf("/healthz missing version: %v", body)
	}
}

func TestRunEndToEndAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	url := ts.URL + "/v1/run?algorithm=logvis&scheduler=async-rr&family=uniform&n=16&seed=5"

	var first serve.RunSummary
	if code := getJSON(t, url, &first); code != http.StatusOK {
		t.Fatalf("first run status %d", code)
	}
	if first.Cached {
		t.Fatal("first run reported cached:true")
	}
	if first.N != 16 || first.Seed != 5 || first.Algorithm == "" {
		t.Fatalf("implausible summary: %+v", first)
	}
	if !first.Reached {
		t.Fatalf("logvis n=16 did not reach Complete Visibility: %+v", first)
	}

	var second serve.RunSummary
	if code := getJSON(t, url, &second); code != http.StatusOK {
		t.Fatalf("second run status %d", code)
	}
	if !second.Cached {
		t.Fatal("identical repeat request was not a cache hit")
	}
	// Apart from the cache marker the summaries must be identical —
	// runs are deterministic per (algorithm, family, n, seed, options).
	second.Cached = false
	if first != second {
		t.Fatalf("cache returned a different summary:\n first=%+v\nsecond=%+v", first, second)
	}

	m := metricsSnapshot(t, ts)
	if m.Cache.Hits < 1 {
		t.Fatalf("cache hits = %d, want >= 1 (stats: %+v)", m.Cache.Hits, m.Cache)
	}
	if m.Cache.Size < 1 {
		t.Fatalf("cache size = %d, want >= 1", m.Cache.Size)
	}
	if m.Jobs.Accepted < 1 || m.Jobs.Completed < 1 {
		t.Fatalf("job counters %+v, want accepted/completed >= 1", m.Jobs)
	}
	if _, ok := m.LatencyMs["/v1/run"]; !ok {
		t.Fatalf("no latency histogram for /v1/run: %v", m.LatencyMs)
	}
}

func TestRunPostJSON(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	body := `{"algorithm":"seqvis","scheduler":"fsync","family":"circle","n":12,"seed":3}`
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	var sum serve.RunSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sum.Algorithm != "seqvis" || sum.Scheduler != "fsync" || sum.N != 12 {
		t.Fatalf("summary %+v does not match request", sum)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, MaxN: 100})
	cases := []struct {
		name  string
		query string
		want  string // substring of the error
	}{
		{"unknown algorithm", "algorithm=qvis", "unknown algorithm"},
		{"unknown scheduler", "scheduler=sync", "known:"},
		{"unknown family", "family=blob", "unknown family"},
		{"n too large", "n=101", "out of range"},
		{"n zero", "n=-1", "out of range"},
		{"bad int", "n=abc", "bad n"},
		{"bad bool", "nonRigid=maybe", "bad nonRigid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			code := getJSON(t, ts.URL+"/v1/run?"+tc.query, &e)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}

// TestRunDeadlineAbortsPromptly is the acceptance scenario: a large-N
// run with a 50ms deadline must come back 504 promptly (the handler
// answers on ctx expiry) and the engine must abandon the run at its
// next epoch boundary — observable as the busy-worker count returning
// to zero long before the run's epoch cap could elapse.
func TestRunDeadlineAbortsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N deadline run in -short mode")
	}
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	url := ts.URL + "/v1/run?n=2048&skipChecks=true&timeoutMs=50&seed=9"

	start := time.Now()
	var e struct {
		Error string `json:"error"`
	}
	code := getJSON(t, url, &e)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, e.Error)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("504 took %v for a 50ms deadline", elapsed)
	}
	if !strings.Contains(e.Error, "epoch boundary") {
		t.Fatalf("timeout error %q does not explain the abort point", e.Error)
	}

	// The worker must free itself at the next epoch boundary — if
	// cancellation were broken it would grind through the full default
	// epoch cap instead.
	deadline := time.Now().Add(120 * time.Second)
	for {
		m := metricsSnapshot(t, ts)
		if m.Workers.Busy == 0 {
			if m.Jobs.Timeouts < 1 {
				t.Fatalf("timeouts = %d, want >= 1 (%+v)", m.Jobs.Timeouts, m.Jobs)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still busy %v after the deadline fired", 120*time.Second)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestQueueFullSheds verifies bounded-queue load shedding: with one
// worker pinned and the one-slot queue filled, the next request is
// turned away immediately with 429 and a Retry-After hint.
func TestQueueFullSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("load-shedding run in -short mode")
	}
	_, ts := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1})

	// Two slow distinct runs: one occupies the worker, one the queue.
	// Their deadlines bound how long cleanup waits for the drain.
	slow := func(seed int) string {
		return fmt.Sprintf("%s/v1/run?n=1024&skipChecks=true&timeoutMs=5000&seed=%d", ts.URL, seed)
	}
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(seed int) {
			resp, err := http.Get(slow(seed))
			if err != nil {
				done <- 0
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}(100 + i)
	}

	// Wait until the pool is saturated: worker busy and queue full.
	saturated := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		m := metricsSnapshot(t, ts)
		if m.Workers.Busy == m.Workers.Total && m.Queue.Depth == m.Queue.Capacity {
			saturated = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saturated {
		t.Fatal("pool never saturated; cannot provoke load shedding")
	}

	resp, err := http.Get(slow(999))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	m := metricsSnapshot(t, ts)
	if m.Jobs.Rejected < 1 {
		t.Fatalf("rejected = %d, want >= 1", m.Jobs.Rejected)
	}

	// Let the pinned runs resolve so cleanup's drain is quick. Each
	// either hits its 5s deadline (504) or — on a fast machine —
	// finishes inside it (200); both are orderly outcomes.
	for i := 0; i < 2; i++ {
		code := <-done
		if code != http.StatusGatewayTimeout && code != http.StatusOK {
			t.Fatalf("pinned run resolved with status %d, want 504 or 200", code)
		}
	}
}

// TestGracefulClose verifies the drain contract: Close waits for
// in-flight jobs, and submissions after Close are refused with 503.
func TestGracefulClose(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sum serve.RunSummary
	if code := getJSON(t, ts.URL+"/v1/run?n=8&seed=2", &sum); code != http.StatusOK {
		t.Fatalf("warm-up run status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent.
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	code := getJSON(t, ts.URL+"/v1/run?n=8&seed=3", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close run status %d, want 503", code)
	}
}

func TestExperimentValidationAndTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})

	var e struct {
		Error string `json:"error"`
	}
	resp, err := http.Post(ts.URL+"/v1/experiment", "application/json",
		strings.NewReader(`{"name":"T99"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "T1") {
		t.Fatalf("error %q does not list known experiments", e.Error)
	}

	// A 1ms deadline cannot finish any experiment; the endpoint must
	// answer 504 promptly and the batch must cancel underneath.
	start := time.Now()
	resp, err = http.Post(ts.URL+"/v1/experiment", "application/json",
		strings.NewReader(`{"name":"T1","quick":true,"timeoutMs":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out experiment status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("504 took %v for a 1ms deadline", elapsed)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/run", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/run status %d, want 405", resp.StatusCode)
	}
	code := getJSON(t, ts.URL+"/v1/experiment", nil)
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/experiment status %d, want 405", code)
	}
}
