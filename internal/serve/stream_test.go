package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/obs"
	"luxvis/internal/sched"
	"luxvis/internal/serve"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

// startStreamRun POSTs /v1/runs and returns the accepted run id.
func startStreamRun(t *testing.T, ts string, body string) string {
	t.Helper()
	resp, err := http.Post(ts+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/runs status %d: %s", resp.StatusCode, b)
	}
	var st serve.StreamRunStatus
	if err := jsonDecode(resp.Body, &st); err != nil {
		t.Fatalf("decode 202 body: %v", err)
	}
	if st.ID == "" || st.StreamPath == "" {
		t.Fatalf("202 body missing id or stream path: %+v", st)
	}
	return st.ID
}

func jsonDecode(r io.Reader, out any) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// goroutinesSettled samples runtime.NumGoroutine after a GC-and-settle
// pause, so transient runtime helpers don't skew the leak bound.
func goroutinesSettled() int {
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	return runtime.NumGoroutine()
}

// waitRunDone polls the status endpoint until the run reaches a
// terminal state.
func waitRunDone(t *testing.T, ts, id string) serve.StreamRunStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st serve.StreamRunStatus
		if code := getJSON(t, ts+"/v1/runs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /v1/runs/%s status %d", id, code)
		}
		switch st.State {
		case "done":
			return st
		case "failed":
			t.Fatalf("run %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %q after 2m", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamRunNDJSON: the NDJSON stream of an async run is a valid
// trace-JSONL stream — it decodes with the stored-trace decoder and
// carries exactly the run's events.
func TestStreamRunNDJSON(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	id := startStreamRun(t, ts.URL, `{"n": 8, "seed": 3}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/stream?speed=0")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}

	dec, err := trace.NewDecoder(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stream does not decode as a trace: %v", err)
	}
	if dec.Header().N != 8 || dec.Header().Seed != 3 {
		t.Fatalf("stream header %+v, want n=8 seed=3", dec.Header())
	}
	events := 0
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding stream event %d: %v", events, err)
		}
		events++
	}

	st := waitRunDone(t, ts.URL, id)
	if st.Summary == nil {
		t.Fatal("done run has no summary")
	}
	if events != st.Summary.Events {
		t.Fatalf("stream carried %d events, run recorded %d", events, st.Summary.Events)
	}
}

// TestStreamMatchesDirectTrace: the served stream's event lines are
// byte-identical to a locally recorded trace of the same run — the
// byte-compatibility acceptance across the HTTP layer.
func TestStreamMatchesDirectTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	id := startStreamRun(t, ts.URL, `{"n": 8, "seed": 5}`)
	waitRunDone(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/stream?speed=0")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	gotLines := bytes.Split(bytes.TrimRight(body, "\n"), []byte("\n"))

	pts := config.Generate(config.Uniform, 8, 5)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 5)
	opt.RecordTrace = true
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	var want bytes.Buffer
	if err := trace.WriteJSONL(&want, res); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	wantLines := bytes.Split(bytes.TrimRight(want.Bytes(), "\n"), []byte("\n"))

	if len(gotLines) != len(wantLines) {
		t.Fatalf("stream has %d lines, direct trace %d", len(gotLines), len(wantLines))
	}
	// Event lines (everything after the header) must match byte for byte;
	// the headers differ only in the live note and totals.
	for i := 1; i < len(gotLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("line %d differs:\nstream: %s\ndirect: %s", i, gotLines[i], wantLines[i])
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    uint64
	event string
	data  string
}

// readSSE parses a full SSE response body.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseEvent{}) {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning SSE: %v", err)
	}
	return out
}

func getSSE(t *testing.T, url, lastEventID string) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	return readSSE(t, resp.Body)
}

// TestStreamSSEResume is the Last-Event-ID acceptance proof: a client
// that reconnects with the last id it saw receives exactly the frames
// after it, ending with the end event.
func TestStreamSSEResume(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	id := startStreamRun(t, ts.URL, `{"n": 8, "seed": 3}`)
	waitRunDone(t, ts.URL, id)
	url := ts.URL + "/v1/runs/" + id + "/stream?speed=0"

	full := getSSE(t, url, "")
	if len(full) < 10 {
		t.Fatalf("full stream has %d events, want a run's worth", len(full))
	}
	if full[0].id != 1 || !strings.Contains(full[0].data, `"kind":"header"`) {
		t.Fatalf("first SSE event %+v, want the header at id 1", full[0])
	}
	last := full[len(full)-1]
	if last.event != "end" {
		t.Fatalf("terminal SSE event type %q, want end", last.event)
	}

	// Reconnect from the middle: the resumed stream is exactly the tail.
	cut := len(full) / 2
	cursor := full[cut-1].id
	resumed := getSSE(t, url, strconv.FormatUint(cursor, 10))
	wantTail := full[cut:]
	if len(resumed) != len(wantTail) {
		t.Fatalf("resumed stream has %d events, want %d", len(resumed), len(wantTail))
	}
	for i := range wantTail {
		if resumed[i] != wantTail[i] {
			t.Fatalf("resumed event %d = %+v, want %+v", i, resumed[i], wantTail[i])
		}
	}
	if resumed[0].id != cursor+1 {
		t.Fatalf("resume started at id %d, want %d", resumed[0].id, cursor+1)
	}
}

// TestStreamFromEpochSeek: ?from= serves the header plus only events
// stamped at or after the requested epoch.
func TestStreamFromEpochSeek(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 2})
	id := startStreamRun(t, ts.URL, `{"n": 8, "seed": 3}`)
	st := waitRunDone(t, ts.URL, id)
	if st.Summary.Epochs < 2 {
		t.Fatalf("run finished in %d epochs; seek test needs at least 2", st.Summary.Epochs)
	}
	from := st.Summary.Epochs - 1

	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/stream?speed=0&from=%d", ts.URL, id, from))
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	dec, err := trace.NewDecoder(resp.Body)
	if err != nil {
		t.Fatalf("seeked stream does not decode: %v", err)
	}
	n := 0
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding: %v", err)
		}
		if ev.Epoch < from {
			t.Fatalf("event with epoch %d leaked through from=%d", ev.Epoch, from)
		}
		n++
	}
	if n == 0 {
		t.Fatal("epoch seek returned no events at all")
	}
	if n >= st.Summary.Events {
		t.Fatalf("seek returned %d of %d events; nothing was skipped", n, st.Summary.Events)
	}
}

// TestTraceFileReplay: a stored trace under TraceDir replays through
// /v1/replay byte-identical to the file; traversal and unknown names
// are rejected.
func TestTraceFileReplay(t *testing.T) {
	dir := t.TempDir()
	pts := config.Generate(config.Uniform, 8, 7)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 7)
	opt.RecordTrace = true
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	var stored bytes.Buffer
	if err := trace.WriteJSONL(&stored, res); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run.jsonl"), stored.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, serve.Options{Workers: 1, TraceDir: dir})
	resp, err := http.Get(ts.URL + "/v1/replay/run.jsonl?speed=0")
	if err != nil {
		t.Fatalf("GET replay: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading replay: %v", err)
	}
	if !bytes.Equal(body, stored.Bytes()) {
		t.Fatalf("replayed stream is not byte-identical to the stored trace (%d vs %d bytes)",
			len(body), stored.Len())
	}

	for _, bad := range []struct {
		name string
		code int
	}{
		{"missing.jsonl", http.StatusNotFound},
		{"..%2Frun.jsonl", http.StatusBadRequest},
		{".hidden", http.StatusBadRequest},
	} {
		r2, err := http.Get(ts.URL + "/v1/replay/" + bad.name)
		if err != nil {
			t.Fatalf("GET %s: %v", bad.name, err)
		}
		r2.Body.Close()
		if r2.StatusCode != bad.code {
			t.Fatalf("replay %q: status %d, want %d", bad.name, r2.StatusCode, bad.code)
		}
	}
}

// TestTraceReplayDisabled: without TraceDir the endpoint is a 404.
func TestTraceReplayDisabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/replay/run.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("replay without TraceDir: status %d, want 404", resp.StatusCode)
	}
}

// TestStreamRunListAndUnknown: the run listing includes started runs;
// unknown ids are 404s on both status and stream.
func TestStreamRunListAndUnknown(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	id := startStreamRun(t, ts.URL, `{"n": 4, "seed": 1}`)
	waitRunDone(t, ts.URL, id)

	var list serve.StreamRunList
	if code := getJSON(t, ts.URL+"/v1/runs", &list); code != http.StatusOK {
		t.Fatalf("GET /v1/runs status %d", code)
	}
	found := false
	for _, st := range list.Runs {
		if st.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("run %s missing from listing %+v", id, list)
	}

	if code := getJSON(t, ts.URL+"/v1/runs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown run status: %d, want 404", code)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run stream: %d, want 404", resp.StatusCode)
	}
}

// TestStreamRetention: finished runs beyond StreamRetain are forgotten.
func TestStreamRetention(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1, StreamRetain: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id := startStreamRun(t, ts.URL, fmt.Sprintf(`{"n": 4, "seed": %d}`, i+1))
		waitRunDone(t, ts.URL, id)
		ids = append(ids, id)
	}
	// The two oldest must be gone, the two newest still replayable.
	for _, id := range ids[:2] {
		if code := getJSON(t, ts.URL+"/v1/runs/"+id, nil); code != http.StatusNotFound {
			t.Fatalf("evicted run %s: status %d, want 404", id, code)
		}
	}
	for _, id := range ids[2:] {
		if code := getJSON(t, ts.URL+"/v1/runs/"+id, nil); code != http.StatusOK {
			t.Fatalf("retained run %s: status %d, want 200", id, code)
		}
	}
}

// TestStreamMetricsExposed: the luxvis_stream_* families appear on the
// Prometheus exposition after streaming activity, alongside build info.
func TestStreamMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{Workers: 1})
	id := startStreamRun(t, ts.URL, `{"n": 4, "seed": 1}`)
	waitRunDone(t, ts.URL, id)
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/stream?speed=0")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	mr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// The full exposition must satisfy the 0.0.4 line grammar and the
	// HELP/TYPE pairing rules — the structural golden test.
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("/metrics exposition malformed: %v", err)
	}
	for _, want := range []string{
		"luxvis_stream_subscribers",
		"luxvis_stream_dropped_total",
		"luxvis_stream_hub_depth",
		"luxvis_stream_encode_ns",
		"luxvis_stream_frames_total",
		"luxvis_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
	if !strings.Contains(text, `go_version="`) {
		t.Fatal("build info missing the go_version label")
	}
}

// TestStreamSoak fans one run out to many concurrent SSE subscribers
// under -race and bounds goroutine growth afterwards — the CI
// stream-soak job. Subscribers attach while the run executes (live) and
// after it finishes (replay); every one must see a complete, decodable
// stream.
func TestStreamSoak(t *testing.T) {
	subscribers := 256
	if testing.Short() {
		subscribers = 32
	}
	before := goroutinesSettled()

	func() {
		_, ts := newTestServer(t, serve.Options{Workers: 2})
		id := startStreamRun(t, ts.URL, `{"n": 32, "seed": 7}`)
		url := ts.URL + "/v1/runs/" + id + "/stream?speed=0"

		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: subscribers}}
		defer client.CloseIdleConnections()
		var wg sync.WaitGroup
		errs := make(chan error, subscribers)
		for i := 0; i < subscribers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, err := http.NewRequest(http.MethodGet, url, nil)
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set("Accept", "text/event-stream")
				resp, err := client.Do(req)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Contains(body, []byte(`"kind":"header"`)) {
					errs <- fmt.Errorf("subscriber stream missing the header frame")
					return
				}
				if !bytes.Contains(body, []byte("event: end")) {
					errs <- fmt.Errorf("subscriber stream missing the end event")
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("subscriber: %v", err)
		}
		waitRunDone(t, ts.URL, id)
	}()

	// Everything the soak started — handlers, subscribers, the run — must
	// be gone; allow a small slack for the runtime's own pool goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		after := goroutinesSettled()
		if after <= before+10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after", before, after)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
