package serve

import (
	"container/list"
	"sync"
)

// lru is a fixed-capacity least-recently-used result cache keyed by the
// canonical run-request string. Engine runs are fully determined by
// (algorithm, scheduler, family, n, seed, options), so a hit can be
// served without touching the worker pool at all.
type lru struct {
	mu sync.Mutex
	// All fields below are guarded by mu.
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   int
	misses int
}

type lruEntry struct {
	key string
	val *RunSummary
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached summary for key, if any, and records a
// hit/miss either way.
func (c *lru) get(key string) (*RunSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts (or refreshes) key, evicting the least recently used
// entry when over capacity.
func (c *lru) put(key string, val *RunSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// CacheStats is the cache section of /metrics.
type CacheStats struct {
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
}

func (c *lru) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses}
}
