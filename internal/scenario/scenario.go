// Package scenario composes the engine's stressor knobs — adversarial
// schedulers, crash faults, sensor jitter, non-rigid truncation
// distributions — behind one parseable configuration, so a hostile
// environment is a flag value (`-scenario
// "sched=greedy-stale,crash=2@0.25:idle,jitter=1e-6"`) rather than a
// bespoke test harness. Each knob is orthogonal: any subset composes,
// and an empty configuration is exactly the clean engine. The
// robustness matrix in internal/exp sweeps these configurations against
// the paper's claims; CheckLegality keeps the adversaries honest.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// Config is one scenario: a set of stressor knobs to apply on top of a
// base simulation configuration. The zero value applies nothing.
type Config struct {
	// Sched, when non-empty, overrides the scheduler; any name from
	// SchedulerNames is valid (built-ins plus the adversaries in this
	// package).
	Sched string
	// Window tunes the fairness window of schedulers that have one
	// (0 keeps each scheduler's default).
	Window int
	// SubSteps tunes the move sub-step count of schedulers that expose
	// it (0 keeps each scheduler's default).
	SubSteps int

	// CrashK is the number of robots to crash (0 = no crash fault).
	CrashK int
	// CrashFrac places the crash trigger at this fraction of the crash
	// horizon (0 defaults to 0.25). The horizon is 64·n events — a few
	// epochs of an n-robot run, so faults land early-to-mid run on
	// convergence timescales — clamped to the run's event budget. (The
	// budget itself is a runaway cap thousands of epochs out; a fraction
	// of it would fire long after every run has terminated.)
	CrashFrac float64
	// CrashStage is the LCM stage at which the victims halt.
	CrashStage sched.Stage

	// Jitter is the sensor-error amplitude (sim.Options.SensorJitter).
	Jitter float64

	// NonRigid, when non-empty, enables non-rigid motion with the given
	// truncation distribution.
	NonRigid sim.NonRigidDist
}

// defaultCrashFrac places unspecified crash triggers a quarter into the
// run's event budget: late enough for the algorithm to have committed
// to a strategy, early enough that survivors have most of the run to
// recover.
const defaultCrashFrac = 0.25

// Parse reads the comma-separated key=value scenario grammar:
//
//	sched=NAME        scheduler override (see SchedulerNames)
//	window=INT        fairness window in events
//	substeps=INT      move sub-steps
//	crash=K[@FRAC][:STAGE]
//	                  crash K robots at FRAC of the crash horizon
//	                  (64·n events, clamped to the event budget;
//	                  default 0.25) in STAGE (idle|looked|computed|
//	                  moving, default idle)
//	jitter=FLOAT      sensor-error amplitude
//	nonrigid=DIST     non-rigid truncation distribution
//	                  (uniform|minimal|quadratic|bimodal)
//
// The empty string parses to the zero Config. Parse validates shape and
// ranges; name validity (scheduler, distribution) is checked in Apply
// so the error surfaces where the knob is used.
func Parse(s string) (Config, error) {
	var c Config
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok || val == "" {
			return Config{}, fmt.Errorf("scenario: %q is not key=value", part)
		}
		switch key {
		case "sched":
			c.Sched = val
		case "window":
			w, err := strconv.Atoi(val)
			if err != nil || w < 0 {
				return Config{}, fmt.Errorf("scenario: window=%q is not a non-negative integer", val)
			}
			c.Window = w
		case "substeps":
			ss, err := strconv.Atoi(val)
			if err != nil || ss < 0 {
				return Config{}, fmt.Errorf("scenario: substeps=%q is not a non-negative integer", val)
			}
			c.SubSteps = ss
		case "crash":
			if err := parseCrash(val, &c); err != nil {
				return Config{}, err
			}
		case "jitter":
			j, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(j) || math.IsInf(j, 0) || j < 0 {
				return Config{}, fmt.Errorf("scenario: jitter=%q is not a finite non-negative amplitude", val)
			}
			c.Jitter = j
		case "nonrigid":
			c.NonRigid = sim.NonRigidDist(val)
		default:
			return Config{}, fmt.Errorf("scenario: unknown key %q (known: sched, window, substeps, crash, jitter, nonrigid)", key)
		}
	}
	return c, nil
}

// parseCrash reads K[@FRAC][:STAGE].
func parseCrash(val string, c *Config) error {
	spec := val
	if spec, stage, ok := cut3(val); ok {
		st, err := stageByName(stage)
		if err != nil {
			return err
		}
		c.CrashStage = st
		val = spec
	}
	kStr, fracStr, hasFrac := strings.Cut(val, "@")
	k, err := strconv.Atoi(kStr)
	if err != nil || k < 1 {
		return fmt.Errorf("scenario: crash=%q: count %q is not a positive integer", spec, kStr)
	}
	c.CrashK = k
	if hasFrac {
		f, err := strconv.ParseFloat(fracStr, 64)
		if err != nil || math.IsNaN(f) || !(f >= 0 && f <= 1) {
			return fmt.Errorf("scenario: crash=%q: fraction %q is not in [0, 1]", spec, fracStr)
		}
		c.CrashFrac = f
	}
	return nil
}

// cut3 splits "rest:stage" from the right so the fraction part may not
// contain colons.
func cut3(s string) (rest, stage string, ok bool) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

func stageByName(name string) (sched.Stage, error) {
	switch name {
	case "idle":
		return sched.Idle, nil
	case "looked":
		return sched.Looked, nil
	case "computed":
		return sched.Computed, nil
	case "moving":
		return sched.Moving, nil
	default:
		return 0, fmt.Errorf("scenario: unknown crash stage %q (known: idle, looked, computed, moving)", name)
	}
}

// String renders the config back into the Parse grammar (keys in
// canonical order); Parse(c.String()) reproduces c.
func (c Config) String() string {
	var parts []string
	if c.Sched != "" {
		parts = append(parts, "sched="+c.Sched)
	}
	if c.Window > 0 {
		parts = append(parts, fmt.Sprintf("window=%d", c.Window))
	}
	if c.SubSteps > 0 {
		parts = append(parts, fmt.Sprintf("substeps=%d", c.SubSteps))
	}
	if c.CrashK > 0 {
		s := fmt.Sprintf("crash=%d", c.CrashK)
		if c.CrashFrac > 0 {
			s += fmt.Sprintf("@%g", c.CrashFrac)
		}
		if c.CrashStage != sched.Idle {
			s += ":" + c.CrashStage.String()
		}
		parts = append(parts, s)
	}
	if c.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%g", c.Jitter))
	}
	if c.NonRigid != "" {
		parts = append(parts, "nonrigid="+string(c.NonRigid))
	}
	return strings.Join(parts, ",")
}

// Apply threads the scenario into opt for a run of n robots: scheduler
// override, crash specs spread evenly across the swarm and armed at
// CrashFrac of the event budget, sensor jitter, and the non-rigid
// distribution. Knobs at their zero value leave opt untouched, so an
// empty Config is the identity.
func (c Config) Apply(opt *sim.Options, n int) error {
	if n <= 0 {
		return fmt.Errorf("scenario: cannot apply to %d robots", n)
	}
	if c.Sched != "" {
		s, err := NewScheduler(c.Sched, c.Window, c.SubSteps)
		if err != nil {
			return err
		}
		opt.Scheduler = s
	}
	if c.CrashK > 0 {
		if c.CrashK >= n {
			return fmt.Errorf("scenario: crash count %d needs at least one survivor among %d robots", c.CrashK, n)
		}
		frac := c.CrashFrac
		if !(frac > 0) {
			frac = defaultCrashFrac
		}
		// Arm against the crash horizon (64·n events ≈ a few epochs), not
		// the engine's runaway event cap: the cap is thousands of epochs
		// out, so a fraction of it would fire only after every realistic
		// run has already terminated and the fault would be a no-op.
		horizon := 64 * n
		if opt.MaxEvents > 0 && opt.MaxEvents < horizon {
			horizon = opt.MaxEvents
		}
		at := int(frac * float64(horizon))
		for i := 0; i < c.CrashK; i++ {
			opt.Crashes = append(opt.Crashes, sim.CrashSpec{
				// Victims spread evenly across the index range, so a
				// multi-crash fault hits structurally different robots.
				Robot:   i * n / c.CrashK,
				AtEvent: at,
				Stage:   c.CrashStage,
			})
		}
	}
	if c.Jitter > 0 {
		opt.SensorJitter = c.Jitter
	}
	if c.NonRigid != "" {
		opt.NonRigid = true
		opt.NonRigidDist = c.NonRigid
	}
	return nil
}

// NewScheduler resolves a scheduler by name — the built-ins of
// internal/sched plus this package's adversaries — and applies the
// window/subSteps tuning where the scheduler exposes the knob (zero
// keeps the scheduler's default).
func NewScheduler(name string, window, subSteps int) (sched.Scheduler, error) {
	switch name {
	case "greedy-stale":
		g := NewGreedyStale()
		if window > 0 {
			g.Window = window
		}
		if subSteps > 0 {
			g.SubSteps = subSteps
		}
		return g, nil
	case "starve-edge":
		s := NewStarveEdge()
		if window > 0 {
			s.Window = window
		}
		if subSteps > 0 {
			s.SubSteps = subSteps
		}
		return s, nil
	}
	s, err := sched.ByNameErr(name)
	if err != nil {
		return nil, fmt.Errorf("scenario: unknown scheduler %q (known: %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	switch t := s.(type) {
	case *sched.AsyncRandom:
		if window > 0 {
			t.Window = window
		}
		if subSteps > 0 {
			t.MaxSubSteps = subSteps
		}
	case *sched.AsyncStale:
		if subSteps > 0 {
			t.SubSteps = subSteps
		}
	case *sched.AsyncRoundRobin:
		if subSteps > 0 {
			t.SubSteps = subSteps
		}
	}
	return s, nil
}

// SchedulerNames lists every name NewScheduler accepts: the built-in
// canonical names followed by this package's adversaries.
func SchedulerNames() []string {
	names := append([]string(nil), sched.Names()...)
	names = append(names, "greedy-stale", "starve-edge")
	return names
}

// Stressors returns the canonical stressor axis of the robustness
// matrix: named configurations from the clean baseline through each
// degradation, for a swarm of n robots. The window sizes scale with the
// swarm so adversaries bite without stalling small test runs.
func Stressors(n int) []NamedConfig {
	return []NamedConfig{
		{"none", Config{}},
		{"adv-greedy", Config{Sched: "greedy-stale", Window: 64 * n}},
		{"adv-starve", Config{Sched: "starve-edge", Window: 16 * n}},
		{"crash", Config{CrashK: crashK(n), CrashFrac: 0.25}},
		{"crash-moving", Config{CrashK: 1, CrashFrac: 0.25, CrashStage: sched.Moving}},
		{"jitter", Config{Jitter: 1e-6}},
		{"nonrigid-min", Config{NonRigid: sim.NonRigidMinimal}},
	}
}

// NamedConfig is a labeled scenario for matrix rows.
type NamedConfig struct {
	Name string
	Cfg  Config
}

// crashK is the matrix's crash-fault count: an eighth of the swarm,
// at least one.
func crashK(n int) int {
	k := n / 8
	if k < 1 {
		k = 1
	}
	return k
}

// SortedNames returns the stressor names in matrix order (a convenience
// for table rendering).
func SortedNames(cfgs []NamedConfig) []string {
	names := make([]string, len(cfgs))
	for i, c := range cfgs {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
