package scenario

import (
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

// fuzzMover is a minimal deterministic algorithm for fuzz runs: it
// drifts toward the centroid of what it sees, so moves, sub-steps and
// safety checks all execute without depending on the heavier paper
// algorithm.
type fuzzMover struct{}

func (fuzzMover) Name() string           { return "fuzz-mover" }
func (fuzzMover) Palette() []model.Color { return []model.Color{model.Off, model.Line} }
func (fuzzMover) Compute(s model.Snapshot) model.Action {
	if len(s.Others) == 0 {
		return model.Stay(s.Self.Pos, model.Off)
	}
	var cx, cy float64
	for _, o := range s.Others {
		cx += o.Pos.X
		cy += o.Pos.Y
	}
	cx /= float64(len(s.Others))
	cy /= float64(len(s.Others))
	mid := geom.Pt((s.Self.Pos.X+cx)/2, (s.Self.Pos.Y+cy)/2)
	if mid.Eq(s.Self.Pos) {
		return model.Stay(s.Self.Pos, model.Off)
	}
	return model.MoveTo(mid, model.Line)
}

// FuzzScenarioConfig feeds arbitrary strings through the full scenario
// pipeline — Parse, Apply, and a bounded engine run — and requires that
// no input ever panics or hangs it. Malformed inputs must be rejected
// with an error; well-formed-but-extreme inputs (huge windows, crash
// counts at the survivor boundary, enormous jitter) must run to the
// event cap and return. The event budget is fixed BEFORE Apply so crash
// fractions arm against the same small cap that bounds the run.
func FuzzScenarioConfig(f *testing.F) {
	seeds := []string{
		"",
		"sched=greedy-stale",
		"sched=starve-edge,window=64",
		"sched=async-random,window=32,substeps=8",
		"crash=2",
		"crash=2@0.5:moving",
		"crash=5@0:idle",
		"crash=1@1:looked",
		"jitter=1e-6",
		"jitter=1e308",
		"nonrigid=minimal",
		"nonrigid=bimodal",
		"sched=greedy-stale,crash=2@0.25,jitter=1e-9,nonrigid=quadratic",
		"sched=starve-edge,window=1,substeps=1",
		"window=2147483647",
		"crash=,,",
		"crash=2@0.5:moving:extra",
		"sched=fsync,sched=ssync",
		"=,==,=",
		"jitter=-0",
		"nonrigid=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(40, 3), geom.Pt(17, 29),
		geom.Pt(-12, 18), geom.Pt(8, -21), geom.Pt(-9, -7),
	}
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Parse(input)
		if err != nil {
			return
		}
		// Round-trip invariant: anything Parse accepts, its rendering
		// must re-parse to the same value.
		again, err := Parse(cfg.String())
		if err != nil {
			t.Fatalf("Parse(%q) ok but Parse(String()=%q) failed: %v", input, cfg.String(), err)
		}
		if again != cfg {
			t.Fatalf("round trip of %q: %+v != %+v", input, again, cfg)
		}
		opt := sim.Options{
			Scheduler: sched.NewAsyncRoundRobin(),
			Seed:      1,
			MaxEpochs: 4,
			MaxEvents: 3000,
		}
		if err := cfg.Apply(&opt, len(pts)); err != nil {
			return
		}
		// Whatever the knobs, a bounded run must terminate cleanly:
		// invalid stressor combinations error out of Run, valid ones
		// run to quiescence or the 3000-event cap.
		if _, err := sim.Run(fuzzMover{}, pts, opt); err != nil {
			// Errors are acceptable (sim validation may reject extreme
			// configs); panics and hangs are what this fuzz hunts.
			return
		}
	})
}
