package scenario

import (
	"math/rand"
	"strings"
	"testing"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Config
	}{
		{"", Config{}},
		{"sched=greedy-stale", Config{Sched: "greedy-stale"}},
		{"sched=starve-edge,window=128,substeps=6",
			Config{Sched: "starve-edge", Window: 128, SubSteps: 6}},
		{"crash=2", Config{CrashK: 2}},
		{"crash=3@0.5", Config{CrashK: 3, CrashFrac: 0.5}},
		{"crash=1@0.75:moving", Config{CrashK: 1, CrashFrac: 0.75, CrashStage: sched.Moving}},
		{"crash=2:computed", Config{CrashK: 2, CrashStage: sched.Computed}},
		{"jitter=1e-6", Config{Jitter: 1e-6}},
		{"nonrigid=bimodal", Config{NonRigid: sim.NonRigidBimodal}},
		{" sched=fsync , jitter=0.25 ", Config{Sched: "fsync", Jitter: 0.25}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// String round-trips through Parse.
		again, err := Parse(got.String())
		if err != nil {
			t.Errorf("Parse(String(%q)) = %q: %v", tc.in, got.String(), err)
			continue
		}
		if again != got {
			t.Errorf("round trip of %q: %+v != %+v", tc.in, again, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"sched",              // no =
		"sched=",             // empty value
		"window=-1",          // negative
		"window=abc",         // not a number
		"substeps=-2",        // negative
		"crash=0",            // zero count
		"crash=-3",           // negative count
		"crash=x",            // not a number
		"crash=2@1.5",        // fraction out of range
		"crash=2@NaN",        // NaN fraction
		"crash=2@-0.1",       // negative fraction
		"crash=2:flying",     // unknown stage
		"jitter=-1",          // negative
		"jitter=Inf",         // infinite
		"jitter=NaN",         // NaN
		"gravity=9.8",        // unknown key
		"crash=2@0.5:moving:extra", // trailing stage garbage
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestApply(t *testing.T) {
	cfg, err := Parse("sched=greedy-stale,window=512,crash=2@0.5:looked,jitter=1e-7,nonrigid=minimal")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	if err := cfg.Apply(&opt, 16); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	g, ok := opt.Scheduler.(*GreedyStale)
	if !ok {
		t.Fatalf("scheduler = %T, want *GreedyStale", opt.Scheduler)
	}
	if g.Window != 512 {
		t.Errorf("window = %d, want 512", g.Window)
	}
	if len(opt.Crashes) != 2 {
		t.Fatalf("crashes = %v, want 2 specs", opt.Crashes)
	}
	if opt.Crashes[0].Robot == opt.Crashes[1].Robot {
		t.Errorf("crash victims not spread: %v", opt.Crashes)
	}
	// Half the crash horizon: 64·n events for 16 robots.
	wantAt := int(0.5 * float64(64*16))
	for _, cs := range opt.Crashes {
		if cs.AtEvent != wantAt {
			t.Errorf("AtEvent = %d, want %d", cs.AtEvent, wantAt)
		}
		if cs.Stage != sched.Looked {
			t.Errorf("stage = %v, want looked", cs.Stage)
		}
	}
	if !(opt.SensorJitter > 0) {
		t.Errorf("jitter not applied")
	}
	if !opt.NonRigid || opt.NonRigidDist != sim.NonRigidMinimal {
		t.Errorf("non-rigid distribution not applied: %+v", opt)
	}

	// Empty config is the identity.
	base := sim.DefaultOptions(sched.NewFSync(), 1)
	ident := base
	if err := (Config{}).Apply(&ident, 16); err != nil {
		t.Fatalf("empty Apply: %v", err)
	}
	if ident.Scheduler != base.Scheduler || len(ident.Crashes) != 0 ||
		!(ident.SensorJitter >= 0 && ident.SensorJitter <= 0) || ident.NonRigid {
		t.Errorf("empty config mutated options: %+v", ident)
	}
}

func TestApplyErrors(t *testing.T) {
	opt := sim.DefaultOptions(sched.NewFSync(), 1)
	if err := (Config{Sched: "warp"}).Apply(&opt, 8); err == nil {
		t.Errorf("unknown scheduler accepted")
	} else if !strings.Contains(err.Error(), "greedy-stale") {
		t.Errorf("scheduler error does not list known names: %v", err)
	}
	if err := (Config{CrashK: 8}).Apply(&opt, 8); err == nil {
		t.Errorf("total crash accepted")
	}
	if err := (Config{}).Apply(&opt, 0); err == nil {
		t.Errorf("zero robots accepted")
	}
}

// TestLegality puts every scheduler NewScheduler can build — the
// built-ins and both adversaries — through the fairness-legality
// checker. The adversaries run with deliberately small windows so the
// check exercises the starvation edge, not just the easy interior.
func TestLegality(t *testing.T) {
	const events = 20000
	for _, name := range SchedulerNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			window := 0 // checker default: sched.FairnessWindow
			if name == "greedy-stale" || name == "starve-edge" {
				window = 64
			}
			s, err := NewScheduler(name, window, 0)
			if err != nil {
				t.Fatalf("NewScheduler: %v", err)
			}
			checkWindow := window
			if checkWindow == 0 {
				checkWindow = sched.FairnessWindow
			}
			for _, n := range []int{1, 2, 6} {
				if err := CheckLegality(s, n, events, 17, checkWindow); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
			}
		})
	}
}

// TestLegalityCatchesStarvation: a deliberately unfair scheduler (never
// activates robot 0 when others exist) must fail the checker — the
// checker itself is under test here.
func TestLegalityCatchesStarvation(t *testing.T) {
	if err := CheckLegality(unfairSched{}, 3, 2000, 1, 128); err == nil {
		t.Fatalf("checker passed a scheduler that starves robot 0 forever")
	}
}

// TestLegalityCatchesBadIndex: an out-of-range index must fail.
func TestLegalityCatchesBadIndex(t *testing.T) {
	if err := CheckLegality(badIndexSched{}, 3, 10, 1, 128); err == nil {
		t.Fatalf("checker passed a scheduler returning invalid indices")
	}
}

// unfairSched starves robot 0 forever whenever others exist.
type unfairSched struct{}

func (unfairSched) Name() string { return "unfair" }
func (unfairSched) Reset(int)    {}
func (unfairSched) Next(st []sched.Status, _ int, _ *rand.Rand) int {
	if len(st) > 1 {
		return 1
	}
	return 0
}
func (unfairSched) MoveSteps(*rand.Rand) int { return 1 }

// badIndexSched returns an out-of-range index.
type badIndexSched struct{}

func (badIndexSched) Name() string { return "bad-index" }
func (badIndexSched) Reset(int)    {}
func (badIndexSched) Next(st []sched.Status, _ int, _ *rand.Rand) int {
	return len(st)
}
func (badIndexSched) MoveSteps(*rand.Rand) int { return 1 }

// TestAdversariesConverge pins, per adversary, one deterministic
// seeded run of the paper algorithm: it must still reach Complete
// Visibility with exactly zero collisions (the paper's physical-safety
// claim, exact-verified). Path crossings are NOT asserted zero — the
// repo's checker uses a deliberately conservative concurrency notion
// and the Transit-guard handshake has a known Look-before-light race
// (see EXPERIMENTS.md T3), so crossings are a reported robustness
// metric, not a guarantee; the matrix row carries the count.
func TestAdversariesConverge(t *testing.T) {
	for _, name := range []string{"greedy-stale", "starve-edge"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := NewScheduler(name, 256, 0)
			if err != nil {
				t.Fatalf("NewScheduler: %v", err)
			}
			pts := config.Generate(config.Uniform, 12, 5)
			opt := sim.DefaultOptions(s, 5)
			opt.MaxEpochs = 2048
			res, err := sim.Run(core.NewLogVis(), pts, opt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Reached {
				t.Fatalf("logvis failed to reach CV under %s: %d epochs, %d events",
					name, res.Epochs, res.Events)
			}
			if res.Collisions != 0 {
				t.Fatalf("collision under %s: %v", name, res.Violations)
			}
		})
	}
}
