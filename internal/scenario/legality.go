package scenario

import (
	"fmt"
	"math/rand"

	"luxvis/internal/sched"
)

// CheckLegality drives a scheduler through a stage-faithful fake engine
// for the given number of events and returns an error on the first
// violation of the ASYNC legality contract:
//
//   - every index returned by Next is in [0, n);
//   - every MoveSteps result is ≥ 1;
//   - no robot's activation gap ever exceeds window events (the
//     fairness bound — an adversary may starve a robot *to* the window,
//     never past it).
//
// The fake engine mirrors internal/sim's stage machine exactly: Idle
// robots Look, Looked robots Compute (randomly staying or arming a
// move of MoveSteps sub-steps), Computed/Moving robots advance one
// sub-step, and LastEvent advances the way the real event loop advances
// it. The adversarial schedulers in this package and every built-in in
// internal/sched must pass this check — it is the boundary between
// "hostile scheduling" and "broken scheduling".
func CheckLegality(s sched.Scheduler, n, events int, seed int64, window int) error {
	if n <= 0 {
		return fmt.Errorf("scenario: legality check needs n > 0, got %d", n)
	}
	if window <= 0 {
		window = sched.FairnessWindow
	}
	rng := rand.New(rand.NewSource(seed))
	s.Reset(n)
	st := make([]sched.Status, n)
	for i := range st {
		st[i].LastEvent = -1
	}
	for now := 0; now < events; now++ {
		// Fairness first: a robot whose gap already exceeds the window
		// cannot be saved by this event.
		for i := range st {
			last := st[i].LastEvent
			if last < 0 {
				last = 0
			}
			if gap := now - last; gap > window {
				return fmt.Errorf("scenario: %s starved robot %d for %d events (window %d) at event %d",
					s.Name(), i, gap, window, now)
			}
		}
		r := s.Next(st, now, rng)
		if r < 0 || r >= n {
			return fmt.Errorf("scenario: %s returned robot %d of %d at event %d", s.Name(), r, n, now)
		}
		switch st[r].Stage {
		case sched.Idle:
			st[r].Stage = sched.Looked
		case sched.Looked:
			// Half the cycles stay (completing immediately, as the real
			// engine does for a stay action), half arm a move.
			if rng.Intn(2) == 0 {
				st[r].Stage = sched.Idle
				st[r].Cycles++
			} else {
				steps := s.MoveSteps(rng)
				if steps < 1 {
					return fmt.Errorf("scenario: %s returned MoveSteps %d", s.Name(), steps)
				}
				st[r].Stage = sched.Computed
				st[r].StepsLeft = steps
			}
		case sched.Computed, sched.Moving:
			st[r].Stage = sched.Moving
			st[r].StepsLeft--
			if st[r].StepsLeft <= 0 {
				st[r].Stage = sched.Idle
				st[r].StepsLeft = 0
				st[r].Cycles++
			}
		}
		st[r].LastEvent = now + 1
	}
	return nil
}
