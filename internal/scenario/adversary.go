// Adversarial-but-legal ASYNC schedulers. Both policies here stay
// inside the fairness contract every legal ASYNC schedule must honor —
// no robot's activation gap ever exceeds the fairness window — while
// spending all remaining freedom on hostility: maximizing how stale a
// snapshot is at the moment its Compute commits to a move. Their
// legality is not taken on faith; CheckLegality drives any scheduler
// through a stage-faithful fake engine and fails on the first illegal
// index, sub-step count, or starvation-window overrun.
package scenario

import (
	"math/rand"

	"luxvis/internal/sched"
)

// starved returns the robot with the oldest activation if its gap has
// reached at least trigger events, else -1. A never-activated robot
// (LastEvent -1) counts as activated at event 0, matching the engine's
// convention that event 0 is the start of the run.
func starved(st []sched.Status, now, trigger int) int {
	idx, oldest := -1, now
	for i := range st {
		last := st[i].LastEvent
		if last < 0 {
			last = 0
		}
		if last < oldest {
			oldest = last
			idx = i
		}
	}
	if idx >= 0 && now-oldest >= trigger {
		return idx
	}
	return -1
}

// GreedyStale is the greedy stale-snapshot maximizer: it batches every
// available Look immediately (snapshots are cheap to hand out), then
// withholds the Computes — a robot holding a snapshot is advanced only
// when no motion and no Look is available, oldest snapshot first.
// Between those grudging Computes it runs each pending move serially to
// completion, so by the time the k-th held snapshot reaches its
// Compute, the world has changed under it by up to k-1 completed
// relocations plus every sub-step in between. AsyncStale freezes all
// decisions against one pre-wave world; GreedyStale is nastier per
// decision — the decision itself is taken against a world that is
// already many relocations ahead of the snapshot it uses.
//
// The policy is fully deterministic: Next never draws from the rng, so
// runs reproduce without a seed and every activation has a closed-form
// justification (useful when a matrix cell fails and must be replayed).
type GreedyStale struct {
	// Window is the fairness window in events (0 = sched.FairnessWindow).
	// A robot starved to the window boundary preempts all hostility.
	Window int
	// SubSteps is the fixed number of sub-steps per move (≥ 1, default
	// 4): maximal mid-move exposure without randomness.
	SubSteps int
}

// NewGreedyStale returns the greedy stale-snapshot adversary with
// default tuning.
func NewGreedyStale() *GreedyStale { return &GreedyStale{SubSteps: 4} }

// Name implements sched.Scheduler.
func (*GreedyStale) Name() string { return "greedy-stale" }

// Reset implements sched.Scheduler.
func (*GreedyStale) Reset(int) {}

// Next implements sched.Scheduler. Priority order: starvation override,
// the in-flight move (finish world changes first), a pending move
// start, a fresh Look, and only then — when nothing else is legal — the
// oldest withheld Compute.
func (g *GreedyStale) Next(st []sched.Status, now int, _ *rand.Rand) int {
	w := g.Window
	if w <= 0 {
		w = sched.FairnessWindow
	}
	if i := starved(st, now, w); i >= 0 {
		return i
	}
	for i := range st {
		if st[i].Stage == sched.Moving {
			return i
		}
	}
	for i := range st {
		if st[i].Stage == sched.Computed {
			return i
		}
	}
	for i := range st {
		if st[i].Stage == sched.Idle {
			return i
		}
	}
	// Only robots holding snapshots remain; release the one whose
	// snapshot has gone stalest.
	best, bestLast := -1, 0
	for i := range st {
		if st[i].Stage != sched.Looked {
			continue
		}
		last := st[i].LastEvent
		if last < 0 {
			last = 0
		}
		if best < 0 || last < bestLast {
			best, bestLast = i, last
		}
	}
	if best < 0 {
		// Unreachable: every stage is covered above. Satisfy the
		// contract with a valid index.
		return 0
	}
	return best
}

// MoveSteps implements sched.Scheduler.
func (g *GreedyStale) MoveSteps(*rand.Rand) int {
	if g.SubSteps < 1 {
		return 1
	}
	return g.SubSteps
}

// StarveEdge rides the starvation edge: one victim at a time is frozen
// for as long as the fairness window legally allows — activated only
// when its gap reaches window-1 events — while every other robot
// free-runs round-robin. Each of the victim's cycle stages is therefore
// separated from the next by a full window of world changes; when its
// Compute finally runs, the snapshot backing it is stale by roughly
// 2·window events of other robots' motion. The victim rotates after
// completing one full cycle, so over a long run every robot takes a
// turn being maximally starved — the per-robot worst case of the ASYNC
// model, applied to each robot in sequence.
type StarveEdge struct {
	// Window is the fairness window in events (0 = sched.FairnessWindow).
	// The victim is activated at a gap of window-1, one event inside the
	// legal bound.
	Window int
	// SubSteps is the fixed number of sub-steps per move (≥ 1, default 4).
	SubSteps int

	victim     int
	victimBase int
	rr         int
	started    bool
}

// NewStarveEdge returns the starvation-edge adversary with default
// tuning.
func NewStarveEdge() *StarveEdge { return &StarveEdge{SubSteps: 4} }

// Name implements sched.Scheduler.
func (*StarveEdge) Name() string { return "starve-edge" }

// Reset implements sched.Scheduler.
func (s *StarveEdge) Reset(int) {
	s.victim = 0
	s.victimBase = 0
	s.rr = 0
	s.started = false
}

// Next implements sched.Scheduler.
func (s *StarveEdge) Next(st []sched.Status, now int, _ *rand.Rand) int {
	if s.victim >= len(st) {
		// The engine compacts the status view after a crash; re-aim at a
		// live slot.
		s.victim = 0
		s.started = false
	}
	if !s.started {
		s.started = true
		s.victimBase = st[s.victim].Cycles
	}
	if st[s.victim].Cycles > s.victimBase {
		// The victim survived a full maximally-starved cycle; pass the
		// treatment to the next robot.
		s.victim = (s.victim + 1) % len(st)
		s.victimBase = st[s.victim].Cycles
	}
	w := s.Window
	if w <= 0 {
		w = sched.FairnessWindow
	}
	last := st[s.victim].LastEvent
	if last < 0 {
		last = 0
	}
	if now-last >= w-1 {
		return s.victim
	}
	for tries := 0; tries < len(st); tries++ {
		r := s.rr % len(st)
		s.rr++
		if r != s.victim {
			return r
		}
	}
	// Single-robot swarm: the victim is all there is.
	return s.victim
}

// MoveSteps implements sched.Scheduler.
func (s *StarveEdge) MoveSteps(*rand.Rand) int {
	if s.SubSteps < 1 {
		return 1
	}
	return s.SubSteps
}
