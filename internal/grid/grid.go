// Package grid provides a uniform spatial hash over robot positions: an
// incrementally-updatable index answering "which robots are within r of
// this segment/point" without scanning the whole swarm. The engine uses
// it to filter its per-sub-step collision checks — the exact predicates
// in internal/exact remain the authority; the grid only shortlists
// candidates, so it must never miss a point inside the query region
// (false positives are fine, false negatives are not).
package grid

import (
	"math"

	"luxvis/internal/geom"
)

// Index is a uniform spatial hash of indexed points. Cell size is fixed
// at construction; points move via Move. The index stores point IDs
// (indices into the caller's position slice), not positions — the caller
// remains the owner of the coordinates.
type Index struct {
	cell  float64
	cells map[cellKey][]int32
	pos   []geom.Point // last indexed position per id
}

type cellKey struct{ x, y int32 }

// New creates an index for n points with the given cell size. Cell size
// should be on the order of the typical query radius; the constructor
// clamps non-positive values to 1.
func New(n int, cellSize float64) *Index {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		cellSize = 1
	}
	return &Index{
		cell:  cellSize,
		cells: make(map[cellKey][]int32, n),
		pos:   make([]geom.Point, n),
	}
}

// NewFor builds an index over the given positions with a cell size
// derived from the bounding box and point count (≈ one point per cell
// for uniform data).
func NewFor(pts []geom.Point) *Index {
	cell := 1.0
	if len(pts) > 1 {
		min, max := geom.BoundingBox(pts)
		span := math.Max(max.X-min.X, max.Y-min.Y)
		if span > 0 {
			cell = span / math.Sqrt(float64(len(pts)))
		}
	}
	idx := New(len(pts), cell)
	for i, p := range pts {
		idx.Insert(i, p)
	}
	return idx
}

// CellSize returns the index's cell edge length.
func (ix *Index) CellSize() float64 { return ix.cell }

func (ix *Index) key(p geom.Point) cellKey {
	return cellKey{
		x: int32(math.Floor(p.X / ix.cell)),
		y: int32(math.Floor(p.Y / ix.cell)),
	}
}

// Insert adds point id at p. Inserting an id twice without Remove is a
// caller bug and corrupts the index.
func (ix *Index) Insert(id int, p geom.Point) {
	k := ix.key(p)
	ix.cells[k] = append(ix.cells[k], int32(id))
	if id >= len(ix.pos) {
		grown := make([]geom.Point, id+1)
		copy(grown, ix.pos)
		ix.pos = grown
	}
	ix.pos[id] = p
}

// Remove deletes point id (at its last indexed position).
func (ix *Index) Remove(id int) {
	k := ix.key(ix.pos[id])
	bucket := ix.cells[k]
	for i, v := range bucket {
		if v == int32(id) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(ix.cells, k)
	} else {
		ix.cells[k] = bucket
	}
}

// Move relocates point id to p, updating buckets only when the cell
// changes (the common case of a short sub-step stays in place).
func (ix *Index) Move(id int, p geom.Point) {
	if ix.key(ix.pos[id]) == ix.key(p) {
		ix.pos[id] = p
		return
	}
	ix.Remove(id)
	ix.Insert(id, p)
}

// NearSegment appends to out the ids of all indexed points within
// `margin` of segment s (a superset — cell granularity may include
// farther points; callers re-check precisely). The caller's buffer is
// reused to avoid allocation in the engine's hot path.
func (ix *Index) NearSegment(s geom.Segment, margin float64, out []int) []int {
	pad := margin + ix.cell // cell slack guarantees no false negatives
	minX := math.Min(s.A.X, s.B.X) - pad
	maxX := math.Max(s.A.X, s.B.X) + pad
	minY := math.Min(s.A.Y, s.B.Y) - pad
	maxY := math.Max(s.A.Y, s.B.Y) + pad
	lo := ix.key(geom.Pt(minX, minY))
	hi := ix.key(geom.Pt(maxX, maxY))
	// For long segments the AABB may cover many cells; fall back to a
	// bucket walk only while it is profitable, else scan everything.
	nCells := (int64(hi.x-lo.x) + 1) * (int64(hi.y-lo.y) + 1)
	if nCells > int64(4*len(ix.pos)+16) {
		for id, p := range ix.pos {
			if s.Dist(p) <= margin+ix.cell {
				out = append(out, id)
			}
		}
		return out
	}
	for cx := lo.x; cx <= hi.x; cx++ {
		for cy := lo.y; cy <= hi.y; cy++ {
			for _, id := range ix.cells[cellKey{cx, cy}] {
				out = append(out, int(id))
			}
		}
	}
	return out
}

// Near appends the ids of all indexed points within r of p (superset
// semantics as NearSegment).
func (ix *Index) Near(p geom.Point, r float64, out []int) []int {
	return ix.NearSegment(geom.Seg(p, p), r, out)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pos) }
