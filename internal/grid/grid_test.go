package grid

import (
	"math/rand"
	"testing"

	"luxvis/internal/geom"
)

func TestInsertRemoveMove(t *testing.T) {
	ix := New(3, 10)
	ix.Insert(0, geom.Pt(5, 5))
	ix.Insert(1, geom.Pt(15, 5))
	ix.Insert(2, geom.Pt(500, 500))

	got := ix.Near(geom.Pt(5, 5), 1, nil)
	if !contains(got, 0) {
		t.Errorf("Near missed resident point: %v", got)
	}
	if contains(got, 2) {
		t.Errorf("Near returned a far point: %v", got)
	}

	ix.Move(0, geom.Pt(505, 505))
	got = ix.Near(geom.Pt(505, 505), 1, nil)
	if !contains(got, 0) || !contains(got, 2) {
		t.Errorf("after Move: %v", got)
	}
	got = ix.Near(geom.Pt(5, 5), 1, nil)
	if contains(got, 0) {
		t.Errorf("stale position still indexed: %v", got)
	}

	ix.Remove(1)
	got = ix.Near(geom.Pt(15, 5), 1, nil)
	if contains(got, 1) {
		t.Errorf("removed point still indexed: %v", got)
	}
}

func TestMoveWithinCell(t *testing.T) {
	ix := New(1, 100)
	ix.Insert(0, geom.Pt(10, 10))
	ix.Move(0, geom.Pt(12, 13)) // same cell
	if got := ix.Near(geom.Pt(12, 13), 1, nil); !contains(got, 0) {
		t.Errorf("in-cell move lost the point: %v", got)
	}
}

// The critical property: NearSegment never misses a point actually
// within the margin of the segment (false negatives would silently
// disable collision checks).
func TestNearSegmentSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		ix := NewFor(pts)
		seg := geom.Seg(
			geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
			geom.Pt(rng.Float64()*1000, rng.Float64()*1000),
		)
		margin := rng.Float64() * 50
		got := ix.NearSegment(seg, margin, nil)
		set := map[int]bool{}
		for _, id := range got {
			set[id] = true
		}
		for id, p := range pts {
			if seg.Dist(p) <= margin && !set[id] {
				t.Fatalf("trial %d: point %d at dist %.3f ≤ %.3f missed",
					trial, id, seg.Dist(p), margin)
			}
		}
	}
}

func TestNearSegmentLongSegmentFallback(t *testing.T) {
	// A segment spanning a huge range triggers the full-scan fallback;
	// superset semantics must hold there too.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1e6, 0), geom.Pt(5e5, 3)}
	ix := New(len(pts), 1) // tiny cells force an enormous AABB cell count
	for i, p := range pts {
		ix.Insert(i, p)
	}
	got := ix.NearSegment(geom.Seg(geom.Pt(0, 0), geom.Pt(1e6, 0)), 5, nil)
	for want := 0; want < 3; want++ {
		if !contains(got, want) {
			t.Errorf("fallback missed point %d: %v", want, got)
		}
	}
}

func TestNewForDegenerate(t *testing.T) {
	// Single point and identical points must not divide by zero.
	ix := NewFor([]geom.Point{geom.Pt(5, 5)})
	if got := ix.Near(geom.Pt(5, 5), 1, nil); !contains(got, 0) {
		t.Errorf("singleton index: %v", got)
	}
	ix2 := New(2, 0) // non-positive cell clamps
	if ix2.CellSize() <= 0 {
		t.Error("cell size not clamped")
	}
}

func TestBufferReuse(t *testing.T) {
	ix := NewFor([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	buf := make([]int, 0, 8)
	out := ix.Near(geom.Pt(0, 0), 5, buf)
	if len(out) == 0 {
		t.Fatal("no results")
	}
	out2 := ix.Near(geom.Pt(0, 0), 5, out[:0])
	if len(out2) != len(out) {
		t.Errorf("buffer reuse changed results: %v vs %v", out2, out)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
