package model

import (
	"math"
	"testing"

	"luxvis/internal/geom"
)

func TestColorString(t *testing.T) {
	cases := map[Color]string{
		Off: "off", Line: "line", Corner: "corner", Side: "side",
		Interior: "interior", Transit: "transit", Beacon: "beacon", Done: "done",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Color(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Color(200).String(); got != "color(200)" {
		t.Errorf("out-of-range color = %q", got)
	}
}

func snap(self geom.Point, others ...RobotView) Snapshot {
	return Snapshot{Self: RobotView{Pos: self, Color: Off}, Others: others}
}

func TestSnapshotPoints(t *testing.T) {
	s := snap(geom.Pt(1, 1),
		RobotView{Pos: geom.Pt(2, 2), Color: Corner},
		RobotView{Pos: geom.Pt(3, 3), Color: Side},
	)
	pts := s.Points()
	if len(pts) != 3 || !pts[0].Eq(geom.Pt(1, 1)) || !pts[2].Eq(geom.Pt(3, 3)) {
		t.Errorf("Points = %v", pts)
	}
	op := s.OtherPoints()
	if len(op) != 2 || !op[0].Eq(geom.Pt(2, 2)) {
		t.Errorf("OtherPoints = %v", op)
	}
	// Returned slices are fresh: mutating them must not affect the
	// snapshot.
	pts[0] = geom.Pt(99, 99)
	if !s.Self.Pos.Eq(geom.Pt(1, 1)) {
		t.Error("Points aliases the snapshot")
	}
}

func TestCountColorAndAllOthersColored(t *testing.T) {
	s := snap(geom.Pt(0, 0),
		RobotView{Pos: geom.Pt(1, 0), Color: Corner},
		RobotView{Pos: geom.Pt(2, 0), Color: Corner},
		RobotView{Pos: geom.Pt(3, 0), Color: Done},
	)
	if got := s.CountColor(Corner); got != 2 {
		t.Errorf("CountColor = %d", got)
	}
	if got := s.CountColor(Interior); got != 0 {
		t.Errorf("CountColor(Interior) = %d", got)
	}
	if !s.AllOthersColored(Corner, Done) {
		t.Error("AllOthersColored(Corner, Done) = false")
	}
	if s.AllOthersColored(Corner) {
		t.Error("AllOthersColored(Corner) = true despite Done robot")
	}
	if !snap(geom.Pt(0, 0)).AllOthersColored(Corner) {
		t.Error("vacuous AllOthersColored = false")
	}
}

func TestNearest(t *testing.T) {
	s := snap(geom.Pt(0, 0),
		RobotView{Pos: geom.Pt(5, 0), Color: Off},
		RobotView{Pos: geom.Pt(2, 0), Color: Corner},
		RobotView{Pos: geom.Pt(9, 9), Color: Off},
	)
	v, ok := s.Nearest()
	if !ok || !v.Pos.Eq(geom.Pt(2, 0)) {
		t.Errorf("Nearest = %v, %v", v, ok)
	}
	if got := s.NearestDist(); got != 2 {
		t.Errorf("NearestDist = %v", got)
	}
	empty := snap(geom.Pt(0, 0))
	if _, ok := empty.Nearest(); ok {
		t.Error("Nearest on empty view succeeded")
	}
	if got := empty.NearestDist(); !math.IsInf(got, 1) {
		t.Errorf("NearestDist on empty view = %v", got)
	}
}

func TestActions(t *testing.T) {
	p := geom.Pt(1, 2)
	stay := Stay(p, Corner)
	if !stay.IsStay(p) || stay.Color != Corner {
		t.Errorf("Stay = %+v", stay)
	}
	mv := MoveTo(geom.Pt(5, 5), Transit)
	if mv.IsStay(p) {
		t.Error("MoveTo reported as stay")
	}
	if !mv.Target.Eq(geom.Pt(5, 5)) {
		t.Errorf("MoveTo target = %v", mv.Target)
	}
}
