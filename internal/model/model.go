// Package model defines the robots-with-lights computation model: colors,
// snapshots, actions and the Algorithm interface. An Algorithm is a pure
// function from a snapshot to an action — robots are anonymous, oblivious
// (no memory besides the light), and silent, exactly as in the paper. The
// simulation engine (internal/sim) is responsible for when snapshots are
// taken and when actions execute; the model layer is timing-free.
package model

import (
	"fmt"
	"math"

	"luxvis/internal/geom"
)

// Color is the value a robot's light can show. The model requires O(1)
// colors; each Algorithm declares its palette and the engine verifies no
// undeclared color is ever lit.
type Color uint8

// The shared palette. Algorithms use a subset; the names follow the
// phase roles in the Complete Visibility literature.
const (
	// Off is the initial color of every robot.
	Off Color = iota
	// Line marks an endpoint of a fully collinear configuration.
	Line
	// Corner marks a robot that has established itself as a strict
	// corner of the convex hull. Corner robots never move again until
	// the final Done transition.
	Corner
	// Side marks a robot positioned on a hull edge (between corners).
	Side
	// Interior marks a robot strictly inside the hull.
	Interior
	// Transit marks a robot that has committed to a relocation and may
	// currently be between its origin and its target.
	Transit
	// Beacon marks a robot serving as a placed reference point on a
	// curve during Beacon-Directed Curve Positioning.
	Beacon
	// Done marks a robot that has verified local completion.
	Done

	// NumColors is the size of the shared palette.
	NumColors = 8
)

var colorNames = [NumColors]string{
	"off", "line", "corner", "side", "interior", "transit", "beacon", "done",
}

// AllColors returns the full shared palette in declaration order. It is
// the sanctioned way to enumerate colors outside this package: vislint's
// palette analyzer forbids minting Color values from integers anywhere
// else, so palette-wide loops (legends, masks, trace decoding) go
// through this helper instead.
func AllColors() []Color {
	return []Color{Off, Line, Corner, Side, Interior, Transit, Beacon, Done}
}

func (c Color) String() string {
	if int(c) < len(colorNames) {
		return colorNames[c]
	}
	return fmt.Sprintf("color(%d)", uint8(c))
}

// RobotView is one robot as it appears in a snapshot: a position and a
// light color. There is no identity — robots are anonymous.
type RobotView struct {
	Pos   geom.Point
	Color Color
}

// Snapshot is the result of a Look: the observing robot's own position
// and light, and every robot currently visible from it (obstructed robots
// are absent). Positions are world coordinates as a simulation
// convenience; conforming algorithms use only frame-invariant constructs
// (see DESIGN.md, substitution log).
type Snapshot struct {
	Self   RobotView
	Others []RobotView
}

// Points returns the positions of all robots in the snapshot, self first.
// The returned slice is fresh; callers may mutate it.
func (s Snapshot) Points() []geom.Point {
	pts := make([]geom.Point, 0, len(s.Others)+1)
	pts = append(pts, s.Self.Pos)
	for _, o := range s.Others {
		pts = append(pts, o.Pos)
	}
	return pts
}

// OtherPoints returns the positions of the visible robots (excluding
// self). The returned slice is fresh.
func (s Snapshot) OtherPoints() []geom.Point {
	pts := make([]geom.Point, len(s.Others))
	for i, o := range s.Others {
		pts[i] = o.Pos
	}
	return pts
}

// CountColor returns how many visible robots (excluding self) show c.
func (s Snapshot) CountColor(c Color) int {
	n := 0
	for _, o := range s.Others {
		if o.Color == c {
			n++
		}
	}
	return n
}

// AllOthersColored reports whether every visible robot's light is one of
// the given colors. Vacuously true when nothing is visible.
func (s Snapshot) AllOthersColored(cs ...Color) bool {
	for _, o := range s.Others {
		ok := false
		for _, c := range cs {
			if o.Color == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Nearest returns the visible robot nearest to self and true, or a zero
// view and false when nothing is visible.
func (s Snapshot) Nearest() (RobotView, bool) {
	if len(s.Others) == 0 {
		return RobotView{}, false
	}
	best := s.Others[0]
	bd := s.Self.Pos.Dist2(best.Pos)
	for _, o := range s.Others[1:] {
		if d := s.Self.Pos.Dist2(o.Pos); d < bd {
			bd, best = d, o
		}
	}
	return best, true
}

// NearestDist returns the distance to the nearest visible robot, or +Inf
// when nothing is visible.
func (s Snapshot) NearestDist() float64 {
	v, ok := s.Nearest()
	if !ok {
		return math.Inf(1)
	}
	return s.Self.Pos.Dist(v.Pos)
}

// Action is the outcome of a Compute: a destination (equal to the current
// position to stay put) and the light color to show. The color becomes
// visible to other robots when the Compute completes, before the move
// begins, matching the standard robots-with-lights semantics.
type Action struct {
	Target geom.Point
	Color  Color
}

// Stay builds the action that keeps the robot at p showing color c.
func Stay(p geom.Point, c Color) Action { return Action{Target: p, Color: c} }

// MoveTo builds the action that moves to target showing color c.
func MoveTo(target geom.Point, c Color) Action { return Action{Target: target, Color: c} }

// IsStay reports whether the action keeps the robot at `at`.
func (a Action) IsStay(at geom.Point) bool { return a.Target.Eq(at) }

// Algorithm is a distributed robot algorithm: a pure, deterministic
// function from snapshots to actions. Implementations must not retain
// per-robot state across calls — robots are oblivious, and the engine
// may invoke Compute for different robots in any order.
type Algorithm interface {
	// Name identifies the algorithm in traces and experiment tables.
	Name() string
	// Palette declares every color the algorithm may ever set. The
	// engine fails a run if an undeclared color appears; the palette
	// size is the paper's O(1)-colors measurement.
	Palette() []Color
	// Compute maps a snapshot to an action.
	Compute(s Snapshot) Action
}
