// Package exact re-implements the safety-critical geometric predicates of
// the luxvis checker over math/big rationals. Every float64 coordinate is
// converted losslessly to a big.Rat, so orientation, betweenness, segment
// intersection and the Complete Visibility predicate computed here are
// free of rounding error for any finite float64 input.
//
// The simulation engine makes its *decisions* with the float kernel in
// internal/geom (the algorithms keep clear of degeneracies by
// construction) but *verifies* collision-freedom and the terminal
// Complete Visibility predicate with this package, so a reported zero
// collision count is a mathematical statement about the executed motion
// segments, not a tolerance artifact.
package exact

import (
	"math/big"

	"luxvis/internal/geom"
)

// Point is a point in the plane with exact rational coordinates.
type Point struct {
	X, Y *big.Rat
}

// FromFloat converts a float kernel point losslessly (every finite
// float64 is a rational). It panics on NaN/Inf coordinates — those are
// engine bugs, not data.
func FromFloat(p geom.Point) Point {
	if !p.IsFinite() {
		panic("exact: non-finite coordinate")
	}
	x := new(big.Rat).SetFloat64(p.X)
	y := new(big.Rat).SetFloat64(p.Y)
	return Point{X: x, Y: y}
}

// FromFloats converts a slice of float points.
func FromFloats(ps []geom.Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = FromFloat(p)
	}
	return out
}

// Eq reports exact coordinate equality.
func (p Point) Eq(q Point) bool { return p.X.Cmp(q.X) == 0 && p.Y.Cmp(q.Y) == 0 }

// sub returns p - q componentwise.
func sub(p, q Point) (dx, dy *big.Rat) {
	dx = new(big.Rat).Sub(p.X, q.X)
	dy = new(big.Rat).Sub(p.Y, q.Y)
	return dx, dy
}

// OrientSign returns the exact sign of the cross product (b-a)×(c-a):
// +1 for a left turn, -1 for a right turn, 0 for exactly collinear.
func OrientSign(a, b, c Point) int {
	abx, aby := sub(b, a)
	acx, acy := sub(c, a)
	lhs := new(big.Rat).Mul(abx, acy)
	rhs := new(big.Rat).Mul(aby, acx)
	return lhs.Cmp(rhs)
}

// Collinear reports exact collinearity of a, b, c.
func Collinear(a, b, c Point) bool { return OrientSign(a, b, c) == 0 }

// StrictlyBetween reports whether m lies exactly on the open segment
// (a, b): collinear and strictly inside the coordinate range on the
// dominant axis.
func StrictlyBetween(a, b, m Point) bool {
	if !Collinear(a, b, m) {
		return false
	}
	dx := new(big.Rat).Sub(b.X, a.X)
	dy := new(big.Rat).Sub(b.Y, a.Y)
	useX := absCmp(dx, dy) >= 0
	var ta, tb, tm *big.Rat
	if useX {
		ta, tb, tm = a.X, b.X, m.X
	} else {
		ta, tb, tm = a.Y, b.Y, m.Y
	}
	lo, hi := ta, tb
	if lo.Cmp(hi) > 0 {
		lo, hi = hi, lo
	}
	return tm.Cmp(lo) > 0 && tm.Cmp(hi) < 0
}

// OnSegment reports whether m lies exactly on the closed segment [a, b].
func OnSegment(a, b, m Point) bool {
	if m.Eq(a) || m.Eq(b) {
		return true
	}
	return StrictlyBetween(a, b, m)
}

// absCmp compares |x| with |y|.
func absCmp(x, y *big.Rat) int {
	ax := new(big.Rat).Abs(x)
	ay := new(big.Rat).Abs(y)
	return ax.Cmp(ay)
}

// Visible reports, exactly, whether points i and j of pts see each other.
func Visible(pts []Point, i, j int) bool {
	if i == j || pts[i].Eq(pts[j]) {
		return false
	}
	for k := range pts {
		if k == i || k == j {
			continue
		}
		if StrictlyBetween(pts[i], pts[j], pts[k]) {
			return false
		}
	}
	return true
}

// CompleteVisibility reports, exactly, whether all points are distinct
// and pairwise mutually visible.
func CompleteVisibility(pts []Point) bool {
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Eq(pts[j]) || !Visible(pts, i, j) {
				return false
			}
		}
	}
	return true
}

// CompleteVisibilityFloat is the convenience form over float points.
func CompleteVisibilityFloat(pts []geom.Point) bool {
	return CompleteVisibility(FromFloats(pts))
}

// SegmentsProperlyCross reports, exactly, whether the open segments
// (a1,b1) and (a2,b2) cross at a point interior to both. Shared endpoints
// and collinear overlaps are not proper crossings (the engine classifies
// those separately).
func SegmentsProperlyCross(a1, b1, a2, b2 Point) bool {
	o1 := OrientSign(a1, b1, a2)
	o2 := OrientSign(a1, b1, b2)
	o3 := OrientSign(a2, b2, a1)
	o4 := OrientSign(a2, b2, b1)
	return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4
}

// SegmentsOverlap reports, exactly, whether two segments are collinear
// and share more than a single point.
func SegmentsOverlap(a1, b1, a2, b2 Point) bool {
	if OrientSign(a1, b1, a2) != 0 || OrientSign(a1, b1, b2) != 0 {
		return false
	}
	// Both segments lie on one line. Compare ranges on the dominant axis
	// of the combined direction.
	dx := new(big.Rat).Sub(b1.X, a1.X)
	dy := new(big.Rat).Sub(b1.Y, a1.Y)
	if dx.Sign() == 0 && dy.Sign() == 0 {
		dx = new(big.Rat).Sub(b2.X, a2.X)
		dy = new(big.Rat).Sub(b2.Y, a2.Y)
	}
	useX := absCmp(dx, dy) >= 0
	coord := func(p Point) *big.Rat {
		if useX {
			return p.X
		}
		return p.Y
	}
	lo1, hi1 := coord(a1), coord(b1)
	if lo1.Cmp(hi1) > 0 {
		lo1, hi1 = hi1, lo1
	}
	lo2, hi2 := coord(a2), coord(b2)
	if lo2.Cmp(hi2) > 0 {
		lo2, hi2 = hi2, lo2
	}
	// Overlap of positive length: max(lo) < min(hi).
	maxLo, minHi := lo1, hi1
	if lo2.Cmp(maxLo) > 0 {
		maxLo = lo2
	}
	if hi2.Cmp(minHi) < 0 {
		minHi = hi2
	}
	return maxLo.Cmp(minHi) < 0
}

// PointOnOpenSegment is OnSegment restricted to the open interior and is
// exported for the engine's "moving robot passes through a stationary
// robot" check.
func PointOnOpenSegment(a, b, m Point) bool { return StrictlyBetween(a, b, m) }

// StrictlyConvexPosition reports, exactly, whether the points are
// distinct, no three are collinear in a blocking way, and every point is
// a corner of the convex hull. It is equivalent to CompleteVisibility
// plus hull-corner membership; the engine asserts the equivalence in
// tests and uses CompleteVisibility as the terminal predicate.
func StrictlyConvexPosition(pts []Point) bool {
	n := len(pts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Eq(pts[j]) {
				return false
			}
		}
	}
	if n <= 2 {
		return true
	}
	// A point set is in strictly convex position iff no point lies in
	// the convex hull of the others. Testing "p inside or on hull of
	// rest" exactly: p is NOT a strict corner iff p is a convex
	// combination of others, which for our purposes reduces to: there
	// exist two others a, b with p on segment [a,b], or p strictly
	// inside a triangle of others. O(n^4) worst case is fine at checker
	// scale; use the triangle test.
	for i := 0; i < n; i++ {
		if !isStrictCorner(pts, i) {
			return false
		}
	}
	return true
}

// isStrictCorner reports whether pts[i] is a strict corner of the hull of
// pts: not inside or on the boundary of any triangle/segment of other
// points.
func isStrictCorner(pts []Point, i int) bool {
	p := pts[i]
	n := len(pts)
	for a := 0; a < n; a++ {
		if a == i {
			continue
		}
		for b := a + 1; b < n; b++ {
			if b == i {
				continue
			}
			if OnSegment(pts[a], pts[b], p) {
				return false
			}
		}
	}
	// Triangle containment: p strictly inside triangle (a,b,c).
	for a := 0; a < n; a++ {
		if a == i {
			continue
		}
		for b := a + 1; b < n; b++ {
			if b == i {
				continue
			}
			for c := b + 1; c < n; c++ {
				if c == i {
					continue
				}
				if inTriangle(pts[a], pts[b], pts[c], p) {
					return false
				}
			}
		}
	}
	return true
}

// inTriangle reports whether p lies strictly inside triangle abc.
func inTriangle(a, b, c, p Point) bool {
	o1 := OrientSign(a, b, p)
	o2 := OrientSign(b, c, p)
	o3 := OrientSign(c, a, p)
	if o1 == 0 || o2 == 0 || o3 == 0 {
		return false
	}
	return o1 == o2 && o2 == o3
}
