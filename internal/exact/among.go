package exact

import (
	"luxvis/internal/geom"
)

// CompleteVisibilityAmong decides, exactly, Complete Visibility among
// the selected subset of points with every point — selected or not —
// acting as a potential obstruction. This is the terminal predicate of
// crash-fault runs: survivors (selected) must be pairwise mutually
// visible, but a halted robot's frozen body still blocks lines of
// sight and still must not be colocated with a survivor.
//
// Like CompleteVisibilityHybrid, it runs the float angular filter to
// propose candidate collinear triples and confirms each over big.Rat.
// The subtlety relative to the full predicate: a confirmed collinear
// triple refutes subset-CV only when its two endpoints are both
// selected and its blocker lies strictly between them — an unselected
// endpoint's blocked sightline is irrelevant. The filter emits every
// exactly-collinear triple once per point playing the blocker role, so
// filtering candidates to selected endpoint pairs loses nothing.
//
// selected must have the same length as pts; a nil mask means all
// selected, reducing to CompleteVisibilityHybrid's verdict.
func CompleteVisibilityAmong(pts []geom.Point, selected []bool) bool {
	if selected == nil {
		return CompleteVisibilityHybrid(pts)
	}
	eps := FromFloats(pts)
	// Exact distinctness of every selected point against all points: a
	// survivor sharing a position with anything (alive or crashed) is a
	// collision, not a visibility question.
	for i := 0; i < len(eps); i++ {
		if !selected[i] {
			continue
		}
		for j := 0; j < len(eps); j++ {
			if j != i && eps[i].Eq(eps[j]) {
				return false
			}
		}
	}
	for _, t := range geom.CollinearCandidates(pts, candidateTol) {
		if t.A == t.Blocker || t.B == t.Blocker {
			continue
		}
		if !selected[t.A] || !selected[t.B] {
			continue
		}
		// Collinearity alone is not enough here: with unselected points
		// in play the blocker must lie strictly between the selected
		// endpoints, not merely on their line.
		if StrictlyBetween(eps[t.A], eps[t.B], eps[t.Blocker]) {
			return false
		}
	}
	return true
}
