package exact

import (
	"math/rand"
	"testing"

	"luxvis/internal/geom"
)

// bruteAmong is the O(n³) reference: selected points pairwise distinct
// from everything and mutually visible with all points as obstructions.
func bruteAmong(pts []geom.Point, selected []bool) bool {
	eps := FromFloats(pts)
	for i := range eps {
		if !selected[i] {
			continue
		}
		for j := range eps {
			if j != i && eps[i].Eq(eps[j]) {
				return false
			}
		}
	}
	for i := range eps {
		if !selected[i] {
			continue
		}
		for j := i + 1; j < len(eps); j++ {
			if !selected[j] {
				continue
			}
			for k := range eps {
				if k == i || k == j {
					continue
				}
				if StrictlyBetween(eps[i], eps[j], eps[k]) {
					return false
				}
			}
		}
	}
	return true
}

func TestCompleteVisibilityAmong(t *testing.T) {
	line := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}

	cases := []struct {
		name     string
		pts      []geom.Point
		selected []bool
		want     bool
	}{
		{"blocked pair across unselected middle", line, []bool{true, false, true}, false},
		{"adjacent pair, third beyond not between", line, []bool{true, true, false}, true},
		{"middle plus end, other end beyond", line, []bool{false, true, true}, true},
		{"single survivor", line, []bool{false, true, false}, true},
		{"no survivors", line, []bool{false, false, false}, true},
		{"survivor coincident with unselected",
			[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(2, 3)},
			[]bool{true, false, true}, false},
		{"unselected pair coincident, survivors convex",
			[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(1, 0), geom.Pt(0, 1)},
			[]bool{true, false, false, true, true}, true},
		{"square all selected",
			[]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)},
			[]bool{true, true, true, true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CompleteVisibilityAmong(tc.pts, tc.selected); got != tc.want {
				t.Fatalf("CompleteVisibilityAmong = %v, want %v", got, tc.want)
			}
			if got := bruteAmong(tc.pts, tc.selected); got != tc.want {
				t.Fatalf("brute reference disagrees with the case's want=%v", tc.want)
			}
		})
	}

	// Nil mask falls back to the full-swarm hybrid predicate.
	if CompleteVisibilityAmong(line, nil) != CompleteVisibilityHybrid(line) {
		t.Fatalf("nil mask must match CompleteVisibilityHybrid")
	}
}

// TestCompleteVisibilityAmongDifferential cross-validates the filtered
// predicate against the brute-force exact reference on adversarial
// random configurations: small integer grids force many exact
// collinearities and coincidences.
func TestCompleteVisibilityAmongDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(8)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(5)), float64(rng.Intn(5)))
		}
		selected := make([]bool, n)
		for i := range selected {
			selected[i] = rng.Intn(4) != 0
		}
		got := CompleteVisibilityAmong(pts, selected)
		want := bruteAmong(pts, selected)
		if got != want {
			t.Fatalf("trial %d: pts=%v selected=%v: filtered=%v brute=%v",
				trial, pts, selected, got, want)
		}
	}
}
