package exact

import (
	"luxvis/internal/geom"
)

// candidateTol is the folded-angle tolerance handed to the float
// candidate filter. An exactly collinear triple of finite float64
// coordinates produces a folded-angle gap many orders of magnitude below
// this, so the candidate set is a strict superset of the exactly
// collinear triples and confirming candidates exactly decides CV exactly.
const candidateTol = 1e-5

// CompleteVisibilityHybrid decides Complete Visibility for float points
// with exact arithmetic at O(n² log n) expected cost: a float angular
// filter proposes candidate collinear triples, each of which is confirmed
// or refuted over big.Rat. Distinctness is checked exactly as well. The
// full O(n³) exact predicate (CompleteVisibility) is cross-validated
// against this in tests.
func CompleteVisibilityHybrid(pts []geom.Point) bool {
	eps := FromFloats(pts)
	// Exact distinctness.
	for i := 0; i < len(eps); i++ {
		for j := i + 1; j < len(eps); j++ {
			if eps[i].Eq(eps[j]) {
				return false
			}
		}
	}
	// Candidate collinear triples from the float filter, confirmed
	// exactly. Any confirmed collinear triple of distinct points has one
	// point strictly between the others, hence a blocked pair.
	for _, t := range geom.CollinearCandidates(pts, candidateTol) {
		if t.A == t.Blocker || t.B == t.Blocker {
			// Degenerate duplicate marker from the filter; distinctness
			// above already handled true duplicates.
			continue
		}
		if Collinear(eps[t.A], eps[t.B], eps[t.Blocker]) {
			return false
		}
	}
	return true
}

// BlockedPairExact reports whether the specific pair (i, j) is blocked,
// exactly.
func BlockedPairExact(pts []geom.Point, i, j int) bool {
	eps := FromFloats(pts)
	return !Visible(eps, i, j)
}
