package exact

import (
	"math/rand"
	"testing"

	"luxvis/internal/geom"
)

func fp(x, y float64) Point { return FromFloat(geom.Pt(x, y)) }

func TestOrientSign(t *testing.T) {
	cases := []struct {
		a, b, c Point
		want    int
	}{
		{fp(0, 0), fp(1, 0), fp(0, 1), 1},
		{fp(0, 0), fp(1, 0), fp(0, -1), -1},
		{fp(0, 0), fp(1, 0), fp(2, 0), 0},
		// A triple that float predicates would call collinear but is
		// exactly not: the offset is below geom.Eps but representable.
		{fp(0, 0), fp(1, 0), fp(0.5, 1e-12), 1},
	}
	for _, c := range cases {
		if got := OrientSign(c.a, c.b, c.c); got != c.want {
			t.Errorf("OrientSign = %d, want %d", got, c.want)
		}
	}
}

func TestStrictlyBetweenExact(t *testing.T) {
	a, b := fp(0, 0), fp(10, 0)
	if !StrictlyBetween(a, b, fp(5, 0)) {
		t.Error("midpoint rejected")
	}
	if StrictlyBetween(a, b, fp(0, 0)) || StrictlyBetween(a, b, fp(10, 0)) {
		t.Error("endpoint accepted")
	}
	if StrictlyBetween(a, b, fp(5, 1e-15)) {
		t.Error("off-line point accepted (exactly off by 1e-15)")
	}
	// Vertical.
	va, vb := fp(0, 0), fp(0, 10)
	if !StrictlyBetween(va, vb, fp(0, 3)) {
		t.Error("vertical between rejected")
	}
}

func TestVisibleAndCV(t *testing.T) {
	line := []Point{fp(0, 0), fp(5, 0), fp(10, 0)}
	if Visible(line, 0, 2) {
		t.Error("blocked pair visible")
	}
	if !Visible(line, 0, 1) {
		t.Error("adjacent pair not visible")
	}
	if CompleteVisibility(line) {
		t.Error("line reported CV")
	}
	tri := []Point{fp(0, 0), fp(4, 0), fp(2, 3)}
	if !CompleteVisibility(tri) {
		t.Error("triangle not CV")
	}
	dup := []Point{fp(1, 1), fp(1, 1)}
	if CompleteVisibility(dup) {
		t.Error("duplicates reported CV")
	}
}

func TestSegmentsProperlyCross(t *testing.T) {
	if !SegmentsProperlyCross(fp(0, 0), fp(10, 10), fp(0, 10), fp(10, 0)) {
		t.Error("X crossing not detected")
	}
	if SegmentsProperlyCross(fp(0, 0), fp(5, 5), fp(5, 5), fp(9, 0)) {
		t.Error("shared endpoint counted as proper crossing")
	}
	if SegmentsProperlyCross(fp(0, 0), fp(10, 0), fp(0, 1), fp(10, 1)) {
		t.Error("parallel segments counted as crossing")
	}
	if SegmentsProperlyCross(fp(0, 0), fp(10, 0), fp(2, 0), fp(8, 0)) {
		t.Error("collinear overlap counted as proper crossing")
	}
}

func TestSegmentsOverlap(t *testing.T) {
	if !SegmentsOverlap(fp(0, 0), fp(10, 0), fp(5, 0), fp(15, 0)) {
		t.Error("overlap not detected")
	}
	if SegmentsOverlap(fp(0, 0), fp(5, 0), fp(5, 0), fp(9, 0)) {
		t.Error("single shared point counted as overlap")
	}
	if SegmentsOverlap(fp(0, 0), fp(10, 0), fp(0, 1), fp(10, 1)) {
		t.Error("parallel non-collinear counted as overlap")
	}
	if !SegmentsOverlap(fp(0, 0), fp(0, 10), fp(0, 5), fp(0, 15)) {
		t.Error("vertical overlap not detected")
	}
}

func TestStrictlyConvexPositionExact(t *testing.T) {
	tri := []Point{fp(0, 0), fp(4, 0), fp(2, 3)}
	if !StrictlyConvexPosition(tri) {
		t.Error("triangle rejected")
	}
	withInterior := []Point{fp(0, 0), fp(4, 0), fp(2, 3), fp(2, 1)}
	if StrictlyConvexPosition(withInterior) {
		t.Error("interior point accepted")
	}
	collinear := []Point{fp(0, 0), fp(2, 0), fp(4, 0)}
	if StrictlyConvexPosition(collinear) {
		t.Error("collinear points accepted")
	}
}

// Hybrid checker agrees with the full exact predicate on random and
// degenerate configurations.
func TestHybridAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		switch trial % 3 {
		case 1: // exact collinear triple
			pts[2] = pts[0].Mid(pts[1])
		case 2: // near-collinear but exactly off
			m := pts[0].Mid(pts[1])
			pts[2] = geom.Pt(m.X, m.Y+1e-11)
		}
		full := CompleteVisibility(FromFloats(pts))
		hybrid := CompleteVisibilityHybrid(pts)
		if full != hybrid {
			t.Fatalf("trial %d: full=%v hybrid=%v for %v", trial, full, hybrid, pts)
		}
	}
}

// The float predicate band: exact arithmetic distinguishes points the
// float kernel deliberately merges.
func TestExactResolvesBelowFloatEps(t *testing.T) {
	a := geom.Pt(0, 0)
	b := geom.Pt(1, 0)
	m := geom.Pt(0.5, 1e-12) // inside geom.Eps band, exactly off the line
	if !geom.AreCollinear(a, b, m) {
		t.Skip("float kernel resolves this offset; widen the test")
	}
	if Collinear(FromFloat(a), FromFloat(b), FromFloat(m)) {
		t.Error("exact kernel merged a distinct point")
	}
}

func TestBlockedPairExact(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	if !BlockedPairExact(pts, 0, 2) {
		t.Error("blocked pair not detected")
	}
	if BlockedPairExact(pts, 0, 1) {
		t.Error("visible pair reported blocked")
	}
}

func TestFromFloatPanicsOnNonFinite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on NaN")
		}
	}()
	FromFloat(geom.Point{X: 0, Y: nan()})
}

func nan() float64 { f := 0.0; return f / f }
