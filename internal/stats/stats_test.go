package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-1) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if fit.RMSE > 1e-9 {
		t.Errorf("RMSE = %v", fit.RMSE)
	}
}

func TestLog2FitExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*math.Log2(x) + 5
	}
	fit, err := Log2Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-9 || math.Abs(fit.Intercept-5) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := Log2Fit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("non-positive x accepted")
	}
}

func TestSqrtFit(t *testing.T) {
	xs := []float64{1, 4, 9, 16, 25}
	ys := []float64{2, 4, 6, 8, 10} // y = 2·√x
	fit, err := SqrtFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := SqrtFit([]float64{-1, 1}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestClassifyGrowth(t *testing.T) {
	xs := []float64{8, 16, 32, 64, 128, 256, 512}
	rng := rand.New(rand.NewSource(1))
	mk := func(f func(x float64) float64, noise float64) []float64 {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = f(x) + rng.NormFloat64()*noise
		}
		return ys
	}
	logY := mk(func(x float64) float64 { return 4*math.Log2(x) + 2 }, 0.3)
	linY := mk(func(x float64) float64 { return 0.5*x + 3 }, 0.3)
	sqY := mk(func(x float64) float64 { return 3 * math.Sqrt(x) }, 0.3)

	if rep, _ := ClassifyGrowth(xs, logY); rep.Best != GrowthLog {
		t.Errorf("log series classified as %v", rep.Best)
	}
	if rep, _ := ClassifyGrowth(xs, linY); rep.Best != GrowthLinear {
		t.Errorf("linear series classified as %v", rep.Best)
	}
	if rep, _ := ClassifyGrowth(xs, sqY); rep.Best != GrowthSqrt {
		t.Errorf("sqrt series classified as %v", rep.Best)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Summarize did not panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(s, q); math.Abs(got-want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, 3)
	if lo > 10 || hi < 10 {
		t.Errorf("CI [%v, %v] excludes the true mean", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI [%v, %v] too wide for n=200", lo, hi)
	}
	// Deterministic per seed.
	lo2, hi2 := BootstrapMeanCI(xs, 0.95, 500, 3)
	if lo != lo2 || hi != hi2 {
		t.Error("bootstrap not deterministic per seed")
	}
}
