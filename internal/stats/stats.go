// Package stats provides the small statistical toolkit the experiment
// harness uses to decide which growth law a measured series follows:
// least-squares fits of y against log₂(x) and against x, coefficients of
// determination, and summary statistics with bootstrap confidence
// intervals. The headline reproduction question — do epochs grow like
// log N or like N? — is answered by comparing the two fits' R².
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Fit is a least-squares line y ≈ Slope·f(x) + Intercept for a feature
// transform f, with goodness-of-fit diagnostics.
type Fit struct {
	// Slope and Intercept are the fitted coefficients.
	Slope, Intercept float64
	// R2 is the coefficient of determination in [..1]; 1 is a perfect
	// fit (it can be negative for fits worse than the mean).
	R2 float64
	// RMSE is the root mean squared residual.
	RMSE float64
	// N is the number of points fitted.
	N int
}

// LinearFit fits y ≈ a·x + b.
func LinearFit(xs, ys []float64) (Fit, error) {
	return fit(xs, ys, func(x float64) float64 { return x })
}

// Log2Fit fits y ≈ a·log₂(x) + b. All xs must be positive.
func Log2Fit(xs, ys []float64) (Fit, error) {
	for _, x := range xs {
		if x <= 0 {
			return Fit{}, errors.New("stats: Log2Fit requires positive x")
		}
	}
	return fit(xs, ys, math.Log2)
}

// SqrtFit fits y ≈ a·√x + b; used as an extra alternative law in the
// scaling analysis. All xs must be non-negative.
func SqrtFit(xs, ys []float64) (Fit, error) {
	for _, x := range xs {
		if x < 0 {
			return Fit{}, errors.New("stats: SqrtFit requires non-negative x")
		}
	}
	return fit(xs, ys, math.Sqrt)
}

func fit(xs, ys []float64, f func(float64) float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched series lengths")
	}
	n := len(xs)
	if n < 2 {
		return Fit{}, errors.New("stats: need at least two points")
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		fx := f(xs[i])
		sx += fx
		sy += ys[i]
		sxx += fx * fx
		sxy += fx * ys[i]
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	// den = n·Σx² − (Σx)² ≥ 0 (Cauchy–Schwarz) and vanishes exactly when
	// all x are equal; compare against a magnitude-scaled band rather
	// than zero so near-degenerate inputs fail loudly instead of
	// producing an astronomically amplified slope.
	if den <= 1e-12*fn*sxx {
		return Fit{}, errors.New("stats: degenerate x values")
	}
	slope := (fn*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / fn

	meanY := sy / fn
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*f(xs[i]) + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	} else if ssRes > 0 {
		r2 = 0
	}
	return Fit{
		Slope:     slope,
		Intercept: intercept,
		R2:        r2,
		RMSE:      math.Sqrt(ssRes / fn),
		N:         n,
	}, nil
}

// GrowthLaw names the growth law best matching a series.
type GrowthLaw string

// Growth laws distinguished by ClassifyGrowth.
const (
	GrowthLog    GrowthLaw = "log"
	GrowthSqrt   GrowthLaw = "sqrt"
	GrowthLinear GrowthLaw = "linear"
)

// GrowthReport compares candidate growth laws on one series.
type GrowthReport struct {
	Log, Sqrt, Linear Fit
	// Best is the law with the highest R².
	Best GrowthLaw
}

// ClassifyGrowth fits y against log₂x, √x and x and reports which law
// explains the series best. The xs must be positive.
func ClassifyGrowth(xs, ys []float64) (GrowthReport, error) {
	lg, err := Log2Fit(xs, ys)
	if err != nil {
		return GrowthReport{}, err
	}
	sq, err := SqrtFit(xs, ys)
	if err != nil {
		return GrowthReport{}, err
	}
	ln, err := LinearFit(xs, ys)
	if err != nil {
		return GrowthReport{}, err
	}
	rep := GrowthReport{Log: lg, Sqrt: sq, Linear: ln, Best: GrowthLog}
	best := lg.R2
	if sq.R2 > best {
		rep.Best, best = GrowthSqrt, sq.R2
	}
	if ln.R2 > best {
		rep.Best = GrowthLinear
	}
	return rep, nil
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Median, Max   float64
	P25, P75, P90, P95 float64
}

// Summarize computes order statistics of xs. It panics on an empty
// sample — summarizing nothing is a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sum2 float64
	for _, x := range s {
		sum += x
		sum2 += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    s[0],
		Median: Quantile(s, 0.5),
		Max:    s[len(s)-1],
		P25:    Quantile(s, 0.25),
		P75:    Quantile(s, 0.75),
		P90:    Quantile(s, 0.90),
		P95:    Quantile(s, 0.95),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ASCENDING-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using the
// provided number of resamples and seed. It panics on an empty sample.
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed int64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapMeanCI of empty sample")
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
