package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Module is the whole-program view the cross-package analyzers run
// over: every loaded package sharing one type-checked universe, a
// function->package index spanning package boundaries, and a summary
// per declared function. Summaries are computed bottom-up in dependency
// order, so by the time a package is summarized every module-local
// callee below it already has its facts; the per-package intra
// call-graph (callgraph.go) then closes the facts over local recursion.
//
// Because a summary only ever describes a function's transitive
// *dependencies*, the per-package result cache stays correct unchanged:
// a package's combined content hash already folds in every module-local
// dependency's sources, which is exactly the input set its cross-package
// findings are a function of.
type Module struct {
	pkgs   []*Package // dependency order
	byPath map[string]*Package
	owner  map[*types.Func]*Package
	sums   map[*types.Func]*FuncSummary

	// chans holds each package's own channel send/close sites;
	// closedScope widens a package's view of closes to its transitive
	// module dependencies (never its dependents — cache correctness).
	chans       map[*Package]*chanFacts
	closedScope map[*Package]map[types.Object][]chanSite
	// lockEdges holds each package's lock-order edges, derived after
	// its Acquires summaries close. Consumed by lockorder.
	lockEdges map[*Package][]lockEdge
}

// FuncSummary is one declared function's exported analysis facts.
type FuncSummary struct {
	// LockUnsafe is non-nil when calling the function can, directly or
	// transitively, perform an operation forbidden under a mutex
	// (channel ops, blocking selects, waits, sleeps, observer
	// callbacks), with a witness chain. Consumed by locksafe.
	LockUnsafe *Reach
	// Blocks is LockUnsafe minus observer callbacks: the function can
	// genuinely block. Consumed by ctxflow.
	Blocks *Reach
	// Nondet is non-nil when calling the function taints determinism
	// (wall clock, global math/rand, map iteration), with a witness
	// chain. Ops covered by a //lint:allow detsource directive do not
	// taint: the annotation is the written-down proof of harmlessness,
	// and propagating past it would demand an allow at every caller.
	// Consumed by detsource.
	Nondet *Reach
	// ArenaReturn marks functions whose return value aliases a
	// kernel-arena visibility row (geom.Snapshot.Row, geom.RowCache
	// VisibleSet, or any wrapper returning their result). Consumed by
	// arenaalias.
	ArenaReturn bool
	// SinkParams holds the parameter indices whose values reach a JSON
	// sink (json.Marshal / Encoder.Encode, directly or through further
	// wrappers). Consumed by wireformat.
	SinkParams map[int]bool
	// CtxParam is the index of the first context.Context parameter, or
	// -1. Consumed by ctxflow.
	CtxParam int
	// LeakRisk is non-nil when calling the function can block forever
	// or loop without bound (a channel op with no close in scope, a
	// select without default, a sync.Cond wait, a for{} loop), with a
	// witness chain. Consumed by goleak.
	LeakRisk *Reach
	// TermEvidence is non-nil when the function can reach goroutine
	// termination evidence — a ctx.Done() or module-closed-channel
	// receive, a ctx.Err() poll, a sync.WaitGroup join — with a witness
	// chain. Consumed by goleak: risk without evidence is a leak.
	TermEvidence *Reach
	// Acquires maps canonical named-mutex keys ("pkgpath.Type.field" or
	// "pkgpath.var") the function can, directly or transitively, lock
	// to a witness whose Desc is the mutex's display name. Consumed by
	// lockorder.
	Acquires map[string]*Reach
}

// NewModule indexes and summarizes pkgs. The packages must share one
// type-checked universe (one FileSet, module-local imports resolved to
// each other), which is how LoadModule and CheckSource build them.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		byPath:      make(map[string]*Package, len(pkgs)),
		owner:       make(map[*types.Func]*Package),
		sums:        make(map[*types.Func]*FuncSummary),
		chans:       make(map[*Package]*chanFacts),
		closedScope: make(map[*Package]map[types.Object][]chanSite),
		lockEdges:   make(map[*Package][]lockEdge),
	}
	for _, p := range pkgs {
		m.byPath[p.Path] = p
	}
	m.pkgs = dependencyOrder(pkgs)
	for _, p := range m.pkgs {
		g := p.CallGraph()
		for _, fn := range g.Funcs() {
			m.owner[fn] = p
			m.sums[fn] = &FuncSummary{
				CtxParam:    ctxParamIndex(fn),
				ArenaReturn: isArenaRoot(fn),
			}
		}
	}
	// Channel facts before summaries: a summary's closed-channel
	// evidence consults the package's dependency-closed scope.
	for _, p := range m.pkgs {
		m.chans[p] = collectChanFacts(p)
	}
	for _, p := range m.pkgs {
		scope := make(map[types.Object][]chanSite)
		for _, d := range m.depClosure(p) {
			for obj, sites := range m.chans[d].closes {
				scope[obj] = append(scope[obj], sites...)
			}
		}
		for obj, sites := range m.chans[p].closes {
			scope[obj] = append(scope[obj], sites...)
		}
		m.closedScope[p] = scope
	}
	for _, p := range m.pkgs {
		m.summarize(p)
	}
	return m
}

// Packages returns the module's packages in dependency order.
func (m *Module) Packages() []*Package { return m.pkgs }

// Summary returns fn's summary, or nil when fn is not declared (with a
// body) in the module — a standard-library or bodiless function.
func (m *Module) Summary(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return m.sums[fn]
}

// Owner returns the package fn is declared in, or nil.
func (m *Module) Owner(fn *types.Func) *Package { return m.owner[fn] }

// dependencyOrder topologically sorts pkgs so that every module-local
// import precedes its importer. The input order breaks ties, keeping
// the result deterministic for a given call.
func dependencyOrder(pkgs []*Package) []*Package {
	byTypes := make(map[*types.Package]*Package, len(pkgs))
	for _, p := range pkgs {
		byTypes[p.Pkg] = p
	}
	seen := make(map[*Package]bool, len(pkgs))
	out := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Pkg.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// summarize computes p's function summaries, assuming every module
// dependency of p is already summarized.
func (m *Module) summarize(p *Package) {
	g := p.CallGraph()
	dirs, _ := collectDirectives(p)

	// Pass 1: direct facts per function. "Direct" includes calls into
	// other, already-summarized packages: the callee's summary becomes a
	// fact at the call site with the callee prepended to the witness
	// chain. The intra-package Propagate pass then closes everything
	// over local call chains and recursion.
	lockDirect := make(map[*types.Func]Reach)
	blockDirect := make(map[*types.Func]Reach)
	nondetDirect := make(map[*types.Func]Reach)
	leakDirect := make(map[*types.Func]Reach)
	termDirect := make(map[*types.Func]Reach)
	// Acquisition facts are per mutex key: one direct map (and one
	// propagation) per named mutex the package touches. acqKeys keeps
	// first-appearance order for deterministic processing.
	acqDirect := make(map[string]map[*types.Func]Reach)
	var acqKeys []string
	noteAcq := func(key string, fn *types.Func, r Reach) {
		mm := acqDirect[key]
		if mm == nil {
			mm = make(map[*types.Func]Reach)
			acqDirect[key] = mm
			acqKeys = append(acqKeys, key)
		}
		mergeDirect(mm, fn, r)
	}
	closed := m.closedScope[p]
	for _, fn := range g.Funcs() {
		body := g.Decl(fn).Body

		// Lock-unsafe and blocking ops: outer frame only — a stored
		// closure's ops do not run just because the function is called.
		ops := collectUnsafeOps(p, body)
		var firstOp, firstBlocking *lockedOp
		for i := range ops {
			if firstOp == nil {
				firstOp = &ops[i]
			}
			if firstBlocking == nil && !ops[i].observer {
				firstBlocking = &ops[i]
			}
		}
		if firstOp != nil {
			lockDirect[fn] = Reach{Desc: firstOp.desc, Pos: firstOp.pos}
		}
		if firstBlocking != nil {
			blockDirect[fn] = Reach{Desc: firstBlocking.desc, Pos: firstBlocking.pos}
		}

		// Determinism taint: whole body (a goroutine launched by the
		// call still executes its wall-clock read), allow-filtered.
		if op := firstNondetOp(p, body, dirs); op != nil {
			nondetDirect[fn] = Reach{Desc: op.desc, Pos: op.pos}
		}

		// Goroutine-termination facts: outer frame only, like the lock
		// facts — a stored closure's ops run on another frame's clock.
		risk, ev := collectLeakOps(p, closed, body)
		if risk != nil {
			leakDirect[fn] = Reach{Desc: risk.desc, Pos: risk.pos}
		}
		if ev != nil {
			termDirect[fn] = Reach{Desc: ev.desc, Pos: ev.pos}
		}

		// Named-mutex acquisitions: outer frame (a spawned goroutine's
		// acquisition does not nest under the caller's held locks).
		for _, acq := range lockAcquisitions(p, body) {
			noteAcq(acq.key, fn, Reach{Desc: acq.disp, Pos: acq.pos})
		}

		// Cross-package call facts, earliest call site first.
		for _, e := range m.crossPackageCalls(p, body) {
			s := m.sums[e.Callee]
			name := crossName(p, e.Callee)
			if s.LockUnsafe != nil {
				mergeDirect(lockDirect, fn, Reach{
					Desc: s.LockUnsafe.Desc, Pos: e.Pos,
					Via: append([]string{name}, s.LockUnsafe.Via...),
				})
			}
			if s.Blocks != nil {
				mergeDirect(blockDirect, fn, Reach{
					Desc: s.Blocks.Desc, Pos: e.Pos,
					Via: append([]string{name}, s.Blocks.Via...),
				})
			}
			if s.Nondet != nil && !dirs.covers(p, e.Pos, "detsource") {
				mergeDirect(nondetDirect, fn, Reach{
					Desc: s.Nondet.Desc, Pos: e.Pos,
					Via: append([]string{name}, s.Nondet.Via...),
				})
			}
			if s.LeakRisk != nil {
				mergeDirect(leakDirect, fn, Reach{
					Desc: s.LeakRisk.Desc, Pos: e.Pos,
					Via: append([]string{name}, s.LeakRisk.Via...),
				})
			}
			if s.TermEvidence != nil {
				mergeDirect(termDirect, fn, Reach{
					Desc: s.TermEvidence.Desc, Pos: e.Pos,
					Via: append([]string{name}, s.TermEvidence.Via...),
				})
			}
			for _, key := range sortedReachKeys(s.Acquires) {
				r := s.Acquires[key]
				noteAcq(key, fn, Reach{
					Desc: r.Desc, Pos: e.Pos,
					Via: append([]string{name}, r.Via...),
				})
			}
		}
	}

	// Pass 2: intra-package transitive closure.
	lockReach := g.Propagate(lockDirect)
	blockReach := g.Propagate(blockDirect)
	nondetReach := g.Propagate(nondetDirect)
	leakReach := g.Propagate(leakDirect)
	termReach := g.Propagate(termDirect)
	for _, fn := range g.Funcs() {
		s := m.sums[fn]
		s.LockUnsafe = lockReach[fn]
		s.Blocks = blockReach[fn]
		s.Nondet = nondetReach[fn]
		s.LeakRisk = leakReach[fn]
		s.TermEvidence = termReach[fn]
	}
	for _, key := range acqKeys {
		reach := g.Propagate(acqDirect[key])
		for _, fn := range g.Funcs() {
			r := reach[fn]
			if r == nil {
				continue
			}
			s := m.sums[fn]
			if s.Acquires == nil {
				s.Acquires = make(map[string]*Reach)
			}
			s.Acquires[key] = r
		}
	}

	// Pass 3: arena-return fixpoint — does the function return a value
	// the dataflow pass can trace back to an arena row?
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			if m.sums[fn].ArenaReturn {
				continue
			}
			if m.returnsArena(p, g.Decl(fn)) {
				m.sums[fn].ArenaReturn = true
				changed = true
			}
		}
	}

	// Pass 4: JSON-sink parameter fixpoint (wireformat's wrapper
	// discovery), lifted over package boundaries: a wrapper's interface
	// parameter that reaches json.Marshal — or another wrapper's sink
	// parameter, in this or any dependency package — is itself a sink.
	m.computeSinkParams(p)

	// Pass 5: lock-order edges. Needs the package's own Acquires (pass
	// 2) and its dependencies' (previous summarize calls); the allowed
	// flag is resolved here, at the owning package, so dependents see
	// which edges a //lint:allow lockorder has stopped.
	m.lockEdges[p] = collectLockEdges(p, m, dirs)
}

// mergeDirect records r as fn's direct fact if it is the first, or
// earlier in source order than the current one.
func mergeDirect(direct map[*types.Func]Reach, fn *types.Func, r Reach) {
	if cur, ok := direct[fn]; ok && cur.Pos <= r.Pos {
		return
	}
	direct[fn] = r
}

// crossPackageCalls lists the outer-frame calls of body that target a
// function declared in another module package, in call-site order.
func (m *Module) crossPackageCalls(p *Package, body ast.Node) []CallEdge {
	var out []CallEdge
	inspectFrame(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.StaticCallee(call)
		if callee == nil {
			return true
		}
		owner := m.owner[callee]
		if owner == nil || owner == p {
			return true
		}
		out = append(out, CallEdge{Callee: callee, Pos: call.Pos()})
		return true
	})
	return out
}

// moduleCalls lists the in-frame calls that target any module-declared
// function — the cross-package generalization of frameCalls.
func moduleCalls(p *Package, m *Module, frame ast.Node) []CallEdge {
	var out []CallEdge
	inspectFrame(frame, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.StaticCallee(call)
		if callee == nil || m.owner[callee] == nil {
			return true
		}
		out = append(out, CallEdge{Callee: callee, Pos: call.Pos()})
		return true
	})
	return out
}

// crossName renders a callee for witness chains: bare within the same
// package, package-qualified across packages.
func crossName(p *Package, fn *types.Func) string {
	if fn.Pkg() == p.Pkg {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// ctxParamIndex returns the index of fn's first context.Context
// parameter, or -1.
func ctxParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isArenaRoot identifies the kernel's arena-returning methods by
// identity: (geom.Snapshot).Row and (geom.RowCache).VisibleSet hand out
// slices into reusable arenas, which is the whole arenaalias contract.
func isArenaRoot(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "luxvis/internal/geom" && path != "internal/geom" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Snapshot":
		return fn.Name() == "Row"
	case "RowCache":
		return fn.Name() == "VisibleSet"
	}
	return false
}

// arenaSourceCall reports whether call yields an arena-aliasing slice:
// an arena root, or a module function summarized as arena-returning.
func (m *Module) arenaSourceCall(p *Package, call *ast.CallExpr) bool {
	fn := p.StaticCallee(call)
	if fn == nil {
		return false
	}
	if isArenaRoot(fn) {
		return true
	}
	s := m.sums[fn]
	return s != nil && s.ArenaReturn
}

// returnsArena reports whether fd's outer-frame return statements can
// return an arena-aliasing value.
func (m *Module) returnsArena(p *Package, fd *ast.FuncDecl) bool {
	st := taintLocals(taintSpec{
		p:          p,
		sourceCall: func(call *ast.CallExpr) bool { return m.arenaSourceCall(p, call) },
	}, fd.Body)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are its own, not fd's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if st.tainted(res) {
				found = true
			}
		}
		return true
	})
	return found
}

// nondetOp is one determinism-tainting operation.
type nondetOp struct {
	pos  token.Pos
	desc string
}

// firstNondetOp returns the first determinism-tainting operation in
// body not covered by a //lint:allow detsource (or all) directive, or
// nil. The whole body is inspected — closures and goroutine bodies
// execute as a consequence of calling the function, so their taint is
// the caller's taint.
func firstNondetOp(p *Package, body ast.Node, dirs *directiveSet) *nondetOp {
	var first *nondetOp
	note := func(pos token.Pos, desc string) {
		if dirs != nil && dirs.covers(p, pos, "detsource") {
			return
		}
		if first == nil || pos < first.pos {
			first = &nondetOp{pos: pos, desc: desc}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(p, sel.X) {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					note(n.Pos(), "reads the wall clock (time."+sel.Sel.Name+")")
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[sel.Sel.Name] {
					note(n.Pos(), "draws from the global math/rand source (rand."+sel.Sel.Name+")")
				}
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					note(n.Range, "iterates a map (randomized order)")
				}
			}
		}
		return true
	})
	return first
}

// computeSinkParams runs wireformat's wrapper-discovery fixpoint for
// one package, consulting dependency summaries, and stores the result
// into the package's function summaries.
func (m *Module) computeSinkParams(p *Package) {
	g := p.CallGraph()

	paramIndex := make(map[*types.Func]map[types.Object]int)
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		idx := make(map[types.Object]int)
		i := 0
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						idx[obj] = i
					}
					i++
				}
			}
		}
		paramIndex[fn] = idx
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			fd := g.Decl(fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, argIdx := range m.sinkArgIndices(p, call) {
					if argIdx >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Uses[id]
					pi, isParam := paramIndex[fn][obj]
					if !isParam {
						continue
					}
					if _, ok := obj.Type().Underlying().(*types.Interface); !ok {
						continue // concrete param: its sink call names the type itself
					}
					s := m.sums[fn]
					if s.SinkParams == nil {
						s.SinkParams = make(map[int]bool)
					}
					if !s.SinkParams[pi] {
						s.SinkParams[pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}
}

// sinkArgIndices returns the indices of call's arguments that reach a
// JSON sink: arg 0 of json.Marshal/MarshalIndent/(*json.Encoder).Encode,
// or the summarized sink parameters of any module-local wrapper — in
// this package or any other.
func (m *Module) sinkArgIndices(p *Package, call *ast.CallExpr) []int {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgNameOf(p, sel.X) == "encoding/json" &&
			(sel.Sel.Name == "Marshal" || sel.Sel.Name == "MarshalIndent") {
			return []int{0}
		}
		if fn := methodObjOf(p, sel); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "encoding/json" && fn.Name() == "Encode" {
			return []int{0}
		}
	}
	callee := p.StaticCallee(call)
	if callee == nil {
		return nil
	}
	s := m.sums[callee]
	if s == nil || len(s.SinkParams) == 0 {
		return nil
	}
	out := make([]int, 0, len(s.SinkParams))
	for i := range s.SinkParams {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// IsModuleStruct reports whether named is declared in one of the
// module's packages — the scope within which wireformat can demand
// explicit tags no matter how many packages sit between the struct and
// the marshal site.
func (m *Module) IsModuleStruct(named *types.Named) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	_, ok := m.byPath[named.Obj().Pkg().Path()]
	return ok
}
