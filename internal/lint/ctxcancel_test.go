package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

const ctxFixture = `package fixture

import (
	"context"
	"sync"
)

func leak(n int) {
	for i := 0; i < n; i++ {
		go func() { // want
			_ = i
		}()
	}
}

func leakCall(f func()) {
	go f() // want
}

func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func withCtxArg(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func doneButNoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want
		defer wg.Done()
	}()
}

func waitButNoDone(f func()) {
	var wg sync.WaitGroup
	go f() // want
	wg.Wait()
}
`

func TestCtxCancel(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/rt", ctxFixture, lint.CtxCancel{})
	assertWants(t, ctxFixture, findings)
}

// TestCtxCancelScope: only the concurrent packages are in scope.
func TestCtxCancelScope(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/sim", ctxFixture, lint.CtxCancel{})
	if len(findings) != 0 {
		t.Fatalf("out-of-scope package produced findings: %v", findings)
	}
	findings = runFixture(t, "luxvis/internal/exp", ctxFixture, lint.CtxCancel{})
	if len(findings) == 0 {
		t.Fatal("internal/exp should be in scope")
	}
}
