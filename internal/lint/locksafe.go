package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe proves the repo's central callback contract at build time:
// nothing that can block — and no sim.Observer callback — may run while
// a sync.Mutex/RWMutex is held. The contract comes from internal/rt,
// where one goroutine per robot shares a mutex-guarded world: an
// observer invoked under the world lock serializes the whole swarm (the
// documented rt.Options.Observer guarantee is "callbacks run outside
// the world lock"), and a channel operation under the lock turns a slow
// consumer into a deadlock of every robot at once.
//
// The analyzer tracks lock state per analysis frame — a function body,
// or the body of a function literal that is not invoked in place
// (goroutine bodies and stored callbacks hold their own discipline) —
// and then propagates through the package's call graph: a call made
// while a mutex is held is an error if the callee, directly or through
// any chain of package-local calls, invokes a sim.Observer callback,
// sends or receives on a channel, selects without a default case,
// ranges over a channel, waits on a sync.WaitGroup/Cond, or sleeps.
// Functions with the *Locked naming convention (callers hold the lock)
// are analyzed as if locked from entry.
//
// Approximations, chosen to fail toward silence rather than noise: lock
// regions are tracked in source-position order (an early-return unlock
// inside a branch ends the region at that unlock), a communication in a
// select that has a default case is non-blocking and exempt, and `go`
// statements are frame boundaries (the launched body runs outside the
// caller's locks, but is checked against its own).
//
// Since the cross-package module graph, calls into other module
// packages are no longer opaque: a call made under a lock is checked
// against the callee's LockUnsafe summary, so `mu.Lock(); sim.Run(...)`
// is reported in the serve layer even though the channel wait it
// reaches sits two packages down.
type LockSafe struct{}

// Name implements Analyzer.
func (LockSafe) Name() string { return "locksafe" }

// Doc implements Analyzer.
func (LockSafe) Doc() string {
	return "forbid observer callbacks and blocking operations (channels, waits) while a mutex is held"
}

// lockedOp is one directly-unsafe operation found in a function body.
// observer marks sim.Observer callbacks: forbidden under a lock, but not
// blocking operations in their own right — the module graph's Blocks
// summaries (which ctxflow consumes) exclude them.
type lockedOp struct {
	pos      token.Pos
	desc     string
	observer bool
}

// Check implements Analyzer with intra-package knowledge only: calls
// into other packages are opaque, as they were before the module graph.
func (a LockSafe) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer. The summary pass (module.go)
// already did the reachability work — each function's LockUnsafe fact is
// closed over intra-package chains and cross-package call sites — so
// this pass only intersects each frame's locked regions with its own
// unsafe ops and with calls into summarized-unsafe functions.
func (a LockSafe) CheckModule(p *Package, m *Module) []Finding {
	if !importsPkg(p, "sync") {
		return nil
	}
	g := p.CallGraph()

	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		for i, frame := range framesOf(fd) {
			name := fd.Name.Name
			if i > 0 {
				name = fd.Name.Name + " (func literal)"
			}
			entryLocked := i == 0 && strings.HasSuffix(fd.Name.Name, "Locked")
			regions := lockedRegions(p, frame, entryLocked)
			if len(regions) == 0 {
				continue
			}
			for _, op := range collectUnsafeOps(p, frame) {
				if mu := regions.covering(op.pos); mu != "" {
					out = append(out, finding(p, a.Name(), op.pos, Error,
						"%s %s while holding %s; callbacks and blocking operations must run outside the lock",
						name, op.desc, mu))
				}
			}
			for _, e := range moduleCalls(p, m, frame) {
				s := m.Summary(e.Callee)
				if s == nil || s.LockUnsafe == nil {
					continue
				}
				mu := regions.covering(e.Pos)
				if mu == "" {
					continue
				}
				chain := crossName(p, e.Callee)
				if v := s.LockUnsafe.Chain(); v != "" {
					chain += " → " + v
				}
				out = append(out, finding(p, a.Name(), e.Pos, Error,
					"%s calls %s while holding %s, and %s %s (call chain %s); release the lock first",
					name, crossName(p, e.Callee), mu, lastName(chain), s.LockUnsafe.Desc, chain))
			}
		}
	}
	sortFindings(out)
	return out
}

// lastName returns the last element of an " → " chain.
func lastName(chain string) string {
	if i := strings.LastIndex(chain, " → "); i >= 0 {
		return chain[i+len(" → "):]
	}
	return chain
}

// collectUnsafeOps walks one frame for operations that must not happen
// under a lock. A select with a default case is exempt — every
// communication inside it is non-blocking by construction — though its
// clause bodies are still walked.
func collectUnsafeOps(p *Package, frame ast.Node) []lockedOp {
	var out []lockedOp
	add := func(pos token.Pos, desc string) {
		out = append(out, lockedOp{pos: pos, desc: desc})
	}
	inspectFrame(frame, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				add(n.Select, "selects without a default case (may block)")
				return false // comm ops are subsumed by the select finding
			}
			for _, c := range n.Body.List {
				for _, stmt := range c.(*ast.CommClause).Body {
					out = append(out, collectUnsafeOps(p, stmt)...)
				}
			}
			return false
		case *ast.SendStmt:
			add(n.Arrow, "sends on a channel")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.OpPos, "receives from a channel")
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(n.Range, "ranges over a channel (blocks between elements)")
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isObserverCall(p, sel) {
					out = append(out, lockedOp{pos: n.Pos(), desc: "invokes sim.Observer." + sel.Sel.Name, observer: true})
					return true
				}
				if isSyncMethod(methodObjOf(p, sel), "Wait") {
					add(n.Pos(), "waits on "+exprString(sel.X))
					return true
				}
				if pkgNameOf(p, sel.X) == "time" && sel.Sel.Name == "Sleep" {
					add(n.Pos(), "sleeps")
				}
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// isObserverCall reports whether sel is a method call on a value whose
// static type is the luxvis/internal/sim.Observer interface.
func isObserverCall(p *Package, sel *ast.SelectorExpr) bool {
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Observer" || obj.Pkg() == nil {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	return obj.Pkg().Path() == "luxvis/internal/sim" || obj.Pkg().Path() == "internal/sim"
}

// lockRegion is one held-mutex span of a frame, in source positions.
type lockRegion struct {
	mu         string // rendered receiver, e.g. "w.mu"
	start, end token.Pos
}

type lockRegions []lockRegion

// covering returns the mutex name of a region containing pos, or "".
func (rs lockRegions) covering(pos token.Pos) string {
	for _, r := range rs {
		if pos > r.start && pos < r.end {
			return r.mu
		}
	}
	return ""
}

// lockedRegions computes the held spans of one frame: from each
// Lock/RLock to the matching Unlock/RUnlock in source order, to
// end-of-frame when the unlock is deferred or missing, and the whole
// frame when entryLocked (the *Locked caller-holds-the-lock
// convention).
func lockedRegions(p *Package, frame ast.Node, entryLocked bool) lockRegions {
	var rs lockRegions
	end := frame.End()
	if entryLocked {
		rs = append(rs, lockRegion{mu: "the caller's lock", start: frame.Pos(), end: end})
	}

	type event struct {
		pos      token.Pos
		mu       string
		lock     bool
		deferred bool
	}
	var events []event
	// Pre-order guarantees a DeferStmt is seen before its CallExpr
	// child, so the deferred set is populated by the time the call is
	// visited as a plain node.
	deferredCalls := make(map[*ast.CallExpr]bool)
	inspectFrame(frame, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		deferred := deferredCalls[call]
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// methodObjOf sees through embedding, so `s.Lock()` on a struct
		// embedding sync.Mutex counts too.
		fn := methodObjOf(p, sel)
		switch {
		case isSyncMethod(fn, "Lock", "RLock"):
			events = append(events, event{pos: call.Pos(), mu: exprString(sel.X), lock: true})
		case isSyncMethod(fn, "Unlock", "RUnlock"):
			events = append(events, event{pos: call.Pos(), mu: exprString(sel.X), deferred: deferred})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	open := map[string]token.Pos{}
	for _, e := range events {
		switch {
		case e.lock:
			if _, held := open[e.mu]; !held {
				open[e.mu] = e.pos
			}
		case e.deferred:
			// Deferred unlock: the mutex stays held to end-of-frame; leave
			// the region open.
		default:
			if start, held := open[e.mu]; held {
				rs = append(rs, lockRegion{mu: e.mu, start: start, end: e.pos})
				delete(open, e.mu)
			}
		}
	}
	for mu, start := range open {
		rs = append(rs, lockRegion{mu: mu, start: start, end: end})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
	return rs
}
