package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix guards the serve/obs metrics discipline: once any access to
// a struct field goes through sync/atomic (atomic.AddInt64(&s.hits, 1)),
// every access must — a plain load or store of the same field elsewhere
// in the package is a data race the race detector only catches when the
// interleaving happens to bite, and on 32-bit targets a torn read even
// without one. The analyzer collects every field that appears as an
// &-operand of a sync/atomic call anywhere in the package, then flags
// each remaining plain use of those fields.
//
// Fields typed as sync/atomic's value types (atomic.Int64 and friends)
// are safe by construction and need no analysis; this check exists for
// the older pattern where an ordinary int64 field is shared through the
// sync/atomic functions.
type AtomicMix struct{}

// Name implements Analyzer.
func (AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (AtomicMix) Doc() string {
	return "a field accessed through sync/atomic must never be plain-loaded or stored elsewhere"
}

// Check implements Analyzer.
func (a AtomicMix) Check(p *Package) []Finding {
	if !importsPkg(p, "sync/atomic") {
		return nil
	}

	// Pass 1: fields handed to sync/atomic functions as &x.f, and the
	// exact selector nodes so used (those accesses are the sanctioned
	// ones). Remember the first atomic site per field for the message.
	atomicFields := make(map[*types.Var]token.Pos)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || pkgNameOf(p, fun.X) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fv := fieldObjOf(p, sel)
				if fv == nil {
					continue
				}
				sanctioned[sel] = true
				if _, seen := atomicFields[fv]; !seen {
					atomicFields[fv] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// plain (racy) access.
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldObjOf(p, sel)
			if fv == nil {
				return true
			}
			site, isAtomic := atomicFields[fv]
			if !isAtomic {
				return true
			}
			out = append(out, finding(p, a.Name(), sel.Sel.Pos(), Error,
				"field %s is accessed with sync/atomic at %s but plainly here; mixed access tears — use atomic loads/stores everywhere",
				fv.Name(), p.Fset.Position(site)))
			return true
		})
	}
	sortFindings(out)
	return out
}

// fieldObjOf resolves a selector to the struct field it names, or nil
// when the selector is not a field access.
func fieldObjOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
