package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

// TestDetSourceDirect carries over the retired nondet analyzer's
// contract: wall-clock reads, global math/rand draws and map iteration
// are flagged in scoped packages; explicit sources and allow-directives
// are not.
func TestDetSourceDirect(t *testing.T) {
	src := `package sim

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want
}

func draw() int {
	return rand.Intn(6) // want
}

func seeded(rng *rand.Rand) int {
	_ = rand.New(rand.NewSource(1)) // constructors wrap an explicit source
	return rng.Intn(6)              // method on a threaded *rand.Rand, not the global
}

func iterate(m map[int]string) {
	for k := range m { // want
		_ = k
	}
}

func collectSorted(m map[int]string) []int {
	var keys []int
	//lint:allow detsource this loop only collects keys; order is restored by the sort below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`
	findings := runFixture(t, "luxvis/internal/sim", src, lint.DetSource{})
	assertWants(t, src, findings)
}

// TestDetSourceOutOfScope: packages outside the engine/verify/exp set
// may use the wall clock freely.
func TestDetSourceOutOfScope(t *testing.T) {
	src := `package obs

import "time"

func stamp() time.Time { return time.Now() }
`
	findings := runFixture(t, "luxvis/internal/obs", src, lint.DetSource{})
	if len(findings) != 0 {
		t.Errorf("findings = %v; want none outside scope", findings)
	}
}

// TestDetSourceCrossPackage is the analyzer's reason to exist: a scoped
// package calling an unscoped module package whose implementation
// reaches a determinism source is reported at the call site with the
// witness chain — a finding the intra-package engine provably cannot
// see (the source sits in a package detsource does not even scope).
func TestDetSourceCrossPackage(t *testing.T) {
	utilSrc := `package util

import "math/rand"

func jitter() int { return rand.Intn(10) }

func Delay() int { return jitter() }

func Pure(n int) int { return n * 2 }
`
	simSrc := `package sim

import "luxvis/internal/util"

func step() int {
	return util.Delay() // want
}

func scale(n int) int {
	return util.Pure(n)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/util", "util_ds_fix.go", utilSrc},
		{"luxvis/internal/sim", "sim_ds_fix.go", simSrc},
	}
	pkgs := buildModule(t, specs)
	findings := fileFindings(lint.RunConfig(pkgs, []lint.Analyzer{lint.DetSource{}}, lint.Config{}), "sim_ds_fix.go")
	assertWants(t, simSrc, findings)
	for _, f := range findings {
		if !strings.Contains(f.Message, "util.Delay") || !strings.Contains(f.Message, "jitter") {
			t.Errorf("cross-package finding lacks witness chain (want util.Delay → jitter): %s", f)
		}
	}
	assertIntraSilent(t, specs, lint.DetSource{}, "sim_ds_fix.go")
}

// TestDetSourceAllowStopsTaint: an allow on the source operation is
// proof of harmlessness, so callers across packages are clean without
// re-annotating every call site.
func TestDetSourceAllowStopsTaint(t *testing.T) {
	bdcpSrc := `package bdcp

import "sort"

func Keys(m map[int]string) []int {
	var keys []int
	//lint:allow detsource keys are sorted before use; this loop only collects them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
`
	simSrc := `package sim

import "luxvis/internal/bdcp"

func use(m map[int]string) []int {
	return bdcp.Keys(m)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/bdcp", "bdcp_ds_fix.go", bdcpSrc},
		{"luxvis/internal/sim", "sim_ds_allow_fix.go", simSrc},
	}
	pkgs := buildModule(t, specs)
	fs := lint.RunConfig(pkgs, []lint.Analyzer{lint.DetSource{}}, lint.Config{})
	if len(fs) != 0 {
		t.Errorf("findings = %v; want none (allow on the source must stop the taint)", fs)
	}
}
