package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaAlias enforces the memory discipline that PR 5's zero-allocation
// visibility kernel turned into a correctness property: the slices
// handed out by geom.Snapshot.Row and geom.RowCache.VisibleSet alias
// reusable arenas, so a retained row silently changes under its holder
// the moment the arena is rewritten — and a corrupted Look snapshot is
// exactly the failure the paper's ASYNC argument cannot survive. The
// rule mirrors the documented kernel contract: an arena row may only be
// read, in the frame that obtained it, before the snapshot is next
// touched (Update/Reset/Row/ComputeAll, or the next RowCache call). It
// must not be stored in a struct, global or composite value, sent on a
// channel, or written through.
//
// The analyzer runs the engine's per-function dataflow pass to find
// every local that may hold an arena row — including rows laundered
// through assignments, slicing, and module-local wrapper functions
// whose arena-returning summary comes from the cross-package module
// graph (a wrapper in another package is invisible to intra-package
// analysis; the whole-program graph is what makes `rows := helper.Top(s)`
// as loud as `rows := s.Row(0)`).
//
// Approximations, chosen to fail toward silence: staleness is judged in
// source-position order within one frame (a loop that re-reads the row
// after every Update is clean and correct; a loop-carried stale read is
// missed), and a row passed to another function is assumed read-only
// there — escape through callees is the summary pass's job only for
// returns.
type ArenaAlias struct{}

// Name implements Analyzer.
func (ArenaAlias) Name() string { return "arenaalias" }

// Doc implements Analyzer.
func (ArenaAlias) Doc() string {
	return "kernel arena rows (Snapshot.Row, RowCache.VisibleSet) must not be retained, sent, mutated, or read after invalidation"
}

// Check implements Analyzer with intra-package knowledge only: direct
// Row/VisibleSet results are tracked, wrapper returns are not.
func (a ArenaAlias) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a ArenaAlias) CheckModule(p *Package, m *Module) []Finding {
	g := p.CallGraph()
	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		for _, frame := range framesOf(fd) {
			out = append(out, a.checkFrame(p, m, fd.Name.Name, frame)...)
		}
	}
	sortFindings(out)
	return out
}

// checkFrame applies the arena rules to one analysis frame.
func (a ArenaAlias) checkFrame(p *Package, m *Module, name string, frame ast.Node) []Finding {
	st := taintLocals(taintSpec{
		p:          p,
		sourceCall: func(call *ast.CallExpr) bool { return m.arenaSourceCall(p, call) },
	}, frame)
	if len(st.objs) == 0 {
		return nil
	}

	var out []Finding

	// Rule 1-3: stores, sends, and writes. Walked over the whole frame
	// (inline literals included); nested frames run their own pass.
	inspectFrame(frame, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && st.tainted(rhs) && !isFrameLocalTarget(p, lhs) {
					out = append(out, finding(p, a.Name(), n.Pos(), Error,
						"%s stores an arena-backed visibility row in %s; the kernel reuses the arena, so the stored slice goes stale — copy it (append to a fresh slice) if it must outlive this read",
						name, exprString(lhs)))
				}
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && st.tainted(idx.X) {
					out = append(out, finding(p, a.Name(), n.Pos(), Error,
						"%s writes through an arena-backed visibility row (%s); rows are read-only views into the kernel's arena",
						name, exprString(lhs)))
				}
			}
		case *ast.SendStmt:
			if st.tainted(n.Value) {
				out = append(out, finding(p, a.Name(), n.Arrow, Error,
					"%s sends an arena-backed visibility row on a channel; the receiver races the kernel's arena reuse — send a copy",
					name))
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if st.tainted(v) {
					out = append(out, finding(p, a.Name(), v.Pos(), Error,
						"%s embeds an arena-backed visibility row in a composite value; the row goes stale when the arena is reused — copy it first",
						name))
				}
			}
		}
		return true
	})

	out = append(out, a.staleReads(p, m, name, frame, st)...)
	return out
}

// isFrameLocalTarget reports whether an assignment target is a plain
// local variable — the only place an arena row may live. Selectors
// (struct fields), index expressions, dereferences and package-level
// variables all let the row outlive the frame or the arena's validity.
func isFrameLocalTarget(p *Package, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	// A package-level variable is a global store even when assigned by
	// bare identifier.
	v, ok := obj.(*types.Var)
	return ok && v.Parent() != p.Pkg.Scope()
}

// staleReads flags uses of a tainted row after a snapshot-invalidating
// call in the same frame, in source-position order: between the row's
// defining statement and the use there must be no Update/Reset/Row/
// ComputeAll on a Snapshot, no RowCache.VisibleSet, and no call to an
// arena-returning wrapper (which performs one of those inside).
func (a ArenaAlias) staleReads(p *Package, m *Module, name string, frame ast.Node, st *taintState) []Finding {
	var invalidators []token.Pos
	inspectFrame(frame, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m.arenaSourceCall(p, call) || isArenaInvalidator(p, call) {
			invalidators = append(invalidators, call.Pos())
		}
		return true
	})
	if len(invalidators) == 0 {
		return nil
	}

	var out []Finding
	reported := make(map[types.Object]bool)
	inspectFrame(frame, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		def, tainted := st.objs[obj]
		if !tainted || reported[obj] {
			return true
		}
		for _, inv := range invalidators {
			if inv > def && inv < id.Pos() {
				reported[obj] = true
				out = append(out, finding(p, a.Name(), id.Pos(), Error,
					"%s reads arena row %s after the snapshot was touched again (Update/Reset/Row/ComputeAll invalidate outstanding rows); re-read the row or copy it before the next kernel call",
					name, id.Name))
				break
			}
		}
		return true
	})
	return out
}

// isArenaInvalidator reports whether call touches a kernel snapshot in
// a way that may rewrite outstanding rows: geom.Snapshot's Update,
// Reset, Row or ComputeAll, or geom.RowCache's VisibleSet.
func isArenaInvalidator(p *Package, call *ast.CallExpr) bool {
	fn := p.StaticCallee(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "luxvis/internal/geom" && path != "internal/geom" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "Snapshot":
		switch fn.Name() {
		case "Update", "Reset", "Row", "ComputeAll":
			return true
		}
	case "RowCache":
		return fn.Name() == "VisibleSet"
	}
	return false
}
