package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// rtCtxFixture declares two blocking functions in another package: one
// threading a ctx, one not. Whether they block at all is a fact only
// the module summaries know.
const rtCtxFixture = `package rt

import "context"

func Wait(ch chan int) int { return <-ch }

func WaitCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func Pure(n int) int { return n * 2 }
`

// TestCtxFlowBackgroundDrop: passing a fresh root context to a blocking
// ctx-aware callee while the caller's ctx is in scope severs the
// cancellation chain — directly, laundered through a local, or wrapped
// in a derived context.
func TestCtxFlowBackgroundDrop(t *testing.T) {
	src := `package serve

import (
	"context"
	"time"

	"luxvis/internal/rt"
)

func drops(ctx context.Context, ch chan int) int {
	return rt.WaitCtx(context.Background(), ch) // want
}

func launders(ctx context.Context, ch chan int) int {
	bg := context.TODO()
	c, cancel := context.WithTimeout(bg, time.Second)
	defer cancel()
	return rt.WaitCtx(c, ch) // want
}

func chains(ctx context.Context, ch chan int) int {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return rt.WaitCtx(c, ch)
}

func direct(ctx context.Context, ch chan int) int {
	return rt.WaitCtx(ctx, ch)
}

func nonBlocking(ctx context.Context, n int) int {
	return rt.Pure(n)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_cf_fix.go", rtCtxFixture},
		{"luxvis/internal/serve", "serve_cf_fix.go", src},
	}
	runModuleFixture(t, specs, lint.CtxFlow{}, "serve_cf_fix.go", src)
	assertIntraSilent(t, specs, lint.CtxFlow{}, "serve_cf_fix.go")
}

// TestCtxFlowMissingParam: a cross-package blocking callee with no ctx
// parameter is a hole cancellation cannot cross. A caller without a ctx
// of its own has nothing to thread and is left alone.
func TestCtxFlowMissingParam(t *testing.T) {
	src := `package serve

import (
	"context"

	"luxvis/internal/rt"
)

func holeInChain(ctx context.Context, ch chan int) int {
	return rt.Wait(ch) // want
}

func noCtxReceived(ch chan int) int {
	return rt.Wait(ch)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_cf_fix.go", rtCtxFixture},
		{"luxvis/internal/serve", "serve_cf_hole_fix.go", src},
	}
	runModuleFixture(t, specs, lint.CtxFlow{}, "serve_cf_hole_fix.go", src)
	assertIntraSilent(t, specs, lint.CtxFlow{}, "serve_cf_hole_fix.go")
}

// TestCtxFlowOutOfScope: the chain is only enforced in the layered
// packages; a utility package passing Background to a blocking callee
// is not ctxflow's business.
func TestCtxFlowOutOfScope(t *testing.T) {
	src := `package util

import (
	"context"

	"luxvis/internal/rt"
)

func fireAndForget(ctx context.Context, ch chan int) int {
	return rt.WaitCtx(context.Background(), ch)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_cf_fix.go", rtCtxFixture},
		{"luxvis/internal/util", "util_cf_fix.go", src},
	}
	pkgs := buildModule(t, specs)
	fs := fileFindings(lint.RunConfig(pkgs, []lint.Analyzer{lint.CtxFlow{}}, lint.Config{}), "util_cf_fix.go")
	if len(fs) != 0 {
		t.Errorf("findings = %v; want none outside scope", fs)
	}
}
