package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"luxvis/internal/lint"
)

func sampleFindings(root string) []lint.Finding {
	return []lint.Finding{
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: root + "/internal/geom/geom.go", Line: 12, Column: 9},
			Severity: lint.Error,
			Message:  "float equality",
		},
		{
			Analyzer: "nondet",
			Pos:      token.Position{Filename: root + "/internal/sim/engine.go", Line: 3, Column: 1},
			Severity: lint.Warning,
			Message:  "iteration order\nwith a newline, 50% odds",
		},
	}
}

func TestWriteSARIF(t *testing.T) {
	const root = "/work/luxvis"
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, root, lint.All(), sampleFindings(root)); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != "2.1.0" || !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", doc.Version, doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d; want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "vislint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Rule table: all analyzers plus the directive pseudo-rule.
	if want := len(lint.All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d; want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d; want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "floateq" || first.Level != "error" {
		t.Errorf("result[0] = %s/%s", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/geom/geom.go" {
		t.Errorf("uri = %q; want module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 9 {
		t.Errorf("region = %+v", loc.Region)
	}
	if run.Results[1].Level != "warning" {
		t.Errorf("result[1] level = %q", run.Results[1].Level)
	}
}

func TestWriteGitHub(t *testing.T) {
	const root = "/work/luxvis"
	var buf bytes.Buffer
	if err := lint.WriteGitHub(&buf, root, sampleFindings(root)); err != nil {
		t.Fatalf("WriteGitHub: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d; want 2\n%s", len(lines), buf.String())
	}
	if lines[0] != "::error file=internal/geom/geom.go,line=12,col=9::[floateq] float equality" {
		t.Errorf("line 0 = %q", lines[0])
	}
	// Newlines and percent signs in messages must be escaped, or the
	// runner truncates the annotation.
	if !strings.HasPrefix(lines[1], "::warning file=internal/sim/engine.go,line=3,col=1::") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.Contains(lines[1], "%0A") || !strings.Contains(lines[1], "%25") {
		t.Errorf("line 1 not escaped: %q", lines[1])
	}
	if strings.Contains(lines[1], "\nwith") {
		t.Errorf("raw newline leaked into annotation: %q", lines[1])
	}
}
