package lint

import (
	"runtime"
	"sort"
	"sync"
)

// Config tunes the engine. The zero value is the default: one worker
// per CPU, no cache.
type Config struct {
	// Workers caps concurrent package analysis; <= 0 means GOMAXPROCS.
	// Findings are byte-for-byte identical at any worker count — the
	// canonical sort (see less) is the only ordering authority.
	Workers int
	// Cache, when non-nil, keys per-package results by content hash so
	// unchanged packages skip analysis — and, in LintModule, skip
	// type-checking entirely.
	Cache *Cache
	// IntraOnly disables the cross-package module view: every analyzer
	// runs through its single-package Check, as the PR-4 engine did.
	// Tests use it to prove a finding genuinely requires whole-program
	// knowledge (present normally, absent under IntraOnly).
	IntraOnly bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunConfig applies the analyzers to every package under cfg and
// returns all findings in canonical order. Packages are distributed
// over workers by index striding; each worker writes only its own
// result slots, so the engine needs no locks of its own.
func RunConfig(pkgs []*Package, analyzers []Analyzer, cfg Config) []Finding {
	var m *Module
	if !cfg.IntraOnly {
		// Summaries are computed once, up front and sequentially (they
		// must flow dependencies-first anyway); the per-package analyzer
		// runs then read them concurrently without coordination.
		m = NewModule(pkgs)
	}
	results := make([][]Finding, len(pkgs))
	runParallel(len(pkgs), cfg.workers(), func(i int) {
		results[i] = lintPackage(pkgs[i], m, analyzers)
	})
	var out []Finding
	for _, r := range results {
		out = append(out, r...)
	}
	sortFindings(out)
	return out
}

// lintPackage is the per-package unit of work: collect directives, run
// the analyzers through directive filtering, then audit for stale
// directives. Analyzers implementing ModuleAnalyzer get the module view
// when one was built (m non-nil); the rest — and everything under
// IntraOnly — run their single-package Check. The result is in
// canonical order and is what the cache stores.
func lintPackage(p *Package, m *Module, analyzers []Analyzer) []Finding {
	dirs, bad := collectDirectives(p)
	out := append([]Finding(nil), bad...)
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name()] = true
		var fs []Finding
		if ma, ok := a.(ModuleAnalyzer); ok && m != nil {
			fs = ma.CheckModule(p, m)
		} else {
			fs = a.Check(p)
		}
		for _, f := range fs {
			if !dirs.allows(f) {
				out = append(out, f)
			}
		}
	}
	out = append(out, dirs.stale(p, active)...)
	sortFindings(out)
	return out
}

// runParallel executes do(0..n-1) across at most `workers` goroutines.
// Work is assigned by striding (worker w takes i = w, w+workers, ...),
// so the mapping from index to worker is deterministic and no shared
// counter — no mutex, no channel — is needed.
func runParallel(n, workers int, do func(int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				do(i)
			}
		}(w)
	}
	wg.Wait()
}

// PackageFindings is one package's lint outcome inside a ModuleResult.
type PackageFindings struct {
	// Path is the package import path.
	Path string
	// Dir is the package's absolute directory.
	Dir string
	// Findings is the package's canonical-order finding list (possibly
	// served from cache).
	Findings []Finding
}

// ModuleResult is a whole-module lint run.
type ModuleResult struct {
	// Packages lists every package in import-path order.
	Packages []PackageFindings
	// CacheHits and CacheMisses count packages served from / written to
	// the cache. Without a cache, every package is a miss.
	CacheHits, CacheMisses int
}

// Findings flattens the per-package results into one canonical-order
// list.
func (r *ModuleResult) Findings() []Finding {
	var out []Finding
	for _, p := range r.Packages {
		out = append(out, p.Findings...)
	}
	sortFindings(out)
	return out
}

// LintModule parses, type-checks and analyzes the module rooted at
// root. With a cache configured, packages whose combined content hash
// hits are served without analysis — and only the cache misses (plus
// their dependency closure) are type-checked at all, which is where the
// warm-run savings come from: parsing and hashing a module is
// milliseconds, while type-checking drags in standard-library source.
func LintModule(root string, analyzers []Analyzer, cfg Config) (*ModuleResult, error) {
	ms, err := ParseModule(root)
	if err != nil {
		return nil, err
	}

	res := &ModuleResult{}
	byPath := make(map[string][]Finding, len(ms.Paths()))
	var missPaths []string
	for _, path := range ms.Paths() {
		if cfg.Cache != nil {
			if fs, ok := cfg.Cache.Get(cacheKey(ms.Root, path, ms.Hash(path), analyzers)); ok {
				byPath[path] = fs
				res.CacheHits++
				continue
			}
		}
		missPaths = append(missPaths, path)
		res.CacheMisses++
	}

	if len(missPaths) > 0 {
		need := make(map[string]bool, len(missPaths))
		for _, path := range missPaths {
			need[path] = true
		}
		checked, err := ms.TypeCheck(need)
		if err != nil {
			return nil, err
		}
		// The module view spans the misses' whole dependency closure —
		// exactly what TypeCheck returned, and exactly the input set the
		// per-package combined hash (and so the cache key) is a function
		// of: summaries only ever describe a function's dependencies.
		var m *Module
		if !cfg.IntraOnly {
			closure := make([]*Package, 0, len(checked))
			for _, path := range ms.Paths() {
				if p, ok := checked[path]; ok {
					closure = append(closure, p)
				}
			}
			m = NewModule(closure)
		}
		results := make([][]Finding, len(missPaths))
		runParallel(len(missPaths), cfg.workers(), func(i int) {
			results[i] = lintPackage(checked[missPaths[i]], m, analyzers)
		})
		for i, path := range missPaths {
			byPath[path] = results[i]
			if cfg.Cache != nil {
				// Best-effort: a failed cache write costs the next run a
				// re-analysis, nothing more.
				_ = cfg.Cache.Put(cacheKey(ms.Root, path, ms.Hash(path), analyzers), results[i])
			}
		}
	}

	paths := append([]string(nil), ms.Paths()...)
	sort.Strings(paths)
	for _, path := range paths {
		res.Packages = append(res.Packages, PackageFindings{
			Path:     path,
			Dir:      ms.Dir(path),
			Findings: byPath[path],
		})
	}
	return res, nil
}
