package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

const nonDetFixture = `package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want
}

func global() int {
	return rand.Intn(10) // want
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want
		out = append(out, k)
	}
	return out
}

func sliceOrder(s []int) int {
	n := 0
	for i := range s {
		n += i
	}
	return n
}

func duration() time.Duration {
	return 5 * time.Millisecond
}
`

func TestNonDet(t *testing.T) {
	// internal/sim is one of the deterministic algorithm packages.
	findings := runFixture(t, "luxvis/internal/sim", nonDetFixture, lint.NonDet{})
	assertWants(t, nonDetFixture, findings)
}

// TestNonDetScope: determinism is only contractual for the algorithm
// packages; harness code (internal/exp, cmd/...) may use the clock.
func TestNonDetScope(t *testing.T) {
	for _, path := range []string{"luxvis/internal/exp", "luxvis/internal/svgx", "luxvis/cmd/vissim"} {
		findings := runFixture(t, path, nonDetFixture, lint.NonDet{})
		if len(findings) != 0 {
			t.Fatalf("%s: out-of-scope package produced findings: %v", path, findings)
		}
	}
	for _, path := range []string{"luxvis/internal/core", "luxvis/internal/bdcp", "luxvis/internal/sched"} {
		findings := runFixture(t, path, nonDetFixture, lint.NonDet{})
		if len(findings) == 0 {
			t.Fatalf("%s: in-scope package produced no findings", path)
		}
	}
}
