package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadModule discovers, parses and type-checks every non-test package
// under the module rooted at root (the directory containing go.mod),
// returning packages in dependency order. It is a deliberately small,
// offline substitute for golang.org/x/tools/go/packages: module-local
// imports are resolved from the tree being linted and standard-library
// imports are type-checked from GOROOT source, so the loader needs no
// build cache, no network and no external dependencies.
//
// Callers that want to avoid type-checking work on cache hits should
// use ParseModule + ModuleSource.TypeCheck instead (that is what
// LintModule does): parsing and content-hashing are cheap, while
// type-checking — which drags in standard-library source — dominates
// the cost of a lint run.
func LoadModule(root string) ([]*Package, error) {
	ms, err := ParseModule(root)
	if err != nil {
		return nil, err
	}
	checked, err := ms.TypeCheck(nil)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(ms.order))
	for _, path := range ms.order {
		out = append(out, checked[path])
	}
	return out, nil
}

// ModuleSource is a parsed-but-not-yet-type-checked module: syntax
// trees, import graphs and content hashes for every package, in
// dependency order. It is the unit the cache layer keys against — a
// package's combined hash is known before any type-checking happens.
type ModuleSource struct {
	// Root is the absolute module root.
	Root string
	// ModPath is the module path from go.mod.
	ModPath string

	fset  *token.FileSet
	pkgs  map[string]*rawPkg
	order []string // topological, dependencies first
}

// ParseModule discovers and parses every non-test package under root,
// computing per-package content hashes and the dependency order, but
// performing no type-checking.
func ParseModule(root string) (*ModuleSource, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*rawPkg, len(dirs))
	var paths []string
	for _, dir := range dirs {
		rp, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if rp == nil {
			continue // no non-test Go files
		}
		parsed[rp.path] = rp
		paths = append(paths, rp.path)
	}
	sort.Strings(paths)

	order, err := topoSort(parsed, paths, modPath)
	if err != nil {
		return nil, err
	}

	// Combined hashes, dependencies first: a package's cache key must
	// change when anything it can see changes, so the combined hash
	// folds in every module-local import's combined hash.
	for _, path := range order {
		rp := parsed[path]
		h := sha256.New()
		fmt.Fprintf(h, "self %s\n", rp.hash)
		for _, imp := range rp.imports {
			if dep, ok := parsed[imp]; ok {
				fmt.Fprintf(h, "dep %s %s\n", imp, dep.combined)
			}
		}
		rp.combined = hex.EncodeToString(h.Sum(nil))
	}

	return &ModuleSource{Root: root, ModPath: modPath, fset: fset, pkgs: parsed, order: order}, nil
}

// Paths returns the package import paths in dependency order.
func (ms *ModuleSource) Paths() []string { return ms.order }

// Hash returns the combined content hash of one package (its own
// sources plus all module-local dependencies, transitively).
func (ms *ModuleSource) Hash(path string) string { return ms.pkgs[path].combined }

// Dir returns the absolute directory of one package.
func (ms *ModuleSource) Dir(path string) string { return ms.pkgs[path].dir }

// TypeCheck type-checks the packages in need — plus their module-local
// transitive dependencies, which go/types requires — and returns them
// by import path. A nil need means every package. Packages outside the
// closure are not checked at all; on a fully-warm cache run that is the
// entire savings.
func (ms *ModuleSource) TypeCheck(need map[string]bool) (map[string]*Package, error) {
	closure := make(map[string]bool, len(ms.order))
	var mark func(path string)
	mark = func(path string) {
		if closure[path] {
			return
		}
		closure[path] = true
		for _, imp := range ms.pkgs[path].imports {
			if _, local := ms.pkgs[imp]; local {
				mark(imp)
			}
		}
	}
	for _, path := range ms.order {
		if need == nil || need[path] {
			mark(path)
		}
	}

	imp := &moduleImporter{
		std:  importer.ForCompiler(ms.fset, "source", nil),
		pkgs: make(map[string]*types.Package, len(closure)),
	}
	out := make(map[string]*Package, len(closure))
	for _, path := range ms.order {
		if !closure[path] {
			continue
		}
		pkg, err := typeCheck(ms.fset, ms.pkgs[path], imp)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		imp.pkgs[path] = pkg.Pkg
		out[path] = pkg
	}
	return out, nil
}

// FindModuleRoot ascends from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs lists every directory under root that may hold a package:
// hidden directories, testdata and nested modules are skipped.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	path     string
	dir      string
	files    []*ast.File
	imports  []string
	hash     string // sha256 over this package's own file names + contents
	combined string // hash folded with all module-local deps' combined hashes
}

// parseDir parses the non-test Go files of one directory, or returns
// nil when the directory holds none. File contents are read once and
// fed to both the parser and the package content hash.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	seen := map[string]bool{}
	h := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(src))
		h.Write(src)
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			seen[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	imports := make([]string, 0, len(seen))
	for imp := range seen {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	return &rawPkg{
		path:    path,
		dir:     dir,
		files:   files,
		imports: imports,
		hash:    hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(pkgs map[string]*rawPkg, paths []string, modPath string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		for _, imp := range pkgs[path].imports {
			if imp != modPath && !strings.HasPrefix(imp, modPath+"/") {
				continue // standard library: the source importer's job
			}
			if _, ok := pkgs[imp]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no Go files", path, imp)
			}
			if err := visit(imp, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves module-local packages from the already-checked
// set and everything else (the standard library) from GOROOT source.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, rp *rawPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(rp.path, fset, rp.files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  rp.path,
		Dir:   rp.dir,
		Fset:  fset,
		Files: rp.files,
		Pkg:   pkg,
		Info:  info,
		Hash:  rp.combined,
	}, nil
}

// sharedFset and sharedStd back CheckSource: one FileSet and one
// GOROOT-source importer shared by every call, so repeated fixture
// checks (the analyzer tests) pay for each standard-library package
// only once per process. Guarded by sharedMu; the source importer is
// not safe for concurrent use.
var (
	sharedMu   sync.Mutex
	sharedFset *token.FileSet
	sharedStd  types.Importer
)

// CheckSource parses and type-checks a single in-memory source file as
// a package with the given import path, resolving module-local imports
// from deps. It exists for analyzer tests, which feed inline fixtures
// through the same pipeline the CLI uses.
func CheckSource(path, filename, src string, deps []*Package) (*Package, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	f, err := parser.ParseFile(sharedFset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		std:  sharedStd,
		pkgs: make(map[string]*types.Package, len(deps)),
	}
	for _, d := range deps {
		imp.pkgs[d.Path] = d.Pkg
	}
	return typeCheck(sharedFset, &rawPkg{path: path, dir: ".", files: []*ast.File{f}}, imp)
}
