package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadModule discovers, parses and type-checks every non-test package
// under the module rooted at root (the directory containing go.mod),
// returning packages in dependency order. It is a deliberately small,
// offline substitute for golang.org/x/tools/go/packages: module-local
// imports are resolved from the tree being linted and standard-library
// imports are type-checked from GOROOT source, so the loader needs no
// build cache, no network and no external dependencies.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*rawPkg, len(dirs))
	var paths []string
	for _, dir := range dirs {
		rp, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if rp == nil {
			continue // no non-test Go files
		}
		parsed[rp.path] = rp
		paths = append(paths, rp.path)
	}
	sort.Strings(paths)

	order, err := topoSort(parsed, paths, modPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package, len(order)),
	}
	var out []*Package
	for _, path := range order {
		rp := parsed[path]
		pkg, err := typeCheck(fset, rp, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		imp.pkgs[path] = pkg.Pkg
		out = append(out, pkg)
	}
	return out, nil
}

// FindModuleRoot ascends from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs lists every directory under root that may hold a package:
// hidden directories, testdata and nested modules are skipped.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string
}

// parseDir parses the non-test Go files of one directory, or returns
// nil when the directory holds none.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			seen[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	imports := make([]string, 0, len(seen))
	for imp := range seen {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	return &rawPkg{path: path, dir: dir, files: files, imports: imports}, nil
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(pkgs map[string]*rawPkg, paths []string, modPath string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		for _, imp := range pkgs[path].imports {
			if imp != modPath && !strings.HasPrefix(imp, modPath+"/") {
				continue // standard library: the source importer's job
			}
			if _, ok := pkgs[imp]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no Go files", path, imp)
			}
			if err := visit(imp, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves module-local packages from the already-checked
// set and everything else (the standard library) from GOROOT source.
type moduleImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, rp *rawPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(rp.path, fset, rp.files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path:  rp.path,
		Dir:   rp.dir,
		Fset:  fset,
		Files: rp.files,
		Pkg:   pkg,
		Info:  info,
	}, nil
}

// sharedFset and sharedStd back CheckSource: one FileSet and one
// GOROOT-source importer shared by every call, so repeated fixture
// checks (the analyzer tests) pay for each standard-library package
// only once per process. Guarded by sharedMu; the source importer is
// not safe for concurrent use.
var (
	sharedMu   sync.Mutex
	sharedFset *token.FileSet
	sharedStd  types.Importer
)

// CheckSource parses and type-checks a single in-memory source file as
// a package with the given import path, resolving module-local imports
// from deps. It exists for analyzer tests, which feed inline fixtures
// through the same pipeline the CLI uses.
func CheckSource(path, filename, src string, deps []*Package) (*Package, error) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	f, err := parser.ParseFile(sharedFset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		std:  sharedStd,
		pkgs: make(map[string]*types.Package, len(deps)),
	}
	for _, d := range deps {
		imp.pkgs[d.Path] = d.Pkg
	}
	return typeCheck(sharedFset, &rawPkg{path: path, dir: ".", files: []*ast.File{f}}, imp)
}
