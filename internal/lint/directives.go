package lint

import "strings"

// allowPrefix is the directive comment form:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses findings of <analyzer> (or every analyzer,
// with the name "all") on its own line and on the line immediately
// below — so it works both as a trailing comment and as a line of its
// own above the exception. The reason is mandatory: exceptions without
// a written justification are exactly the rot the gate exists to stop.
const allowPrefix = "//lint:allow"

// directiveSet indexes allow-directives by file and line.
type directiveSet map[string]map[int][]string // filename -> line -> analyzers

func (d directiveSet) add(file string, line int, analyzer string) {
	m := d[file]
	if m == nil {
		m = make(map[int][]string)
		d[file] = m
	}
	m[line] = append(m[line], analyzer)
}

// allows reports whether finding f is covered by a directive on its
// line or the line above it.
func (d directiveSet) allows(f Finding) bool {
	m := d[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, a := range m[line] {
			if a == f.Analyzer || a == "all" {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans a package's comments for //lint:allow
// directives. Malformed directives (unknown analyzer, missing reason)
// are returned as error findings so they cannot silently suppress
// anything.
func collectDirectives(p *Package) (directiveSet, []Finding) {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name()] = true
	}
	set := make(directiveSet)
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					bad = append(bad, finding(p, "directive", c.Pos(), Error,
						"malformed %s: missing analyzer name and reason", allowPrefix))
				case !known[fields[0]]:
					bad = append(bad, finding(p, "directive", c.Pos(), Error,
						"%s names unknown analyzer %q", allowPrefix, fields[0]))
				case len(fields) < 2:
					bad = append(bad, finding(p, "directive", c.Pos(), Error,
						"%s %s: a reason is required", allowPrefix, fields[0]))
				default:
					pos := p.Fset.Position(c.Pos())
					set.add(pos.Filename, pos.Line, fields[0])
				}
			}
		}
	}
	return set, bad
}
