package lint

import (
	"go/token"
	"strings"
)

// allowPrefix is the directive comment form:
//
//	//lint:allow <analyzer> <reason>
//
// A directive suppresses findings of <analyzer> (or every analyzer,
// with the name "all") on its own line and on the line immediately
// below — so it works both as a trailing comment and as a line of its
// own above the exception. The reason is mandatory: exceptions without
// a written justification are exactly the rot the gate exists to stop.
//
// A directive must also earn its keep: one that suppresses nothing in a
// run of its analyzer is stale and is itself reported as an error (see
// directiveSet.stale). Fixed code sheds its annotations in the same
// change, so the set of written-down exceptions never overstates the
// set of real ones.
const allowPrefix = "//lint:allow"

// parseAllowDirective classifies one comment's text against the
// directive grammar. Three outcomes:
//
//   - not a directive:      analyzer == "" and problem == ""
//   - well-formed:          analyzer != "" (a member of known)
//   - malformed directive:  problem != "" (human-readable defect)
//
// known maps the acceptable analyzer names (including "all"). The
// function is total over arbitrary comment text — FuzzDirectiveParse
// holds it to that.
func parseAllowDirective(text string, known map[string]bool) (analyzer, problem string) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", ""
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && !strings.ContainsAny(rest[:1], " \t") {
		// "//lint:allowx..." is a different word, not a directive.
		return "", ""
	}
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return "", "malformed " + allowPrefix + ": missing analyzer name and reason"
	case !known[fields[0]]:
		return "", allowPrefix + " names unknown analyzer \"" + fields[0] + "\""
	case len(fields) < 2:
		return "", allowPrefix + " " + fields[0] + ": a reason is required"
	}
	return fields[0], ""
}

// allowDirective is one well-formed //lint:allow comment.
type allowDirective struct {
	analyzer string
	pos      token.Pos
	used     bool
}

// directiveSet indexes allow-directives by file and line and tracks
// which of them actually suppressed a finding.
type directiveSet struct {
	byLine map[string]map[int][]*allowDirective // filename -> line -> directives
	order  []*allowDirective                    // source order, for stale reporting
}

func newDirectiveSet() *directiveSet {
	return &directiveSet{byLine: make(map[string]map[int][]*allowDirective)}
}

func (d *directiveSet) add(file string, line int, dir *allowDirective) {
	m := d.byLine[file]
	if m == nil {
		m = make(map[int][]*allowDirective)
		d.byLine[file] = m
	}
	m[line] = append(m[line], dir)
	d.order = append(d.order, dir)
}

// allows reports whether finding f is covered by a directive on its
// line or the line above it, marking the matching directive as used.
func (d *directiveSet) allows(f Finding) bool {
	m := d.byLine[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, dir := range m[line] {
			if dir.analyzer == f.Analyzer || dir.analyzer == "all" {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// covers reports whether a directive for analyzer (or "all") covers the
// line of pos, without marking anything used. The module-graph summary
// pass uses it to stop taint propagation at annotated operations;
// finding suppression goes through allows, which tracks usage.
func (d *directiveSet) covers(p *Package, pos token.Pos, analyzer string) bool {
	position := p.Fset.Position(pos)
	m := d.byLine[position.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, dir := range m[line] {
			if dir.analyzer == analyzer || dir.analyzer == "all" {
				return true
			}
		}
	}
	return false
}

// stale reports every directive that suppressed nothing even though its
// analyzer was part of the run (active). A directive for an analyzer
// outside the run set is left alone — `vislint -run floateq` must not
// condemn the nondet annotations it never exercised — and an "all"
// directive is only auditable on a full-suite run: on a partial run the
// findings it exists to suppress may belong to a deselected analyzer,
// so reporting it stale would condemn a live exception.
func (d *directiveSet) stale(p *Package, active map[string]bool) []Finding {
	full := true
	for _, a := range All() {
		if !active[a.Name()] {
			full = false
			break
		}
	}
	var out []Finding
	for _, dir := range d.order {
		if dir.used {
			continue
		}
		if dir.analyzer == "all" {
			if !full {
				continue
			}
		} else if !active[dir.analyzer] {
			continue
		}
		out = append(out, finding(p, "directive", dir.pos, Error,
			"%s %s suppresses no findings; stale directives are errors — remove it",
			allowPrefix, dir.analyzer))
	}
	return out
}

// collectDirectives scans a package's comments for //lint:allow
// directives. Malformed directives (unknown analyzer, missing reason)
// are returned as error findings so they cannot silently suppress
// anything.
func collectDirectives(p *Package) (*directiveSet, []Finding) {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name()] = true
	}
	set := newDirectiveSet()
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, problem := parseAllowDirective(c.Text, known)
				switch {
				case problem != "":
					bad = append(bad, finding(p, "directive", c.Pos(), Error, "%s", problem))
				case analyzer != "":
					pos := p.Fset.Position(c.Pos())
					set.add(pos.Filename, pos.Line, &allowDirective{analyzer: analyzer, pos: c.Pos()})
				}
			}
		}
	}
	return set, bad
}
