package lint

// Diff-scoped reporting for `vislint -diff=REF`: the whole module is
// still type-checked, summarized and analyzed (a one-line edit can
// surface a lock-order cycle whose other half is ten packages away),
// but only findings on lines the ref no longer matches are *reported*.
// That is the contract CI wants for PR annotation — complain about the
// PR's own lines, gate on them, stay quiet about pre-existing debt.

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LineSet is the set of changed lines of one file. A file that is new
// (or renamed) since the ref is changed in full.
type LineSet struct {
	all    bool
	ranges [][2]int // inclusive [start, end], sorted, non-overlapping
}

// Contains reports whether line is in the set.
func (s *LineSet) Contains(line int) bool {
	if s.all {
		return true
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i][1] >= line })
	return i < len(s.ranges) && s.ranges[i][0] <= line
}

// add appends a range; ranges arrive in ascending order from the diff.
func (s *LineSet) add(start, end int) {
	s.ranges = append(s.ranges, [2]int{start, end})
}

// ParseUnifiedDiff extracts per-file changed-line sets from a unified
// diff (git diff --unified=0 output). Paths are the post-image ("+++ b/")
// names, slash-separated and repo-relative; deletions (post-image
// /dev/null) and pure-removal hunks (+start,0) contribute nothing —
// a finding cannot sit on a line that no longer exists.
func ParseUnifiedDiff(r io.Reader) (map[string]*LineSet, error) {
	changed := make(map[string]*LineSet)
	var cur *LineSet
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "+++ "):
			name := strings.TrimPrefix(line, "+++ ")
			if i := strings.IndexByte(name, '\t'); i >= 0 {
				name = name[:i] // git appends a tab + mode on some paths
			}
			if name == "/dev/null" {
				cur = nil
				continue
			}
			name = strings.TrimPrefix(name, "b/")
			cur = changed[name]
			if cur == nil {
				cur = &LineSet{}
				changed[name] = cur
			}
		case strings.HasPrefix(line, "@@ ") && cur != nil:
			// @@ -a,b +c,d @@ — with --unified=0 the +c,d span is exactly
			// the added/modified lines. d omitted means 1; d==0 is a pure
			// deletion at position c.
			fields := strings.Fields(line)
			var plus string
			for _, f := range fields[1:] {
				if strings.HasPrefix(f, "+") {
					plus = strings.TrimPrefix(f, "+")
					break
				}
			}
			if plus == "" {
				continue
			}
			start, count := plus, 1
			if i := strings.IndexByte(plus, ','); i >= 0 {
				start = plus[:i]
				n, err := strconv.Atoi(plus[i+1:])
				if err != nil {
					return nil, fmt.Errorf("lint: malformed hunk header %q", line)
				}
				count = n
			}
			s, err := strconv.Atoi(start)
			if err != nil {
				return nil, fmt.Errorf("lint: malformed hunk header %q", line)
			}
			if count > 0 {
				cur.add(s, s+count-1)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return changed, nil
}

// ChangedLines asks git for the lines changed in the working tree since
// ref, keyed by slash-separated module-root-relative path. Untracked
// files count as changed in full — they are exactly the PR's new code.
func ChangedLines(root, ref string) (map[string]*LineSet, error) {
	diff := exec.Command("git", "-C", root, "diff", "--unified=0", "--no-color", ref)
	out, err := diff.StdoutPipe()
	if err != nil {
		return nil, err
	}
	var diffErr strings.Builder
	diff.Stderr = &diffErr
	if err := diff.Start(); err != nil {
		return nil, fmt.Errorf("lint: git diff: %w", err)
	}
	changed, parseErr := ParseUnifiedDiff(out)
	if err := diff.Wait(); err != nil {
		msg := strings.TrimSpace(diffErr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: git diff %s: %s", ref, msg)
	}
	if parseErr != nil {
		return nil, parseErr
	}

	untracked := exec.Command("git", "-C", root, "ls-files", "--others", "--exclude-standard")
	raw, err := untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: git ls-files: %w", err)
	}
	for _, name := range strings.Fields(string(raw)) {
		changed[name] = &LineSet{all: true}
	}
	return changed, nil
}

// FilterChanged keeps the findings whose position falls on a changed
// line. Finding paths are absolute; changed is keyed root-relative.
func FilterChanged(findings []Finding, root string, changed map[string]*LineSet) []Finding {
	var keep []Finding
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		if s := changed[filepath.ToSlash(rel)]; s != nil && s.Contains(f.Pos.Line) {
			keep = append(keep, f)
		}
	}
	return keep
}
