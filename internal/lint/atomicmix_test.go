package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const atomicmixFixture = `package fixture

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func read(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

func swap(c *counters, v int64) int64 {
	return atomic.SwapInt64(&c.hits, v)
}

func racyRead(c *counters) int64 {
	return c.hits // want
}

func racyWrite(c *counters) {
	c.hits = 0 // want
}

func plainOnlyFieldIsFine(c *counters) int64 {
	c.total++
	return c.total
}

func suppressed(c *counters) int64 {
	//lint:allow atomicmix fixture exception with a reason
	return c.hits
}
`

func TestAtomicMix(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/fixture", atomicmixFixture, lint.AtomicMix{})
	assertWants(t, atomicmixFixture, findingsOf(findings, "atomicmix"))
	if bad := findingsOf(findings, "directive"); len(bad) != 0 {
		t.Errorf("directive findings = %v; want none", bad)
	}
	// The message must point back at an atomic site so the reader can
	// see why the field is special.
	for _, f := range findingsOf(findings, "atomicmix") {
		if !strings.Contains(f.Message, "sync/atomic at ") {
			t.Errorf("finding does not cite the atomic site: %s", f)
		}
	}
}

// TestAtomicMixNoAtomics: a package that never touches sync/atomic gets
// no findings no matter how it uses its fields.
func TestAtomicMixNoAtomics(t *testing.T) {
	src := `package fixture

type c struct{ n int64 }

func bump(x *c) { x.n++ }
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.AtomicMix{})
	if len(findings) != 0 {
		t.Errorf("findings = %v; want none", findings)
	}
}
