package lint

import (
	"go/ast"
	"go/types"
)

// CtxCancel checks goroutine hygiene in the concurrent packages
// (internal/rt, internal/exp): every `go` statement must either thread
// a context.Context into the goroutine (so it can observe Done and
// stop — rt robots free-run until cancelled) or be a structured,
// bounded fan-out: the goroutine calls (*sync.WaitGroup).Done and the
// launching function calls Wait, so the goroutine cannot outlive its
// launcher. Anything else is a leak under MaxWall aborts: a robot
// goroutine that keeps mutating the world after Run returned is a data
// race by construction.
type CtxCancel struct{}

// Name implements Analyzer.
func (CtxCancel) Name() string { return "ctxcancel" }

// Doc implements Analyzer.
func (CtxCancel) Doc() string {
	return "require goroutines in rt/exp to thread a context or be WaitGroup-joined by their launcher"
}

// ctxScope lists the packages that launch goroutines by design.
var ctxScope = []string{"internal/rt", "internal/exp"}

// Check implements Analyzer.
func (a CtxCancel) Check(p *Package) []Finding {
	inScope := false
	for _, s := range ctxScope {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			launcherWaits := callsSyncMethod(p, fd.Body, "Wait")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if referencesContext(p, g.Call) {
					return true
				}
				if launcherWaits && callsSyncMethod(p, g.Call, "Done") {
					return true
				}
				out = append(out, finding(p, a.Name(), g.Go, Error,
					"goroutine has no cancellation path: thread a context.Context (select on Done) or join it with a sync.WaitGroup in %s",
					fd.Name.Name))
				return true
			})
		}
	}
	return out
}

// referencesContext reports whether any expression inside n (the go
// statement's call, including a func literal body) has type
// context.Context.
func referencesContext(p *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := p.TypeOf(e); t != nil && isContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// callsSyncMethod reports whether n contains a call to the named
// package-sync method (Done, Wait, ...).
func callsSyncMethod(p *Package, n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isSyncMethod(methodObjOf(p, sel), name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
