package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const paletteFixture = `package fixture

import "luxvis/internal/model"

func mint(x uint8) model.Color {
	return model.Color(x) // want
}

func magic(c model.Color) bool {
	return c == 3 // want
}

func undeclared(c model.Color) bool {
	return c == 99 // want
}

func assigned() model.Color {
	var c model.Color = 5 // want
	return c
}

func named(c model.Color) bool { return c == model.Corner }

func enumerate() int { return len(model.AllColors()) }

func sliceConv(cs []model.Color) []model.Color {
	return append([]model.Color(nil), cs...)
}

func widen(c model.Color) uint8 { return uint8(c) }
`

func TestPalette(t *testing.T) {
	model := modulePackage(t, "internal/model")
	findings := runFixture(t, "luxvis/internal/fixture", paletteFixture, lint.PaletteDiscipline{}, model)
	assertWants(t, paletteFixture, findings)

	// The in-palette literal should name its constant; 3 is model.Side.
	named := false
	for _, f := range findings {
		if strings.Contains(f.Message, "model.Side") {
			named = true
		}
	}
	if !named {
		t.Errorf("no finding suggests model.Side for literal 3: %v", findings)
	}
}

// TestPaletteModelExempt: internal/model declares the palette and may
// do whatever it needs with Color values.
func TestPaletteModelExempt(t *testing.T) {
	model := modulePackage(t, "internal/model")
	src := strings.Replace(paletteFixture, "package fixture", "package fixture2", 1)
	findings := runFixture(t, "luxvis/internal/model", src, lint.PaletteDiscipline{}, model)
	if len(findings) != 0 {
		t.Fatalf("model-path package produced %d findings: %v", len(findings), findings)
	}
}

// TestPaletteNoModelImport: packages that never touch the model are
// skipped entirely.
func TestPaletteNoModelImport(t *testing.T) {
	src := `package fixture

func f(a, b int) int { return a + b }
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.PaletteDiscipline{})
	if len(findings) != 0 {
		t.Fatalf("model-free package produced findings: %v", findings)
	}
}
