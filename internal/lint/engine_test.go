package lint_test

import (
	"runtime"
	"strings"
	"testing"

	"luxvis/internal/lint"
)

// fixturePackages assembles a mixed bag of packages with known findings
// across several analyzers — the raw material for the determinism test.
func fixturePackages(t *testing.T) []*lint.Package {
	t.Helper()
	specs := []struct {
		path, src string
	}{
		{"luxvis/internal/fixa", locksafeFixture},
		{"luxvis/internal/fixb", atomicmixFixture},
		{"luxvis/internal/obs", errsinkFixture},
		{"luxvis/internal/serve", wireformatFixture},
	}
	var pkgs []*lint.Package
	for _, s := range specs {
		p, err := lint.CheckSource(s.path, "fixture.go", s.src, nil)
		if err != nil {
			t.Fatalf("CheckSource(%s): %v", s.path, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

func render(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelDeterminism is the satellite guarantee: the engine's
// output is byte-for-byte identical at any worker count. Fixture
// packages carry real findings so the comparison is not vacuous.
func TestParallelDeterminism(t *testing.T) {
	pkgs := fixturePackages(t)
	seq := render(lint.RunConfig(pkgs, lint.All(), lint.Config{Workers: 1}))
	if !strings.Contains(seq, "locksafe") || !strings.Contains(seq, "errsink") {
		t.Fatalf("sequential run lost expected findings:\n%s", seq)
	}
	for try := 0; try < 5; try++ {
		par := render(lint.RunConfig(pkgs, lint.All(), lint.Config{Workers: 2 * runtime.GOMAXPROCS(0)}))
		if par != seq {
			t.Fatalf("parallel output differs from sequential (try %d):\n--- sequential ---\n%s--- parallel ---\n%s", try, seq, par)
		}
	}
}

// TestStaleDirective: an allow-directive that suppresses nothing in a
// run of its analyzer is itself an error.
func TestStaleDirective(t *testing.T) {
	src := `package fixture

//lint:allow floateq this exception no longer suppresses anything
func fine(a, b int) bool { return a == b }
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.FloatEq{})
	if len(findings) != 1 {
		t.Fatalf("findings = %v; want exactly the stale-directive error", findings)
	}
	f := findings[0]
	if f.Analyzer != "directive" || f.Severity != lint.Error ||
		!strings.Contains(f.Message, "suppresses no findings") {
		t.Errorf("unexpected finding: %s", f)
	}
	if f.Pos.Line != 3 {
		t.Errorf("stale directive reported at line %d; want 3", f.Pos.Line)
	}
}

// TestStaleDirectiveInactiveAnalyzer: a directive for an analyzer that
// did not run cannot be judged stale — `vislint -run detsource` must
// not condemn floateq annotations it never exercised.
func TestStaleDirectiveInactiveAnalyzer(t *testing.T) {
	src := `package fixture

//lint:allow floateq the analyzer for this is not in the run set
func fine(a, b int) bool { return a == b }
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.DetSource{})
	if len(findings) != 0 {
		t.Errorf("findings = %v; want none", findings)
	}
}

// TestStaleDirectiveDeselectedAnalyzer is the regression test for the
// flag-aware staleness fix: a named directive whose findings exist —
// but whose analyzer was deselected via -run — must not be reported
// stale, even while a selected analyzer runs over the same file.
func TestStaleDirectiveDeselectedAnalyzer(t *testing.T) {
	src := `package fixture

func eq(a, b float64) bool {
	return a == b //lint:allow floateq exact comparison is intended here
}
`
	// floateq deselected: the directive would suppress a real floateq
	// finding, so judging it stale from a detsource-only run is wrong.
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.DetSource{})
	if len(findings) != 0 {
		t.Errorf("detsource-only run findings = %v; want none", findings)
	}
	// floateq selected: the directive is used, still nothing reported.
	findings = runFixture(t, "luxvis/internal/fixture", src, lint.FloatEq{})
	if len(findings) != 0 {
		t.Errorf("floateq run findings = %v; want none", findings)
	}
}

// TestStaleDirectiveAllPartialRun: an "all" directive can only be
// audited on a full-suite run — on a partial run the findings it
// suppresses may belong to a deselected analyzer, so reporting it stale
// would condemn a live exception.
func TestStaleDirectiveAllPartialRun(t *testing.T) {
	src := `package fixture

func eq(a, b float64) bool {
	return a == b //lint:allow all fixture exception spanning analyzers
}
`
	if findings := runFixture(t, "luxvis/internal/fixture", src, lint.DetSource{}); len(findings) != 0 {
		t.Errorf("partial-run findings = %v; want none (the all-directive covers a deselected analyzer's finding)", findings)
	}
}

// TestStaleDirectiveAllFullRun: on a full-suite run an "all" directive
// that suppresses nothing anywhere is reported stale.
func TestStaleDirectiveAllFullRun(t *testing.T) {
	src := `package fixture

//lint:allow all this suppresses nothing at all
func fine() {}
`
	pkg, err := lint.CheckSource("luxvis/internal/fixture", "fixture.go", src, nil)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	findings := lint.Run([]*lint.Package{pkg}, lint.All())
	if len(findings) != 1 || findings[0].Analyzer != "directive" {
		t.Errorf("findings = %v; want one stale-directive error", findings)
	}
}
