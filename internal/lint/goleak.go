package lint

import (
	"go/ast"
	"go/types"
)

// GoLeak proves, at build time, the goroutine-lifecycle half of the
// ASYNC runtime's contract: every `go` statement in the
// concurrency-bearing packages (internal/{stream,serve,rt,sim,exp})
// must have an exit path the analyzer can see being reachable from
// Close/cancel. A goroutine whose frame can block forever or loop
// without bound — a channel op with no close in scope, a select with
// no default, a sync.Cond wait, a bare for{} — and shows no
// termination evidence anywhere on its exit paths is reported, with a
// witness chain naming the blocking operation.
//
// Termination evidence is one of: a receive (or select case, or range)
// on ctx.Done() or on a channel some module frame closes, a ctx.Err()
// poll, or a sync.WaitGroup join. A bounded body — no blocking op, no
// unconditional loop — needs no evidence. Blockingness and evidence
// both propagate bottom-up through the module summaries (LeakRisk /
// TermEvidence), so a goroutine body that just calls robotLoop is
// judged by what robotLoop can reach two packages down.
//
// Approximations, failing toward silence: dynamic spawns (`go fv()` on
// a function value) are skipped, and evidence anywhere in the frame
// pardons the whole frame — the analyzer proves "an exit path exists",
// not "every path exits". The analyzer cannot see evidence hidden
// behind a dynamic call (a stored closure invoked through a variable);
// hoist the ctx check into the loop, or annotate with
// //lint:allow goleak and the reason the body is bounded.
type GoLeak struct{}

// Name implements Analyzer.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Analyzer.
func (GoLeak) Doc() string {
	return "every goroutine in the concurrency-bearing packages needs a provable exit path (ctx.Done/Err, module-closed channel, WaitGroup join, or a bounded body)"
}

// Check implements Analyzer with intra-package knowledge only.
func (a GoLeak) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a GoLeak) CheckModule(p *Package, m *Module) []Finding {
	if !inConcScope(p) {
		return nil
	}
	closed := m.closedScope[p]
	g := p.CallGraph()
	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			risk, ev := a.spawnFacts(p, m, closed, gs)
			if risk != nil && ev == nil {
				chain := ""
				if c := risk.Chain(); c != "" {
					chain = " (call chain " + c + ")"
				}
				out = append(out, finding(p, a.Name(), gs.Pos(), Error,
					"goroutine started by %s %s%s and no exit path shows termination evidence (ctx.Done/ctx.Err, a receive on a module-closed channel, or a WaitGroup join); it can outlive Close/cancel — thread a context through, close the channel it blocks on, or annotate why it is bounded",
					fd.Name.Name, risk.Desc, chain))
			}
			return true
		})
	}
	sortFindings(out)
	return out
}

// spawnFacts computes the spawned frame's leak risk and termination
// evidence: for a `go func(){...}` literal, its direct ops plus the
// summaries of every module function it calls; for a named `go f(...)`,
// f's summary. Dynamic spawns return no facts (skipped).
func (a GoLeak) spawnFacts(p *Package, m *Module, closed map[types.Object][]chanSite, gs *ast.GoStmt) (risk, ev *Reach) {
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		r, e := collectLeakOps(p, closed, fl.Body)
		if r != nil {
			risk = &Reach{Desc: r.desc, Pos: r.pos}
		}
		if e != nil {
			ev = &Reach{Desc: e.desc, Pos: e.pos}
		}
		for _, edge := range moduleCalls(p, m, fl.Body) {
			s := m.Summary(edge.Callee)
			if s == nil {
				continue
			}
			name := crossName(p, edge.Callee)
			if s.LeakRisk != nil && (risk == nil || edge.Pos < risk.Pos) {
				risk = &Reach{
					Desc: s.LeakRisk.Desc, Pos: edge.Pos,
					Via: append([]string{name}, s.LeakRisk.Via...),
				}
			}
			if s.TermEvidence != nil && ev == nil {
				ev = &Reach{
					Desc: s.TermEvidence.Desc, Pos: edge.Pos,
					Via: append([]string{name}, s.TermEvidence.Via...),
				}
			}
		}
		return risk, ev
	}
	callee := p.StaticCallee(gs.Call)
	if callee == nil {
		return nil, nil
	}
	s := m.Summary(callee)
	if s == nil {
		return nil, nil
	}
	name := crossName(p, callee)
	if s.LeakRisk != nil {
		risk = &Reach{
			Desc: s.LeakRisk.Desc, Pos: gs.Pos(),
			Via: append([]string{name}, s.LeakRisk.Via...),
		}
	}
	if s.TermEvidence != nil {
		ev = &Reach{
			Desc: s.TermEvidence.Desc, Pos: gs.Pos(),
			Via: append([]string{name}, s.TermEvidence.Via...),
		}
	}
	return risk, ev
}
