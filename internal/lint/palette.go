package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PaletteDiscipline enforces the paper's O(1)-colors claim statically:
// outside internal/model, robot light colors may only be named by the
// declared palette constants (model.Off, model.Corner, ...). Flagged
// are (a) conversions to model.Color — minting a color from an integer
// bypasses the declared palette, and the engine's runtime palette check
// would only catch it when that code path happens to run — and (b)
// untyped numeric literals used at model.Color type ("magic colors"),
// whether or not the value happens to be in palette range.
type PaletteDiscipline struct{}

// Name implements Analyzer.
func (PaletteDiscipline) Name() string { return "palette" }

// Doc implements Analyzer.
func (PaletteDiscipline) Doc() string {
	return "forbid model.Color conversions and numeric color literals outside internal/model"
}

// Check implements Analyzer.
func (a PaletteDiscipline) Check(p *Package) []Finding {
	if p.PathHasSuffix("internal/model") {
		return nil
	}
	colorType, names := paletteOf(p)
	if colorType == nil {
		return nil // package does not import the model
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				tv, ok := p.Info.Types[n.Fun]
				if ok && tv.IsType() && types.Identical(tv.Type, colorType) {
					out = append(out, finding(p, a.Name(), n.Pos(), Error,
						"conversion to model.Color mints a color outside the declared palette; use the named constants (%s)",
						paletteHint(names)))
				}
			case *ast.BasicLit:
				t := p.TypeOf(n)
				if t == nil || !types.Identical(t, colorType) {
					return true
				}
				tv := p.Info.Types[n]
				if name, ok := names[constKey(tv.Value)]; ok {
					out = append(out, finding(p, a.Name(), n.Pos(), Error,
						"magic color literal %s; write model.%s", n.Value, name))
				} else {
					out = append(out, finding(p, a.Name(), n.Pos(), Error,
						"color literal %s is not in the declared palette", n.Value))
				}
			}
			return true
		})
	}
	return out
}

// paletteOf locates the model package's Color type among p's imports
// (directly or transitively) and collects the named palette constants.
func paletteOf(p *Package) (types.Type, map[uint64]string) {
	model := findImport(p.Pkg, "internal/model", map[*types.Package]bool{})
	if model == nil {
		return nil, nil
	}
	obj, ok := model.Scope().Lookup("Color").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	colorType := obj.Type()
	names := make(map[uint64]string)
	for _, name := range model.Scope().Names() {
		c, ok := model.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), colorType) {
			continue
		}
		names[constKey(c.Val())] = name
	}
	return colorType, names
}

// findImport searches the import graph of pkg for a package whose path
// ends in suffix.
func findImport(pkg *types.Package, suffix string, seen map[*types.Package]bool) *types.Package {
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		if imp.Path() == suffix || strings.HasSuffix(imp.Path(), "/"+suffix) {
			return imp
		}
		if found := findImport(imp, suffix, seen); found != nil {
			return found
		}
	}
	return nil
}

// constKey maps a constant value to a comparable palette key.
func constKey(v constant.Value) uint64 {
	if v == nil {
		return ^uint64(0)
	}
	u, ok := constant.Uint64Val(constant.ToInt(v))
	if !ok {
		return ^uint64(0)
	}
	return u
}

// paletteHint renders a short sample of palette constant names.
func paletteHint(names map[uint64]string) string {
	var sample []string
	for i := uint64(0); i < 3; i++ {
		if n, ok := names[i]; ok {
			sample = append(sample, "model."+n)
		}
	}
	if len(sample) == 0 {
		return "see internal/model"
	}
	return strings.Join(sample, ", ") + ", ..."
}
