package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const wireformatFixture = `package fixture

import (
	"encoding/json"
	"io"
)

type Tagged struct {
	Epoch int    ` + "`json:\"epoch\"`" + `
	Name  string // want
	Skip  int    ` + "`json:\"-\"`" + `
	note  string
}

func keepNote(t Tagged) string { return t.note }

type Bare struct {
	X int
	Y int
}

func direct(b Bare) ([]byte, error) {
	return json.Marshal(b) // want
}

func viaEncoder(w io.Writer, b *Bare) error {
	return json.NewEncoder(w).Encode(b) // want
}

func writeJSON(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func throughWrapper(w io.Writer, b Bare) error {
	return writeJSON(w, b) // want
}

func taggedThroughWrapper(w io.Writer, t Tagged) error {
	return writeJSON(w, t)
}

func suppressed(w io.Writer, b Bare) error {
	//lint:allow wireformat fixture exception with a reason
	return writeJSON(w, b)
}
`

func TestWireFormat(t *testing.T) {
	// The analyzer is scoped to the wire-producing packages; the fixture
	// poses as internal/serve.
	findings := runFixture(t, "luxvis/internal/serve", wireformatFixture, lint.WireFormat{})
	assertWants(t, wireformatFixture, findingsOf(findings, "wireformat"))
	if bad := findingsOf(findings, "directive"); len(bad) != 0 {
		t.Errorf("directive findings = %v; want none", bad)
	}
	var sawField, sawMarshal bool
	for _, f := range findingsOf(findings, "wireformat") {
		if strings.Contains(f.Message, "field Name of wire struct Tagged") {
			sawField = true
		}
		if strings.Contains(f.Message, "Bare is marshaled as JSON") {
			sawMarshal = true
		}
	}
	if !sawField || !sawMarshal {
		t.Errorf("missing expected messages (field=%v marshal=%v): %v", sawField, sawMarshal, findings)
	}
}

// TestWireFormatScope: the same code outside serve/trace/obs carries no
// wire-compatibility promise.
func TestWireFormatScope(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/geom", wireformatFixture, lint.WireFormat{})
	if got := findingsOf(findings, "wireformat"); len(got) != 0 {
		t.Errorf("out-of-scope findings = %v; want none", got)
	}
}
