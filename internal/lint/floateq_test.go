package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const floatEqFixture = `package fixture

func eqF64(a, b float64) bool {
	return a == b // want
}

func neqF32(a, b float32) bool { return a != b } // want

type myFloat float64

func eqNamed(a, b myFloat) bool { return a == b } // want

func switchTag(x float64) int {
	switch x { // want
	case 1.0:
		return 1
	}
	return 0
}

func mixed(a float64, b int) bool { return a == float64(b) } // want

func ints(a, b int) bool { return a == b }

func strs(a, b string) bool { return a == b }

func ordered(a, b float64) bool { return a < b }

func switchNoTag(x float64) int {
	switch {
	case x < 0:
		return -1
	}
	return 0
}
`

func TestFloatEq(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/fixture", floatEqFixture, lint.FloatEq{})
	assertWants(t, floatEqFixture, findings)
	if len(findings) == 0 || !strings.Contains(findings[0].Message, "geom.Eps") {
		t.Errorf("message should point at the epsilon predicates, got %v", findings)
	}
}

// TestFloatEqGeomExempt: internal/geom implements the epsilon
// predicates and is the one place allowed to compare floats directly.
func TestFloatEqGeomExempt(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/geom", floatEqFixture, lint.FloatEq{})
	if len(findings) != 0 {
		t.Fatalf("geom package produced %d findings: %v", len(findings), findings)
	}
}
