package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink keeps the observability planes honest about I/O failure. The
// telemetry JSONL stream, the Prometheus text exposition and the trace
// writer all sit on hot paths where it is tempting to fire-and-forget a
// Write or Flush; a full disk or a closed pipe then silently truncates
// the byte-for-byte golden trace the differential tests depend on. In
// the writer packages (internal/obs, internal/trace, internal/serve),
// a call to a Write/WriteString/Flush method — or io.WriteString —
// whose result includes an error must not appear as a bare statement or
// an all-blank assignment: check it, or record it in a sticky error the
// way obs.TextWriter does.
//
// strings.Builder and bytes.Buffer receivers are exempt: their Write
// methods are documented to always return a nil error.
type ErrSink struct{}

// Name implements Analyzer.
func (ErrSink) Name() string { return "errsink" }

// Doc implements Analyzer.
func (ErrSink) Doc() string {
	return "telemetry/trace hot writers must not discard Write/Flush errors"
}

// errSinkScopes are the package-path suffixes the analyzer applies to:
// the writer-heavy observability planes.
var errSinkScopes = []string{"internal/obs", "internal/trace", "internal/serve"}

// Check implements Analyzer.
func (a ErrSink) Check(p *Package) []Finding {
	inScope := false
	for _, s := range errSinkScopes {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var out []Finding
	report := func(call *ast.CallExpr, name string) {
		out = append(out, finding(p, a.Name(), call.Pos(), Error,
			"%s's error is discarded; hot writers must check it or record a sticky error",
			name))
	}
	check := func(e ast.Expr) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return
		}
		if name, ok := discardableWriter(p, call); ok {
			report(call, name)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				check(n.X)
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && allBlank(n.Lhs) {
					check(n.Rhs[0])
				}
			case *ast.GoStmt:
				if name, ok := discardableWriter(p, n.Call); ok {
					report(n.Call, name)
				}
			case *ast.DeferStmt:
				if name, ok := discardableWriter(p, n.Call); ok {
					report(n.Call, name)
				}
			}
			return true
		})
	}
	sortFindings(out)
	return out
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// discardableWriter reports whether call is a writer call whose error
// result must not be dropped, returning a display name for the target.
func discardableWriter(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkgNameOf(p, sel.X) == "io" && name == "WriteString" {
		return "io.WriteString", true
	}
	switch name {
	case "Write", "WriteString", "Flush":
	default:
		return "", false
	}
	fn := methodObjOf(p, sel)
	if fn == nil || !returnsError(fn) || alwaysNilErrWriter(fn) {
		return "", false
	}
	return exprString(sel.X) + "." + name, true
}

// returnsError reports whether fn's signature includes an error result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

// alwaysNilErrWriter exempts receivers documented to never fail:
// strings.Builder and bytes.Buffer.
func alwaysNilErrWriter(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && typ == "Builder") || (pkg == "bytes" && typ == "Buffer")
}
