package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

const errsinkFixture = `package fixture

import (
	"bufio"
	"bytes"
	"io"
	"strings"
)

type sink struct {
	w   *bufio.Writer
	err error
}

func bareFlush(s *sink) {
	s.w.Flush() // want
}

func blankWrite(s *sink, p []byte) {
	_, _ = s.w.Write(p) // want
}

func blankIoWriteString(w io.Writer) {
	_, _ = io.WriteString(w, "x") // want
}

func checkedFlush(s *sink) error {
	return s.w.Flush()
}

func stickyWrite(s *sink, p []byte) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(p)
}

func infallibleWriters(sb *strings.Builder, buf *bytes.Buffer, p []byte) {
	sb.WriteString("x")
	buf.Write(p)
}

func suppressed(s *sink) {
	//lint:allow errsink fixture exception with a reason
	s.w.Flush()
}
`

func TestErrSink(t *testing.T) {
	// The analyzer is scoped to the writer packages; the fixture poses
	// as internal/obs.
	findings := runFixture(t, "luxvis/internal/obs", errsinkFixture, lint.ErrSink{})
	assertWants(t, errsinkFixture, findingsOf(findings, "errsink"))
	if bad := findingsOf(findings, "directive"); len(bad) != 0 {
		t.Errorf("directive findings = %v; want none", bad)
	}
}

// TestErrSinkScope: the same code outside the observability planes is
// not errsink's business (other analyzers govern general hygiene).
func TestErrSinkScope(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/geom", errsinkFixture, lint.ErrSink{})
	if got := findingsOf(findings, "errsink"); len(got) != 0 {
		t.Errorf("out-of-scope findings = %v; want none", got)
	}
}
