package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// pkgSpec is one package of a multi-package test module. Sources are
// checked in slice order, each seeing the previous packages as deps —
// the same shared-universe shape LoadModule produces.
type pkgSpec struct {
	path, file, src string
}

// buildModule type-checks specs into one shared universe.
func buildModule(t *testing.T, specs []pkgSpec) []*lint.Package {
	t.Helper()
	var pkgs []*lint.Package
	for _, s := range specs {
		p, err := lint.CheckSource(s.path, s.file, s.src, pkgs)
		if err != nil {
			t.Fatalf("CheckSource(%s): %v", s.path, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// fileFindings filters findings down to one file.
func fileFindings(fs []lint.Finding, file string) []lint.Finding {
	var out []lint.Finding
	for _, f := range fs {
		if f.Pos.Filename == file {
			out = append(out, f)
		}
	}
	return out
}

// runModuleFixture lints a multi-package module with one analyzer and
// asserts the target file's findings against its "// want" markers.
// With intraOnly, the engine runs the analyzer's single-package path —
// the way to prove a finding genuinely needs cross-package knowledge is
// to mark it "// want" and list it in wantsGoneIntra.
func runModuleFixture(t *testing.T, specs []pkgSpec, a lint.Analyzer, targetFile, targetSrc string) {
	t.Helper()
	pkgs := buildModule(t, specs)
	fs := lint.RunConfig(pkgs, []lint.Analyzer{a}, lint.Config{})
	assertWants(t, targetSrc, fileFindings(fs, targetFile))
}

// assertIntraSilent asserts that the intra-package engine reports
// nothing for the target file — the proof that the module fixture's
// findings require the cross-package graph.
func assertIntraSilent(t *testing.T, specs []pkgSpec, a lint.Analyzer, targetFile string) {
	t.Helper()
	pkgs := buildModule(t, specs)
	fs := fileFindings(lint.RunConfig(pkgs, []lint.Analyzer{a}, lint.Config{IntraOnly: true}), targetFile)
	if len(fs) != 0 {
		t.Errorf("IntraOnly run reported %d finding(s) in %s; want none (finding should require cross-package analysis):\n%s",
			len(fs), targetFile, render(fs))
	}
}

// geomFixture mimics the kernel's arena-handing API shape at the geom
// import path, so isArenaRoot identifies Row and VisibleSet by the same
// (package, receiver, method) identity it uses on the real kernel.
const geomFixture = `package geom

type Point struct{ X, Y float64 }

type Snapshot struct{ rows [][]int32 }

func (s *Snapshot) Row(i int) []int32     { return s.rows[i] }
func (s *Snapshot) Update(i int, p Point) {}
func (s *Snapshot) Reset(n int)           {}

type RowCache struct{ out []int32 }

func (c *RowCache) VisibleSet(p Point, id int) []int32 { return c.out }
`

// TestLockSafeCrossPackage: a blocking operation two packages away is
// still a locksafe violation at the lock-holding call site — and
// invisible to the intra-package engine, which treats the call as
// opaque.
func TestLockSafeCrossPackage(t *testing.T) {
	rtSrc := `package rt

func Drain(ch chan int) int { return <-ch }
`
	serveSrc := `package serve

import (
	"sync"

	"luxvis/internal/rt"
)

type server struct{ mu sync.Mutex }

func (s *server) bad(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return rt.Drain(ch) // want
}

func (s *server) good(ch chan int) int {
	s.mu.Lock()
	s.mu.Unlock()
	return rt.Drain(ch)
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_locksafe_fix.go", rtSrc},
		{"luxvis/internal/serve", "serve_locksafe_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.LockSafe{}, "serve_locksafe_fix.go", serveSrc)
	assertIntraSilent(t, specs, lint.LockSafe{}, "serve_locksafe_fix.go")
}

// TestWireFormatCrossPackage: an untagged struct declared in another
// module package, marshaled through a wrapper declared in a third, is
// reported at the serve-layer call site. The PR-4 engine's wrapper
// fixpoint and struct scoping both stopped at the package boundary, so
// the intra-only run is provably silent.
func TestWireFormatCrossPackage(t *testing.T) {
	coreSrc := `package core

type Stats struct {
	Mean float64
	Max  float64
}
`
	obsSrc := `package obs

import "encoding/json"

func Dump(v any) []byte {
	b, _ := json.Marshal(v)
	return b
}
`
	serveSrc := `package serve

import (
	"luxvis/internal/core"
	"luxvis/internal/obs"
)

func emit(s core.Stats) []byte {
	return obs.Dump(s) // want
}
`
	specs := []pkgSpec{
		{"luxvis/internal/core", "core_wf_fix.go", coreSrc},
		{"luxvis/internal/obs", "obs_wf_fix.go", obsSrc},
		{"luxvis/internal/serve", "serve_wf_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.WireFormat{}, "serve_wf_fix.go", serveSrc)
	assertIntraSilent(t, specs, lint.WireFormat{}, "serve_wf_fix.go")
}
