package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// cacheVersion invalidates every entry when the finding schema or any
// analyzer's semantics change. Bump it in the same commit as the
// behavior change. v3: cross-package module analysis (nondet →
// detsource, arenaalias, ctxflow, summary-aware locksafe/wireformat).
// v4: concurrency-soundness summary facts (goleak/lockorder/chanown).
// A variable, not a const, solely so the schema-bump invalidation test
// can simulate the next bump without editing this file.
var cacheVersion = "vislint-cache-4"

// toolchainVersion feeds the cache key. It is a variable, not a call,
// solely so the invalidation tests can simulate a toolchain upgrade
// without owning two Go installations.
var toolchainVersion = runtime.Version

// Cache is the content-addressed result store behind incremental
// `vislint ./...`: one JSON file per (package, analyzer set) whose name
// is a hash of everything the result depends on. Entries are immutable
// once written — a changed input is a different key, never an update —
// so readers and writers need no coordination beyond atomic rename.
type Cache struct {
	dir string
}

// DefaultCacheDir returns the user-level cache location
// (os.UserCacheDir()/luxvis-vislint) without creating anything.
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("lint: no user cache dir: %w", err)
	}
	return filepath.Join(base, "luxvis-vislint"), nil
}

// OpenCache returns the default user-level cache under DefaultCacheDir,
// creating it if needed.
func OpenCache() (*Cache, error) {
	dir, err := DefaultCacheDir()
	if err != nil {
		return nil, err
	}
	return NewCacheAt(dir)
}

// ClearCache removes every entry under dir without ever creating it —
// the right primitive for `vislint -clear-cache`, which must succeed
// (as a no-op) on a machine that has never run vislint, rather than
// mkdir-ing a directory just to empty it.
func ClearCache(dir string) error {
	return (&Cache{dir: dir}).Clear()
}

// NewCacheAt opens (creating if needed) a cache rooted at dir. Tests
// use this with t.TempDir.
func NewCacheAt(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// cacheKey derives the store key for one package's results. It folds in
// everything the outcome depends on: the entry schema version, the Go
// toolchain (analyzers lean on go/types behavior), the module root
// (finding positions embed absolute paths), the package identity, the
// package's combined content hash (own sources + transitive
// module-local deps), and the analyzer set.
func cacheKey(root, path, combined string, analyzers []Analyzer) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n", cacheVersion, toolchainVersion(), root, path, combined)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk format.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
}

// Get loads the findings stored under key. Any failure — absent entry,
// unreadable file, corrupt JSON — is a miss.
func (c *Cache) Get(key string) ([]Finding, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return e.Findings, true
}

// Put stores findings under key, atomically: the entry is written to a
// temp file in the same directory and renamed into place, so a
// concurrent reader sees either the old state or the complete new
// entry, never a torn write.
func (c *Cache) Put(key string, findings []Finding) error {
	data, err := json.Marshal(cacheEntry{Findings: findings})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Clear removes every entry, leaving the cache directory usable. A
// cache directory that does not exist is already clear: `vislint
// -clear-cache` on a machine that never ran vislint must succeed, not
// fail on the ReadDir.
func (c *Cache) Clear() error {
	entries, err := os.ReadDir(c.dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(c.dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
