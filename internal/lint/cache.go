package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// cacheVersion invalidates every entry when the finding schema or any
// analyzer's semantics change. Bump it in the same commit as the
// behavior change.
const cacheVersion = "vislint-cache-2"

// Cache is the content-addressed result store behind incremental
// `vislint ./...`: one JSON file per (package, analyzer set) whose name
// is a hash of everything the result depends on. Entries are immutable
// once written — a changed input is a different key, never an update —
// so readers and writers need no coordination beyond atomic rename.
type Cache struct {
	dir string
}

// OpenCache returns the default user-level cache under
// os.UserCacheDir()/luxvis-vislint, creating it if needed.
func OpenCache() (*Cache, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return nil, fmt.Errorf("lint: no user cache dir: %w", err)
	}
	return NewCacheAt(filepath.Join(base, "luxvis-vislint"))
}

// NewCacheAt opens (creating if needed) a cache rooted at dir. Tests
// use this with t.TempDir.
func NewCacheAt(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// cacheKey derives the store key for one package's results. It folds in
// everything the outcome depends on: the entry schema version, the Go
// toolchain (analyzers lean on go/types behavior), the module root
// (finding positions embed absolute paths), the package identity, the
// package's combined content hash (own sources + transitive
// module-local deps), and the analyzer set.
func cacheKey(root, path, combined string, analyzers []Analyzer) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n", cacheVersion, runtime.Version(), root, path, combined)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s\n", a.Name())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the on-disk format.
type cacheEntry struct {
	Findings []Finding `json:"findings"`
}

// Get loads the findings stored under key. Any failure — absent entry,
// unreadable file, corrupt JSON — is a miss.
func (c *Cache) Get(key string) ([]Finding, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return e.Findings, true
}

// Put stores findings under key, atomically: the entry is written to a
// temp file in the same directory and renamed into place, so a
// concurrent reader sees either the old state or the complete new
// entry, never a torn write.
func (c *Cache) Put(key string, findings []Finding) error {
	data, err := json.Marshal(cacheEntry{Findings: findings})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Clear removes every entry, leaving the cache directory usable.
func (c *Cache) Clear() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(c.dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
