package lint_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const sampleDiff = `diff --git a/internal/sim/sim.go b/internal/sim/sim.go
index 1111111..2222222 100644
--- a/internal/sim/sim.go
+++ b/internal/sim/sim.go
@@ -10,0 +11,3 @@ func Run() {
+	a := 1
+	b := 2
+	_ = a + b
@@ -40 +43 @@ func helper() {
-	old := 0
+	new := 0
@@ -50,2 +52,0 @@ func gone() {
-	x := 1
-	y := 2
diff --git a/internal/old/dead.go b/internal/old/dead.go
deleted file mode 100644
index 3333333..0000000
--- a/internal/old/dead.go
+++ /dev/null
@@ -1,5 +0,0 @@
-package old
diff --git a/internal/geom/geom.go b/internal/geom/geom.go
index 4444444..5555555 100644
--- a/internal/geom/geom.go
+++ b/internal/geom/geom.go
@@ -7 +7,2 @@ import (
+	"math"
+	"sort"
`

func TestParseUnifiedDiff(t *testing.T) {
	changed, err := lint.ParseUnifiedDiff(strings.NewReader(sampleDiff))
	if err != nil {
		t.Fatalf("ParseUnifiedDiff: %v", err)
	}
	if _, ok := changed["internal/old/dead.go"]; ok {
		t.Error("deleted file present in changed set; a finding cannot sit on a removed file")
	}
	cases := []struct {
		file string
		line int
		want bool
	}{
		{"internal/sim/sim.go", 10, false},
		{"internal/sim/sim.go", 11, true},
		{"internal/sim/sim.go", 13, true},
		{"internal/sim/sim.go", 14, false},
		{"internal/sim/sim.go", 43, true}, // count omitted means 1
		{"internal/sim/sim.go", 44, false},
		{"internal/sim/sim.go", 52, false}, // pure deletion: no post-image lines
		{"internal/geom/geom.go", 7, true},
		{"internal/geom/geom.go", 8, true},
		{"internal/geom/geom.go", 9, false},
		{"internal/lint/lint.go", 1, false}, // untouched file
	}
	for _, c := range cases {
		s := changed[c.file]
		got := s != nil && s.Contains(c.line)
		if got != c.want {
			t.Errorf("%s:%d changed = %v; want %v", c.file, c.line, got, c.want)
		}
	}
}

func TestParseUnifiedDiffMalformed(t *testing.T) {
	bad := "+++ b/x.go\n@@ -1,2 +abc,def @@\n"
	if _, err := lint.ParseUnifiedDiff(strings.NewReader(bad)); err == nil {
		t.Fatal("malformed hunk header parsed without error")
	}
}

func TestFilterChanged(t *testing.T) {
	root := filepath.FromSlash("/repo")
	mk := func(rel string, line int) lint.Finding {
		return lint.Finding{
			Analyzer: "goleak",
			Pos:      token.Position{Filename: filepath.Join(root, filepath.FromSlash(rel)), Line: line},
		}
	}
	changed := map[string]*lint.LineSet{}
	var err error
	changed, err = lint.ParseUnifiedDiff(strings.NewReader(sampleDiff))
	if err != nil {
		t.Fatal(err)
	}
	in := []lint.Finding{
		mk("internal/sim/sim.go", 12),   // on a changed line: kept
		mk("internal/sim/sim.go", 99),   // same file, untouched line: dropped
		mk("internal/geom/geom.go", 7),  // kept
		mk("internal/lint/lint.go", 1),  // untouched file: dropped
		{Analyzer: "goleak", Pos: token.Position{Filename: filepath.FromSlash("/elsewhere/x.go"), Line: 1}}, // outside root: dropped
	}
	got := lint.FilterChanged(in, root, changed)
	if len(got) != 2 {
		t.Fatalf("FilterChanged kept %d findings; want 2:\n%s", len(got), render(got))
	}
	if got[0].Pos.Line != 12 || got[1].Pos.Line != 7 {
		t.Errorf("FilterChanged kept lines %d, %d; want 12, 7", got[0].Pos.Line, got[1].Pos.Line)
	}
}
