package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

const mutexFixture = `package fixture

import "sync"

type world struct {
	mu  sync.Mutex
	pos []int
	n   int
}

func bad(w *world) int {
	return w.n // want
}

func badTwice(w *world) int {
	w.pos[0] = 1 // want
	return w.pos[1] + w.n // want
}

func good(w *world) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

func goodRead(w *world) []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.pos...)
}

func snapshotLocked(w *world) int { return w.n }

type pre struct {
	free int
	mu   sync.Mutex
	val  int
}

func readFree(p *pre) int { return p.free }

func badVal(p *pre) int { return p.val } // want

type commented struct {
	data int // guarded by mu
	mu   sync.Mutex
}

func badData(c *commented) int { return c.data } // want

type embedded struct {
	sync.Mutex
	v int
}

func badEmb(e *embedded) int { return e.v } // want

func goodEmb(e *embedded) int {
	e.Lock()
	defer e.Unlock()
	return e.v
}

type plain struct {
	a, b int
}

func freeForAll(p *plain) int { return p.a + p.b }
`

func TestMutexDiscipline(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/fixture", mutexFixture, lint.MutexDiscipline{})
	assertWants(t, mutexFixture, findings)
}

// TestMutexDisciplineNoSync: packages that do not import sync have no
// mutexes to discipline.
func TestMutexDisciplineNoSync(t *testing.T) {
	src := `package fixture

type world struct {
	n int
}

func f(w *world) int { return w.n }
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.MutexDiscipline{})
	if len(findings) != 0 {
		t.Fatalf("sync-free package produced findings: %v", findings)
	}
}
