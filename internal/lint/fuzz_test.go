package lint

import (
	"strings"
	"testing"
)

// FuzzDirectiveParse holds parseAllowDirective to its contract over
// arbitrary comment text: total (no panics), and exactly one of the
// three outcomes — not-a-directive, well-formed, malformed — with
// internally consistent results. The checked-in corpus under
// testdata/fuzz/FuzzDirectiveParse seeds the interesting shapes.
func FuzzDirectiveParse(f *testing.F) {
	seeds := []string{
		"//lint:allow floateq because the comparison is a bit-exact sentinel",
		"//lint:allow all blanket exception with a reason",
		"//lint:allow floateq",
		"//lint:allow",
		"//lint:allow nosuch because reasons",
		"//lint:allowfloateq smushed",
		"//lint:allow\tfloateq\ttabs as separators",
		"//lint:allow floateq причина по-русски",
		"// just a comment",
		"//lint:allow  floateq   extra   spaces",
		"//lint:allow floateq " + strings.Repeat("x", 4096),
		"//lint:allow \x00 nul",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	known := map[string]bool{"all": true, "floateq": true, "locksafe": true}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, problem := parseAllowDirective(text, known)
		if analyzer != "" && problem != "" {
			t.Fatalf("both outcomes at once for %q: analyzer=%q problem=%q", text, analyzer, problem)
		}
		if analyzer != "" && !known[analyzer] {
			t.Fatalf("parse accepted unknown analyzer %q from %q", analyzer, text)
		}
		if !strings.HasPrefix(text, allowPrefix) && (analyzer != "" || problem != "") {
			t.Fatalf("non-directive %q produced analyzer=%q problem=%q", text, analyzer, problem)
		}
		if analyzer != "" {
			// A well-formed directive must carry a reason beyond the
			// analyzer name.
			rest := strings.Fields(strings.TrimPrefix(text, allowPrefix))
			if len(rest) < 2 {
				t.Fatalf("accepted directive without a reason: %q", text)
			}
		}
	})
}
