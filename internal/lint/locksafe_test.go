package lint_test

import (
	"strings"
	"testing"

	"luxvis/internal/lint"
)

const locksafeFixture = `package fixture

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func sendUnderLock(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want
	b.mu.Unlock()
}

func sendAfterUnlock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

func receiveUnderDeferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-b.ch // want
}

func selectWithDefault(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- 1:
	default:
	}
}

func selectBlocking(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want
	case b.ch <- 1:
	}
}

func sleepUnderLock(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want
	b.mu.Unlock()
}

func waitUnderLock(b *box, wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want
	b.mu.Unlock()
}

func rangeUnderRLock(b *box, mu *sync.RWMutex) {
	mu.RLock()
	defer mu.RUnlock()
	for range b.ch { // want
	}
}

func drainLocked(b *box) {
	<-b.ch // want
}

func goBodyRunsOutsideCallerLock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 1
	}()
}

func goBodyHasItsOwnDiscipline(b *box) {
	go func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.ch <- 2 // want
	}()
}

func storedClosureIsNotExecutedHere(b *box) func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() { b.ch <- 3 }
	return f
}

func helper(b *box) { b.ch <- 1 }

func callUnderLock(b *box) {
	b.mu.Lock()
	helper(b) // want
	b.mu.Unlock()
}

func callOutsideLock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	helper(b)
}

func middle(b *box) { helper(b) }

func transitiveCallUnderLock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	middle(b) // want
}

func suppressed(b *box) {
	b.mu.Lock()
	//lint:allow locksafe fixture exception with a reason
	b.ch <- 1
	b.mu.Unlock()
}
`

func TestLockSafe(t *testing.T) {
	findings := runFixture(t, "luxvis/internal/fixture", locksafeFixture, lint.LockSafe{})
	assertWants(t, locksafeFixture, findingsOf(findings, "locksafe"))
	// The directive in suppressed() must be consumed, not reported stale.
	if bad := findingsOf(findings, "directive"); len(bad) != 0 {
		t.Errorf("directive findings = %v; want none", bad)
	}
	// The transitive finding must carry its witness chain.
	chained := false
	for _, f := range findingsOf(findings, "locksafe") {
		if strings.Contains(f.Message, "middle") && strings.Contains(f.Message, "helper") {
			chained = true
		}
	}
	if !chained {
		t.Errorf("no finding shows the middle → helper call chain: %v", findings)
	}
}

const locksafeObserverFixture = `package fixture

import (
	"sync"

	"luxvis/internal/sim"
)

type world struct {
	mu  sync.Mutex
	obs sim.Observer
}

func notifyUnderLock(w *world) {
	w.mu.Lock()
	w.obs.RunStart(sim.RunInfo{}) // want
	w.mu.Unlock()
}

func notifyAfterUnlock(w *world) {
	w.mu.Lock()
	w.mu.Unlock()
	w.obs.RunStart(sim.RunInfo{})
}

func fire(w *world) {
	w.obs.EpochEnd(sim.EpochSample{})
}

func indirectNotifyUnderLock(w *world) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fire(w) // want
}
`

// TestLockSafeObserver proves the analyzer enforces the rt contract:
// sim.Observer callbacks — direct or through a call chain — are
// forbidden while a mutex is held.
func TestLockSafeObserver(t *testing.T) {
	sim := modulePackage(t, "internal/sim")
	findings := runFixture(t, "luxvis/internal/fixture", locksafeObserverFixture, lint.LockSafe{}, sim)
	assertWants(t, locksafeObserverFixture, findings)
	named := false
	for _, f := range findings {
		if strings.Contains(f.Message, "sim.Observer.EpochEnd") {
			named = true
		}
	}
	if !named {
		t.Errorf("no finding names the reached observer callback: %v", findings)
	}
}
