package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// TestLockOrderIntra: two functions in one package taking the same two
// mutex fields in opposite orders. One finding per cycle per package,
// at the earliest site that completes it.
func TestLockOrderIntra(t *testing.T) {
	src := `package stream

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}

// nested but consistent: a before b everywhere else, no new cycle.
func (p *pair) abAgain() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`
	specs := []pkgSpec{{"luxvis/internal/stream", "stream_lockorder_fix.go", src}}
	runModuleFixture(t, specs, lint.LockOrder{}, "stream_lockorder_fix.go", src)
}

// TestLockOrderAllow: the same inversion with the a→b edge annotated.
// The allow removes that edge from the graph, so the b→a site no
// longer completes a cycle; the allowed site's own (suppressed)
// finding marks the directive used, so no stale-directive error
// surfaces either. Zero visible findings is the assertion.
func TestLockOrderAllow(t *testing.T) {
	src := `package stream

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	//lint:allow lockorder fixture: instances are ordered by construction
	p.b.Lock()
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	p.a.Unlock()
}
`
	specs := []pkgSpec{{"luxvis/internal/stream", "stream_lockallow_fix.go", src}}
	runModuleFixture(t, specs, lint.LockOrder{}, "stream_lockallow_fix.go", src)
}

// TestLockOrderCrossPackage: serve holds MuA and calls into rt, which
// locks MuB; rt elsewhere locks MuB then MuA. Neither package's edge
// set is cyclic alone — the deadlock only exists in the module graph,
// and it is reported in serve (the package whose edge closes the
// cycle, since rt cannot see its dependents). The intra run is silent
// because the rt.GrabB call is opaque without rt's summary.
func TestLockOrderCrossPackage(t *testing.T) {
	rtSrc := `package rt

import "sync"

type State struct {
	MuA sync.Mutex
	MuB sync.Mutex
}

// GrabB acquires MuB alone: no edge in rt.
func GrabB(s *State) {
	s.MuB.Lock()
	defer s.MuB.Unlock()
}

// OrderBA contributes the B→A edge.
func OrderBA(s *State) {
	s.MuB.Lock()
	defer s.MuB.Unlock()
	s.MuA.Lock()
	s.MuA.Unlock()
}
`
	serveSrc := `package serve

import "luxvis/internal/rt"

// orderAB holds MuA across the call that acquires MuB: the A→B edge,
// via rt.GrabB, completing the cycle with rt's B→A.
func orderAB(s *rt.State) {
	s.MuA.Lock()
	defer s.MuA.Unlock()
	rt.GrabB(s) // want
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_lockorder_fix.go", rtSrc},
		{"luxvis/internal/serve", "serve_lockorder_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.LockOrder{}, "serve_lockorder_fix.go", serveSrc)
	assertIntraSilent(t, specs, lint.LockOrder{}, "serve_lockorder_fix.go")
}

// TestLockOrderPackageVars: package-level mutex vars are lock keys too,
// and a three-node cycle is found, not just the two-node special case.
func TestLockOrderPackageVars(t *testing.T) {
	src := `package rt

import "sync"

var (
	muX sync.Mutex
	muY sync.Mutex
	muZ sync.Mutex
)

func xy() {
	muX.Lock()
	defer muX.Unlock()
	muY.Lock() // want
	muY.Unlock()
}

func yz() {
	muY.Lock()
	defer muY.Unlock()
	muZ.Lock()
	muZ.Unlock()
}

func zx() {
	muZ.Lock()
	defer muZ.Unlock()
	muX.Lock()
	muX.Unlock()
}
`
	specs := []pkgSpec{{"luxvis/internal/rt", "rt_lockvars_fix.go", src}}
	runModuleFixture(t, specs, lint.LockOrder{}, "rt_lockvars_fix.go", src)
}
