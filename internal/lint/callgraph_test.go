package lint_test

import (
	"go/types"
	"testing"

	"luxvis/internal/lint"
)

const callgraphFixture = `package fixture

type T struct{ n int }

func a() { b(); c() }
func b() { c() }
func c() {}

func loop1() { loop2() }
func loop2() { loop1() }

func (t *T) m() { t.n++ }
func callsMethod(t *T) { t.m() }

var fn = func() {}

func dynamic() { fn() }

func stored() {
	f := func() { a() }
	_ = f
}

func goLaunch() { go a() }
`

func checkedFixture(t *testing.T, src string) *lint.Package {
	t.Helper()
	pkg, err := lint.CheckSource("luxvis/internal/fixture", "fixture.go", src, nil)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	return pkg
}

func fnByName(t *testing.T, g *lint.CallGraph, name string) *types.Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %q not in call graph", name)
	return nil
}

func calleeNames(g *lint.CallGraph, fn *types.Func) []string {
	var out []string
	for _, e := range g.Callees(fn) {
		out = append(out, e.Callee.Name())
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	pkg := checkedFixture(t, callgraphFixture)
	g := pkg.CallGraph()

	if got := len(g.Funcs()); got != 10 {
		t.Fatalf("Funcs() = %d functions; want 10", got)
	}
	if g != pkg.CallGraph() {
		t.Error("CallGraph() is not memoized")
	}

	cases := map[string][]string{
		"a":           {"b", "c"},
		"b":           {"c"},
		"c":           nil,
		"callsMethod": {"m"},
		"dynamic":     nil, // call through a function value: no static edge
		"stored":      nil, // call inside a stored literal: a different frame
		"goLaunch":    nil, // go launch runs outside the caller
	}
	for name, want := range cases {
		got := calleeNames(g, fnByName(t, g, name))
		if len(got) != len(want) {
			t.Errorf("Callees(%s) = %v; want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Callees(%s) = %v; want %v", name, got, want)
				break
			}
		}
	}
}

func TestCallGraphPropagate(t *testing.T) {
	pkg := checkedFixture(t, callgraphFixture)
	g := pkg.CallGraph()
	c := fnByName(t, g, "c")

	direct := map[*types.Func]lint.Reach{
		c: {Desc: "does the forbidden thing", Pos: g.Decl(c).Pos()},
	}
	reach := g.Propagate(direct)

	if r := reach[fnByName(t, g, "a")]; r == nil {
		t.Error("a does not reach c")
	} else if chain := r.Chain(); chain != "b → c" {
		// a's first edge is b, and b reaches c; the witness follows the
		// first chain in declaration/call order.
		t.Errorf("a's witness chain = %q; want %q", chain, "b → c")
	}
	if r := reach[fnByName(t, g, "b")]; r == nil || r.Chain() != "c" {
		t.Errorf("b's reach = %+v; want chain c", r)
	}
	if r := reach[c]; r == nil || r.Chain() != "" {
		t.Errorf("c's reach = %+v; want direct (empty chain)", r)
	}
	for _, name := range []string{"loop1", "loop2", "dynamic", "stored", "goLaunch"} {
		if r := reach[fnByName(t, g, name)]; r != nil {
			t.Errorf("%s unexpectedly reaches c: %+v", name, r)
		}
	}
}
