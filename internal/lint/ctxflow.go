package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation through the serve → sim → rt
// layering: inside a function that receives a context.Context, every
// module-local call that can block (per the cross-package summaries)
// must be cancellable through that ctx. Two ways to break the chain are
// flagged:
//
//   - the callee takes a ctx parameter but the caller passes
//     context.Background() or context.TODO() (directly, or laundered
//     through a local variable or a context.With* wrapper) while the
//     real ctx is in scope — cancellation is silently dropped at that
//     call site;
//   - the callee lives in another package, blocks, and has no ctx
//     parameter at all — cancellation cannot cross the call, which is
//     how a served request ends up pinning a simulation run nobody can
//     stop.
//
// Whether a callee blocks is a whole-program fact: sim.Run blocks
// because, two packages down, rt waits on robot goroutines. The
// intra-package engine of PR 4 could not see that; the module graph's
// Blocks summaries (observer callbacks excluded — invoking a callback
// is a locksafe concern, not a cancellation one) are what make the
// serve-layer call site answerable.
//
// Arguments the analyzer cannot classify — a ctx stored in a struct
// field, one produced by an unsummarized helper — are skipped, not
// flagged: the gate only reports drops it can prove. Intra-package
// blocking callees without a ctx parameter are also left alone; within
// one package the caller's own select/WaitGroup structure is the
// cancellation story, and ctxcancel audits the goroutine side of it.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "a received context.Context must reach every blocking module call; no Background/TODO laundering, no ctx-less blocking exports"
}

// ctxFlowScope lists the packages where the serve→sim→rt cancellation
// chain must hold.
var ctxFlowScope = []string{
	"internal/serve", "internal/sim", "internal/rt", "internal/exp",
}

// Check implements Analyzer with intra-package knowledge only: blocking
// facts stop at the package boundary, so only locally-visible blocking
// callees are enforced.
func (a CtxFlow) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a CtxFlow) CheckModule(p *Package, m *Module) []Finding {
	inScope := false
	for _, s := range ctxFlowScope {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var out []Finding
	g := p.CallGraph()
	for _, fn := range g.Funcs() {
		s := m.Summary(fn)
		if s == nil || s.CtxParam < 0 {
			continue // no ctx received: nothing to thread
		}
		out = append(out, a.checkFunc(p, m, fn.Name(), g.Decl(fn))...)
	}
	sortFindings(out)
	return out
}

// checkFunc audits one ctx-receiving declaration. The taint passes run
// over the whole body — a closure capturing ctx still holds the real
// ctx — and so does the call walk: a blocking call inside a launched
// goroutine needs cancellation at least as much as one on the spot.
func (a CtxFlow) checkFunc(p *Package, m *Module, name string, fd *ast.FuncDecl) []Finding {
	// ctx holds everything derived from the ctx parameter(s);
	// bg everything provably rooted in context.Background()/TODO().
	// Both flow through context.With* (except WithoutCancel, which
	// detaches cancellation and therefore never launders bg into ctx).
	seed := ctxParamObjects(p, fd)
	derive := func(call *ast.CallExpr, argTainted func(ast.Expr) bool) bool {
		if !isContextCall(p, call, func(n string) bool {
			return strings.HasPrefix(n, "With") && n != "WithoutCancel"
		}) {
			return false
		}
		for _, arg := range call.Args {
			if argTainted(arg) {
				return true
			}
		}
		return false
	}
	ctx := taintLocals(taintSpec{p: p, seed: seed, propagateCall: derive}, fd.Body)
	bg := taintLocals(taintSpec{
		p: p,
		sourceCall: func(call *ast.CallExpr) bool {
			return isContextCall(p, call, func(n string) bool {
				return n == "Background" || n == "TODO"
			})
		},
		propagateCall: derive,
	}, fd.Body)

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.StaticCallee(call)
		s := m.Summary(callee)
		if s == nil || s.Blocks == nil || callee == p.Info.Defs[fd.Name] {
			return true
		}
		blocks := s.Blocks.Desc
		if via := s.Blocks.Chain(); via != "" {
			blocks += " via " + via
		}
		switch {
		case s.CtxParam >= 0 && s.CtxParam < len(call.Args):
			arg := call.Args[s.CtxParam]
			if ctx.tainted(arg) {
				return true // the received ctx (or a child) flows in: chained
			}
			if bg.tainted(arg) {
				out = append(out, finding(p, a.Name(), arg.Pos(), Error,
					"%s has a ctx in scope but hands %s a fresh root context; %s %s, so cancelling the caller would never reach it — pass ctx (or a context derived from it)",
					name, crossName(p, callee), crossName(p, callee), blocks))
			}
			// Anything else (a struct-held ctx, an unsummarized helper's
			// result) is out of proof range: stay silent.
		case s.CtxParam < 0 && m.Owner(callee) != p:
			out = append(out, finding(p, a.Name(), call.Pos(), Error,
				"%s calls %s, which %s but accepts no context.Context; %s's ctx cannot cancel work behind a package boundary — thread a ctx parameter through %s",
				name, crossName(p, callee), blocks, name, crossName(p, callee)))
		}
		return true
	})
	return out
}

// ctxParamObjects collects the declared objects of fd's context.Context
// parameters as a taint seed.
func ctxParamObjects(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	seed := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return seed
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(p.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				seed[obj] = true
			}
		}
	}
	return seed
}

// isContextCall reports whether call invokes a package-level function of
// package context whose name satisfies match.
func isContextCall(p *Package, call *ast.CallExpr, match func(string) bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return pkgNameOf(p, sel.X) == "context" && match(sel.Sel.Name)
}
