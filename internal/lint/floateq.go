package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags ==, != and switch on floating-point operands anywhere
// outside internal/geom. Collision-freedom and the visibility predicate
// are decided by geometry; bitwise float comparison silently disagrees
// with the epsilon-banded predicates the algorithms are proved against,
// so every float comparison must go through internal/geom's Eps-based
// helpers (Point.Eq, Orient, StrictlyBetween, ...). internal/geom
// itself is exempt: it is where the epsilon discipline is implemented.
type FloatEq struct{}

// Name implements Analyzer.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (FloatEq) Doc() string {
	return "forbid ==/!=/switch on floats outside internal/geom's epsilon predicates"
}

// Check implements Analyzer.
func (a FloatEq) Check(p *Package) []Finding {
	if p.PathHasSuffix("internal/geom") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isFloat(p.TypeOf(n.X)) || isFloat(p.TypeOf(n.Y)) {
					out = append(out, finding(p, a.Name(), n.OpPos, Error,
						"floating-point %s comparison; use the epsilon predicates in internal/geom (geom.Eps) instead", n.Op))
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p.TypeOf(n.Tag)) {
					out = append(out, finding(p, a.Name(), n.Switch, Error,
						"switch on a floating-point value compares bitwise; use epsilon predicates from internal/geom"))
				}
			}
			return true
		})
	}
	return out
}
