package lint

import (
	"fmt"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition-order graph and
// reports every acquisition site that completes a cycle in it. Nodes
// are named lock keys — a package-level mutex ("pkg.var") or a mutex
// field keyed by its owning type ("pkg.Type.field"), never a single
// instance — and an edge A→B is recorded wherever a frame acquires B
// (directly, or via a module call whose summary acquires) while a
// region holding A is still open. Two packages that each look fine in
// isolation can still deadlock together; that is exactly the case the
// module summaries exist for, so the graph is assembled from this
// package's edges plus every dependency's.
//
// A finding names both halves of the would-be deadlock: the forward
// witness (this site, with its cross-package call chain) and the
// reverse path already in the graph, rendered edge by edge with each
// edge's owning frame. `//lint:allow lockorder <reason>` at an
// acquisition site removes that edge from the graph — it stops every
// cycle through it, which is the right granularity for a documented
// ordering exception (e.g. "instances are tried in address order").
//
// The type-keyed approximation can report a self-consistent program
// that locks two *instances* of one type in a guaranteed order; that
// is what the allow directive is for. It cannot see locks acquired
// through dynamic calls, so absence of findings is evidence, not proof.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "the module-wide lock-acquisition-order graph must be acyclic; a cycle is a latent deadlock reported with both witness chains"
}

// Check implements Analyzer with intra-package knowledge only.
func (a LockOrder) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// lockEdgeGroup aggregates every site that contributes the same
// from→to edge. The edge is live (part of the traversal graph) unless
// every contributing site is allowed.
type lockEdgeGroup struct {
	from, to         string
	fromDisp, toDisp string
	sites            []lockEdge
	live             bool
}

// CheckModule implements ModuleAnalyzer.
func (a LockOrder) CheckModule(p *Package, m *Module) []Finding {
	own := m.lockEdges[p]
	if len(own) == 0 {
		return nil
	}
	all := append([]lockEdge(nil), own...)
	for _, dep := range m.depClosure(p) {
		all = append(all, m.lockEdges[dep]...)
	}

	// Group sites into edges, preserving first-appearance order so the
	// BFS below is deterministic without depending on map iteration.
	groups := make(map[[2]string]*lockEdgeGroup)
	var order [][2]string
	for _, e := range all {
		k := [2]string{e.from, e.to}
		g := groups[k]
		if g == nil {
			g = &lockEdgeGroup{from: e.from, to: e.to, fromDisp: e.fromDisp, toDisp: e.toDisp}
			groups[k] = g
			order = append(order, k)
		}
		g.sites = append(g.sites, e)
		if !e.allowed {
			g.live = true
		}
	}

	// Adjacency over live edges only: an allowed edge is out of the
	// graph entirely, so it stops every cycle routed through it.
	adj := make(map[string][][2]string)
	for _, k := range order {
		if groups[k].live {
			adj[groups[k].from] = append(adj[groups[k].from], k)
		}
	}

	var out []Finding
	seen := make(map[string]bool) // cycle node-set → already reported in this package
	for _, site := range own {
		// This site asserts from→to. A cycle exists iff to can already
		// reach from through the live graph (excluding this very edge
		// when it is allowed — an allowed site still gets checked so a
		// completed cycle reaches the engine, which then suppresses the
		// finding and marks the directive used).
		path := a.reversePath(adj, groups, site.to, site.from)
		if path == nil {
			continue
		}
		nodeSet := map[string]bool{site.from: true, site.to: true}
		for _, k := range path {
			nodeSet[k[0]] = true
			nodeSet[k[1]] = true
		}
		nodes := make([]string, 0, len(nodeSet))
		for n := range nodeSet {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		key := strings.Join(nodes, "→")
		if seen[key] && !site.allowed {
			continue
		}
		seen[key] = true

		fromDisp, toDisp := site.fromDisp, site.toDisp
		via := ""
		if site.via != "" {
			via = fmt.Sprintf(" (via %s)", site.via)
		}
		out = append(out, finding(p, a.Name(), site.pos, Error,
			"%s.%s acquires %s while holding %s%s, but the module already orders %s before %s: %s; two goroutines taking the two orders deadlock — pick one order or annotate the proven exception with //lint:allow lockorder",
			site.pkgName, site.frame, toDisp, fromDisp, via,
			toDisp, fromDisp, a.renderPath(groups, site.to, path)))
	}
	sortFindings(out)
	return out
}

// reversePath finds a live path from start to target, returned as the
// ordered edge keys walked, or nil when target is unreachable. BFS with
// insertion-ordered adjacency keeps it deterministic and yields a
// shortest witness, which reads best in the finding.
func (LockOrder) reversePath(adj map[string][][2]string, groups map[[2]string]*lockEdgeGroup, start, target string) [][2]string {
	type hop struct {
		node string
		path [][2]string
	}
	visited := map[string]bool{start: true}
	queue := []hop{{node: start}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, k := range adj[h.node] {
			g := groups[k]
			path := append(append([][2]string(nil), h.path...), k)
			if g.to == target {
				return path
			}
			if !visited[g.to] {
				visited[g.to] = true
				queue = append(queue, hop{node: g.to, path: path})
			}
		}
	}
	return nil
}

// renderPath prints the reverse witness edge by edge, each with the
// frame that owns its earliest live site.
func (LockOrder) renderPath(groups map[[2]string]*lockEdgeGroup, start string, path [][2]string) string {
	var parts []string
	for _, k := range path {
		g := groups[k]
		rep := g.sites[0]
		for _, s := range g.sites {
			if !s.allowed {
				rep = s
				break
			}
		}
		via := ""
		if rep.via != "" {
			via = fmt.Sprintf(" via %s", rep.via)
		}
		parts = append(parts, fmt.Sprintf("%s → %s in %s.%s%s",
			g.fromDisp, g.toDisp, rep.pkgName, rep.frame, via))
	}
	return strings.Join(parts, "; ")
}
