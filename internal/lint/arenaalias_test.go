package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// TestArenaAliasStoresAndSends: an arena row may live in a local and be
// read; storing it in a struct, global or composite value, sending it,
// or writing through it are violations.
func TestArenaAliasStoresAndSends(t *testing.T) {
	src := `package rt

import "luxvis/internal/geom"

type holder struct{ rows []int32 }

var global []int32

func violations(s *geom.Snapshot, h *holder, ch chan []int32) {
	v := s.Row(0)
	h.rows = v // want
	global = v // want
	ch <- v    // want
	_ = holder{rows: v} // want
	v[0] = 1 // want
}

func reads(s *geom.Snapshot) int32 {
	v := s.Row(0)
	total := int32(0)
	for _, x := range v {
		total += x
	}
	copied := append([]int32(nil), v...)
	_ = copied
	w := v[1:] // aliases the arena, but stays local
	return total + w[0]
}

func viaSlice(s *geom.Snapshot, h *holder) {
	v := s.Row(0)
	h.rows = v[1:] // want
}
`
	specs := []pkgSpec{
		{"luxvis/internal/geom", "geom_aa_fix.go", geomFixture},
		{"luxvis/internal/rt", "rt_aa_fix.go", src},
	}
	runModuleFixture(t, specs, lint.ArenaAlias{}, "rt_aa_fix.go", src)
}

// TestArenaAliasStaleRead: a row read after the snapshot is touched
// again observes the rewritten arena; re-reading after the touch is the
// correct pattern and stays silent.
func TestArenaAliasStaleRead(t *testing.T) {
	src := `package rt

import "luxvis/internal/geom"

func stale(s *geom.Snapshot) int32 {
	v := s.Row(0)
	s.Update(1, geom.Point{})
	return v[0] // want
}

func staleViaCache(c *geom.RowCache, s *geom.Snapshot) int32 {
	v := c.VisibleSet(geom.Point{}, 0)
	w := c.VisibleSet(geom.Point{}, 1)
	return v[0] + w[0] // want
}

func fresh(s *geom.Snapshot) int32 {
	v := s.Row(0)
	x := v[0]
	s.Update(1, geom.Point{})
	w := s.Row(0)
	return x + w[0]
}
`
	specs := []pkgSpec{
		{"luxvis/internal/geom", "geom_aa_fix.go", geomFixture},
		{"luxvis/internal/rt", "rt_aa_stale_fix.go", src},
	}
	runModuleFixture(t, specs, lint.ArenaAlias{}, "rt_aa_stale_fix.go", src)
}

// TestArenaAliasCrossPackageWrapper: a wrapper in another package whose
// return value aliases the arena (per its summary) taints its callers'
// locals exactly like a direct Row call — and the intra-package engine,
// to which the wrapper is an opaque call, provably misses the store.
func TestArenaAliasCrossPackageWrapper(t *testing.T) {
	helperSrc := `package helper

import "luxvis/internal/geom"

func Top(s *geom.Snapshot) []int32 { return s.Row(0) }

func Copied(s *geom.Snapshot) []int32 {
	return append([]int32(nil), s.Row(0)...)
}
`
	src := `package rt

import (
	"luxvis/internal/geom"
	"luxvis/internal/helper"
)

type holder struct{ rows []int32 }

func storesWrapped(s *geom.Snapshot, h *holder) {
	v := helper.Top(s)
	h.rows = v // want
}

func storesCopy(s *geom.Snapshot, h *holder) {
	v := helper.Copied(s)
	h.rows = v
}
`
	specs := []pkgSpec{
		{"luxvis/internal/geom", "geom_aa_fix.go", geomFixture},
		{"luxvis/internal/helper", "helper_aa_fix.go", helperSrc},
		{"luxvis/internal/rt", "rt_aa_wrap_fix.go", src},
	}
	runModuleFixture(t, specs, lint.ArenaAlias{}, "rt_aa_wrap_fix.go", src)
	assertIntraSilent(t, specs, lint.ArenaAlias{}, "rt_aa_wrap_fix.go")
}
