package lint

// Concurrency-soundness facts shared by the goleak, lockorder and
// chanown analyzers: per-package channel ownership records (who sends,
// who closes, per frame), per-function goroutine-termination facts
// (leak risk and termination evidence), and the lock-acquisition-order
// edges over named mutex objects. Everything here is computed
// bottom-up per package in module dependency order, so a package's
// facts only ever depend on itself and its transitive dependencies —
// the same input set its content hash covers, which is what keeps the
// per-package result cache correct.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// concScope lists the concurrency-bearing packages where goleak and
// chanown report: the goroutine runtime, the engine, the streaming
// hub, the HTTP service and the experiment harness. Fact *collection*
// is module-wide (a channel closed in stream pardons a receive in
// serve); only reporting is scoped.
var concScope = []string{
	"internal/stream", "internal/serve", "internal/rt", "internal/sim", "internal/exp",
}

// inConcScope reports whether p is one of the concurrency-bearing
// packages.
func inConcScope(p *Package) bool {
	for _, s := range concScope {
		if p.PathHasSuffix(s) {
			return true
		}
	}
	return false
}

// frameLabel names one analysis frame for finding messages: the
// declaration's name, or "name (func literal)" for a goroutine body or
// stored closure inside it.
func frameLabel(fd *ast.FuncDecl, i int) string {
	if i == 0 {
		return fd.Name.Name
	}
	return fd.Name.Name + " (func literal)"
}

// ---------------------------------------------------------------------
// Channel ownership facts (chanown, and goleak's closed-channel
// evidence).

// chanSite is one send or close of a named channel object.
type chanSite struct {
	frame string // frame label, e.g. "worker" or "Close (func literal)"
	pkg   string // short package name, for cross-package messages
	expr  string // the channel expression as written at the site
	pos   token.Pos
}

// chanFacts is one package's syntactic channel-discipline record,
// keyed by the channel's *types.Var identity (fields and package-level
// variables resolve across packages through the shared universe).
type chanFacts struct {
	order  []types.Object // first-appearance order, for deterministic output
	closes map[types.Object][]chanSite
	sends  map[types.Object][]chanSite
}

// chanObjOf resolves a channel expression to a stable object identity
// (a variable or field), or nil for dynamic expressions (map entries,
// function results).
func chanObjOf(p *Package, e ast.Expr) (types.Object, string) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, e.Name
		}
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v, exprString(e)
			}
			return nil, ""
		}
		if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
			return v, exprString(e)
		}
	}
	return nil, ""
}

// isCloseCall reports whether call is the builtin close.
func isCloseCall(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, builtin := p.Info.Uses[id].(*types.Builtin)
	return builtin
}

// collectChanFacts records every send and close of a resolvable
// channel object in p, attributed to the frame (declaration or stored
// literal) that performs it.
func collectChanFacts(p *Package) *chanFacts {
	f := &chanFacts{
		closes: make(map[types.Object][]chanSite),
		sends:  make(map[types.Object][]chanSite),
	}
	seen := make(map[types.Object]bool)
	touch := func(obj types.Object) {
		if !seen[obj] {
			seen[obj] = true
			f.order = append(f.order, obj)
		}
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for i, frame := range framesOf(fd) {
				label := frameLabel(fd, i)
				inspectFrame(frame, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SendStmt:
						if obj, name := chanObjOf(p, n.Chan); obj != nil {
							touch(obj)
							f.sends[obj] = append(f.sends[obj], chanSite{
								frame: label, pkg: p.Pkg.Name(), expr: name, pos: n.Arrow,
							})
						}
					case *ast.CallExpr:
						if isCloseCall(p, n) && len(n.Args) == 1 {
							if obj, name := chanObjOf(p, n.Args[0]); obj != nil {
								touch(obj)
								f.closes[obj] = append(f.closes[obj], chanSite{
									frame: label, pkg: p.Pkg.Name(), expr: name, pos: n.Pos(),
								})
							}
						}
					}
					return true
				})
			}
		}
	}
	return f
}

// depClosure returns p's transitive module-local dependencies in
// dependency order (dependencies before dependents), excluding p
// itself. Import iteration is path-sorted, so the result is
// deterministic.
func (m *Module) depClosure(p *Package) []*Package {
	var out []*Package
	seen := map[*Package]bool{p: true}
	var visit func(q *Package)
	visit = func(q *Package) {
		imps := q.Pkg.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, path := range paths {
			dep, ok := m.byPath[path]
			if !ok || seen[dep] {
				continue
			}
			seen[dep] = true
			visit(dep)
			out = append(out, dep)
		}
	}
	visit(p)
	return out
}

// ---------------------------------------------------------------------
// Goroutine termination facts (goleak).

// collectLeakOps walks one frame and returns its earliest leak risk —
// an operation that can block forever or loop without bound — and its
// earliest termination evidence: a ctx.Done()/module-closed-channel
// receive, a ctx.Err() poll, or a sync.WaitGroup join. A frame whose
// risk has no evidence anywhere on its exit paths is what goleak
// reports. closed is the module's closed-channel-object scope for the
// frame's package (own closes plus every transitive dependency's).
func collectLeakOps(p *Package, closed map[types.Object][]chanSite, frame ast.Node) (risk, evidence *lockedOp) {
	noteRisk := func(pos token.Pos, desc string) {
		if risk == nil || pos < risk.pos {
			risk = &lockedOp{pos: pos, desc: desc}
		}
	}
	noteEvidence := func(pos token.Pos, desc string) {
		if evidence == nil || pos < evidence.pos {
			evidence = &lockedOp{pos: pos, desc: desc}
		}
	}
	// classifyRecv grades one channel receive. blocking distinguishes a
	// bare receive (blocks until satisfied) from a select case (the
	// select carries the blocking risk itself).
	classifyRecv := func(operand ast.Expr, pos token.Pos, blocking bool) {
		operand = ast.Unparen(operand)
		if call, ok := operand.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if fn := methodObjOf(p, sel); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "context" && fn.Name() == "Done" {
					noteEvidence(pos, "receives from ctx.Done()")
					return
				}
				if pkgNameOf(p, sel.X) == "time" && (sel.Sel.Name == "After" || sel.Sel.Name == "Tick") {
					return // fires on its own; bounded for a single receive
				}
			}
		}
		if sel, ok := operand.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
			if t := p.TypeOf(sel.X); t != nil {
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "time" {
					return // Timer/Ticker channel: fires on its own
				}
			}
		}
		if obj, name := chanObjOf(p, operand); obj != nil && len(closed[obj]) > 0 {
			noteEvidence(pos, "receives on "+name+", which this module closes")
			return
		}
		if blocking {
			noteRisk(pos, "receives on a channel with no close in scope")
		}
	}
	var scan func(root ast.Node)
	scan = func(root ast.Node) {
		inspectFrame(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					noteRisk(n.Select, "selects with no default case")
				}
				for _, c := range n.Body.List {
					cc := c.(*ast.CommClause)
					switch comm := cc.Comm.(type) {
					case *ast.ExprStmt:
						if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
							classifyRecv(ue.X, ue.OpPos, false)
						}
					case *ast.AssignStmt:
						if len(comm.Rhs) == 1 {
							if ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
								classifyRecv(ue.X, ue.OpPos, false)
							}
						}
					}
					for _, stmt := range cc.Body {
						scan(stmt)
					}
				}
				return false
			case *ast.SendStmt:
				noteRisk(n.Arrow, "sends on a channel")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					classifyRecv(n.X, n.OpPos, true)
				}
			case *ast.RangeStmt:
				if t := p.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if obj, name := chanObjOf(p, n.X); obj != nil && len(closed[obj]) > 0 {
							noteEvidence(n.Range, "ranges over "+name+", which this module closes")
						} else {
							noteRisk(n.Range, "ranges over a channel with no close in scope")
						}
					}
				}
			case *ast.ForStmt:
				if n.Cond == nil {
					noteRisk(n.For, "loops without a bound (for {})")
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					fn := methodObjOf(p, sel)
					if isSyncMethod(fn, "Wait") {
						switch recvTypeName(fn) {
						case "WaitGroup":
							noteEvidence(n.Pos(), "joins a sync.WaitGroup")
						case "Cond":
							noteRisk(n.Pos(), "waits on a sync.Cond")
						}
					}
					if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Err" {
						noteEvidence(n.Pos(), "polls ctx.Err()")
					}
				}
			}
			return true
		})
	}
	scan(frame)
	return risk, evidence
}

// recvTypeName returns the name of a method's receiver named type
// (through one pointer), or "".
func recvTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// ---------------------------------------------------------------------
// Lock-acquisition-order facts (lockorder).

// lockKeyOf derives a stable, type-level identity for the operand of a
// Lock/RLock/Unlock call: "pkgpath.Type.field" for a mutex field,
// "pkgpath.var" for a package-level mutex, and "" when the mutex
// cannot be named across frames (locals, map entries, dynamic
// expressions) — lock order over unnamed instances is not a class this
// analysis can adjudicate, so those acquisitions fail toward silence.
func lockKeyOf(p *Package, operand ast.Expr) (key, disp string) {
	operand = ast.Unparen(operand)
	switch e := operand.(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
		}
		return "", ""
	case *ast.SelectorExpr:
		if pkgNameOf(p, e.X) != "" {
			if v, ok := p.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
				return v.Pkg().Path() + "." + v.Name(), v.Pkg().Name() + "." + v.Name()
			}
			return "", ""
		}
		var v *types.Var
		if s, ok := p.Info.Selections[e]; ok {
			v, _ = s.Obj().(*types.Var)
		} else if u, ok := p.Info.Uses[e.Sel].(*types.Var); ok {
			v = u
		}
		if v == nil || v.Pkg() == nil || !v.IsField() {
			return "", ""
		}
		t := p.TypeOf(e.X)
		for {
			ptr, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", ""
		}
		owner := named.Obj()
		pkgName := v.Pkg().Name()
		if owner.Pkg() != nil {
			pkgName = owner.Pkg().Name()
		}
		return v.Pkg().Path() + "." + owner.Name() + "." + v.Name(),
			pkgName + "." + owner.Name() + "." + v.Name()
	}
	return "", ""
}

// lockAcq is one named-mutex acquisition site.
type lockAcq struct {
	key, disp string
	pos       token.Pos
}

// lockAcquisitions lists the named-mutex Lock/RLock sites of one
// frame, in source order. RLock counts: a read lock mixed into a cycle
// with writers still deadlocks.
func lockAcquisitions(p *Package, frame ast.Node) []lockAcq {
	var out []lockAcq
	inspectFrame(frame, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isSyncMethod(methodObjOf(p, sel), "Lock", "RLock") {
			return true
		}
		if key, disp := lockKeyOf(p, sel.X); key != "" {
			out = append(out, lockAcq{key: key, disp: disp, pos: call.Pos()})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// keyRegion is one held span of a named mutex within a frame.
type keyRegion struct {
	key, disp  string
	start, end token.Pos
}

type keyRegions []keyRegion

// covering returns every region strictly containing pos — all the
// named locks held there.
func (rs keyRegions) covering(pos token.Pos) []keyRegion {
	var out []keyRegion
	for _, r := range rs {
		if pos > r.start && pos < r.end {
			out = append(out, r)
		}
	}
	return out
}

// lockKeyRegions computes the held spans of named mutexes in one
// frame, with the same source-position semantics as lockedRegions
// (locksafe.go): lock to matching unlock in source order, end-of-frame
// for deferred or missing unlocks.
func lockKeyRegions(p *Package, frame ast.Node) keyRegions {
	type event struct {
		pos        token.Pos
		key, disp  string
		lock       bool
		deferred   bool
	}
	var events []event
	deferredCalls := make(map[*ast.CallExpr]bool)
	inspectFrame(frame, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[ds.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := methodObjOf(p, sel)
		var lock bool
		switch {
		case isSyncMethod(fn, "Lock", "RLock"):
			lock = true
		case isSyncMethod(fn, "Unlock", "RUnlock"):
		default:
			return true
		}
		key, disp := lockKeyOf(p, sel.X)
		if key == "" {
			return true
		}
		events = append(events, event{
			pos: call.Pos(), key: key, disp: disp, lock: lock, deferred: deferredCalls[call],
		})
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var rs keyRegions
	open := map[string]event{}
	for _, e := range events {
		switch {
		case e.lock:
			if _, held := open[e.key]; !held {
				open[e.key] = e
			}
		case e.deferred:
			// Deferred unlock: held to end-of-frame; leave the region open.
		default:
			if start, held := open[e.key]; held {
				rs = append(rs, keyRegion{key: e.key, disp: e.disp, start: start.pos, end: e.pos})
				delete(open, e.key)
			}
		}
	}
	for _, start := range open {
		rs = append(rs, keyRegion{key: start.key, disp: start.disp, start: start.pos, end: frame.End()})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].start != rs[j].start {
			return rs[i].start < rs[j].start
		}
		return rs[i].key < rs[j].key
	})
	return rs
}

// lockEdge is one "acquires `to` while holding `from`" site.
type lockEdge struct {
	from, fromDisp string
	to, toDisp     string
	pos            token.Pos // the establishing site (inner acquisition, or call)
	frame          string    // frame label
	pkgName        string    // short package name
	via            string    // call chain to the inner acquisition, "" when direct
	allowed        bool      // a //lint:allow lockorder covers pos
}

// collectLockEdges derives p's lock-order edges: a direct acquisition
// of M inside a held region of L, or a call — inside a held region of
// L — to a module function whose summary acquires M. Self-edges
// (re-acquiring the same named class, e.g. hand-over-hand over two
// instances) are skipped: instance order is not a type-level class.
func collectLockEdges(p *Package, m *Module, dirs *directiveSet) []lockEdge {
	g := p.CallGraph()
	var out []lockEdge
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		for i, frame := range framesOf(fd) {
			regions := lockKeyRegions(p, frame)
			if len(regions) == 0 {
				continue
			}
			label := frameLabel(fd, i)
			add := func(from keyRegion, to, toDisp string, pos token.Pos, via string) {
				if from.key == to {
					return
				}
				out = append(out, lockEdge{
					from: from.key, fromDisp: from.disp,
					to: to, toDisp: toDisp,
					pos: pos, frame: label, pkgName: p.Pkg.Name(), via: via,
					allowed: dirs != nil && dirs.covers(p, pos, "lockorder"),
				})
			}
			for _, acq := range lockAcquisitions(p, frame) {
				for _, r := range regions.covering(acq.pos) {
					add(r, acq.key, acq.disp, acq.pos, "")
				}
			}
			for _, e := range moduleCalls(p, m, frame) {
				covering := regions.covering(e.Pos)
				if len(covering) == 0 {
					continue
				}
				s := m.Summary(e.Callee)
				if s == nil || len(s.Acquires) == 0 {
					continue
				}
				for _, k := range sortedReachKeys(s.Acquires) {
					r := s.Acquires[k]
					via := crossName(p, e.Callee)
					if c := r.Chain(); c != "" {
						via += " → " + c
					}
					for _, reg := range covering {
						add(reg, k, r.Desc, e.Pos, via)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// sortedReachKeys returns mp's keys sorted, for deterministic
// iteration over an Acquires map.
func sortedReachKeys(mp map[string]*Reach) []string {
	out := make([]string, 0, len(mp))
	for k := range mp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
