package lint

// SetToolchainVersion overrides the toolchain-version component of the
// cache key, returning a restore function. The invalidation tests use
// it to simulate a Go upgrade without owning two toolchains.
func SetToolchainVersion(v string) (restore func()) {
	old := toolchainVersion
	toolchainVersion = func() string { return v }
	return func() { toolchainVersion = old }
}
