package lint

// SetToolchainVersion overrides the toolchain-version component of the
// cache key, returning a restore function. The invalidation tests use
// it to simulate a Go upgrade without owning two toolchains.
func SetToolchainVersion(v string) (restore func()) {
	old := toolchainVersion
	toolchainVersion = func() string { return v }
	return func() { toolchainVersion = old }
}

// SetCacheVersion overrides the summary-schema version component of the
// cache key, returning a restore function. The invalidation tests use
// it to prove a schema bump flushes warm entries.
func SetCacheVersion(v string) (restore func()) {
	old := cacheVersion
	cacheVersion = v
	return func() { cacheVersion = old }
}
