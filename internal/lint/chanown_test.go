package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// TestChanOwnIntra: the three chanown rules inside one package —
// send racing another frame's close, double close, and a send-capable
// return of a closed channel — plus the shapes that must stay silent.
func TestChanOwnIntra(t *testing.T) {
	src := `package stream

type box struct {
	work chan int      // sent by worker, closed by Close: rule 1
	dup  chan struct{} // closed by two frames: rule 2
}

func (b *box) worker() {
	b.work <- 1 // want
}

func (b *box) Close() {
	close(b.work)
}

func (b *box) closeA() {
	close(b.dup) // want
}

func (b *box) closeB() {
	close(b.dup) // want
}

// oneOwner sends and closes in the same frame: program order
// serializes them, no finding.
func oneOwner() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// makeDone returns a channel it closed with send capability intact:
// rule 3.
func makeDone() chan struct{} {
	done := make(chan struct{})
	close(done)
	return done // want
}

// makeDoneOK returns the receive-only view: no caller can send.
func makeDoneOK() <-chan struct{} {
	done := make(chan struct{})
	close(done)
	return done
}

// allowed: the same send/close split as worker/Close, with the
// happens-before proof annotated.
type guarded struct{ q chan int }

func (g *guarded) submit() {
	g.q <- 1 //lint:allow chanown fixture: send and close serialized by a mutex
}

func (g *guarded) stop() {
	close(g.q)
}
`
	specs := []pkgSpec{{"luxvis/internal/stream", "stream_chanown_fix.go", src}}
	runModuleFixture(t, specs, lint.ChanOwn{}, "stream_chanown_fix.go", src)
}

// TestChanOwnGoroutineFrames: a `go` statement is a frame boundary, so
// a goroutine sending on a channel its spawner closes is the race; an
// inline literal (called immediately) is the spawner's own frame and
// stays silent.
func TestChanOwnGoroutineFrames(t *testing.T) {
	src := `package stream

func fanOut() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want
	}()
	close(ch)
}

func inlineOK() {
	ch := make(chan int, 1)
	func() {
		ch <- 1
	}()
	close(ch)
}
`
	specs := []pkgSpec{{"luxvis/internal/stream", "stream_chanframes_fix.go", src}}
	runModuleFixture(t, specs, lint.ChanOwn{}, "stream_chanframes_fix.go", src)
}

// TestChanOwnCrossPackage: stream owns (and closes) the Hub's channel;
// serve sends on it. Only the module sees both halves — the
// intra-package run has no record of stream's close and must stay
// silent.
func TestChanOwnCrossPackage(t *testing.T) {
	streamSrc := `package stream

type Hub struct{ In chan int }

func (h *Hub) Release() {
	close(h.In)
}
`
	serveSrc := `package serve

import "luxvis/internal/stream"

func push(h *stream.Hub) {
	h.In <- 1 // want
}
`
	specs := []pkgSpec{
		{"luxvis/internal/stream", "stream_hub_fix.go", streamSrc},
		{"luxvis/internal/serve", "serve_push_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.ChanOwn{}, "serve_push_fix.go", serveSrc)
	assertIntraSilent(t, specs, lint.ChanOwn{}, "serve_push_fix.go")
}

// TestChanOwnOutOfScope: the same race outside the concurrency-bearing
// packages is not chanown's business.
func TestChanOwnOutOfScope(t *testing.T) {
	src := `package geom

type box struct{ ch chan int }

func (b *box) send()  { b.ch <- 1 }
func (b *box) close_() { close(b.ch) }
`
	specs := []pkgSpec{{"luxvis/internal/geom", "geom_chanown_fix.go", src}}
	runModuleFixture(t, specs, lint.ChanOwn{}, "geom_chanown_fix.go", src)
}
