package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// WireFormat protects the repo's two byte-level compatibility promises:
// the golden JSONL trace (internal/trace) and the JSON /metrics
// snapshot (internal/serve, internal/obs). Both are diffed byte for
// byte in tests, so the wire names of struct fields are API — and a
// struct marshaled without explicit json tags silently couples the wire
// format to Go field names, where an innocent rename becomes a
// golden-file break discovered two layers away.
//
// Two rules, scoped to the wire-producing packages (internal/serve,
// internal/trace, internal/obs):
//
//  1. A struct that has any json-tagged field has opted into the wire
//     format: every exported field must then carry an explicit json
//     name (`json:"-"` counts — it is an explicit decision).
//  2. A named struct type that flows into a JSON sink — json.Marshal,
//     json.MarshalIndent, (*json.Encoder).Encode, or any package-local
//     wrapper whose interface parameter reaches one of those,
//     discovered transitively over the call graph — must have json
//     tags if it has exported fields.
//
// Rule 2 is what catches the common shape `writeJSON(w, code, v)`: the
// wrapper takes `any`, so nothing at its own Encode call names the
// struct; the analyzer instead propagates sink-ness to the wrapper's
// parameter and checks the static types at every call site.
type WireFormat struct{}

// Name implements Analyzer.
func (WireFormat) Name() string { return "wireformat" }

// Doc implements Analyzer.
func (WireFormat) Doc() string {
	return "structs marshaled by serve/trace/obs must carry explicit stable json tags"
}

// wireScopes are the package-path suffixes that produce wire bytes.
var wireScopes = []string{"internal/serve", "internal/trace", "internal/obs"}

// Check implements Analyzer.
func (a WireFormat) Check(p *Package) []Finding {
	inScope := false
	for _, s := range wireScopes {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var out []Finding
	out = append(out, a.checkTagCompleteness(p)...)
	out = append(out, a.checkMarshalSinks(p)...)
	sortFindings(out)
	return out
}

// checkTagCompleteness enforces rule 1: in a struct with any json tag,
// every exported non-embedded field needs an explicit json name.
func (a WireFormat) checkTagCompleteness(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			opted := false
			for _, field := range st.Fields.List {
				if jsonTagName(field) != "" {
					opted = true
					break
				}
			}
			if !opted {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 || jsonTagName(field) != "" {
					continue // embedded, or explicitly named
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					out = append(out, finding(p, a.Name(), name.Pos(), Error,
						"field %s of wire struct %s has no explicit json tag; the wire name must not depend on the Go field name",
						name.Name, ts.Name.Name))
				}
			}
			return true
		})
	}
	return out
}

// jsonTagName extracts the explicit json name from a field tag: the
// first comma-separated element of the json key ("-" counts as
// explicit). Empty means no explicit name.
func jsonTagName(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
	return name
}

// checkMarshalSinks enforces rule 2 with a fixpoint over the call
// graph: sink parameters are discovered transitively, then every value
// reaching a sink is checked for untagged named-struct types.
func (a WireFormat) checkMarshalSinks(p *Package) []Finding {
	g := p.CallGraph()

	// paramIndex maps each declared function's parameter objects to
	// their positional index.
	paramIndex := make(map[*types.Func]map[types.Object]int)
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		idx := make(map[types.Object]int)
		i := 0
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						idx[obj] = i
					}
					i++
				}
			}
		}
		paramIndex[fn] = idx
	}

	// sinkParams[fn] is the set of fn's parameter indices whose values
	// reach a JSON sink. Fixpoint: start with the direct sinks, then
	// propagate through package-local wrapper calls until stable.
	sinkParams := make(map[*types.Func]map[int]bool)
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			fd := g.Decl(fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, argIdx := range sinkArgIndices(p, g, call, sinkParams) {
					if argIdx >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Uses[id]
					pi, isParam := paramIndex[fn][obj]
					if !isParam {
						continue
					}
					if _, ok := obj.Type().Underlying().(*types.Interface); !ok {
						continue // concrete param: its sink call names the type itself
					}
					if sinkParams[fn] == nil {
						sinkParams[fn] = make(map[int]bool)
					}
					if !sinkParams[fn][pi] {
						sinkParams[fn][pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Final pass: check the static type of every value reaching a sink.
	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, argIdx := range sinkArgIndices(p, g, call, sinkParams) {
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				named := namedStructOf(p.TypeOf(arg))
				if named == nil || named.Obj().Pkg() != p.Pkg {
					continue
				}
				st := named.Underlying().(*types.Struct)
				if structHasJSONTags(st) || !structHasExportedFields(st) {
					continue
				}
				out = append(out, finding(p, a.Name(), arg.Pos(), Error,
					"%s is marshaled as JSON here but declares no json tags; wire structs need explicit stable field names",
					named.Obj().Name()))
			}
			return true
		})
	}
	return out
}

// sinkArgIndices returns the indices of call's arguments that reach a
// JSON sink: arg 0 of json.Marshal/MarshalIndent/(*json.Encoder).Encode,
// or the sink parameters of a package-local wrapper.
func sinkArgIndices(p *Package, g *CallGraph, call *ast.CallExpr, sinkParams map[*types.Func]map[int]bool) []int {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkgNameOf(p, sel.X) == "encoding/json" &&
			(sel.Sel.Name == "Marshal" || sel.Sel.Name == "MarshalIndent") {
			return []int{0}
		}
		if fn := methodObjOf(p, sel); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "encoding/json" && fn.Name() == "Encode" {
			return []int{0}
		}
	}
	callee := p.StaticCallee(call)
	if callee == nil || g.Decl(callee) == nil {
		return nil
	}
	params := sinkParams[callee]
	if len(params) == 0 {
		return nil
	}
	out := make([]int, 0, len(params))
	for i := range params {
		out = append(out, i)
	}
	if len(out) > 1 {
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	return out
}

// namedStructOf unwraps pointers and returns t as a named struct type,
// or nil.
func namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// structHasJSONTags reports whether any field carries a json tag.
func structHasJSONTags(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if name, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ","); name != "" {
			return true
		}
	}
	return false
}

// structHasExportedFields reports whether the struct would actually
// marshal anything (at least one exported field).
func structHasExportedFields(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			return true
		}
	}
	return false
}
