package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// WireFormat protects the repo's two byte-level compatibility promises:
// the golden JSONL trace (internal/trace) and the JSON /metrics
// snapshot (internal/serve, internal/obs). Both are diffed byte for
// byte in tests, so the wire names of struct fields are API — and a
// struct marshaled without explicit json tags silently couples the wire
// format to Go field names, where an innocent rename becomes a
// golden-file break discovered two layers away.
//
// Two rules, scoped to the wire-producing packages (internal/serve,
// internal/trace, internal/obs):
//
//  1. A struct that has any json-tagged field has opted into the wire
//     format: every exported field must then carry an explicit json
//     name (`json:"-"` counts — it is an explicit decision).
//  2. A named struct type that flows into a JSON sink — json.Marshal,
//     json.MarshalIndent, (*json.Encoder).Encode, or any package-local
//     wrapper whose interface parameter reaches one of those,
//     discovered transitively over the call graph — must have json
//     tags if it has exported fields.
//
// Rule 2 is what catches the common shape `writeJSON(w, code, v)`: the
// wrapper takes `any`, so nothing at its own Encode call names the
// struct; the analyzer instead propagates sink-ness to the wrapper's
// parameter and checks the static types at every call site.
//
// With the cross-package module graph both halves of rule 2 span
// packages: the wrapper may live in another package (serve calling an
// obs helper whose parameter reaches Encode), and the struct may be
// declared anywhere in the module — a core type marshaled by serve is
// held to the same tag discipline as serve's own, because its wire
// bytes are just as load-bearing.
type WireFormat struct{}

// Name implements Analyzer.
func (WireFormat) Name() string { return "wireformat" }

// Doc implements Analyzer.
func (WireFormat) Doc() string {
	return "structs marshaled by serve/trace/obs must carry explicit stable json tags"
}

// wireScopes are the package-path suffixes that produce wire bytes.
var wireScopes = []string{"internal/serve", "internal/trace", "internal/obs"}

// Check implements Analyzer with intra-package knowledge only: wrapper
// discovery and struct scoping stop at the package boundary.
func (a WireFormat) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a WireFormat) CheckModule(p *Package, m *Module) []Finding {
	inScope := false
	for _, s := range wireScopes {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var out []Finding
	out = append(out, a.checkTagCompleteness(p)...)
	out = append(out, a.checkMarshalSinks(p, m)...)
	sortFindings(out)
	return out
}

// checkTagCompleteness enforces rule 1: in a struct with any json tag,
// every exported non-embedded field needs an explicit json name.
func (a WireFormat) checkTagCompleteness(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			opted := false
			for _, field := range st.Fields.List {
				if jsonTagName(field) != "" {
					opted = true
					break
				}
			}
			if !opted {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 || jsonTagName(field) != "" {
					continue // embedded, or explicitly named
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					out = append(out, finding(p, a.Name(), name.Pos(), Error,
						"field %s of wire struct %s has no explicit json tag; the wire name must not depend on the Go field name",
						name.Name, ts.Name.Name))
				}
			}
			return true
		})
	}
	return out
}

// jsonTagName extracts the explicit json name from a field tag: the
// first comma-separated element of the json key ("-" counts as
// explicit). Empty means no explicit name.
func jsonTagName(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return ""
	}
	name, _, _ := strings.Cut(reflect.StructTag(raw).Get("json"), ",")
	return name
}

// checkMarshalSinks enforces rule 2. The sink-parameter fixpoint itself
// lives in the module summary pass (Module.computeSinkParams), where it
// runs bottom-up in dependency order — a wrapper's sink parameter is
// visible here no matter which package declares the wrapper. This pass
// only checks the static type of every value reaching a summarized
// sink against the tag rules; any named struct declared in the module
// qualifies, not just this package's own.
func (a WireFormat) checkMarshalSinks(p *Package, m *Module) []Finding {
	g := p.CallGraph()
	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, argIdx := range m.sinkArgIndices(p, call) {
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				named := namedStructOf(p.TypeOf(arg))
				if named == nil || !m.IsModuleStruct(named) {
					continue
				}
				st := named.Underlying().(*types.Struct)
				if structHasJSONTags(st) || !structHasExportedFields(st) {
					continue
				}
				out = append(out, finding(p, a.Name(), arg.Pos(), Error,
					"%s is marshaled as JSON here but declares no json tags; wire structs need explicit stable field names",
					named.Obj().Name()))
			}
			return true
		})
	}
	return out
}

// namedStructOf unwraps pointers and returns t as a named struct type,
// or nil.
func namedStructOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// structHasJSONTags reports whether any field carries a json tag.
func structHasJSONTags(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if name, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ","); name != "" {
			return true
		}
	}
	return false
}

// structHasExportedFields reports whether the struct would actually
// marshal anything (at least one exported field).
func structHasExportedFields(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			return true
		}
	}
	return false
}
