package lint

import (
	"go/ast"
	"go/types"
)

// NonDet enforces seeded-replay determinism inside the algorithm
// packages (internal/core, internal/bdcp, internal/sched,
// internal/sim): a run is reproducible per (algorithm, start, Options)
// — that is what makes traces auditable by internal/verify and every
// experiment table regenerable. Three constructs silently break that
// contract and are flagged: wall-clock reads (time.Now and friends),
// package-level math/rand functions (they draw from the global,
// unseeded source instead of the run's threaded *rand.Rand), and
// ranging over a map (Go randomizes iteration order per run, so any
// order-sensitive consumer diverges between replays).
type NonDet struct{}

// Name implements Analyzer.
func (NonDet) Name() string { return "nondet" }

// Doc implements Analyzer.
func (NonDet) Doc() string {
	return "forbid wall clock, global math/rand and map iteration in the deterministic algorithm packages"
}

// nonDetScope lists the packages where seeded determinism is part of
// the contract.
var nonDetScope = []string{"internal/core", "internal/bdcp", "internal/sched", "internal/sim"}

// wallClockFuncs are the time package functions that read or depend on
// the wall clock or a timer.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// seededRandFuncs are the math/rand package-level functions that are
// pure constructors (safe: they wrap an explicit source) rather than
// draws from the shared global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Check implements Analyzer.
func (a NonDet) Check(p *Package) []Finding {
	inScope := false
	for _, s := range nonDetScope {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch pkgNameOf(p, sel.X) {
				case "time":
					if wallClockFuncs[sel.Sel.Name] {
						out = append(out, finding(p, a.Name(), n.Pos(), Error,
							"time.%s reads the wall clock; runs must be deterministic per seed for replay/audit — derive timing from event counts",
							sel.Sel.Name))
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[sel.Sel.Name] {
						out = append(out, finding(p, a.Name(), n.Pos(), Error,
							"rand.%s draws from the global source; thread the run's seeded *rand.Rand instead",
							sel.Sel.Name))
					}
				}
			case *ast.RangeStmt:
				if t := p.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, finding(p, a.Name(), n.Range, Error,
							"map iteration order is randomized per run; iterate sorted keys (or an index-keyed slice) so replays are deterministic"))
					}
				}
			}
			return true
		})
	}
	return out
}
