package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the engine's lightweight per-function dataflow pass: a
// forward may-taint fixpoint over one function body that tracks which
// local variables can hold a value of interest — an arena-backed
// visibility row (arenaalias), a context derived from the caller's ctx
// parameter (ctxflow) — through assignments, short declarations, tuple
// returns from calls, and slicing. It deliberately stops at what a
// build gate can decide instantly: no heap model, no inter-procedural
// flow of its own (call effects arrive as module-graph summaries via
// the taint's source predicate), and over-approximation only where it
// cannot produce noise.

// taintSpec configures one dataflow pass.
type taintSpec struct {
	p *Package
	// seed marks objects tainted from the start (e.g. a ctx parameter).
	seed map[types.Object]bool
	// sourceCall reports whether a call expression introduces taint by
	// itself (e.g. Snapshot.Row, or a module-local function whose
	// summary says it returns an arena row).
	sourceCall func(call *ast.CallExpr) bool
	// propagateCall reports whether a call forwards taint from its
	// arguments to its results (e.g. context.WithTimeout(ctx, d)).
	// argTainted evaluates an argument under the current taint state.
	propagateCall func(call *ast.CallExpr, argTainted func(ast.Expr) bool) bool
}

// taintState is the result of a pass: the set of tainted local objects
// plus, for reporting, the position where each first became tainted.
type taintState struct {
	spec taintSpec
	objs map[types.Object]token.Pos
}

// taintLocals runs the fixpoint over body and returns the final state.
// body is walked in full (closures included): an assignment inside a
// closure still binds the same *types.Var objects, and may-taint is the
// sound direction for every client.
func taintLocals(spec taintSpec, body ast.Node) *taintState {
	st := &taintState{spec: spec, objs: make(map[types.Object]token.Pos)}
	for obj := range spec.seed {
		if obj != nil {
			st.objs[obj] = obj.Pos()
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Taint positions record the statement's End so that a
				// defining call inside the statement (v := s.Row(i)) is
				// ordered before the definition it produces — clients that
				// scan for invalidating calls "after the definition" must
				// not count the definition itself.
				if st.assign(n.Lhs, n.Rhs, n.End()) {
					changed = true
				}
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, name := range n.Names {
					lhs[i] = name
				}
				if len(n.Values) > 0 && st.assign(lhs, n.Values, n.End()) {
					changed = true
				}
			}
			return true
		})
	}
	return st
}

// assign applies one (possibly tuple) assignment to the taint state and
// reports whether anything new became tainted.
func (st *taintState) assign(lhs, rhs []ast.Expr, pos token.Pos) bool {
	changed := false
	mark := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := st.spec.p.Info.Defs[id]
		if obj == nil {
			obj = st.spec.p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, ok := st.objs[obj]; !ok {
			st.objs[obj] = pos
			changed = true
		}
	}
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			if st.tainted(rhs[i]) {
				mark(lhs[i])
			}
		}
	case len(rhs) == 1:
		// Tuple assignment from one call: if the call's result carries
		// taint, every binding may (conservatively) hold it. Non-value
		// bindings (a cancel func, an ok bool) are marked too, which is
		// harmless: clients only query expressions of their own types.
		if st.tainted(rhs[0]) {
			for _, l := range lhs {
				mark(l)
			}
		}
	}
	return changed
}

// tainted reports whether e may evaluate to a tainted value under the
// current state. Slicing aliases the backing array, so row[1:] of a
// tainted row is tainted; indexing extracts an element and is not.
func (st *taintState) tainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.spec.p.Info.Uses[e]
		if obj == nil {
			obj = st.spec.p.Info.Defs[e]
		}
		_, ok := st.objs[obj]
		return obj != nil && ok
	case *ast.CallExpr:
		if st.spec.sourceCall != nil && st.spec.sourceCall(e) {
			return true
		}
		if st.spec.propagateCall != nil && st.spec.propagateCall(e, st.tainted) {
			return true
		}
		return false
	case *ast.SliceExpr:
		return st.tainted(e.X)
	}
	return false
}

// taintedPos returns the position where the object behind e first
// became tainted, or token.NoPos when e is not a tainted identifier.
func (st *taintState) taintedPos(e ast.Expr) token.Pos {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return token.NoPos
	}
	obj := st.spec.p.Info.Uses[id]
	if obj == nil {
		obj = st.spec.p.Info.Defs[id]
	}
	if obj == nil {
		return token.NoPos
	}
	if pos, ok := st.objs[obj]; ok {
		return pos
	}
	return token.NoPos
}
