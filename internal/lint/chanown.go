package lint

import (
	"go/ast"
	"go/types"
)

// ChanOwn enforces the single-owner channel discipline the runtime's
// packages rely on: exactly one frame owns a channel's lifecycle, and
// only the owner closes it. Three rules, each a panic class in Go:
//
//  1. A send in one frame on a channel that a *different* frame closes
//     is a send/close race — `send on closed channel` the moment the
//     scheduler orders them badly. Same-frame send+close is fine
//     (program order serializes them) and stays silent.
//  2. Two distinct frames closing the same channel is a latent double
//     close, reported at each of this package's close sites.
//  3. A function that closes a channel but returns it send-capable
//     (`chan T`, not `<-chan T`) hands callers a write capability that
//     outlives the owner's close — the compiler would have caught any
//     post-close send if the return type were receive-only.
//
// Frames, not functions: a func literal that runs inline (argument to
// sort.Slice etc.) belongs to its enclosing frame; a `go` statement or
// a stored closure starts a new one. Channel identity is the declared
// object (a struct field or package var shared module-wide, or a
// local), so the analysis is cross-package exactly where channels are:
// stream's hub fields are closed in stream but sent to from serve.
// When the race is real but externally serialized (a mutex-guarded
// closed flag), annotate the send with //lint:allow chanown and the
// proof.
type ChanOwn struct{}

// Name implements Analyzer.
func (ChanOwn) Name() string { return "chanown" }

// Doc implements Analyzer.
func (ChanOwn) Doc() string {
	return "channels need one owning frame: no send racing another frame's close, no double close, no send-capable escape past the closer"
}

// Check implements Analyzer with intra-package knowledge only.
func (a ChanOwn) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a ChanOwn) CheckModule(p *Package, m *Module) []Finding {
	if !inConcScope(p) {
		return nil
	}
	facts := m.chans[p]
	closed := m.closedScope[p]
	var out []Finding

	for _, obj := range facts.order {
		// Rule 1: this package's sends vs any other frame's close.
		for _, send := range facts.sends[obj] {
			for _, cl := range closed[obj] {
				if cl.pkg == send.pkg && cl.frame == send.frame {
					continue
				}
				out = append(out, finding(p, a.Name(), send.pos, Error,
					"%s sends on %s, which %s.%s closes; a send racing that close panics — give the channel one owning frame, or annotate the proven happens-before with //lint:allow chanown",
					send.frame, send.expr, cl.pkg, cl.frame))
				break
			}
		}
		// Rule 2: closes from more than one distinct frame.
		for _, cl := range facts.closes[obj] {
			for _, other := range closed[obj] {
				if other.pkg == cl.pkg && other.frame == cl.frame {
					continue
				}
				out = append(out, finding(p, a.Name(), cl.pos, Error,
					"%s closes %s, which %s.%s also closes; the second close panics — give the channel a single owning frame",
					cl.frame, cl.expr, other.pkg, other.frame))
				break
			}
		}
	}

	out = append(out, a.escapes(p, facts)...)
	sortFindings(out)
	return out
}

// escapes reports functions that close a locally declared channel yet
// return it with send capability intact (rule 3).
func (a ChanOwn) escapes(p *Package, facts *chanFacts) []Finding {
	g := p.CallGraph()
	var out []Finding
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 0 {
			continue
		}
		// Locals this function body closes (any frame inside it).
		closedLocals := make(map[types.Object]bool)
		for _, obj := range facts.order {
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				continue
			}
			if v.Pos() < fd.Pos() || v.Pos() >= fd.End() {
				continue
			}
			for _, cl := range facts.closes[obj] {
				if cl.pos >= fd.Pos() && cl.pos < fd.End() {
					closedLocals[obj] = true
					break
				}
			}
		}
		if len(closedLocals) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for i, res := range ret.Results {
				id, ok := ast.Unparen(res).(*ast.Ident)
				if !ok || !closedLocals[p.Info.Uses[id]] {
					continue
				}
				if i >= sig.Results().Len() {
					continue
				}
				ch, ok := sig.Results().At(i).Type().Underlying().(*types.Chan)
				if !ok || ch.Dir() != types.SendRecv {
					continue
				}
				out = append(out, finding(p, a.Name(), res.Pos(), Error,
					"%s returns %s send-capable but also closes it; any caller can then send on a closed channel — return a receive-only (<-chan) view",
					fd.Name.Name, id.Name))
			}
			return true
		})
	}
	return out
}
