package lint_test

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"luxvis/internal/lint"
)

// moduleRoot locates the repository's go.mod from the test's working
// directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	return root
}

var (
	moduleOnce sync.Once
	modulePkgs []*lint.Package
	moduleErr  error
)

// loadedModule loads and type-checks the whole repository once per test
// process; the self-lint test and fixtures that import real packages
// (internal/model) share the result.
func loadedModule(t *testing.T) []*lint.Package {
	t.Helper()
	moduleOnce.Do(func() {
		modulePkgs, moduleErr = lint.LoadModule(moduleRoot(t))
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return modulePkgs
}

// modulePackage returns the loaded package whose import path ends in
// suffix.
func modulePackage(t *testing.T, suffix string) *lint.Package {
	t.Helper()
	for _, p := range loadedModule(t) {
		if p.PathHasSuffix(suffix) {
			return p
		}
	}
	t.Fatalf("module package %q not found", suffix)
	return nil
}

// runFixture type-checks one inline source fixture under the given
// import path and runs a single analyzer over it, directive filtering
// included — the same pipeline cmd/vislint uses.
func runFixture(t *testing.T, path, src string, a lint.Analyzer, deps ...*lint.Package) []lint.Finding {
	t.Helper()
	pkg, err := lint.CheckSource(path, "fixture.go", src, deps)
	if err != nil {
		t.Fatalf("CheckSource(%s): %v", path, err)
	}
	return lint.Run([]*lint.Package{pkg}, []lint.Analyzer{a})
}

var wantCountRe = regexp.MustCompile(`// want(?: x(\d+))?`)

// assertWants checks findings against the fixture's "// want" line
// markers: every marked line must carry exactly the marked number of
// findings (default 1) and unmarked lines none.
func assertWants(t *testing.T, src string, findings []lint.Finding) {
	t.Helper()
	want := map[int]int{}
	for i, line := range strings.Split(src, "\n") {
		if m := wantCountRe.FindStringSubmatch(line); m != nil {
			n := 1
			if m[1] != "" {
				n, _ = strconv.Atoi(m[1])
			}
			want[i+1] = n
		}
	}
	got := map[int]int{}
	for _, f := range findings {
		got[f.Pos.Line]++
	}
	for line, n := range want {
		if got[line] != n {
			t.Errorf("line %d: want %d finding(s), got %d", line, n, got[line])
		}
	}
	for _, f := range findings {
		if want[f.Pos.Line] == 0 {
			t.Errorf("unexpected finding at line %d: %s", f.Pos.Line, f)
		}
	}
}

// findingsOf filters findings by analyzer name.
func findingsOf(fs []lint.Finding, analyzer string) []lint.Finding {
	var out []lint.Finding
	for _, f := range fs {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

func TestByName(t *testing.T) {
	all, err := lint.ByName()
	if err != nil || len(all) != 14 {
		t.Fatalf("ByName() = %d analyzers, err %v; want 14, nil", len(all), err)
	}
	sub, err := lint.ByName("floateq", "detsource")
	if err != nil || len(sub) != 2 {
		t.Fatalf("ByName(floateq, detsource) = %v, %v", sub, err)
	}
	// An unknown name errors and the message lists every known analyzer,
	// so a typo in -analyzers= is self-correcting at the terminal.
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded; want error")
	} else {
		for _, name := range lint.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("ByName(nosuch) err = %v; does not list known analyzer %q", err, name)
			}
		}
	}
	// The retired name gets a pointer to its successor, not a generic
	// unknown-analyzer error.
	if _, err := lint.ByName("nondet"); err == nil || !strings.Contains(err.Error(), "detsource") {
		t.Fatalf("ByName(nondet) err = %v; want supersession error naming detsource", err)
	}
}

func TestDirectives(t *testing.T) {
	src := `package fixture

func suppressed(a, b float64) bool {
	//lint:allow floateq fixture exception with a reason
	return a == b
}

func trailing(a, b float64) bool {
	return a == b //lint:allow floateq trailing form also suppresses
}

func missingReason(a, b float64) bool {
	//lint:allow floateq
	return a == b // want
}

func unknownAnalyzer(a, b float64) bool {
	//lint:allow nosuch because reasons
	return a == b // want
}
`
	findings := runFixture(t, "luxvis/internal/fixture", src, lint.FloatEq{})
	// The two malformed directives must be reported themselves...
	bad := findingsOf(findings, "directive")
	if len(bad) != 2 {
		t.Fatalf("directive findings = %d (%v); want 2", len(bad), bad)
	}
	// ...and must not suppress the floateq findings on their lines,
	// while the two well-formed directives do.
	assertWants(t, src, findingsOf(findings, "floateq"))
	for _, f := range findings {
		if f.Severity != lint.Error {
			t.Errorf("finding %v has severity %v; want error", f, f.Severity)
		}
	}
}
