package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// TestSelfLintClean is the integration gate: the full analyzer suite
// must run clean over this repository. Every deliberate exception is
// annotated in the source with //lint:allow and a reason; anything this
// test reports is either a real violation of a paper invariant or a
// missing annotation — fix the code, don't relax the test.
func TestSelfLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	pkgs := loadedModule(t)
	if len(pkgs) < 20 {
		t.Fatalf("module loader found only %d packages; discovery is broken", len(pkgs))
	}
	for _, f := range lint.Run(pkgs, lint.All()) {
		t.Errorf("self-lint: %s", f)
	}
}

// TestLoadModulePositions spot-checks that loaded packages carry real
// file positions and type info — the properties every analyzer relies
// on.
func TestLoadModulePositions(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	geom := modulePackage(t, "internal/geom")
	if len(geom.Files) == 0 {
		t.Fatal("geom has no files")
	}
	if geom.Pkg.Scope().Lookup("Eps") == nil {
		t.Error("geom.Eps not in package scope")
	}
	pos := geom.Fset.Position(geom.Files[0].Package)
	if pos.Filename == "" || pos.Line == 0 {
		t.Errorf("bad position %v", pos)
	}
}
