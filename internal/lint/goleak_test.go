package lint_test

import (
	"testing"

	"luxvis/internal/lint"
)

// TestGoLeakIntra: the goleak verdicts that need no module graph —
// blocking ops with and without in-frame termination evidence.
func TestGoLeakIntra(t *testing.T) {
	src := `package stream

import (
	"context"
	"sync"
	"time"
)

type hub struct {
	stop chan struct{}
	in   chan int
}

// leakBareLoop: an unbounded loop with no exit evidence anywhere.
func (h *hub) leakBareLoop() {
	go func() { // want
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// leakRecvNoClose: blocks receiving on a channel nothing in the module
// ever closes.
func (h *hub) leakRecvNoClose() {
	go func() { // want
		for v := range h.in {
			_ = v
		}
	}()
}

// okCtxDone: the select on ctx.Done() is the canonical exit path.
func (h *hub) okCtxDone(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-h.in:
				_ = v
			}
		}
	}()
}

// okModuleClosed: h.stop is closed below, so receiving on it is
// termination evidence, and ranging h.in is pardoned by closeIn.
func (h *hub) okModuleClosed() {
	go func() {
		<-h.stop
	}()
}

// okWaitGroupJoin: a wg.Wait() is an exit path (the waited work is the
// spawner's responsibility).
func (h *hub) okWaitGroupJoin(wg *sync.WaitGroup) {
	go func() {
		wg.Wait()
	}()
}

// okBounded: no blocking op and no unbounded loop — needs no evidence.
func (h *hub) okBounded() {
	go func() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}()
}

// allowed: same shape as leakBareLoop, suppressed with a reason.
func (h *hub) allowed() {
	//lint:allow goleak fixture: loop bounded by external watchdog
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func (h *hub) closeStop() { close(h.stop) }
`
	specs := []pkgSpec{{"luxvis/internal/stream", "stream_goleak_fix.go", src}}
	runModuleFixture(t, specs, lint.GoLeak{}, "stream_goleak_fix.go", src)
}

// TestGoLeakOutOfScope: the same leak outside the concurrency-bearing
// packages is not goleak's business.
func TestGoLeakOutOfScope(t *testing.T) {
	src := `package geom

import "time"

func spin() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}
`
	specs := []pkgSpec{{"luxvis/internal/geom", "geom_goleak_fix.go", src}}
	runModuleFixture(t, specs, lint.GoLeak{}, "geom_goleak_fix.go", src)
}

// TestGoLeakCrossPackage: the goroutine body is one call to a function
// in another package; both the blocking risk and the termination
// evidence live in that callee's summary. Intra-package, the call is
// opaque — the engine must stay silent rather than guess.
func TestGoLeakCrossPackage(t *testing.T) {
	rtSrc := `package rt

import "context"

// DrainForever blocks on a channel no one closes: pure leak risk.
func DrainForever(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// DrainCtx has the same loop but polls ctx.Err: evidence.
func DrainCtx(ctx context.Context, ch chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case v := <-ch:
			_ = v
		default:
		}
	}
}
`
	serveSrc := `package serve

import (
	"context"

	"luxvis/internal/rt"
)

func spawnLeak(ch chan int) {
	go rt.DrainForever(ch) // want
}

func spawnOK(ctx context.Context, ch chan int) {
	go rt.DrainCtx(ctx, ch)
}

// spawnLitLeak: the literal body's only content is the risky call.
func spawnLitLeak(ch chan int) {
	go func() { // want
		rt.DrainForever(ch)
	}()
}
`
	specs := []pkgSpec{
		{"luxvis/internal/rt", "rt_goleak_fix.go", rtSrc},
		{"luxvis/internal/serve", "serve_goleak_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.GoLeak{}, "serve_goleak_fix.go", serveSrc)
	assertIntraSilent(t, specs, lint.GoLeak{}, "serve_goleak_fix.go")
}

// TestGoLeakCrossPackageClose: a channel field closed by package A is
// termination evidence for a goroutine in package B that receives on
// it — ownership knowledge only the module has.
func TestGoLeakCrossPackageClose(t *testing.T) {
	streamSrc := `package stream

type Hub struct{ Done chan struct{} }

func (h *Hub) Release() { close(h.Done) }
`
	serveSrc := `package serve

import "luxvis/internal/stream"

func watch(h *stream.Hub) {
	go func() {
		<-h.Done
	}()
}
`
	specs := []pkgSpec{
		{"luxvis/internal/stream", "stream_close_fix.go", streamSrc},
		{"luxvis/internal/serve", "serve_watch_fix.go", serveSrc},
	}
	runModuleFixture(t, specs, lint.GoLeak{}, "serve_watch_fix.go", serveSrc)
}
