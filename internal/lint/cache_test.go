package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"luxvis/internal/lint"
)

// writeCacheModule lays out a two-package synthetic module:
// cachetest/a (with one floateq violation) and cachetest/b, which
// imports a.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"a/a.go": `package a

// Eq compares exactly, which floateq flags.
func Eq(x, y float64) bool { return x == y }
`,
		"b/b.go": `package b

import "cachetest/a"

// Same forwards to a.
func Same(x, y float64) bool { return a.Eq(x, y) }
`,
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func lintCacheModule(t *testing.T, root string, cache *lint.Cache) *lint.ModuleResult {
	t.Helper()
	res, err := lint.LintModule(root, lint.All(), lint.Config{Cache: cache})
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	return res
}

func TestCacheHitMissInvalidation(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}

	// Cold: everything misses, and the floateq finding in a/ surfaces.
	cold := lintCacheModule(t, root, cache)
	if cold.CacheHits != 0 || cold.CacheMisses != 2 {
		t.Fatalf("cold run: %d hits, %d misses; want 0, 2", cold.CacheHits, cold.CacheMisses)
	}
	coldFindings := render(cold.Findings())
	if !contains(coldFindings, "floateq") {
		t.Fatalf("cold run lost the seeded finding:\n%s", coldFindings)
	}

	// Warm: everything hits, findings byte-identical.
	warm := lintCacheModule(t, root, cache)
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits, %d misses; want 2, 0", warm.CacheHits, warm.CacheMisses)
	}
	if got := render(warm.Findings()); got != coldFindings {
		t.Fatalf("cached findings differ:\n--- cold ---\n%s--- warm ---\n%s", coldFindings, got)
	}

	// Touching b invalidates only b: a's hash is independent of its
	// importers.
	appendTo(t, filepath.Join(root, "b", "b.go"), "\n// edited\n")
	after := lintCacheModule(t, root, cache)
	if after.CacheHits != 1 || after.CacheMisses != 1 {
		t.Fatalf("after editing b: %d hits, %d misses; want 1, 1", after.CacheHits, after.CacheMisses)
	}

	// Touching a invalidates a AND b: the combined hash folds in
	// transitive dependencies, so type-information changes propagate.
	appendTo(t, filepath.Join(root, "a", "a.go"), "\n// edited\n")
	after = lintCacheModule(t, root, cache)
	if after.CacheHits != 0 || after.CacheMisses != 2 {
		t.Fatalf("after editing a: %d hits, %d misses; want 0, 2", after.CacheHits, after.CacheMisses)
	}
}

// TestCacheMatchesUncached: serving from cache must be invisible in the
// findings themselves.
func TestCacheMatchesUncached(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}
	lintCacheModule(t, root, cache) // populate
	cached := lintCacheModule(t, root, cache)
	if cached.CacheHits == 0 {
		t.Fatal("second run did not hit the cache")
	}
	uncached := lintCacheModule(t, root, nil)
	if got, want := render(cached.Findings()), render(uncached.Findings()); got != want {
		t.Fatalf("cached findings differ from uncached:\n--- cached ---\n%s--- uncached ---\n%s", got, want)
	}
}

func TestCacheClear(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}
	lintCacheModule(t, root, cache)
	if err := cache.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	res := lintCacheModule(t, root, cache)
	if res.CacheHits != 0 {
		t.Errorf("run after Clear hit the cache: %d hits", res.CacheHits)
	}
}

// TestCacheCorruptEntryIsMiss: a truncated or garbage entry must be
// treated as absent, never crash or poison results.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	root := writeCacheModule(t)
	cacheDir := t.TempDir()
	cache, err := lint.NewCacheAt(cacheDir)
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}
	first := lintCacheModule(t, root, cache)
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir after run: %v entries, err %v", len(entries), err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res := lintCacheModule(t, root, cache)
	if res.CacheHits != 0 {
		t.Errorf("corrupt entries served as hits: %d", res.CacheHits)
	}
	if got, want := render(res.Findings()), render(first.Findings()); got != want {
		t.Fatalf("findings after corruption differ:\n%s\nvs\n%s", got, want)
	}
}

// TestCacheToolchainInvalidation: entries analyzed under one Go
// toolchain must not be served under another — go/types behavior (and
// with it analyzer output) can change between releases.
func TestCacheToolchainInvalidation(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}

	restore := lint.SetToolchainVersion("go1.22.0")
	defer restore()
	lintCacheModule(t, root, cache) // populate under the old toolchain

	same := lintCacheModule(t, root, cache)
	if same.CacheHits != 2 || same.CacheMisses != 0 {
		t.Fatalf("same toolchain: %d hits, %d misses; want 2, 0", same.CacheHits, same.CacheMisses)
	}

	restore()
	restore = lint.SetToolchainVersion("go1.23.0")
	upgraded := lintCacheModule(t, root, cache)
	if upgraded.CacheHits != 0 || upgraded.CacheMisses != 2 {
		t.Fatalf("after toolchain upgrade: %d hits, %d misses; want 0, 2", upgraded.CacheHits, upgraded.CacheMisses)
	}

	// Downgrading back must find the original entries intact: the key
	// is a pure function of its inputs, not a generation counter.
	restore()
	lint.SetToolchainVersion("go1.22.0")
	back := lintCacheModule(t, root, cache)
	if back.CacheHits != 2 || back.CacheMisses != 0 {
		t.Fatalf("back on old toolchain: %d hits, %d misses; want 2, 0", back.CacheHits, back.CacheMisses)
	}
}

// TestCacheSchemaBumpInvalidation: bumping cacheVersion — the
// summary-schema stamp that every analyzer-semantics change must move
// in the same commit — flushes warm entries. This is what makes adding
// a fact to FuncSummary (as the concurrency pass did for v4) safe
// against a cache populated by the previous binary.
func TestCacheSchemaBumpInvalidation(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}
	lintCacheModule(t, root, cache) // populate under the current schema

	warm := lintCacheModule(t, root, cache)
	if warm.CacheHits != 2 || warm.CacheMisses != 0 {
		t.Fatalf("same schema: %d hits, %d misses; want 2, 0", warm.CacheHits, warm.CacheMisses)
	}

	restore := lint.SetCacheVersion("vislint-cache-next")
	defer restore()
	bumped := lintCacheModule(t, root, cache)
	if bumped.CacheHits != 0 || bumped.CacheMisses != 2 {
		t.Fatalf("after schema bump: %d hits, %d misses; want 0, 2", bumped.CacheHits, bumped.CacheMisses)
	}

	// The old schema's entries are still intact under their own key.
	restore()
	back := lintCacheModule(t, root, cache)
	if back.CacheHits != 2 || back.CacheMisses != 0 {
		t.Fatalf("back on old schema: %d hits, %d misses; want 2, 0", back.CacheHits, back.CacheMisses)
	}
}

// TestCacheAnalyzerSetInvalidation: results are keyed by the analyzer
// set, so `vislint -run floateq` must never serve (or poison) entries
// produced by a full-suite run, and vice versa.
func TestCacheAnalyzerSetInvalidation(t *testing.T) {
	root := writeCacheModule(t)
	cache, err := lint.NewCacheAt(t.TempDir())
	if err != nil {
		t.Fatalf("NewCacheAt: %v", err)
	}
	lintCacheModule(t, root, cache) // populate with the full suite

	subset, err := lint.ByName("floateq")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	sub, err := lint.LintModule(root, subset, lint.Config{Cache: cache})
	if err != nil {
		t.Fatalf("LintModule(floateq): %v", err)
	}
	if sub.CacheHits != 0 || sub.CacheMisses != 2 {
		t.Fatalf("subset run against full-suite entries: %d hits, %d misses; want 0, 2", sub.CacheHits, sub.CacheMisses)
	}
	if got := render(sub.Findings()); !contains(got, "floateq") {
		t.Fatalf("subset run lost the floateq finding:\n%s", got)
	}

	// Both sets now have entries; each re-run hits its own.
	full := lintCacheModule(t, root, cache)
	if full.CacheHits != 2 || full.CacheMisses != 0 {
		t.Fatalf("full-suite re-run: %d hits, %d misses; want 2, 0", full.CacheHits, full.CacheMisses)
	}
	sub2, err := lint.LintModule(root, subset, lint.Config{Cache: cache})
	if err != nil {
		t.Fatalf("LintModule(floateq) warm: %v", err)
	}
	if sub2.CacheHits != 2 || sub2.CacheMisses != 0 {
		t.Fatalf("subset re-run: %d hits, %d misses; want 2, 0", sub2.CacheHits, sub2.CacheMisses)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func appendTo(t *testing.T, path, text string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
