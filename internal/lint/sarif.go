package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// This file renders findings for machines: SARIF 2.1.0 for code-scanning
// uploads and GitHub Actions workflow commands for inline PR
// annotations. Both formats relativize file paths against the module
// root so the output is stable across checkouts.

// sarifLog is the top-level SARIF 2.1.0 document.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits findings as one SARIF 2.1.0 run. The rule table
// covers the analyzer suite plus the "directive" pseudo-rule that
// malformed and stale //lint:allow comments report under.
func WriteSARIF(w io.Writer, root string, analyzers []Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed or stale //lint:allow directives"},
	})

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "warning"
		if f.Severity == Error {
			level = "error"
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rootRelative(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "vislint",
				InformationURI: "https://github.com/luxvis/luxvis",
				Rules:          rules,
			}},
			Results: results,
		}},
	})
}

// WriteGitHub emits findings as GitHub Actions workflow commands
// (::error / ::warning), which the Actions runner turns into inline PR
// diff annotations.
func WriteGitHub(w io.Writer, root string, findings []Finding) error {
	for _, f := range findings {
		cmd := "warning"
		if f.Severity == Error {
			cmd = "error"
		}
		_, err := fmt.Fprintf(w, "::%s file=%s,line=%d,col=%d::%s\n",
			cmd,
			escapeGitHubProperty(rootRelative(root, f.Pos.Filename)),
			f.Pos.Line, f.Pos.Column,
			escapeGitHubData(fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)))
		if err != nil {
			return err
		}
	}
	return nil
}

// rootRelative renders filename relative to root with forward slashes,
// falling back to the original on failure (a path outside the module).
func rootRelative(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// escapeGitHubData escapes the message payload of a workflow command.
func escapeGitHubData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeGitHubProperty escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func escapeGitHubProperty(s string) string {
	s = escapeGitHubData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
