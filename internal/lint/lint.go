// Package lint is luxvis's domain-aware static analysis engine: a small,
// stdlib-only (go/parser, go/ast, go/types, go/token) analysis framework
// plus the analyzers that guard the paper's invariants at build time —
// epsilon-safe geometry predicates (floateq), the O(1)-color palette
// discipline (palette), mutex-guarded shared state under asynchrony
// (mutexdiscipline), cancellable goroutines (ctxcancel), the
// no-blocking-under-the-world-lock callback contract (locksafe),
// tear-free atomics discipline (atomicmix), checked hot-writer errors
// (errsink), stable wire-format tags (wireformat), kernel arena-row
// aliasing (arenaalias), context propagation across the serve→sim→rt
// layering (ctxflow), and seeded-replay determinism with cross-package
// taint (detsource, superseding the local-only nondet of PRs 2–5).
//
// Since PR 4 the engine reasons across function boundaries: each package
// gets an intra-package static call graph (callgraph.go) that the
// concurrency analyzers propagate over, packages are analyzed in
// parallel with deterministic finding order (engine.go), results are
// cached by content hash for incremental runs (cache.go), and findings
// render as text, GitHub Actions annotations, or SARIF 2.1.0
// (sarif.go). This PR lifts the graph across package boundaries: all
// loaded packages share one type-checked universe, every declared
// function gets a FuncSummary (lock safety, blocking, determinism
// taint, arena returns, JSON-sink parameters — module.go) computed
// bottom-up in dependency order, and a lightweight per-function
// dataflow pass (dataflow.go) tracks values of interest through
// assignments and slicing. Analyzers that implement ModuleAnalyzer
// receive the whole-program view; the rest keep their per-package
// Check.
//
// The suite is self-hosted: `go run ./cmd/vislint ./...` must exit 0 on
// this repository. Deliberate exceptions are annotated in the source
// with a directive comment on the offending line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported —
// and so is a directive that no longer suppresses anything (stale
// directives are errors, which keeps the written-down exception set
// honest). See DESIGN.md, "Static invariants", for the mapping from
// each analyzer to the paper claim it protects.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Severity grades a finding. Error findings fail the build gate;
// Warning findings are reported but do not affect the exit status.
type Severity int

// Severity levels.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one analyzer hit at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Severity Severity
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: [%s] %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Severity, f.Analyzer, f.Message)
}

// Package is one type-checked package as the analyzers see it: syntax,
// type information and the import path that scopes path-sensitive rules.
type Package struct {
	// Path is the full import path (e.g. "luxvis/internal/geom").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// Hash is the package's combined content hash: its own sources plus
	// every module-local dependency's, transitively. It keys the result
	// cache; empty for packages built outside LoadModule (fixtures).
	Hash string

	cgOnce sync.Once
	cg     *CallGraph
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Package) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PathHasSuffix reports whether the package's import path ends in
// suffix on a path-segment boundary ("internal/geom" matches
// "luxvis/internal/geom" but not "luxvis/xinternal/geom").
func (p *Package) PathHasSuffix(suffix string) bool {
	return p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)
}

// Analyzer is one named check over a type-checked package.
type Analyzer interface {
	// Name is the identifier used in reports and allow-directives.
	Name() string
	// Doc is a one-line description of what the analyzer enforces.
	Doc() string
	// Check returns the analyzer's findings for one package, before
	// directive filtering.
	Check(p *Package) []Finding
}

// ModuleAnalyzer is the optional whole-program interface: an analyzer
// that also implements CheckModule is handed the cross-package module
// view when the engine has one. Check remains the required,
// single-package entry point — by convention implemented as
// CheckModule(p, NewModule([]*Package{p})), so intra-package behavior
// is the same algorithm with a one-package universe.
type ModuleAnalyzer interface {
	Analyzer
	// CheckModule returns the analyzer's findings for one package,
	// computed with whole-program knowledge of m (which contains p).
	CheckModule(p *Package, m *Module) []Finding
}

// All returns the full luxvis analyzer suite in canonical order.
func All() []Analyzer {
	return []Analyzer{
		FloatEq{},
		PaletteDiscipline{},
		MutexDiscipline{},
		CtxCancel{},
		LockSafe{},
		AtomicMix{},
		ErrSink{},
		WireFormat{},
		ArenaAlias{},
		CtxFlow{},
		DetSource{},
		GoLeak{},
		LockOrder{},
		ChanOwn{},
	}
}

// Names returns the analyzer names of All, in canonical order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, a := range all {
		out[i] = a.Name()
	}
	return out
}

// ByName resolves a subset of All by analyzer name.
func ByName(names ...string) ([]Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	var out []Analyzer
	for _, n := range names {
		if n == "nondet" {
			return nil, fmt.Errorf("lint: analyzer \"nondet\" was superseded by \"detsource\" (same direct sources, plus cross-package taint)")
		}
		found := false
		for _, a := range all {
			if a.Name() == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", n, strings.Join(Names(), ", "))
		}
	}
	return out, nil
}

// Run applies the analyzers to every package, filters findings through
// //lint:allow directives (auditing for stale ones), and returns the
// survivors in canonical order. Malformed directives are themselves
// reported as error findings. Packages are analyzed in parallel; see
// RunConfig to control the worker count or attach a cache.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunConfig(pkgs, analyzers, Config{})
}

// less is the canonical finding order: position (filename, line,
// column), then analyzer, then message. Every path that emits findings
// — sequential, parallel, cached — sorts with this one comparator, so
// engine configuration can never reorder output.
func less(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// sortFindings sorts fs into canonical order (see less).
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return less(fs[i], fs[j]) })
}

// HasErrors reports whether any finding has Error severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// finding is a small constructor shared by the analyzers.
func finding(p *Package, analyzer string, pos token.Pos, sev Severity, format string, args ...any) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      p.Fset.Position(pos),
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	}
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (float32/float64 or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// pkgNameOf returns the imported package path when e is a bare
// identifier naming an import (e.g. the `rand` in rand.Intn), else "".
func pkgNameOf(p *Package, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// methodObjOf returns the *types.Func a selector call resolves to, or
// nil. It sees through embedding (x.Lock() on a struct embedding
// sync.Mutex resolves to (*sync.Mutex).Lock).
func methodObjOf(p *Package, sel *ast.SelectorExpr) *types.Func {
	if s, ok := p.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// isSyncMethod reports whether the call target is package sync's method
// named name (e.g. "Lock", "Done").
func isSyncMethod(fn *types.Func, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
