package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CallGraph is the intra-package static call graph: one node per
// function or method declared in the package, one edge per direct call
// between them. It is what lets analyzers reason across function
// boundaries — "does this call, transitively, send on a channel?" —
// instead of staring at one body at a time.
//
// The graph is deliberately static and local: dynamic dispatch through
// interfaces, function values passed around, and cross-package calls
// are not edges. That under-approximates reachability (a finding the
// graph cannot see is a finding not reported), which is the right
// failure mode for a build gate; the analyzers that use it (locksafe,
// wireformat) document what slips through.
type CallGraph struct {
	p     *Package
	funcs []*types.Func // declaration order
	decls map[*types.Func]*ast.FuncDecl
	edges map[*types.Func][]CallEdge
}

// CallEdge is one direct call from a declared function to another
// function declared in the same package.
type CallEdge struct {
	Callee *types.Func
	// Pos is the first call site of Callee inside the caller.
	Pos token.Pos
}

// NewCallGraph builds the call graph of p. Prefer Package.CallGraph,
// which memoizes.
func NewCallGraph(p *Package) *CallGraph {
	g := &CallGraph{
		p:     p,
		decls: make(map[*types.Func]*ast.FuncDecl),
		edges: make(map[*types.Func][]CallEdge),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, obj)
			g.decls[obj] = fd
		}
	}
	for _, fn := range g.funcs {
		g.edges[fn] = g.collectCalls(g.decls[fn])
	}
	return g
}

// collectCalls gathers the package-local callees of one declaration's
// outer frame, in call-site order. Calls inside `go` statements and
// stored function literals are not edges: they do not execute when the
// function itself is called, which is the semantics the propagation
// pass (and its clients: "does calling this block?") needs.
func (g *CallGraph) collectCalls(fd *ast.FuncDecl) []CallEdge {
	return frameCalls(g.p, g.decls, fd.Body)
}

// frameCalls lists the in-frame calls of one analysis frame that target
// functions declared (with bodies) in decls.
func frameCalls(p *Package, decls map[*types.Func]*ast.FuncDecl, frame ast.Node) []CallEdge {
	var out []CallEdge
	inspectFrame(frame, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := p.StaticCallee(call)
		if callee == nil {
			return true
		}
		if _, declared := decls[callee]; !declared {
			return true // cross-package, or no body in this package
		}
		out = append(out, CallEdge{Callee: callee, Pos: call.Pos()})
		return true
	})
	return out
}

// inspectFrame walks root in pre-order like ast.Inspect, but treats
// `go` statements and function literals that are not invoked in place
// as frame boundaries: their bodies run on another goroutine or at
// another time, so what happens inside them is a different frame's
// business (see framesOf).
func inspectFrame(root ast.Node, f func(ast.Node) bool) {
	inline := make(map[*ast.FuncLit]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				inline[fl] = true // immediately invoked (or deferred): same frame
			}
		case *ast.FuncLit:
			if !inline[n] {
				return false
			}
		}
		return f(n)
	})
}

// framesOf enumerates the analysis frames of one declaration: its outer
// body, plus the body of every function literal that is not invoked in
// place — goroutine bodies, stored callbacks, handler closures. Each
// frame holds (and must be checked against) its own lock discipline.
func framesOf(fd *ast.FuncDecl) []ast.Node {
	frames := []ast.Node{fd.Body}
	inline := make(map[*ast.FuncLit]bool)
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok && !goCalls[n] {
				inline[fl] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && !inline[fl] {
			frames = append(frames, fl.Body)
		}
		return true
	})
	return frames
}

// Funcs returns the declared functions in declaration order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Decl returns the AST declaration of fn, or nil when fn is not
// declared (with a body) in this package.
func (g *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Callees returns fn's direct package-local callees.
func (g *CallGraph) Callees(fn *types.Func) []CallEdge { return g.edges[fn] }

// Reach is the answer to "can fn, transitively, perform the operation a
// direct-op map describes?" — the call-graph propagation primitive the
// concurrency analyzers are built on.
type Reach struct {
	// Desc describes the reached operation.
	Desc string
	// Pos is the operation's own position (inside the function where it
	// physically occurs).
	Pos token.Pos
	// Via is the call chain from the queried function down to the
	// operation's function, as function names; empty for a direct hit.
	Via []string
}

// Chain renders the call chain for a finding message ("a → b → c"), or
// "" for a direct hit.
func (r *Reach) Chain() string {
	if len(r.Via) == 0 {
		return ""
	}
	return strings.Join(r.Via, " → ")
}

// Propagate computes, for every declared function, whether it can reach
// one of the direct operations — in its own body or through any chain
// of package-local calls — and with what witness. direct maps functions
// to their own first in-body operation. The result maps every function
// that reaches an operation to a Reach; functions that cannot are
// absent. Cycles (recursion) are handled; the witness chain is the
// first one found in deterministic declaration/call order.
func (g *CallGraph) Propagate(direct map[*types.Func]Reach) map[*types.Func]*Reach {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*types.Func]int, len(g.funcs))
	memo := make(map[*types.Func]*Reach, len(g.funcs))
	var visit func(fn *types.Func) *Reach
	visit = func(fn *types.Func) *Reach {
		switch state[fn] {
		case done:
			return memo[fn]
		case visiting:
			return nil // recursion back-edge: resolved by the entry frame
		}
		state[fn] = visiting
		if d, ok := direct[fn]; ok {
			// A direct fact may already carry a chain (a cross-package
			// call summarized by the module graph); preserve it.
			memo[fn] = &Reach{Desc: d.Desc, Pos: d.Pos, Via: d.Via}
			state[fn] = done
			return memo[fn]
		}
		for _, e := range g.edges[fn] {
			if r := visit(e.Callee); r != nil {
				memo[fn] = &Reach{
					Desc: r.Desc,
					Pos:  r.Pos,
					Via:  append([]string{e.Callee.Name()}, r.Via...),
				}
				break
			}
		}
		state[fn] = done
		return memo[fn]
	}
	for _, fn := range g.funcs {
		visit(fn)
	}
	return memo
}

// StaticCallee resolves a call expression to the *types.Func it
// statically invokes — a package-level function, a method (through
// embedding), or a qualified identifier — or nil for dynamic calls
// (function values, interface methods, conversions, builtins).
func (p *Package) StaticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			// A method expression or value is a value, not a call edge;
			// only method calls resolve here.
			if sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					return fn
				}
			}
			return nil
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CallGraphOf memoizes NewCallGraph per package, so the analyzers that
// need the graph (locksafe, wireformat) build it once even when they
// run in the same engine pass.
func (p *Package) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = NewCallGraph(p) })
	return p.cg
}

// exprString renders a (small) expression for finding messages: mutex
// receivers, field owners. It handles the selector/identifier shapes
// that occur in lock calls and falls back to a positional placeholder.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "<expr>"
}
