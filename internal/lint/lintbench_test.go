package lint_test

import (
	"testing"
	"time"

	"luxvis/internal/lint"
)

// BenchmarkLintRepo measures a full-repository lint cold (empty cache)
// versus warm (every package a hit) and asserts the cache pays for
// itself: the warm run must be at least twice as fast as the cold one,
// because a full hit skips type-checking — the dominant cost — outright.
// The steady-state b.N loop then times the warm path.
func BenchmarkLintRepo(b *testing.B) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	cache, err := lint.NewCacheAt(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cfg := lint.Config{Cache: cache}

	start := time.Now()
	cold, err := lint.LintModule(root, lint.All(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(start)
	if cold.CacheMisses == 0 || cold.CacheHits != 0 {
		b.Fatalf("cold run: %d hits, %d misses; want 0 hits", cold.CacheHits, cold.CacheMisses)
	}

	start = time.Now()
	warm, err := lint.LintModule(root, lint.All(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	warmDur := time.Since(start)
	if warm.CacheHits != cold.CacheMisses || warm.CacheMisses != 0 {
		b.Fatalf("warm run: %d hits, %d misses; want %d hits, 0 misses",
			warm.CacheHits, warm.CacheMisses, cold.CacheMisses)
	}
	if 2*warmDur >= coldDur {
		b.Errorf("warm cache not measurably faster: cold=%v warm=%v", coldDur, warmDur)
	}
	b.ReportMetric(float64(coldDur.Milliseconds()), "cold-ms")
	b.ReportMetric(float64(warmDur.Milliseconds()), "warm-ms")

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lint.LintModule(root, lint.All(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
