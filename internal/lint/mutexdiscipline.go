package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexDiscipline guards shared state under real asynchrony: in any
// package that imports sync (internal/rt above all — one goroutine per
// robot over a mutex-guarded world), a struct field declared after a
// sync.Mutex/RWMutex field, or carrying a "guarded by <mu>" comment, is
// considered guarded by that mutex. Every function whose body reads or
// writes a guarded field must also lock a mutex somewhere in the same
// body — or be named with the *Locked suffix, the convention for
// helpers whose callers hold the lock. The check is deliberately
// function-granular: it catches the field access with no locking
// anywhere in sight, which is how unguarded state actually slips in,
// without attempting full lockset analysis.
type MutexDiscipline struct{}

// Name implements Analyzer.
func (MutexDiscipline) Name() string { return "mutexdiscipline" }

// Doc implements Analyzer.
func (MutexDiscipline) Doc() string {
	return "require Lock/Unlock (or a *Locked name) in functions touching mutex-guarded fields"
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardInfo records one struct's mutex and its guarded field names.
type guardInfo struct {
	mu     string
	fields map[string]bool
}

// Check implements Analyzer.
func (a MutexDiscipline) Check(p *Package) []Finding {
	if !importsPkg(p, "sync") {
		return nil
	}
	guards := collectGuards(p)
	if len(guards) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			out = append(out, a.checkFunc(p, fd, guards)...)
		}
	}
	return out
}

// checkFunc reports guarded-field accesses in one function that has no
// lock acquisition anywhere in its body.
func (a MutexDiscipline) checkFunc(p *Package, fd *ast.FuncDecl, guards map[*types.Named]guardInfo) []Finding {
	locks := false
	type access struct {
		sel   *ast.SelectorExpr
		owner *types.Named
		gi    guardInfo
	}
	var accesses []access
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if isSyncMethod(methodObjOf(p, sel), "Lock", "RLock") {
					locks = true
				}
			}
		case *ast.SelectorExpr:
			s, ok := p.Info.Selections[n]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			named := namedOf(s.Recv())
			if named == nil {
				return true
			}
			gi, ok := guards[named]
			if ok && gi.fields[n.Sel.Name] {
				accesses = append(accesses, access{sel: n, owner: named, gi: gi})
			}
		}
		return true
	})
	if locks || len(accesses) == 0 {
		return nil
	}
	var out []Finding
	seen := map[string]bool{}
	for _, acc := range accesses {
		key := acc.owner.Obj().Name() + "." + acc.sel.Sel.Name
		if seen[key] {
			continue // one report per field per function
		}
		seen[key] = true
		out = append(out, finding(p, a.Name(), acc.sel.Sel.Pos(), Error,
			"%s accesses %s.%s (guarded by %s) without locking in this function; hold the mutex or use the *Locked naming convention",
			fd.Name.Name, acc.owner.Obj().Name(), acc.sel.Sel.Name, acc.gi.mu))
	}
	return out
}

// collectGuards finds the package's mutex-guarded struct fields: every
// field after a mutex field in declaration order, plus fields whose
// comments say "guarded by <mu>".
func collectGuards(p *Package) map[*types.Named]guardInfo {
	guards := make(map[*types.Named]guardInfo)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			gi := guardInfo{fields: map[string]bool{}}
			sawMutex := false
			for _, field := range st.Fields.List {
				names := fieldNames(field)
				if isMutexType(p.TypeOf(field.Type)) {
					if !sawMutex && len(names) > 0 {
						gi.mu = names[0]
					}
					sawMutex = true
					continue
				}
				explicit := guardedByComment(field)
				for _, name := range names {
					if sawMutex || explicit != "" {
						gi.fields[name] = true
						if gi.mu == "" && explicit != "" {
							gi.mu = explicit
						}
					}
				}
			}
			if len(gi.fields) > 0 {
				guards[named] = gi
			}
			return true
		})
	}
	return guards
}

// fieldNames lists a field's names; an embedded mutex is named after
// its type.
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	// Embedded field: the name is the bare type name.
	switch t := field.Type.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

// guardedByComment returns the mutex name from a "guarded by <mu>"
// field comment, or "".
func guardedByComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex or a
// pointer to either.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// namedOf unwraps pointers down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// importsPkg reports whether the package imports path directly.
func importsPkg(p *Package, path string) bool {
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}
