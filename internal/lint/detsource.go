package lint

import (
	"go/ast"
	"go/types"
)

// DetSource enforces seeded-replay determinism in the engine, verify
// and experiment packages (internal/core, internal/bdcp,
// internal/sched, internal/sim, internal/verify, internal/exp): a run
// is reproducible per (algorithm, start, Options) — that is what makes
// traces auditable by internal/verify and every experiment table
// regenerable. It supersedes the local-only nondet analyzer: the same
// three direct sources are flagged — wall-clock reads (time.Now and
// friends), package-level math/rand draws (the global, unseeded source
// instead of the run's threaded *rand.Rand), and map iteration (order
// randomized per run) — and, new with the cross-package engine,
// determinism taint now propagates over the whole-program call graph: a
// scoped package calling into any module-local function that
// transitively reaches one of those sources is reported at the call
// site with the full witness chain, even when the source sits two
// packages away in a package the analyzer does not scope.
//
// A //lint:allow detsource directive on a source operation stops the
// taint, not just the local finding: the annotation is the written-down
// proof that the operation cannot influence replayed behavior (an
// observer-gated timing counter, a collect-then-sort loop), so callers
// of the containing function are clean without re-annotating every call
// site.
type DetSource struct{}

// Name implements Analyzer.
func (DetSource) Name() string { return "detsource" }

// Doc implements Analyzer.
func (DetSource) Doc() string {
	return "forbid wall clock, global math/rand and map iteration in engine/verify/exp packages, with cross-package taint"
}

// detSourceScope lists the packages where seeded determinism is part of
// the contract.
var detSourceScope = []string{
	"internal/core", "internal/bdcp", "internal/sched",
	"internal/sim", "internal/verify", "internal/exp",
}

// wallClockFuncs are the time package functions that read or depend on
// the wall clock or a timer.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// seededRandFuncs are the math/rand package-level functions that are
// pure constructors (safe: they wrap an explicit source) rather than
// draws from the shared global source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Check implements Analyzer with intra-package knowledge only: the
// direct sources are still flagged, cross-package taint is not visible.
func (a DetSource) Check(p *Package) []Finding {
	return a.CheckModule(p, NewModule([]*Package{p}))
}

// CheckModule implements ModuleAnalyzer.
func (a DetSource) CheckModule(p *Package, m *Module) []Finding {
	inScope := false
	for _, s := range detSourceScope {
		if p.PathHasSuffix(s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var out []Finding

	// Direct sources, everywhere in the package.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch pkgNameOf(p, sel.X) {
				case "time":
					if wallClockFuncs[sel.Sel.Name] {
						out = append(out, finding(p, a.Name(), n.Pos(), Error,
							"time.%s reads the wall clock; runs must be deterministic per seed for replay/audit — derive timing from event counts",
							sel.Sel.Name))
					}
				case "math/rand", "math/rand/v2":
					if !seededRandFuncs[sel.Sel.Name] {
						out = append(out, finding(p, a.Name(), n.Pos(), Error,
							"rand.%s draws from the global source; thread the run's seeded *rand.Rand instead",
							sel.Sel.Name))
					}
				}
			case *ast.RangeStmt:
				if t := p.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, finding(p, a.Name(), n.Range, Error,
							"map iteration order is randomized per run; iterate sorted keys (or an index-keyed slice) so replays are deterministic"))
					}
				}
			}
			return true
		})
	}

	// Cross-package taint: a call into another module package whose
	// summary reaches a determinism source. Intra-package calls are not
	// re-reported — the direct source already carries the finding in
	// this same package.
	g := p.CallGraph()
	for _, fn := range g.Funcs() {
		for _, e := range m.crossPackageCalls(p, g.Decl(fn).Body) {
			s := m.Summary(e.Callee)
			if s == nil || s.Nondet == nil {
				continue
			}
			chain := crossName(p, e.Callee)
			if v := s.Nondet.Chain(); v != "" {
				chain += " → " + v
			}
			out = append(out, finding(p, a.Name(), e.Pos, Error,
				"calling %s taints determinism: %s %s (call chain %s); keep the engine/verify/exp packages replayable per seed",
				crossName(p, e.Callee), lastName(chain), s.Nondet.Desc, chain))
		}
	}
	sortFindings(out)
	return out
}
