package core_test

// Integration tests: full engine runs of LogVis across workload families,
// schedulers and seeds, asserting the paper's claims on every run —
// Complete Visibility reached, zero collisions, bounded colors — and
// recording path-crossing counts (see DESIGN.md on the crossing
// reconstruction deviation).

import (
	"testing"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
)

func runOnce(t *testing.T, fam config.Family, n int, schedName string, seed int64, maxEpochs int) sim.Result {
	t.Helper()
	pts := config.Generate(fam, n, seed)
	opt := sim.DefaultOptions(sched.ByName(schedName), seed)
	opt.MaxEpochs = maxEpochs
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("%s n=%d %s seed=%d: %v", fam, n, schedName, seed, err)
	}
	return res
}

func assertClaims(t *testing.T, res sim.Result, label string) {
	t.Helper()
	if !res.Reached {
		t.Errorf("%s: did not reach Complete Visibility (epochs=%d)", label, res.Epochs)
		return
	}
	if res.Collisions != 0 {
		t.Errorf("%s: %d collisions", label, res.Collisions)
	}
	if res.ColorsUsed > 8 {
		t.Errorf("%s: %d colors used", label, res.ColorsUsed)
	}
	if !exact.CompleteVisibilityHybrid(res.Final) {
		t.Errorf("%s: final configuration fails exact CV", label)
	}
	if !geom.StrictlyConvexPosition(res.Final) {
		t.Errorf("%s: final configuration not strictly convex", label)
	}
}

func TestLogVisAllFamiliesAsync(t *testing.T) {
	for _, fam := range config.Families() {
		for _, n := range []int{4, 9, 17, 32} {
			res := runOnce(t, fam, n, "async-random", 7, 600)
			assertClaims(t, res, string(fam))
		}
	}
}

func TestLogVisAllSchedulers(t *testing.T) {
	for _, name := range sched.Names() {
		for _, seed := range []int64{1, 2, 3} {
			res := runOnce(t, config.Uniform, 24, name, seed, 600)
			assertClaims(t, res, name)
		}
	}
}

func TestLogVisStaleAdversary(t *testing.T) {
	// The staleness-maximizing adversary is the hard case for ASYNC
	// correctness: robots act on snapshots stale by up to n-1 moves.
	for _, n := range []int{8, 16, 33} {
		res := runOnce(t, config.Uniform, n, "async-stale", 11, 800)
		assertClaims(t, res, "async-stale")
	}
}

func TestLogVisManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep skipped in -short mode")
	}
	totalCross := 0
	for seed := int64(0); seed < 12; seed++ {
		res := runOnce(t, config.Uniform, 20, "async-random", seed, 600)
		assertClaims(t, res, "seeds")
		totalCross += res.PathCrossings
	}
	t.Logf("path crossings across 12 seeds: %d", totalCross)
}

func TestLogVisSmallN(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for _, fam := range []config.Family{config.Uniform, config.Line} {
			res := runOnce(t, fam, n, "async-random", 5, 300)
			assertClaims(t, res, string(fam))
		}
	}
}

func TestLogVisNonRigidStress(t *testing.T) {
	// Non-rigid motion: the adversary may truncate every move. The
	// algorithm must still converge (it re-plans from fresh snapshots
	// every cycle) and never collide.
	pts := config.Generate(config.Uniform, 16, 3)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 3)
	opt.NonRigid = true
	opt.MaxEpochs = 1500
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Errorf("non-rigid run collided %d times", res.Collisions)
	}
	if !res.Reached {
		t.Logf("non-rigid run did not settle in %d epochs (allowed: truncation can stall progress)", res.Epochs)
	}
}

func TestLogVisEpochsGrowSlowly(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	// The headline claim, coarse form: quadrupling N from 32 to 128
	// must not quadruple the epochs (log growth would add a constant).
	e32 := runOnce(t, config.Uniform, 32, "async-random", 9, 600).Epochs
	e128 := runOnce(t, config.Uniform, 128, "async-random", 9, 600).Epochs
	if e128 >= 4*e32 {
		t.Errorf("epochs grew linearly or worse: n=32→%d, n=128→%d", e32, e128)
	}
}
