// Package core implements LogVis, the reconstruction of the paper's
// O(log N)-time, O(1)-color Complete Visibility algorithm for
// asynchronous robots with lights (Sharma, Vaidyanathan, Trahan, Busch,
// Rai — IPDPS 2017). See DESIGN.md for the provenance note: the phase
// structure below (collinear breakout, Interior Depletion via
// beacon-directed placement on hull edges, Edge Depletion via outward
// bulges, stationary corners) is the published technique of this author
// group for this problem; the abstract's five claims are validated
// empirically by the experiment suite.
//
// The O(log N) engine is the beacon-doubling of Interior Depletion: every
// hull-edge interval between two placed robots (corners and Side robots
// are the beacons) admits one interior robot per epoch, and each landing
// splits its interval in two, so the number of placed robots doubles per
// epoch until the interior is depleted.
package core

import (
	"math"
	"slices"
	"sort"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// LogVis is the asynchronous O(log N)-time Complete Visibility algorithm.
// The zero value is ready to use; Tunables have sane defaults applied at
// first Compute. LogVis is stateless across calls, as the oblivious-robot
// model requires.
type LogVis struct {
	// BulgeFrac scales the Edge Depletion outward bulge: the bulge
	// height is the robot's smallest relevant gap times BulgeFrac
	// (default 1/4). Smaller values are safer near sharp corners but
	// slow convergence slightly.
	BulgeFrac float64
	// SlotMargin is the fraction of a slot interval kept clear at each
	// end when clamping a lander's target (default 1/4).
	SlotMargin float64
	// CorridorFrac scales the clearance margin required around an
	// Interior Depletion corridor, as a fraction of the robot's
	// distance to its nearest visible robot (default 1/8).
	CorridorFrac float64

	// The Ablate* knobs disable individual design decisions so the
	// experiment suite can demonstrate why each exists (experiments A1
	// and A2). They are not part of the algorithm.

	// AblateConstantSagitta replaces the quadratic landing-sagitta law
	// (|uv|²/8D, every landing generation on one common circle) with a
	// constant chord fraction. Expected effect: sub-slot landings poke
	// past the previous generation's curvature, earlier landers get
	// swallowed back into the hull, and the run churns (see DESIGN.md).
	AblateConstantSagitta bool
	// AblateNoTransitGuard drops the one-landing-per-interval Transit
	// guard. Expected effect: concurrent landers race into the same
	// interval and concurrent path crossings rise sharply.
	AblateNoTransitGuard bool
}

// NewLogVis returns a LogVis with default tunables.
func NewLogVis() *LogVis { return &LogVis{} }

// Name implements model.Algorithm.
func (*LogVis) Name() string { return "logvis" }

// Palette implements model.Algorithm: seven colors, constant in N.
func (*LogVis) Palette() []model.Color {
	return []model.Color{
		model.Off, model.Corner, model.Side, model.Interior,
		model.Transit, model.Beacon, model.Done,
	}
}

func (a *LogVis) bulgeFrac() float64 {
	if a.BulgeFrac <= 0 || a.BulgeFrac >= 1 {
		return 0.25
	}
	return a.BulgeFrac
}

func (a *LogVis) slotMargin() float64 {
	if a.SlotMargin <= 0 || a.SlotMargin >= 0.5 {
		return 0.25
	}
	return a.SlotMargin
}

func (a *LogVis) corridorFrac() float64 {
	if a.CorridorFrac <= 0 || a.CorridorFrac >= 1 {
		return 0.125
	}
	return a.CorridorFrac
}

// Compute implements model.Algorithm.
func (a *LogVis) Compute(s model.Snapshot) model.Action {
	self := s.Self.Pos
	switch len(s.Others) {
	case 0:
		// Alone in the world: Complete Visibility is vacuous.
		return model.Stay(self, model.Done)
	case 1:
		// Two mutually visible robots, or the endpoint of a line: in
		// both cases this robot is an extreme point and holds.
		return model.Stay(self, model.Corner)
	}

	pts := s.Points()
	if geom.AllCollinear(pts) {
		return a.computeOnLine(s)
	}

	hull := geom.ConvexHull(pts)
	switch hull.Classify(self) {
	case geom.HullCorner:
		return a.computeCorner(s)
	case geom.HullEdge:
		return a.computeSide(s, hull)
	default:
		return a.computeInterior(s)
	}
}

// computeOnLine handles the degenerate case in which the robot's entire
// view is collinear — which, by the visibility lemma (see
// geom.VisibleSetFast and the tests), happens exactly when the whole
// swarm is collinear. Extremes hold as corners; inner robots step off the
// line perpendicularly by a quarter of their nearest gap. Endpoints stay
// on the original line, so after one epoch the swarm is non-collinear.
func (a *LogVis) computeOnLine(s model.Snapshot) model.Action {
	self := s.Self.Pos
	pts := s.Points()
	lo, hi := geom.LineExtremes(pts)
	if pts[lo].Eq(self) || pts[hi].Eq(self) {
		return model.Stay(self, model.Corner)
	}
	// Deterministic side: the left normal of the lexicographically
	// oriented line direction.
	dir := pts[hi].Sub(pts[lo])
	if pts[hi].Less(pts[lo]) {
		dir = dir.Neg()
	}
	n := dir.Perp().Unit()
	d := s.NearestDist() / 4
	if d <= 0 || math.IsInf(d, 0) {
		return model.Stay(self, model.Interior)
	}
	return model.MoveTo(self.Add(n.Mul(d)), model.Transit)
}

// computeCorner handles a robot that is a strict corner of its local
// hull — and therefore, by the locality lemma of this literature, of the
// global hull. Corners never move; they anchor every other phase. A
// corner turns Done when its entire view has settled.
func (a *LogVis) computeCorner(s model.Snapshot) model.Action {
	self := s.Self.Pos
	if s.AllOthersColored(model.Corner, model.Done) {
		return model.Stay(self, model.Done)
	}
	return model.Stay(self, model.Corner)
}

// computeSide handles a robot on a hull edge strictly between corners:
// Edge Depletion. Once no Interior Depletion traffic is visible, the
// robot bulges outward perpendicular to its edge by a quarter of its
// smallest relevant gap, becoming a strict corner of the grown hull.
// Side robots bulge concurrently: their outward paths are parallel
// normals from distinct base points, so they cannot cross.
func (a *LogVis) computeSide(s model.Snapshot, hull geom.Hull) model.Action {
	self := s.Self.Pos
	ea, eb, ok := hull.EdgeOf(self)
	if !ok {
		// Numerically ambiguous boundary membership: hold as Side and
		// let the next snapshot resolve it.
		return model.Stay(self, model.Side)
	}
	// Wait out Interior Depletion near this robot: any visible lander
	// in flight or interior robot still to place means the edge is
	// still receiving traffic.
	for _, o := range s.Others {
		if o.Color == model.Interior || o.Color == model.Transit {
			return model.Stay(self, model.Side)
		}
	}
	// Nearest on-line neighbours along the containing edge.
	gap := math.Inf(1)
	for _, o := range s.Others {
		if geom.OnSegment(ea, eb, o.Pos) {
			if d := self.Dist(o.Pos); d < gap {
				gap = d
			}
		}
	}
	if nd := s.NearestDist(); nd < gap {
		gap = nd
	}
	if math.IsInf(gap, 0) || gap <= 0 {
		return model.Stay(self, model.Side)
	}
	outward, ok := a.outwardNormal(s, ea, eb)
	if !ok {
		return model.Stay(self, model.Side)
	}
	h := gap * a.bulgeFrac()
	target := self.Add(outward.Mul(h))
	if !geom.PathClear(self, target, s.OtherPoints(), h*a.corridorFrac()) {
		return model.Stay(self, model.Side)
	}
	return model.MoveTo(target, model.Beacon)
}

// outwardNormal returns the unit normal of edge (ea, eb) pointing away
// from the hull interior, determined by the side on which off-line
// visible robots lie. ok is false when every visible robot is on the
// edge line (impossible in a non-collinear swarm; see the lemma in the
// line-case comment).
func (a *LogVis) outwardNormal(s model.Snapshot, ea, eb geom.Point) (geom.Point, bool) {
	n := eb.Sub(ea).Perp().Unit()
	for _, o := range s.Others {
		switch geom.Orient(ea, eb, o.Pos) {
		case geom.CCW:
			return n.Neg(), true
		case geom.CW:
			return n, true
		}
	}
	return geom.Point{}, false
}

// slot is a candidate landing interval for Interior Depletion: an empty
// stretch of a hull edge between two visible beacons.
type slot struct {
	u, v geom.Point // beacon positions, interval endpoints
	dist float64    // distance from the robot to the interval segment
}

// computeInterior handles a robot strictly inside the hull: Interior
// Depletion via beacon-directed placement. The robot finds the nearest
// empty hull-edge interval between two visible beacons (Corner or Side
// lights) with the whole visible swarm on its own side of the interval's
// line, and moves to the clamped foot of its perpendicular on the
// interval. Feet are unique per position, which keeps concurrent landers
// apart; the Transit light plus a projection guard serializes landings
// per interval, which is exactly the one-landing-per-interval-per-epoch
// discipline whose doubling yields O(log N).
func (a *LogVis) computeInterior(s model.Snapshot) model.Action {
	self := s.Self.Pos
	slots := a.candidateSlots(s)
	if len(slots) == 0 {
		return model.Stay(self, model.Interior)
	}
	slices.SortFunc(slots, compareSlots)
	// Bound the work per cycle: try the nearest few intervals and, if
	// all are busy or unreachable, wait for the next cycle. The
	// structural and corridor checks are O(V) each, so this keeps a
	// Compute at O(V log V).
	others := s.OtherPoints()
	baseMargin := s.NearestDist() * a.corridorFrac()
	// Two passes. First, local landings: slots whose perpendicular slab
	// (with slack) contains the robot and that are at most a few chord
	// lengths away. Local approach paths are short and near-
	// perpendicular to the chord, so concurrent local landers on one
	// edge descend along (near-)parallel corridors; the per-slot
	// Transit guard serializes the final approach per interval (the
	// BDCP one-landing-per-interval discipline) and stacked landers are
	// ordered by the corridor-clearance check. Second, remote flights:
	// anything else, strongly serialized — a long corridor across the
	// swarm can cross any other in-flight path, so a remote flight
	// launches only when no in-flight lander is visible at all and this
	// robot is the uncontested nearest claimant of the slot, and it
	// advances in bounded hops so its active motion segments stay short.
	nearestSlot := slots[0].dist
	for _, local := range []bool{true, false} {
		tries := 0
		maxTries := 8
		if !local {
			maxTries = 64
		}
		for _, sl := range slots {
			if tries++; tries > maxTries {
				break
			}
			if !local && sl.dist > 1.5*nearestSlot+geom.Eps {
				// Remote motion stays radial: only intervals about as
				// close as the closest one are eligible, so long
				// corridors point outward from the robot's own region
				// of the interior and two remote corridors from
				// different origins diverge instead of crossing.
				break
			}
			_, t := geom.ProjectOntoLine(sl.u, sl.v, self)
			chord := sl.u.Dist(sl.v)
			isLocal := t >= -0.25 && t <= 1.25 && sl.dist <= 4*chord
			if local != isLocal {
				continue
			}
			if !a.slotUsable(self, sl.u, sl.v, s.Others) {
				continue
			}
			// A robot farther than one hop from its landing point is
			// merely *approaching* the boundary: it drifts a bounded
			// hop along the straight line to the landing point,
			// re-Looking at fresh state between hops. Approaches need
			// no slot claim — any number of deep robots drain outward
			// in parallel, which is what keeps the deep-interior tail
			// from serializing — only the final landing hop claims the
			// interval (contest + Transit guard).
			hop := math.Max(2*chord, 8*s.NearestDist())
			rawTarget, ok := a.landingPoint(s, sl)
			if !ok {
				continue
			}
			if !local && a.slotContested(s, sl) {
				continue
			}
			if a.slotBusy(s, sl) {
				continue
			}
			target := rawTarget
			if d := self.Dist(rawTarget); !local && d > hop {
				// Hop: re-Look at fresh state every few gap-lengths
				// instead of holding one cross-swarm motion segment
				// active for a long stretch of the schedule.
				target = self.Add(rawTarget.Sub(self).Mul(hop / d))
			}
			// The corridor clearance must stay below the target's own
			// distance to the interval endpoints — or a lone far-away
			// robot (whose nearest neighbour is distant) would reject
			// every corridor for brushing past its interval's anchors —
			// and below a fraction of the corridor's own length, so a
			// millimetre hop is never vetoed by a robot metres away.
			margin := math.Min(baseMargin, chord*a.slotMargin()/4)
			margin = math.Min(margin, self.Dist(target)/4)
			if !geom.PathClear(self, target, others, margin) {
				continue
			}
			return model.MoveTo(target, model.Transit)
		}
	}
	return model.Stay(self, model.Interior)
}

// compareSlots orders candidate slots by distance, then chord length,
// then lexicographic anchors, so a robot's preference order is total and
// deterministic.
func compareSlots(a, b slot) int {
	switch {
	case a.dist < b.dist:
		return -1
	case a.dist > b.dist:
		return 1
	}
	la, lb := a.u.Dist(a.v), b.u.Dist(b.v)
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	}
	switch {
	case a.u.Less(b.u):
		return -1
	case b.u.Less(a.u):
		return 1
	case a.v.Less(b.v):
		return -1
	case b.v.Less(a.v):
		return 1
	}
	return 0
}

// slotContested reports whether a visible competitor has a better claim
// on the interval: an Interior or Transit robot strictly closer to it
// (ties broken by position order). Both contenders see each other and
// evaluate the same comparison, so at most one of any mutually visible
// pair launches a remote flight toward a given interval.
//
// The rule is deliberately strict — defer to *any* nearer competitor.
// Two relaxations were tried and rejected with measurements: dropping
// the rule entirely de-serializes remote flights and large swarms stop
// converging (collisions appear); predicting the competitor's own
// preferred interval and deferring only there costs O(V·S) per Compute
// for a negligible epoch gain. The strict rule's cost is a measurable
// super-logarithmic tail on deep-interior workloads (see T1 and
// DESIGN.md's substitution log).
func (a *LogVis) slotContested(s model.Snapshot, sl slot) bool {
	seg := geom.Seg(sl.u, sl.v)
	myDist := seg.Dist(s.Self.Pos)
	for _, o := range s.Others {
		if o.Color != model.Interior && o.Color != model.Transit {
			continue
		}
		d := seg.Dist(o.Pos)
		// The tie-break needs a strict total order on (distance,
		// position); an epsilon band here would make "contested" fail
		// transitivity and let two robots defer to each other forever.
		//lint:allow floateq exact comparison needed for a total tie-break order
		if d < myDist || (d == myDist && o.Pos.Less(s.Self.Pos)) {
			return true
		}
	}
	return false
}

// candidateSlots enumerates the empty intervals between consecutive
// visible beacons along the boundary of the visible-beacon hull. Beacons
// occupy the hull boundary, so ordering them by angle around the beacon
// hull's centroid (a convex-boundary point has a unique centroid angle)
// yields the boundary ring in O(B log B); consecutive ring members are
// exactly the landing intervals. Stale-colored beacons that are not on
// the boundary anymore are filtered by a single OnSegment check against
// the edge their angle brackets. The structural validity of each
// interval (emptiness, one-sidedness) is checked later, per tried
// interval.
func (a *LogVis) candidateSlots(s model.Snapshot) []slot {
	self := s.Self.Pos
	var beacons []geom.Point
	for _, o := range s.Others {
		// Done robots are settled corners and anchor slots just as
		// Corner robots do.
		if o.Color == model.Corner || o.Color == model.Side || o.Color == model.Done {
			beacons = append(beacons, o.Pos)
		}
	}
	if len(beacons) < 2 {
		return nil
	}
	bh := geom.ConvexHull(beacons)
	cs := bh.Corners
	var ring []geom.Point
	switch len(cs) {
	case 0, 1:
		return nil
	case 2:
		ring = collinearRing(beacons, cs[0], cs[1])
	default:
		ring = boundaryRing(beacons, cs)
	}
	if len(ring) < 2 {
		return nil
	}
	out := make([]slot, 0, len(ring))
	add := func(u, v geom.Point) {
		if u.Eq(v) {
			return
		}
		out = append(out, slot{u: u, v: v, dist: geom.Seg(u, v).Dist(self)})
	}
	for k := 0; k+1 < len(ring); k++ {
		add(ring[k], ring[k+1])
	}
	if len(cs) > 2 {
		add(ring[len(ring)-1], ring[0]) // close the ring
	}
	return out
}

// collinearRing orders the beacons of a degenerate (collinear) beacon
// set along the segment AB.
func collinearRing(beacons []geom.Point, A, B geom.Point) []geom.Point {
	type bp struct {
		p geom.Point
		t float64
	}
	run := make([]bp, 0, len(beacons))
	for _, w := range beacons {
		if geom.OnSegment(A, B, w) {
			_, t := geom.ProjectOntoLine(A, B, w)
			run = append(run, bp{p: w, t: t})
		}
	}
	slices.SortFunc(run, func(a, b bp) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		default:
			return 0
		}
	})
	out := make([]geom.Point, 0, len(run))
	for _, r := range run {
		if len(out) > 0 && out[len(out)-1].Eq(r.p) {
			continue
		}
		out = append(out, r.p)
	}
	return out
}

// boundaryRing returns the beacons that lie on the beacon hull's
// boundary, in CCW order, in O(B log B): sort everything by angle around
// the hull centroid, then sweep the hull edges in the same angular order
// and keep each beacon only if it sits on the edge its angle brackets.
func boundaryRing(beacons []geom.Point, corners []geom.Point) []geom.Point {
	c := geom.Centroid(corners)
	type ba struct {
		p   geom.Point
		ang float64
	}
	all := make([]ba, len(beacons))
	for i, w := range beacons {
		all[i] = ba{p: w, ang: w.Sub(c).Angle()}
	}
	slices.SortFunc(all, func(a, b ba) int {
		switch {
		case a.ang < b.ang:
			return -1
		case a.ang > b.ang:
			return 1
		default:
			return 0
		}
	})

	// Corner angles in the same sorted order; corners are a subset of
	// the beacons, so their angles appear in `all` too.
	ca := make([]float64, len(corners))
	ci := make([]int, len(corners)) // corner index sorted by angle
	for i, p := range corners {
		ca[i] = p.Sub(c).Angle()
		ci[i] = i
	}
	sort.Slice(ci, func(i, j int) bool { return ca[ci[i]] < ca[ci[j]] })

	// edgeFor returns the hull edge whose angular wedge contains ang:
	// between sorted corner k and the next one (wrapping).
	edgeFor := func(ang float64) (geom.Point, geom.Point) {
		// Find the last sorted corner with angle <= ang (binary search).
		lo, hi := 0, len(ci)
		for lo < hi {
			mid := (lo + hi) / 2
			if ca[ci[mid]] <= ang {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		k := lo - 1
		if k < 0 {
			k = len(ci) - 1 // wraps past -π
		}
		a := corners[ci[k]]
		b := corners[ci[(k+1)%len(ci)]]
		return a, b
	}

	out := make([]geom.Point, 0, len(all))
	for _, w := range all {
		ea, eb := edgeFor(w.ang)
		if w.p.Eq(ea) || w.p.Eq(eb) || geom.OnSegment(ea, eb, w.p) {
			if len(out) > 0 && out[len(out)-1].Eq(w.p) {
				continue
			}
			out = append(out, w.p)
		}
	}
	return out
}

// slotUsable checks the two structural conditions on an interval (u, v):
// the open segment holds no visible robot, and no settled visible robot
// lies strictly on the far side of its line (so the interval plausibly
// spans a hull-boundary stretch as seen from here). In-flight landers
// (Transit/Beacon lights) are exempt from the far-side condition: they
// legitimately sit just outside the chord of the slot they are landing
// in, and the Transit guard — not this check — arbitrates slot busyness.
// The robot itself must be strictly off the line.
func (a *LogVis) slotUsable(self, u, v geom.Point, others []model.RobotView) bool {
	mySide := geom.Orient(u, v, self)
	if mySide == geom.Collinear {
		return false
	}
	for _, w := range others {
		if w.Pos.Eq(u) || w.Pos.Eq(v) {
			continue
		}
		if geom.StrictlyBetween(u, v, w.Pos) {
			return false
		}
		if w.Color == model.Transit || w.Color == model.Beacon {
			continue
		}
		if o := geom.Orient(u, v, w.Pos); o != geom.Collinear && o != mySide {
			return false
		}
	}
	return true
}

// arcFracCap caps the sagitta of a landing arc as a fraction of its
// chord. Landers touch down on a shallow circular arc bulging slightly
// outward of the hull between the two anchor beacons, so a landed robot
// is a strict corner of the grown hull immediately. Direct corner
// insertion is what makes Interior Depletion monotone — a landed robot
// never becomes a Side robot and never re-enters the interior, which
// rules out the land/bulge/reclassify churn observed with on-chord
// landings.
const arcFracCap = 1.0 / 16

// landingSagitta returns the outward bulge height for a landing over a
// chord of the given length, in a swarm of visible diameter diam. The
// quadratic scaling |uv|²/(8·diam) makes every generation of landings
// approximate one common circle of radius ~diam: with a constant
// chord-fraction sagitta instead, each sub-slot landing pokes out
// proportionally more than the local curvature of the previous
// generation, flattening and eventually swallowing earlier landers — the
// churn loop observed at N ≥ 128.
func landingSagitta(chord, diam float64) float64 {
	h := chord * arcFracCap
	if diam > 0 {
		if q := chord * chord / (8 * diam); q < h {
			h = q
		}
	}
	return h
}

// landingPoint computes where the robot would land in the interval: its
// perpendicular-foot parameter, squashed strictly monotonically into the
// interval's interior, evaluated on the outward landing arc. Distinct
// robot positions map to distinct landing points (a hard clamp would
// collapse everything below the margin onto one exact point — that
// colocation was observed under the randomized ASYNC scheduler before
// the squash).
func (a *LogVis) landingPoint(s model.Snapshot, sl slot) (geom.Point, bool) {
	self := s.Self.Pos
	_, t := geom.ProjectOntoLine(sl.u, sl.v, self)
	// Feet inside the margins are kept exact, so robots above the
	// interval descend along parallel perpendiculars and cannot cross;
	// feet outside are mapped just inside the margin by a continuous,
	// strictly monotone squash whose targets stay close to their feet,
	// so corridors never graze far along the edge. The end margin
	// shrinks for robots already hugging the chord: a robot a hair
	// inside the hull should hop out along (nearly) its own
	// perpendicular instead of being dragged a quarter-interval
	// sideways along a grazing corridor that everything nearby blocks.
	m := a.slotMargin()
	chord := sl.u.Dist(sl.v)
	if chord <= 0 {
		return geom.Point{}, false
	}
	if f := geom.Seg(sl.u, sl.v).Dist(self) / chord; f < m {
		m = math.Max(f, 1.0/32)
	}
	switch {
	case t < m:
		x := m - t
		t = m - (m/2)*(x/(x+1))
	case t > 1-m:
		x := t - (1 - m)
		t = 1 - m + (m/2)*(x/(x+1))
	}
	// Land on the outward arc over the chord (u, v): bulge away from
	// the robot's own (interior) side.
	min, max := geom.BoundingBox(s.Points())
	diam := max.Sub(min).Norm()
	if a.AblateConstantSagitta {
		diam = 0 // disables the quadratic law; the cap fraction applies
	}
	h := landingSagitta(chord, diam)
	if h <= 0 || math.IsInf(h, 0) || math.IsNaN(h) {
		// Degenerate scales (the quadratic law underflowed against an
		// astronomically large visible diameter, or a non-finite
		// input): no safe arc exists over this chord.
		return geom.Point{}, false
	}
	if geom.Orient(sl.u, sl.v, self) == geom.CCW {
		h = -h
	}
	arc := geom.ArcThrough(sl.u, sl.v, h)
	return arc.At(t), true
}

// slotBusy applies the Transit guard: an interval with a visible
// in-flight lander nearby admits no second landing until the first
// settles. One landing per interval at a time is the BDCP discipline
// whose doubling yields the O(log N) bound; racing landers that slip
// past the guard on stale snapshots land at distinct points on the same
// arc along near-parallel perpendiculars, so the residual race is
// benign. In-flight robots far from the interval merely happen to
// project into its slab and are ignored — without the distance test, a
// handful of distant flights marks most of the boundary busy.
func (a *LogVis) slotBusy(s model.Snapshot, sl slot) bool {
	if a.AblateNoTransitGuard {
		return false
	}
	chord := sl.u.Dist(sl.v)
	seg := geom.Seg(sl.u, sl.v)
	for _, o := range s.Others {
		if o.Color != model.Transit {
			continue
		}
		_, to := geom.ProjectOntoLine(sl.u, sl.v, o.Pos)
		if to > -0.125 && to < 1.125 && seg.Dist(o.Pos) <= 8*chord {
			return true
		}
	}
	return false
}
