package core

// Property-based tests (testing/quick) on the algorithm's geometric
// invariants: landing points are strictly monotone in the robot's foot
// parameter (the collision-freedom keystone), landings stay outside the
// hull, and Compute is a pure function of the snapshot.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// landingSnap builds a triangle of corner beacons with an interior robot
// at p.
func landingSnap(p geom.Point) model.Snapshot {
	return model.Snapshot{
		Self: model.RobotView{Pos: p, Color: model.Interior},
		Others: []model.RobotView{
			{Pos: geom.Pt(0, 0), Color: model.Corner},
			{Pos: geom.Pt(100, 0), Color: model.Corner},
			{Pos: geom.Pt(50, 80), Color: model.Corner},
		},
	}
}

func TestLandingPointMonotoneInFoot(t *testing.T) {
	a := NewLogVis()
	sl := slot{u: geom.Pt(0, 0), v: geom.Pt(100, 0)}
	// Two interior robots at the same height above the bottom edge with
	// different x (feet) must land at strictly ordered points. This is
	// the property that makes racing landers safe.
	f := func(x1, x2, yFrac float64) bool {
		if x1 == x2 {
			return true
		}
		for _, v := range []float64{x1, x2, yFrac} {
			if v != v || v > 1e12 || v < -1e12 {
				return true // outside the library's operating range
			}
		}
		// Keep both strictly inside the triangle's lower region.
		x1 = 5 + mod(x1, 90)
		x2 = 5 + mod(x2, 90)
		if x1 == x2 {
			return true
		}
		y := 1 + mod(yFrac, 30)
		p1, ok1 := a.landingPoint(landingSnap(geom.Pt(x1, y)), sl)
		p2, ok2 := a.landingPoint(landingSnap(geom.Pt(x2, y)), sl)
		if !ok1 || !ok2 {
			return false
		}
		if p1.Eq(p2) {
			return false // identical landings would collide
		}
		// Order along the chord must follow the feet.
		return (x1 < x2) == (p1.X < p2.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := x - float64(int64(x/m))*m
	if v < 0 {
		v += m
	}
	return v
}

func TestLandingPointOutsideChord(t *testing.T) {
	a := NewLogVis()
	sl := slot{u: geom.Pt(0, 0), v: geom.Pt(100, 0)}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		p := geom.Pt(5+rng.Float64()*90, 1+rng.Float64()*60)
		target, ok := a.landingPoint(landingSnap(p), sl)
		if !ok {
			t.Fatal("landingPoint failed")
		}
		// The robot is above the chord (interior side); the landing
		// must be strictly below it (outside the hull).
		if geom.Orient(sl.u, sl.v, target) != geom.CW {
			t.Fatalf("landing %v not on the outward side (robot at %v)", target, p)
		}
		// And within the chord's parameter range with margins.
		_, tt := geom.ProjectOntoLine(sl.u, sl.v, target)
		if tt <= 0 || tt >= 1 {
			t.Fatalf("landing parameter %v outside (0,1)", tt)
		}
	}
}

func TestComputePure(t *testing.T) {
	// Compute must not retain state across calls: interleaving calls
	// for different snapshots must give the same results as isolated
	// calls. (Oblivious robots are a model requirement.)
	a := NewLogVis()
	rng := rand.New(rand.NewSource(7))
	snaps := make([]model.Snapshot, 20)
	for i := range snaps {
		snaps[i] = landingSnap(geom.Pt(5+rng.Float64()*90, 1+rng.Float64()*60))
	}
	isolated := make([]model.Action, len(snaps))
	for i, s := range snaps {
		isolated[i] = NewLogVis().Compute(s)
	}
	for round := 0; round < 3; round++ {
		for i := len(snaps) - 1; i >= 0; i-- {
			if got := a.Compute(snaps[i]); got != isolated[i] {
				t.Fatalf("Compute retained state: snap %d round %d: %+v vs %+v",
					i, round, got, isolated[i])
			}
		}
	}
}

func TestComputeFrameInvariantTranslation(t *testing.T) {
	// The algorithm's decisions must be translation-covariant: shifting
	// the whole snapshot shifts the target by the same vector.
	a := NewLogVis()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		p := geom.Pt(5+rng.Float64()*90, 1+rng.Float64()*60)
		shift := geom.Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		s := landingSnap(p)
		shifted := model.Snapshot{
			Self: model.RobotView{Pos: s.Self.Pos.Add(shift), Color: s.Self.Color},
		}
		for _, o := range s.Others {
			shifted.Others = append(shifted.Others,
				model.RobotView{Pos: o.Pos.Add(shift), Color: o.Color})
		}
		act := a.Compute(s)
		actShift := a.Compute(shifted)
		if act.Color != actShift.Color {
			t.Fatalf("translation changed color: %v vs %v", act.Color, actShift.Color)
		}
		want := act.Target.Add(shift)
		if want.Dist(actShift.Target) > 1e-6*(1+shift.Norm()) {
			t.Fatalf("translation broke covariance: %v vs %v (shift %v)",
				actShift.Target, want, shift)
		}
	}
}

func TestSlotBusyRespectsDistance(t *testing.T) {
	a := NewLogVis()
	sl := slot{u: geom.Pt(0, 0), v: geom.Pt(10, 0)}
	mk := func(transitAt geom.Point) model.Snapshot {
		return model.Snapshot{
			Self: model.RobotView{Pos: geom.Pt(5, 3), Color: model.Interior},
			Others: []model.RobotView{
				{Pos: geom.Pt(0, 0), Color: model.Corner},
				{Pos: geom.Pt(10, 0), Color: model.Corner},
				{Pos: transitAt, Color: model.Transit},
			},
		}
	}
	if !a.slotBusy(mk(geom.Pt(5, 2)), sl) {
		t.Error("nearby inbound lander not detected")
	}
	if a.slotBusy(mk(geom.Pt(5, 500)), sl) {
		t.Error("distant flight marked the slot busy")
	}
	if a.slotBusy(mk(geom.Pt(500, 2)), sl) {
		t.Error("lander outside the slab marked the slot busy")
	}
}
