package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// Explain walks the same decision tree as Compute and returns a
// human-readable account of the branch taken and, for a refraining
// robot, the reason each nearby option was rejected. It exists for the
// diagnostics CLI and for debugging stuck runs; the returned text is not
// part of the stable API.
func (a *LogVis) Explain(s model.Snapshot) string {
	self := s.Self.Pos
	var b strings.Builder
	act := a.Compute(s)
	fmt.Fprintf(&b, "action: target=%v color=%v stay=%v\n", act.Target, act.Color, act.IsStay(self))

	switch len(s.Others) {
	case 0:
		b.WriteString("branch: alone\n")
		return b.String()
	case 1:
		b.WriteString("branch: pair/line-endpoint\n")
		return b.String()
	}
	pts := s.Points()
	if geom.AllCollinear(pts) {
		b.WriteString("branch: collinear view\n")
		return b.String()
	}
	hull := geom.ConvexHull(pts)
	class := hull.Classify(self)
	fmt.Fprintf(&b, "branch: %v (sees %d, hull corners %d)\n", class, len(s.Others), len(hull.Corners))
	if class != geom.HullInterior {
		if class == geom.HullEdge {
			for _, o := range s.Others {
				if o.Color == model.Interior || o.Color == model.Transit {
					fmt.Fprintf(&b, "side: waiting on visible %v at %v\n", o.Color, o.Pos)
					break
				}
			}
		}
		return b.String()
	}
	slots := a.candidateSlots(s)
	sort.Slice(slots, func(i, j int) bool { return slots[i].dist < slots[j].dist })
	fmt.Fprintf(&b, "interior: %d candidate slots\n", len(slots))
	others := s.OtherPoints()
	baseMargin := s.NearestDist() * a.corridorFrac()
	for i, sl := range slots {
		if i >= 8 {
			b.WriteString("  ... (truncated)\n")
			break
		}
		_, t := geom.ProjectOntoLine(sl.u, sl.v, self)
		chord := sl.u.Dist(sl.v)
		reason := "ok"
		switch {
		case !a.slotUsable(self, sl.u, sl.v, s.Others):
			reason = "structurally unusable (occupied or far-side robot)"
		default:
			if a.slotBusy(s, sl) {
				reason = "transit guard (lander inbound)"
			} else if target, ok := a.landingPoint(s, sl); !ok {
				reason = "degenerate interval"
			} else {
				if d := self.Dist(target); d > 4*chord {
					hop := math.Max(2*chord, 8*s.NearestDist())
					if hop < d {
						target = self.Add(target.Sub(self).Mul(hop / d))
					}
				}
				margin := math.Min(baseMargin, chord*a.slotMargin()/4)
				margin = math.Min(margin, self.Dist(target)/4)
				if !geom.PathClear(self, target, others, margin) {
					reason = "corridor blocked"
				}
			}
		}
		fmt.Fprintf(&b, "  slot %v--%v dist=%.3g t=%.3g: %s\n", sl.u, sl.v, sl.dist, t, reason)
	}
	return b.String()
}
