package core

import (
	"math"
	"strings"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
)

func view(p geom.Point, c model.Color) model.RobotView {
	return model.RobotView{Pos: p, Color: c}
}

func snapOf(self geom.Point, selfColor model.Color, others ...model.RobotView) model.Snapshot {
	return model.Snapshot{Self: model.RobotView{Pos: self, Color: selfColor}, Others: others}
}

func TestPaletteConstant(t *testing.T) {
	a := NewLogVis()
	p := a.Palette()
	if len(p) > int(model.NumColors) {
		t.Fatalf("palette size %d exceeds the shared enum", len(p))
	}
	if len(p) != 7 {
		t.Errorf("palette size = %d, want 7 (the O(1) colors claim)", len(p))
	}
	seen := map[model.Color]bool{}
	for _, c := range p {
		if seen[c] {
			t.Errorf("duplicate palette color %v", c)
		}
		seen[c] = true
	}
}

func TestComputeAlone(t *testing.T) {
	a := NewLogVis()
	act := a.Compute(snapOf(geom.Pt(5, 5), model.Off))
	if !act.IsStay(geom.Pt(5, 5)) || act.Color != model.Done {
		t.Errorf("alone: %+v", act)
	}
}

func TestComputePair(t *testing.T) {
	a := NewLogVis()
	act := a.Compute(snapOf(geom.Pt(0, 0), model.Off, view(geom.Pt(10, 0), model.Off)))
	if !act.IsStay(geom.Pt(0, 0)) || act.Color != model.Corner {
		t.Errorf("pair: %+v", act)
	}
}

func TestComputeLineMiddleMovesOff(t *testing.T) {
	a := NewLogVis()
	// Middle of three collinear robots: must move perpendicularly off
	// the line with the Transit light.
	self := geom.Pt(5, 0)
	s := snapOf(self, model.Off, view(geom.Pt(0, 0), model.Off), view(geom.Pt(10, 0), model.Off))
	act := a.Compute(s)
	if act.IsStay(self) {
		t.Fatal("line middle did not move")
	}
	if act.Color != model.Transit {
		t.Errorf("line middle color = %v", act.Color)
	}
	if math.Abs(act.Target.X-5) > 1e-9 {
		t.Errorf("move not perpendicular: %v", act.Target)
	}
	if act.Target.Y == 0 {
		t.Error("target still on the line")
	}
}

func TestComputeLineEndpointHolds(t *testing.T) {
	a := NewLogVis()
	// A line endpoint sees only its (blocking) neighbour.
	act := a.Compute(snapOf(geom.Pt(0, 0), model.Off, view(geom.Pt(5, 0), model.Off)))
	if !act.IsStay(geom.Pt(0, 0)) || act.Color != model.Corner {
		t.Errorf("endpoint: %+v", act)
	}
	// An endpoint seeing several collinear robots also holds.
	act = a.Compute(snapOf(geom.Pt(0, 0), model.Off,
		view(geom.Pt(5, 1), model.Off), view(geom.Pt(10, 2), model.Off)))
	if !act.IsStay(geom.Pt(0, 0)) || act.Color != model.Corner {
		t.Errorf("multi endpoint: %+v", act)
	}
}

func TestComputeCornerHolds(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(0, 0)
	s := snapOf(self, model.Off,
		view(geom.Pt(10, 0), model.Off),
		view(geom.Pt(5, 8), model.Off),
		view(geom.Pt(4, 3), model.Off), // interior robot
	)
	act := a.Compute(s)
	if !act.IsStay(self) || act.Color != model.Corner {
		t.Errorf("corner: %+v", act)
	}
}

func TestCornerTurnsDoneWhenSettled(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(0, 0)
	s := snapOf(self, model.Corner,
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Done),
	)
	act := a.Compute(s)
	if act.Color != model.Done {
		t.Errorf("settled corner color = %v", act.Color)
	}
	// With an interior robot visible it must stay Corner.
	s.Others = append(s.Others, view(geom.Pt(5, 3), model.Interior))
	act = a.Compute(s)
	if act.Color != model.Corner {
		t.Errorf("unsettled corner color = %v", act.Color)
	}
}

func TestComputeSideWaitsForInterior(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(5, 0) // on edge between (0,0) and (10,0)
	s := snapOf(self, model.Off,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
		view(geom.Pt(5, 3), model.Interior),
	)
	act := a.Compute(s)
	if !act.IsStay(self) || act.Color != model.Side {
		t.Errorf("side with interior visible: %+v", act)
	}
}

func TestComputeSideBulgesOutward(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(5, 0)
	s := snapOf(self, model.Side,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
	)
	act := a.Compute(s)
	if act.IsStay(self) {
		t.Fatal("side did not bulge")
	}
	if act.Color != model.Beacon {
		t.Errorf("bulge color = %v", act.Color)
	}
	if act.Target.Y >= 0 {
		t.Errorf("bulge went inward: %v (hull is above the edge)", act.Target)
	}
	if math.Abs(act.Target.X-5) > 1e-9 {
		t.Errorf("bulge not perpendicular: %v", act.Target)
	}
}

func TestComputeInteriorLandsOutside(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(5, 2) // interior of the triangle
	s := snapOf(self, model.Interior,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
	)
	act := a.Compute(s)
	if act.IsStay(self) {
		t.Fatal("interior robot did not move")
	}
	if act.Color != model.Transit {
		t.Errorf("lander color = %v", act.Color)
	}
	// The landing point must be strictly outside the current hull
	// (direct corner insertion).
	hull := geom.ConvexHull([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)})
	if hull.Classify(act.Target) != geom.HullOutside {
		t.Errorf("landing %v not outside the hull", act.Target)
	}
}

func TestInteriorWaitsWithoutBeacons(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(5, 2)
	s := snapOf(self, model.Off,
		view(geom.Pt(0, 0), model.Off),
		view(geom.Pt(10, 0), model.Off),
		view(geom.Pt(5, 8), model.Off),
	)
	act := a.Compute(s)
	if !act.IsStay(self) || act.Color != model.Interior {
		t.Errorf("interior without beacons: %+v", act)
	}
}

func TestInteriorYieldsToInboundLander(t *testing.T) {
	a := NewLogVis()
	self := geom.Pt(5, 2)
	s := snapOf(self, model.Interior,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
		// A lander already descending onto the bottom edge.
		view(geom.Pt(4, 1), model.Transit),
	)
	act := a.Compute(s)
	// The robot must not race the lander into the same interval: it
	// either waits or picks a different edge.
	if !act.IsStay(self) {
		_, tt := geom.ProjectOntoLine(geom.Pt(0, 0), geom.Pt(10, 0), act.Target)
		land := geom.Seg(geom.Pt(0, 0), geom.Pt(10, 0)).Dist(act.Target) < 1
		if land && tt > 0 && tt < 1 {
			t.Errorf("raced the inbound lander: %+v", act)
		}
	}
}

func TestComputeDeterministic(t *testing.T) {
	a := NewLogVis()
	s := snapOf(geom.Pt(5, 2), model.Interior,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
	)
	first := a.Compute(s)
	for i := 0; i < 10; i++ {
		if got := a.Compute(s); got != first {
			t.Fatalf("Compute not deterministic: %+v vs %+v", got, first)
		}
	}
}

func TestLandingSagitta(t *testing.T) {
	// Capped by the chord fraction for big chords relative to diameter.
	if got := landingSagitta(16, 2); got != 1 {
		t.Errorf("capped sagitta = %v", got)
	}
	// Quadratic regime: h = c²/(8·D).
	if got := landingSagitta(4, 100); math.Abs(got-16.0/800) > 1e-12 {
		t.Errorf("quadratic sagitta = %v", got)
	}
	// Zero diameter falls back to the cap.
	if got := landingSagitta(16, 0); got != 1 {
		t.Errorf("no-diameter sagitta = %v", got)
	}
}

func TestExplainMentionsBranch(t *testing.T) {
	a := NewLogVis()
	s := snapOf(geom.Pt(5, 2), model.Interior,
		view(geom.Pt(0, 0), model.Corner),
		view(geom.Pt(10, 0), model.Corner),
		view(geom.Pt(5, 8), model.Corner),
	)
	out := a.Explain(s)
	if !strings.Contains(out, "interior") {
		t.Errorf("Explain output missing branch: %q", out)
	}
	out = a.Explain(snapOf(geom.Pt(1, 1), model.Off))
	if !strings.Contains(out, "alone") {
		t.Errorf("Explain alone: %q", out)
	}
}

func TestTunableDefaults(t *testing.T) {
	a := &LogVis{BulgeFrac: -1, SlotMargin: 0.9, CorridorFrac: 2}
	if a.bulgeFrac() != 0.25 || a.slotMargin() != 0.25 || a.corridorFrac() != 0.125 {
		t.Error("invalid tunables not defaulted")
	}
	b := &LogVis{BulgeFrac: 0.1, SlotMargin: 0.3, CorridorFrac: 0.2}
	if b.bulgeFrac() != 0.1 || b.slotMargin() != 0.3 || b.corridorFrac() != 0.2 {
		t.Error("valid tunables overridden")
	}
}
