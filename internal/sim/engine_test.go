package sim

import (
	"math"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// stayAlgo never moves and never changes color: the simplest correct
// algorithm for configurations that already satisfy CV.
type stayAlgo struct{}

func (stayAlgo) Name() string           { return "stay" }
func (stayAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (stayAlgo) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Off)
}

// chaseAlgo moves toward the nearest visible robot's position — a
// deliberately colliding algorithm for exercising the safety checker.
type chaseAlgo struct{}

func (chaseAlgo) Name() string           { return "chase" }
func (chaseAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (chaseAlgo) Compute(s model.Snapshot) model.Action {
	v, ok := s.Nearest()
	if !ok {
		return model.Stay(s.Self.Pos, model.Off)
	}
	return model.MoveTo(v.Pos, model.Off)
}

// swapAlgo makes exactly two robots exchange positions along the same
// line — the canonical path-overlap violation.
type swapAlgo struct{}

func (swapAlgo) Name() string           { return "swap" }
func (swapAlgo) Palette() []model.Color { return []model.Color{model.Off, model.Done} }
func (swapAlgo) Compute(s model.Snapshot) model.Action {
	if s.Self.Color == model.Done || len(s.Others) != 1 {
		return model.Stay(s.Self.Pos, model.Done)
	}
	return model.MoveTo(s.Others[0].Pos, model.Done)
}

// badColorAlgo lights an undeclared color.
type badColorAlgo struct{}

func (badColorAlgo) Name() string           { return "badcolor" }
func (badColorAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (badColorAlgo) Compute(s model.Snapshot) model.Action {
	return model.Stay(s.Self.Pos, model.Beacon)
}

// badTargetAlgo computes a NaN destination.
type badTargetAlgo struct{}

func (badTargetAlgo) Name() string           { return "badtarget" }
func (badTargetAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (badTargetAlgo) Compute(s model.Snapshot) model.Action {
	return model.MoveTo(geom.Point{X: math.NaN(), Y: 0}, model.Off)
}

// spinAlgo never stabilizes: each cycle it orbits its start region.
type spinAlgo struct{}

func (spinAlgo) Name() string           { return "spin" }
func (spinAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (spinAlgo) Compute(s model.Snapshot) model.Action {
	return model.MoveTo(s.Self.Pos.RotateAround(geom.Pt(0, 0), 0.3), model.Off)
}

func run(t *testing.T, algo model.Algorithm, pts []geom.Point, o Options) Result {
	t.Helper()
	res, err := Run(algo, pts, o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	opt := DefaultOptions(sched.NewFSync(), 1)
	if _, err := Run(nil, []geom.Point{geom.Pt(0, 0)}, opt); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := Run(stayAlgo{}, nil, opt); err == nil {
		t.Error("empty start accepted")
	}
	if _, err := Run(stayAlgo{}, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0)}, opt); err == nil {
		t.Error("duplicate start accepted")
	}
	if _, err := Run(stayAlgo{}, []geom.Point{{X: math.Inf(1), Y: 0}}, opt); err == nil {
		t.Error("non-finite start accepted")
	}
	if _, err := Run(stayAlgo{}, []geom.Point{geom.Pt(0, 0)}, Options{Seed: 1}); err == nil {
		t.Error("missing scheduler accepted")
	}
}

func TestTrivialConfigurations(t *testing.T) {
	for _, pts := range [][]geom.Point{
		{geom.Pt(5, 5)},
		{geom.Pt(0, 0), geom.Pt(10, 0)},
		{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)},
	} {
		res := run(t, stayAlgo{}, pts, DefaultOptions(sched.NewFSync(), 1))
		if !res.Reached {
			t.Errorf("n=%d: CV start not recognized as terminal", len(pts))
		}
		if res.Collisions != 0 || res.PathCrossings != 0 {
			t.Errorf("n=%d: violations on a stationary run", len(pts))
		}
	}
}

func TestStayAlgoOnBlockedLineNeverFinishes(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 20
	res := run(t, stayAlgo{}, pts, opt)
	if res.Reached {
		t.Error("blocked line reported as CV")
	}
	if res.Epochs != 20 {
		t.Errorf("expected MaxEpochs abort, got %d epochs", res.Epochs)
	}
	if res.FirstCVEpoch != -1 {
		t.Errorf("FirstCVEpoch = %d on a permanently blocked run", res.FirstCVEpoch)
	}
}

func TestCollisionDetection(t *testing.T) {
	// Two robots chasing each other under FSYNC land on each other's
	// old positions simultaneously; over a few rounds chase dynamics
	// produce overlaps/pass-throughs the checker must flag.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 10
	res := run(t, chaseAlgo{}, pts, opt)
	if res.Collisions == 0 && res.PathCrossings == 0 {
		t.Error("chase produced no recorded violations")
	}
}

func TestSwapPathOverlap(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 5
	res := run(t, swapAlgo{}, pts, opt)
	if res.PathCrossings == 0 {
		t.Error("simultaneous swap not flagged as overlapping paths")
	}
}

func TestPaletteViolation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 3
	res := run(t, badColorAlgo{}, pts, opt)
	found := false
	for _, v := range res.Violations {
		if v.Kind == VPalette {
			found = true
		}
	}
	if !found {
		t.Error("undeclared color not flagged")
	}
}

func TestBadTargetViolation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 3
	res := run(t, badTargetAlgo{}, pts, opt)
	found := false
	for _, v := range res.Violations {
		if v.Kind == VBadTarget {
			found = true
		}
	}
	if !found {
		t.Error("non-finite target not flagged")
	}
	for _, p := range res.Final {
		if !p.IsFinite() {
			t.Error("non-finite position leaked into the world")
		}
	}
}

func TestMaxEpochsAbort(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 1)
	opt.MaxEpochs = 15
	res := run(t, spinAlgo{}, pts, opt)
	if res.Reached {
		t.Error("spinning swarm reported as terminal")
	}
	if res.Epochs > 15 {
		t.Errorf("epochs %d exceeded MaxEpochs", res.Epochs)
	}
}

func TestDeterminism(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(3, 7), geom.Pt(8, 4)}
	for _, name := range sched.Names() {
		a := run(t, spinAlgo{}, pts, withEpochs(DefaultOptions(sched.ByName(name), 42), 10))
		b := run(t, spinAlgo{}, pts, withEpochs(DefaultOptions(sched.ByName(name), 42), 10))
		if a.Events != b.Events || a.Cycles != b.Cycles || a.TotalDist != b.TotalDist {
			t.Errorf("%s: runs with equal seeds diverge", name)
		}
		for i := range a.Final {
			if !a.Final[i].Eq(b.Final[i]) {
				t.Errorf("%s: final positions diverge at %d", name, i)
			}
		}
	}
}

func withEpochs(o Options, epochs int) Options {
	o.MaxEpochs = epochs
	return o
}

func TestEpochAccountingFSync(t *testing.T) {
	// Under FSYNC every robot completes exactly one cycle per epoch, so
	// cycles == n × epochs (modulo the final partial wave).
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0), geom.Pt(0, -10)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 7
	res := run(t, spinAlgo{}, pts, opt)
	perEpoch := float64(res.Cycles) / float64(res.Epochs)
	if perEpoch < 3.5 || perEpoch > 4.5 {
		t.Errorf("FSYNC cycles per epoch = %v, want ≈ 4", perEpoch)
	}
}

func TestTraceRecording(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.RecordTrace = true
	res := run(t, stayAlgo{}, pts, opt)
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	kinds := map[string]bool{}
	for _, e := range res.Trace {
		kinds[e.Kind] = true
	}
	if !kinds["look"] || !kinds["compute"] {
		t.Errorf("trace kinds = %v", kinds)
	}
}

func TestColorsOf(t *testing.T) {
	got := ColorsOf([]model.Color{model.Off, model.Corner, model.Corner, model.Done})
	if len(got) != 3 {
		t.Errorf("ColorsOf = %v", got)
	}
}

func TestNonRigidStillSafe(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8), geom.Pt(4, 3)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 3)
	opt.NonRigid = true
	opt.MaxEpochs = 10
	res := run(t, spinAlgo{}, pts, opt)
	// Non-rigid truncation must keep every executed move a prefix of
	// the intended segment: all positions remain finite and inside the
	// plausible orbit radius.
	for _, p := range res.Final {
		if !p.IsFinite() || p.Norm() > 100 {
			t.Errorf("non-rigid run produced position %v", p)
		}
	}
}
