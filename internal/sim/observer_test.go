package sim

import (
	"context"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// countingObserver records every callback for assertion.
type countingObserver struct {
	starts     int
	info       RunInfo
	events     int
	cycles     int
	cycleMoves int
	phases     [NumPhases]int
	moves      int
	epochs     []EpochSample
	violations []Violation
	ends       int
	endErr     error
	endResult  *Result
}

func (c *countingObserver) RunStart(info RunInfo) { c.starts++; c.info = info }
func (c *countingObserver) Event(TraceEvent)      { c.events++ }
func (c *countingObserver) CycleEnd(ci CycleInfo) {
	c.cycles++
	c.phases[ci.Phase]++
	if ci.Moved {
		c.cycleMoves++
	}
}
func (c *countingObserver) MoveEnd(MoveInfo)           { c.moves++ }
func (c *countingObserver) EpochEnd(s EpochSample)     { c.epochs = append(c.epochs, s) }
func (c *countingObserver) ViolationFound(v Violation) { c.violations = append(c.violations, v) }
func (c *countingObserver) RunEnd(res *Result, aborted error) {
	c.ends++
	c.endResult = res
	c.endErr = aborted
}

func TestObserverCallbackCounts(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0), geom.Pt(0, -10)}
	obs := &countingObserver{}
	opt := DefaultOptions(sched.NewFSync(), 3)
	opt.MaxEpochs = 8
	opt.Observer = obs
	res := run(t, spinAlgo{}, pts, opt)

	if obs.starts != 1 || obs.ends != 1 {
		t.Fatalf("RunStart=%d RunEnd=%d, want 1/1", obs.starts, obs.ends)
	}
	want := RunInfo{Algorithm: "spin", Scheduler: res.Scheduler, N: 4, Seed: 3}
	if obs.info != want {
		t.Errorf("RunInfo = %+v, want %+v", obs.info, want)
	}
	if obs.endResult == nil || obs.endResult.Epochs != res.Epochs {
		t.Errorf("RunEnd result mismatch: %+v", obs.endResult)
	}
	if obs.endErr != nil {
		t.Errorf("RunEnd aborted = %v on a normal run", obs.endErr)
	}
	if obs.events != res.Events {
		t.Errorf("Event callbacks = %d, Result.Events = %d", obs.events, res.Events)
	}
	if obs.cycles != res.Cycles {
		t.Errorf("CycleEnd callbacks = %d, Result.Cycles = %d", obs.cycles, res.Cycles)
	}
	if obs.moves != res.Moves || obs.cycleMoves != res.Moves {
		t.Errorf("MoveEnd=%d cycleMoves=%d, Result.Moves=%d", obs.moves, obs.cycleMoves, res.Moves)
	}
	if len(obs.epochs) != res.Epochs {
		t.Errorf("EpochEnd callbacks = %d, Result.Epochs = %d", len(obs.epochs), res.Epochs)
	}
	for i, s := range obs.epochs {
		if s.Epoch != i+1 {
			t.Errorf("epoch sample %d has Epoch=%d", i, s.Epoch)
		}
	}
}

func TestPhaseAttributionSums(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0), geom.Pt(0, -10)}
	obs := &countingObserver{}
	opt := DefaultOptions(sched.NewAsyncRandom(), 7)
	opt.MaxEpochs = 8
	opt.Observer = obs
	res := run(t, spinAlgo{}, pts, opt)

	sumCycles, sumMoves := 0, 0
	for _, p := range AllPhases() {
		sumCycles += res.PhaseCycles[p]
		sumMoves += res.PhaseMoves[p]
	}
	if sumCycles != res.Cycles {
		t.Errorf("sum(PhaseCycles) = %d, Cycles = %d", sumCycles, res.Cycles)
	}
	if sumMoves != res.Moves {
		t.Errorf("sum(PhaseMoves) = %d, Moves = %d", sumMoves, res.Moves)
	}
	if obs.phases != res.PhaseCycles {
		t.Errorf("observer phases %v != Result.PhaseCycles %v", obs.phases, res.PhaseCycles)
	}
	// Per-epoch phase counts cover every cycle completed before the last
	// epoch boundary; the tail of the run (after it) is uncounted.
	epochSum := 0
	for _, s := range obs.epochs {
		for _, p := range AllPhases() {
			epochSum += s.Phases[p]
		}
	}
	if epochSum > res.Cycles {
		t.Errorf("epoch phase counts %d exceed total cycles %d", epochSum, res.Cycles)
	}
	// spinAlgo shows only Off, so all attribution lands in PhaseOther.
	if res.PhaseCycles[PhaseOther] != res.Cycles {
		t.Errorf("Off-palette run attributed outside PhaseOther: %v", res.PhaseCycles)
	}
}

func TestObserverEpochSamplesWithoutSampleEpochs(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0)}
	obs := &countingObserver{}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 4
	opt.Observer = obs
	res := run(t, spinAlgo{}, pts, opt)

	if len(obs.epochs) == 0 {
		t.Fatal("observer got no epoch samples")
	}
	if len(res.EpochSamples) != 0 {
		t.Errorf("Result.EpochSamples populated (%d) without SampleEpochs", len(res.EpochSamples))
	}
	// The observer samples must still carry the hull partition.
	s := obs.epochs[0]
	if s.Corners+s.EdgeRobots+s.Interior != len(pts) {
		t.Errorf("epoch sample partition %d+%d+%d != n=%d",
			s.Corners, s.EdgeRobots, s.Interior, len(pts))
	}
}

func TestObserverDoesNotPerturbRun(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(3, 7), geom.Pt(8, 4)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 11)
	opt.MaxEpochs = 16
	plain := run(t, spinAlgo{}, pts, opt)

	opt.Observer = &countingObserver{}
	observed := run(t, spinAlgo{}, pts, opt)

	if plain.Epochs != observed.Epochs || plain.Events != observed.Events ||
		plain.Cycles != observed.Cycles || plain.Moves != observed.Moves {
		t.Errorf("observer changed the run: %+v vs %+v", plain, observed)
	}
	for i := range plain.Final {
		if plain.Final[i] != observed.Final[i] {
			t.Fatalf("final position %d differs with observer", i)
		}
	}
}

func TestObserverViolationCallback(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	obs := &countingObserver{}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.MaxEpochs = 2
	opt.Observer = obs
	res := run(t, badColorAlgo{}, pts, opt)

	if len(res.Violations) == 0 {
		t.Fatal("expected palette violations")
	}
	if len(obs.violations) != len(res.Violations) {
		t.Errorf("observer saw %d violations, Result has %d",
			len(obs.violations), len(res.Violations))
	}
	if obs.violations[0].Kind != VPalette {
		t.Errorf("violation kind = %q, want %q", obs.violations[0].Kind, VPalette)
	}
}

func TestObserverRunEndAborted(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0)}
	obs := &countingObserver{}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.Observer = obs
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, spinAlgo{}, pts, opt); err == nil {
		t.Fatal("pre-cancelled run returned nil error")
	}
	if obs.ends != 1 {
		t.Fatalf("RunEnd calls = %d", obs.ends)
	}
	if obs.endErr == nil {
		t.Error("RunEnd aborted error is nil for a cancelled run")
	}
}

func TestPhaseOfMapping(t *testing.T) {
	cases := []struct {
		c model.Color
		p Phase
	}{
		{model.Interior, PhaseInterior},
		{model.Transit, PhaseInterior},
		{model.Side, PhaseEdge},
		{model.Beacon, PhaseEdge},
		{model.Corner, PhaseCorner},
		{model.Done, PhaseCorner},
		{model.Off, PhaseOther},
		{model.Line, PhaseOther},
	}
	for _, tc := range cases {
		if got := PhaseOf(tc.c); got != tc.p {
			t.Errorf("PhaseOf(%v) = %v, want %v", tc.c, got, tc.p)
		}
	}
	seen := map[string]bool{}
	for _, p := range AllPhases() {
		if seen[p.String()] {
			t.Errorf("duplicate phase name %q", p)
		}
		seen[p.String()] = true
	}
}
