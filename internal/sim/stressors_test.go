package sim

import (
	"math"
	"math/rand"
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// beaconProbe publishes Beacon when it sees two others (the middle of a
// collinear triple) and Off otherwise; nobody ever moves. Every snapshot
// delivered to an end robot (exactly one visible other) is recorded so
// tests can assert what survivors observe across a crash.
type beaconProbe struct {
	endSnaps []model.Snapshot
}

func (*beaconProbe) Name() string           { return "beacon-probe" }
func (*beaconProbe) Palette() []model.Color { return []model.Color{model.Off, model.Beacon} }
func (p *beaconProbe) Compute(s model.Snapshot) model.Action {
	if len(s.Others) == 1 {
		p.endSnaps = append(p.endSnaps, s)
	}
	if len(s.Others) == 2 {
		return model.Stay(s.Self.Pos, model.Beacon)
	}
	return model.Stay(s.Self.Pos, model.Off)
}

// moveOnce relocates one unit up on its first cycle and then stays,
// marking completion with Done — a minimal mover for pinning the
// non-rigid truncation distributions.
type moveOnce struct{}

func (moveOnce) Name() string           { return "move-once" }
func (moveOnce) Palette() []model.Color { return []model.Color{model.Off, model.Done} }
func (moveOnce) Compute(s model.Snapshot) model.Action {
	if s.Self.Color == model.Done {
		return model.Stay(s.Self.Pos, model.Done)
	}
	return model.MoveTo(geom.Pt(s.Self.Pos.X, s.Self.Pos.Y+1), model.Done)
}

// jitterProbe stays forever and records every observed other-position.
type jitterProbe struct {
	seen []geom.Point
}

func (*jitterProbe) Name() string           { return "jitter-probe" }
func (*jitterProbe) Palette() []model.Color { return []model.Color{model.Off} }
func (p *jitterProbe) Compute(s model.Snapshot) model.Action {
	for _, o := range s.Others {
		p.seen = append(p.seen, o.Pos)
	}
	return model.Stay(s.Self.Pos, model.Off)
}

// multiStep wraps a scheduler to force multi-sub-step moves, so a
// robot is actually observable in the Moving stage between events.
type multiStep struct{ sched.Scheduler }

func (multiStep) MoveSteps(*rand.Rand) int { return 4 }

func square() []geom.Point {
	return []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4)}
}

func TestStressorValidation(t *testing.T) {
	pts := square()
	base := func() Options { return DefaultOptions(sched.NewFSync(), 1) }

	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"crash robot out of range", func(o *Options) { o.Crashes = []CrashSpec{{Robot: 4}} }},
		{"crash robot negative", func(o *Options) { o.Crashes = []CrashSpec{{Robot: -1}} }},
		{"duplicate crash robot", func(o *Options) { o.Crashes = []CrashSpec{{Robot: 1}, {Robot: 1, AtEvent: 5}} }},
		{"no survivors", func(o *Options) {
			o.Crashes = []CrashSpec{{Robot: 0}, {Robot: 1}, {Robot: 2}, {Robot: 3}}
		}},
		{"negative AtEvent", func(o *Options) { o.Crashes = []CrashSpec{{Robot: 0, AtEvent: -3}} }},
		{"unknown stage", func(o *Options) { o.Crashes = []CrashSpec{{Robot: 0, Stage: sched.Moving + 1}} }},
		{"NaN jitter", func(o *Options) { o.SensorJitter = math.NaN() }},
		{"negative jitter", func(o *Options) { o.SensorJitter = -1e-9 }},
		{"infinite jitter", func(o *Options) { o.SensorJitter = math.Inf(1) }},
		{"unknown distribution", func(o *Options) { o.NonRigidDist = "gaussian" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := base()
			tc.mut(&opt)
			if _, err := Run(stayAlgo{}, pts, opt); err == nil {
				t.Fatalf("want validation error, got nil")
			}
		})
	}
}

// TestCrashedLightVisibleToSurvivors pins the crash-fault observation
// model: a halted robot's frozen body and last published light stay in
// every survivor's snapshot, and it keeps obstructing lines of sight.
// Three collinear robots; the middle one lights Beacon on its first
// cycle and is then crashed. The end robots must forever observe exactly
// one other — the Beacon at the crash position — never each other.
func TestCrashedLightVisibleToSurvivors(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	probe := &beaconProbe{}
	opt := DefaultOptions(sched.NewFSync(), 7)
	opt.MaxEpochs = 6
	opt.RecordTrace = true
	// Fire after the first full epoch, once the middle robot has
	// published Beacon and returned to Idle.
	opt.Crashes = []CrashSpec{{Robot: 1, AtEvent: 6, Stage: sched.Idle}}

	res, err := Run(probe, pts, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 1 {
		t.Fatalf("Crashed = %v, want [1]", res.Crashed)
	}
	if res.FinalColors[1] != model.Beacon {
		t.Fatalf("crashed robot's frozen light = %v, want Beacon", res.FinalColors[1])
	}
	if res.Reached {
		// Survivors 0 and 2 are blocked by the frozen middle robot, so
		// survivor-CV must be false.
		t.Fatalf("Reached=true, but survivors are mutually obstructed by the crashed robot")
	}
	crashEvent := -1
	for _, ev := range res.Trace {
		if ev.Kind == "crash" {
			crashEvent = ev.Event
			if ev.Robot != 1 {
				t.Fatalf("crash trace event for robot %d, want 1", ev.Robot)
			}
		}
	}
	if crashEvent < 0 {
		t.Fatalf("no crash event in trace")
	}
	if len(probe.endSnaps) == 0 {
		t.Fatalf("end robots recorded no snapshots")
	}
	// After the first epoch every end-robot snapshot postdates the
	// Beacon publish; the tail ones postdate the crash too. All must
	// show exactly the frozen middle robot.
	last := probe.endSnaps[len(probe.endSnaps)-1]
	if len(last.Others) != 1 {
		t.Fatalf("survivor sees %d others, want 1 (crashed robot must occlude the far end)", len(last.Others))
	}
	if got := last.Others[0]; !got.Pos.Eq(geom.Pt(1, 0)) || got.Color != model.Beacon {
		t.Fatalf("survivor observes %v at %v, want Beacon at (1,0)", got.Color, got.Pos)
	}
}

// TestCrashPreservesPrefixDeterminism pins the deterministic-prefix
// contract: a run with an armed-but-late crash spec replays the clean
// run's event stream byte for byte until the fault fires.
func TestCrashPreservesPrefixDeterminism(t *testing.T) {
	pts := square()
	mk := func(crash []CrashSpec) Result {
		opt := DefaultOptions(sched.NewAsyncRandom(), 42)
		opt.MaxEpochs = 8
		opt.RecordTrace = true
		opt.Crashes = crash
		res, err := Run(&jitterProbe{}, pts, opt)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	clean := mk(nil)
	faulty := mk([]CrashSpec{{Robot: 2, AtEvent: 10, Stage: sched.Idle}})

	crashAt := -1
	for i, ev := range faulty.Trace {
		if ev.Kind == "crash" {
			crashAt = i
			break
		}
	}
	if crashAt < 0 {
		t.Fatalf("crash never fired")
	}
	for i := 0; i < crashAt; i++ {
		if clean.Trace[i] != faulty.Trace[i] {
			t.Fatalf("trace diverges before the crash at index %d: clean %+v, faulty %+v",
				i, clean.Trace[i], faulty.Trace[i])
		}
	}
}

// TestCrashAtQuiescentConfigKeepsSurvivorCV: crash one corner of a
// strictly convex swarm of stayers — the survivors remain in Complete
// Visibility (the frozen hull corner obstructs nothing) and the run
// terminates Reached with the fault on record.
func TestCrashAtQuiescentConfigKeepsSurvivorCV(t *testing.T) {
	opt := DefaultOptions(sched.NewFSync(), 3)
	opt.Crashes = []CrashSpec{{Robot: 3, AtEvent: 0, Stage: sched.Idle}}
	res, err := Run(stayAlgo{}, square(), opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Reached {
		t.Fatalf("survivors of a convex stay-swarm must reach survivor-CV; %+v", res)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 3 {
		t.Fatalf("Crashed = %v, want [3]", res.Crashed)
	}
}

// TestCrashMidMoveFreezesPartialPosition: a robot crashed in the Moving
// stage stops at its last completed sub-step, strictly between source
// and target.
func TestCrashMidMoveFreezesPartialPosition(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}
	opt := DefaultOptions(multiStep{sched.NewFSync()}, 5)
	opt.MaxEpochs = 8
	opt.Crashes = []CrashSpec{{Robot: 0, AtEvent: 0, Stage: sched.Moving}}
	res, err := Run(moveOnce{}, pts, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Crashed) != 1 || res.Crashed[0] != 0 {
		t.Fatalf("Crashed = %v, want [0]", res.Crashed)
	}
	y := res.Final[0].Y
	if !(y > 0) || !(y < 1) {
		t.Fatalf("robot crashed mid-move ended at y=%v, want strictly inside (0, 1)", y)
	}
	// The survivor still finishes its own relocation.
	if d := math.Abs(res.Final[1].Y - 1); !(d < 1e-12) {
		t.Fatalf("survivor final y=%v, want 1", res.Final[1].Y)
	}
}

func TestNonRigidDistributions(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}
	final := func(dist NonRigidDist, seed int64) []geom.Point {
		opt := DefaultOptions(sched.NewFSync(), seed)
		opt.NonRigid = true
		opt.MinMoveFrac = 0.5
		opt.NonRigidDist = dist
		res, err := Run(moveOnce{}, pts, opt)
		if err != nil {
			t.Fatalf("Run(%s): %v", dist, err)
		}
		return res.Final
	}

	// The empty default and the explicit uniform name are the same
	// distribution drawn from the same stream: identical finals.
	f0, fu := final("", 11), final(NonRigidUniform, 11)
	for i := range f0 {
		if !f0[i].Eq(fu[i]) {
			t.Fatalf("empty and uniform dist diverge: %v vs %v", f0, fu)
		}
	}
	for i := range f0 {
		if y := f0[i].Y; !(y >= 0.5) || !(y <= 1) {
			t.Fatalf("uniform truncation y=%v outside [0.5, 1]", y)
		}
	}

	// Minimal: every move cut to exactly the guaranteed fraction.
	for _, p := range final(NonRigidMinimal, 11) {
		if d := math.Abs(p.Y - 0.5); !(d < 1e-15) {
			t.Fatalf("minimal truncation y=%v, want exactly 0.5", p.Y)
		}
	}

	// Quadratic: inside [0.5, 1] like uniform, but a valid draw.
	for _, p := range final(NonRigidQuadratic, 11) {
		if y := p.Y; !(y >= 0.5) || !(y <= 1) {
			t.Fatalf("quadratic truncation y=%v outside [0.5, 1]", y)
		}
	}

	// Bimodal: every move ends at exactly the floor or exactly the
	// target, never in between.
	for seed := int64(1); seed <= 8; seed++ {
		for _, p := range final(NonRigidBimodal, seed) {
			dFloor := math.Abs(p.Y - 0.5)
			dFull := math.Abs(p.Y - 1)
			if !(dFloor < 1e-15) && !(dFull < 1e-15) {
				t.Fatalf("bimodal truncation y=%v, want 0.5 or 1", p.Y)
			}
		}
	}
}

// TestSensorJitterPerturbsOnlyObservations: with jitter enabled the
// world, the trace and the final configuration stay exact; only the
// snapshots handed to Compute wobble, each observed position within the
// amplitude of its true one.
func TestSensorJitterPerturbsOnlyObservations(t *testing.T) {
	pts := square()
	const J = 1e-3
	probe := &jitterProbe{}
	opt := DefaultOptions(sched.NewFSync(), 9)
	opt.SensorJitter = J
	res, err := Run(probe, pts, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Reached {
		t.Fatalf("stay-swarm in convex position must quiesce under jitter")
	}
	for i, p := range res.Final {
		if !p.Eq(pts[i]) {
			t.Fatalf("jitter moved the world: robot %d at %v, started %v", i, p, pts[i])
		}
	}
	if len(probe.seen) == 0 {
		t.Fatalf("probe recorded no observations")
	}
	perturbed := false
	for _, q := range probe.seen {
		best := math.Inf(1)
		exactHit := false
		for _, p := range pts {
			dx, dy := math.Abs(q.X-p.X), math.Abs(q.Y-p.Y)
			if dx <= J && dy <= J {
				if d := math.Max(dx, dy); d < best {
					best = d
				}
				if q.Eq(p) {
					exactHit = true
				}
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("observed position %v is not within jitter %v of any robot", q, J)
		}
		if !exactHit {
			perturbed = true
		}
	}
	if !perturbed {
		t.Fatalf("jitter of %v never perturbed any observation", J)
	}

	// The scheduler stream is untouched by jitter: same seed, same
	// algorithm, same event count with and without it.
	optClean := DefaultOptions(sched.NewFSync(), 9)
	clean, err := Run(&jitterProbe{}, pts, optClean)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if clean.Events != res.Events || clean.Epochs != res.Epochs {
		t.Fatalf("jitter changed the interleaving: %d events/%d epochs vs clean %d/%d",
			res.Events, res.Epochs, clean.Events, clean.Epochs)
	}
}
