// Package sim is the execution engine of the robots-with-lights model: it
// runs an Algorithm over a Scheduler, delivers snapshots with obstructed
// visibility, executes moves as interleavable sub-stepped segments,
// counts epochs, and verifies the safety properties the paper claims —
// no two robots ever share a position, no moving robot passes through
// another, and the paths of temporally overlapping moves never cross.
// Safety verdicts are confirmed with exact rational arithmetic, so a
// reported zero is not a tolerance artifact.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"luxvis/internal/geom"
	"luxvis/internal/grid"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// Options configures a run. The zero value is not runnable: a Scheduler
// is mandatory. Use DefaultOptions for sensible defaults.
type Options struct {
	// Scheduler decides the activation order (required).
	Scheduler sched.Scheduler
	// Seed drives every random choice of the run (scheduler and
	// non-rigid truncation). Runs are reproducible per (algorithm,
	// start, Options).
	Seed int64
	// MaxEpochs aborts the run after this many epochs (default 4096).
	MaxEpochs int
	// MaxEvents is a hard event-count cap (default derived from
	// MaxEpochs and the swarm size).
	MaxEvents int
	// NonRigid enables the non-rigid motion adversary: each move may be
	// truncated to a random fraction of its segment, at least
	// MinMoveFrac. The paper assumes rigid moves; this is a stress mode.
	NonRigid bool
	// MinMoveFrac is the guaranteed fraction of a non-rigid move
	// (default 0.3). Values outside (0, 1] are clamped.
	MinMoveFrac float64
	// NonRigidDist selects the truncation-fraction distribution when
	// NonRigid is set. The empty default is NonRigidUniform and replays
	// historical seeds byte-for-byte; see NonRigidDists for the rest.
	NonRigidDist NonRigidDist
	// Crashes schedules fail-stop faults (see CrashSpec). Crashed robots
	// freeze in place with their last published light and stay visible
	// to survivors; the run's terminal predicate becomes Complete
	// Visibility among survivors, with crashed robots still obstructing.
	Crashes []CrashSpec
	// SensorJitter, when positive, perturbs every observed position in a
	// snapshot's Others by an independent uniform offset in
	// [-SensorJitter, +SensorJitter] per coordinate. Only observations
	// are perturbed — the world, the trace, and all safety checks see
	// exact positions. Jitter draws come from a dedicated RNG stream, so
	// the scheduler interleaving of a seed is unchanged.
	SensorJitter float64
	// SkipSafetyChecks disables collision and path-crossing
	// verification (for raw-throughput benchmarks only).
	SkipSafetyChecks bool
	// RecordTrace retains a full event trace in the Result.
	RecordTrace bool
	// SampleEpochs records one EpochSample per epoch boundary in the
	// Result — the convergence dynamics (hull composition and movement
	// per epoch) behind the F7 figure.
	SampleEpochs bool
	// Observer, when non-nil, receives engine callbacks while the run
	// executes (see the Observer interface). A nil Observer is the
	// benchmark path: disabled observation costs one branch per event.
	// With an Observer attached, epoch-boundary samples are computed
	// even when SampleEpochs is false (they feed EpochEnd).
	Observer Observer
}

// Engine defaults, applied by RunCtx to zero Options fields. Exported
// so API layers (internal/serve) can canonicalize a request with
// explicit default values to the same run identity as one that omits
// them.
const (
	// DefaultMaxEpochs is the epoch cap when Options.MaxEpochs is zero.
	DefaultMaxEpochs = 4096
	// DefaultMinMoveFrac is the guaranteed non-rigid move fraction when
	// Options.MinMoveFrac is unset or out of range.
	DefaultMinMoveFrac = 0.3
)

// DefaultOptions returns Options with the given scheduler and seed and
// all defaults filled in.
func DefaultOptions(s sched.Scheduler, seed int64) Options {
	return Options{Scheduler: s, Seed: seed, MaxEpochs: DefaultMaxEpochs, MinMoveFrac: DefaultMinMoveFrac}
}

// ViolationKind classifies a safety violation.
type ViolationKind string

// Violation kinds reported by the engine.
const (
	// VColocation: two robots at the same exact position.
	VColocation ViolationKind = "colocation"
	// VPassThrough: a moving robot's sub-step passed exactly through
	// another robot's position.
	VPassThrough ViolationKind = "pass-through"
	// VPathCross: two temporally overlapping moves with properly
	// crossing (or collinearly overlapping) path segments.
	VPathCross ViolationKind = "path-cross"
	// VPalette: an algorithm set a color outside its declared palette.
	VPalette ViolationKind = "palette"
	// VBadTarget: an algorithm computed a non-finite target.
	VBadTarget ViolationKind = "bad-target"
)

// Violation is one detected safety violation.
type Violation struct {
	Kind   ViolationKind
	Event  int
	Robots [2]int
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at event %d robots %v: %s", v.Kind, v.Event, v.Robots, v.Detail)
}

// EpochSample is the aggregate state at one epoch boundary (only with
// Options.SampleEpochs).
type EpochSample struct {
	Epoch int
	// Corners, EdgeRobots and Interior partition the swarm by global
	// hull classification at the boundary.
	Corners    int
	EdgeRobots int
	Interior   int
	// MovesSoFar is the cumulative count of completed relocations.
	MovesSoFar int
	// CV reports whether Complete Visibility held at the boundary.
	CV bool
	// Phases counts the LCM cycles completed during this epoch (since
	// the previous boundary), bucketed by phase attribution — the
	// per-epoch decomposition of where the run's work went.
	Phases [NumPhases]int
	// PhaseMoves counts the subset of those cycles that relocated the
	// robot; PhaseMoves[PhaseInterior] is the epoch's BDCP flights.
	PhaseMoves [NumPhases]int
}

// TraceEvent is one recorded engine event (only with RecordTrace).
type TraceEvent struct {
	Event int
	Robot int
	Kind  string // "look", "compute", "step", "crash"
	Pos   geom.Point
	Color model.Color
	// Epoch is the number of epochs completed when the event fired
	// (events during the first epoch carry 0). It gives trace consumers
	// — the replay stream's ?from=epoch seek in particular — an exact
	// epoch index without re-deriving boundaries from the event order.
	Epoch int
}

// Result summarizes a run.
type Result struct {
	Algorithm string
	Scheduler string
	N         int
	Seed      int64

	// Reached reports whether the run terminated in a quiescent
	// Complete Visibility configuration (verified exactly). On a run
	// with fired crash faults the predicate is Complete Visibility among
	// survivors, with crashed robots still acting as obstructions.
	Reached bool
	// Crashed lists the robots halted by fired crash faults, ascending.
	// Specs that never fired (stage never revisited) are not included.
	Crashed []int
	// Epochs is the number of completed epochs at quiescence (or at
	// abort). An epoch is a minimal span in which every robot completes
	// at least one full LCM cycle.
	Epochs int
	// FirstCVEpoch is the first epoch boundary at which Complete
	// Visibility held, or -1.
	FirstCVEpoch int
	// Rounds is the scheduler's own round count where the scheduler
	// defines rounds (SSYNC), else 0.
	Rounds int

	Events int
	Cycles int
	// Moves counts cycles with non-zero displacement.
	Moves int
	// TotalDist is the summed path length of all moves.
	TotalDist float64
	// MaxRobotDist is the largest total distance moved by any single robot.
	MaxRobotDist float64
	// ColorsUsed is the number of distinct colors ever shown.
	ColorsUsed int

	// PhaseCycles buckets every completed LCM cycle by phase
	// attribution (see PhaseOf); the counters sum to Cycles for runs
	// that end on cycle boundaries.
	PhaseCycles [NumPhases]int
	// PhaseMoves buckets the cycles with non-zero displacement; the
	// counters sum to Moves.
	PhaseMoves [NumPhases]int

	Collisions    int
	PathCrossings int
	Violations    []Violation

	Final       []geom.Point
	FinalColors []model.Color
	MinPairDist float64

	Trace []TraceEvent
	// EpochSamples has one entry per epoch boundary (SampleEpochs only).
	EpochSamples []EpochSample

	// Kernel reports the visibility kernel's work counters for the run.
	Kernel KernelStats
}

// KernelStats summarizes the batched visibility kernel's work during a
// run: how many rows each Look resolved from scratch versus revalidated
// incrementally, and where the geometry time went. The nanosecond
// counters are collected only when an Observer is attached — the
// benchmark path (nil Observer) pays no clock reads.
type KernelStats struct {
	// RowsComputed counts visibility rows computed from scratch.
	RowsComputed int64
	// RowsReused counts rows served by incremental revalidation — the
	// moves since the row's last computation were angularly isolated
	// from it, so the cached row is provably still exact.
	RowsReused int64
	// CVChecks counts Complete Visibility evaluations (cache misses of
	// the per-world-version CV cache).
	CVChecks int64
	// LookNanos and CVNanos are the wall time spent in snapshot rows
	// and CV checks (zero without an Observer).
	LookNanos int64
	CVNanos   int64
}

// movePlan is a robot's in-flight relocation.
type movePlan struct {
	from, target geom.Point
	stepsTotal   int
	stepsDone    int
	startEvent   int
	// lookEvent is when the snapshot that decided this move was taken;
	// two moves are treated as concurrent when either's cycle span
	// (Look to move end) overlaps the other's motion.
	lookEvent int
	// lastStep is the event of the most recent executed sub-step: the
	// moment the executed segment last grew. A move interrupted by a
	// crash or the event budget ends *there* for concurrency purposes —
	// between lastStep and the interruption the robot changed nothing.
	lastStep int
}

// doneMove is a completed move retained for the concurrency-aware
// path-crossing check until no in-progress cycle can overlap it.
type doneMove struct {
	robot     int
	seg       geom.Segment
	lookEvent int
	endEvent  int
}

// engine is the mutable state of one run.
type engine struct {
	algo model.Algorithm
	opt  Options
	rng  *rand.Rand
	// obs is Options.Observer, hoisted for the per-event nil check.
	obs Observer

	// ctx is polled at epoch boundaries only (see loop); ctxErr records
	// the cancellation cause when the run was aborted early.
	ctx    context.Context
	ctxErr error

	pos []geom.Point
	// vk and vsnap are the run's visibility kernel and its batched
	// snapshot; vsnap mirrors pos (kept in sync at the single write site
	// in doMoveStep) so Looks read arena-backed rows without allocating.
	vk    *geom.Kernel
	vsnap *geom.Snapshot
	col   []model.Color
	st    []sched.Status
	snap  []model.Snapshot
	act   []model.Action
	plan  []movePlan

	palette map[model.Color]bool

	now        int
	lastChange int
	// snapLook[i] is the event index at which robot i's currently held
	// snapshot was taken (valid for stages past Idle).
	snapLook []int
	// lastCleanLook[i] is the Look event index of robot i's most
	// recently completed cycle.
	lastCleanLook []int

	epochBase []int
	epochs    int
	// phaseEpoch and phaseMoveEpoch accumulate the current epoch's
	// per-phase cycle and move counts; reset at each boundary.
	phaseEpoch     [NumPhases]int
	phaseMoveEpoch [NumPhases]int

	cvCacheAt  int // lastChange value the cache refers to, -1 = invalid
	cvCacheVal bool

	res Result

	robotDist []float64
	colorMask uint32

	// recentMoves are ended moves that may still overlap an in-progress
	// cycle (see doneMove). Path-crossing pairs are examined when the
	// later of the two moves ends, so every check sees executed
	// segments — for a crash-interrupted move the traveled prefix, not
	// the planned path — and the engine's verdict matches what
	// verify.Audit reconstructs from the trace.
	recentMoves []doneMove
	// idx is the spatial index over current positions, used to filter
	// the per-sub-step collision scan (nil with SkipSafetyChecks).
	idx *grid.Index
	// nearBuf is the reusable candidate buffer for idx queries.
	nearBuf []int

	// Crash-fault state (see stressors.go). crashed is nil until the
	// first fault fires; numCrashed gates every crash-aware branch so a
	// clean run pays one predictable comparison.
	crashed      []bool
	numCrashed   int
	crashPending []CrashSpec
	// aliveIdx maps compacted survivor indices (what the scheduler sees
	// after a crash) back to engine robot indices; stBuf is the reusable
	// compacted status view.
	aliveIdx []int
	stBuf    []sched.Status
	// jrng is the dedicated sensor-jitter stream (nil unless
	// SensorJitter > 0); kept apart from rng so jitter draws never shift
	// the scheduler interleaving.
	jrng *rand.Rand
}

// Run executes algo from the start configuration under opt and returns
// the result. It returns an error for invalid inputs (fewer than one
// robot, duplicate or non-finite start positions, missing scheduler);
// safety violations during the run do not error — they are counted and
// reported in the Result, because counting them is the experiment.
func Run(algo model.Algorithm, start []geom.Point, opt Options) (Result, error) {
	return RunCtx(context.Background(), algo, start, opt)
}

// RunCtx is Run with caller-controlled cancellation: when ctx is
// cancelled or its deadline passes, the run aborts at the next epoch
// boundary and RunCtx returns the partial Result accumulated so far
// together with an error wrapping ctx.Err() (test with errors.Is
// against context.Canceled / context.DeadlineExceeded).
//
// Cancellation is observed only at epoch boundaries, never mid-epoch:
// an epoch is the engine's unit of algorithmic progress (every robot
// completed at least one full LCM cycle), so aborting there leaves the
// Result's epoch-granular metrics (Epochs, FirstCVEpoch, EpochSamples)
// internally consistent and keeps the partial run a faithful prefix of
// the deterministic seed-keyed execution — rerunning the same
// (algorithm, start, Options) without a deadline replays the identical
// prefix event for event.
func RunCtx(ctx context.Context, algo model.Algorithm, start []geom.Point, opt Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if algo == nil {
		return Result{}, errors.New("sim: nil algorithm")
	}
	if opt.Scheduler == nil {
		return Result{}, errors.New("sim: Options.Scheduler is required")
	}
	n := len(start)
	if n == 0 {
		return Result{}, errors.New("sim: empty start configuration")
	}
	for i, p := range start {
		if !p.IsFinite() {
			return Result{}, fmt.Errorf("sim: non-finite start position %d", i)
		}
		for j := i + 1; j < n; j++ {
			if p.Eq(start[j]) {
				return Result{}, fmt.Errorf("sim: duplicate start positions %d and %d", i, j)
			}
		}
	}
	if opt.MaxEpochs <= 0 {
		opt.MaxEpochs = DefaultMaxEpochs
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultMaxEvents(opt.MaxEpochs, n)
	}
	// The !(inside) form also catches NaN, which would otherwise slip
	// through both comparisons and poison every Lerp of the run.
	if !(opt.MinMoveFrac > 0 && opt.MinMoveFrac <= 1) {
		opt.MinMoveFrac = DefaultMinMoveFrac
	}
	if err := validateStressors(&opt, n); err != nil {
		return Result{}, err
	}

	e := &engine{
		algo:          algo,
		ctx:           ctx,
		opt:           opt,
		obs:           opt.Observer,
		rng:           rand.New(rand.NewSource(opt.Seed)),
		pos:           append([]geom.Point(nil), start...),
		col:           make([]model.Color, n),
		st:            make([]sched.Status, n),
		snap:          make([]model.Snapshot, n),
		act:           make([]model.Action, n),
		plan:          make([]movePlan, n),
		palette:       map[model.Color]bool{model.Off: true},
		snapLook:      make([]int, n),
		lastCleanLook: make([]int, n),
		epochBase:     make([]int, n),
		cvCacheAt:     -1,
		robotDist:     make([]float64, n),
	}
	if len(opt.Crashes) > 0 {
		e.crashPending = append([]CrashSpec(nil), opt.Crashes...)
	}
	if opt.SensorJitter > 0 {
		e.jrng = rand.New(rand.NewSource(opt.Seed ^ jitterSeedSalt))
	}
	for _, c := range algo.Palette() {
		e.palette[c] = true
	}
	for i := range e.st {
		e.st[i].LastEvent = -1
		e.lastCleanLook[i] = -1
		e.snapLook[i] = -1
	}
	e.colorMask = 1 << uint(model.Off)
	e.vk = geom.NewKernel(0)
	defer e.vk.Close()
	e.vsnap = e.vk.NewSnapshot()
	e.vsnap.Reset(e.pos)
	e.res = Result{
		Algorithm:    algo.Name(),
		Scheduler:    opt.Scheduler.Name(),
		N:            n,
		Seed:         opt.Seed,
		FirstCVEpoch: -1,
	}
	opt.Scheduler.Reset(n)
	if !opt.SkipSafetyChecks {
		e.idx = grid.NewFor(e.pos)
	}

	if e.obs != nil {
		e.obs.RunStart(RunInfo{Algorithm: e.res.Algorithm, Scheduler: e.res.Scheduler, N: n, Seed: opt.Seed})
	}
	// A context that is already dead aborts before the first event (the
	// first epoch of a large swarm is itself expensive).
	if err := ctx.Err(); err != nil {
		e.ctxErr = err
	} else {
		e.loop()
	}
	e.finish()
	if e.obs != nil {
		e.obs.RunEnd(&e.res, e.ctxErr)
	}
	if e.ctxErr != nil {
		return e.res, fmt.Errorf("sim: run aborted after %d epochs (%d events): %w",
			e.res.Epochs, e.res.Events, e.ctxErr)
	}
	return e.res, nil
}

// loop is the main event loop.
func (e *engine) loop() {
	checkedEpoch := 0
	for e.now < e.opt.MaxEvents && e.epochs < e.opt.MaxEpochs {
		if len(e.crashPending) > 0 {
			// Faults fire before the quiescence check so a crash that
			// completes survivor-CV terminates the run at this event.
			e.fireCrashes()
		}
		if e.quiescent() {
			e.res.Reached = true
			return
		}
		r := e.nextRobot()
		e.advance(r)
		e.now++
		e.st[r].LastEvent = e.now
		e.accountEpoch()
		// Poll for cancellation exactly once per completed epoch — the
		// engine's safe abort points (see RunCtx).
		if e.epochs != checkedEpoch {
			checkedEpoch = e.epochs
			if err := e.ctx.Err(); err != nil {
				e.ctxErr = err
				return
			}
		}
	}
}

// advance executes one micro-event for robot r, determined by its stage.
func (e *engine) advance(r int) {
	switch e.st[r].Stage {
	case sched.Idle:
		e.doLook(r)
	case sched.Looked:
		e.doCompute(r)
	case sched.Computed, sched.Moving:
		e.doMoveStep(r)
	}
}

// doLook takes robot r's snapshot of the current world.
func (e *engine) doLook(r int) {
	var t0 time.Time
	if e.obs != nil {
		//lint:allow detsource observer-gated timing counter; never influences control flow
		t0 = time.Now()
	}
	vis := e.vsnap.Row(r)
	if e.obs != nil {
		//lint:allow detsource observer-gated timing counter; never influences control flow
		e.res.Kernel.LookNanos += time.Since(t0).Nanoseconds()
	}
	others := make([]model.RobotView, len(vis))
	for i, j := range vis {
		others[i] = model.RobotView{Pos: e.pos[j], Color: e.col[j]}
	}
	if e.opt.SensorJitter > 0 {
		e.jitterViews(others)
	}
	e.snap[r] = model.Snapshot{
		Self:   model.RobotView{Pos: e.pos[r], Color: e.col[r]},
		Others: others,
	}
	e.st[r].Stage = sched.Looked
	e.snapLook[r] = e.now
	e.trace(r, "look")
}

// doCompute runs the algorithm on robot r's held snapshot, publishes the
// light, and either completes the cycle (stay) or arms a move.
func (e *engine) doCompute(r int) {
	a := e.algo.Compute(e.snap[r])
	if !a.Target.IsFinite() {
		e.violate(VBadTarget, r, r, fmt.Sprintf("target %v", a.Target))
		a.Target = e.pos[r]
	}
	if !e.palette[a.Color] {
		e.violate(VPalette, r, r, fmt.Sprintf("undeclared color %v", a.Color))
	}
	e.act[r] = a
	if a.Color != e.col[r] {
		e.col[r] = a.Color
		e.colorMask |= 1 << uint(a.Color)
		e.noteChange()
	}
	e.trace(r, "compute")
	if a.IsStay(e.pos[r]) {
		e.completeCycle(r, false)
		return
	}
	target := a.Target
	if e.opt.NonRigid {
		// The motion adversary may stop the robot anywhere past the
		// guaranteed fraction of its intended segment; the distribution
		// of the fraction is an Options knob (see NonRigidDist).
		f := e.drawMoveFrac()
		if f < 1 {
			target = e.pos[r].Lerp(a.Target, f)
		}
	}
	steps := e.opt.Scheduler.MoveSteps(e.rng)
	if steps < 1 {
		steps = 1
	}
	e.plan[r] = movePlan{from: e.pos[r], target: target, stepsTotal: steps, startEvent: e.now, lookEvent: e.snapLook[r]}
	e.st[r].Stage = sched.Computed
	e.st[r].StepsLeft = steps
}

// doMoveStep advances robot r one sub-step along its planned segment.
func (e *engine) doMoveStep(r int) {
	p := &e.plan[r]
	if e.st[r].Stage == sched.Computed {
		// First step: the move becomes active. Its path-crossing check is
		// deferred to the move's end (see endMove), when the executed
		// segment is known.
		e.st[r].Stage = sched.Moving
	}
	p.stepsDone++
	e.st[r].StepsLeft--
	old := e.pos[r]
	t := float64(p.stepsDone) / float64(p.stepsTotal)
	next := p.from.Lerp(p.target, t)
	if p.stepsDone >= p.stepsTotal {
		next = p.target
	}
	if !e.opt.SkipSafetyChecks {
		e.checkSubStep(r, old, next)
	}
	p.lastStep = e.now
	e.pos[r] = next
	e.vsnap.Update(r, next)
	if e.idx != nil {
		e.idx.Move(r, next)
	}
	e.noteChange()
	e.trace(r, "step")
	if p.stepsDone >= p.stepsTotal {
		d := p.from.Dist(p.target)
		e.res.Moves++
		e.res.TotalDist += d
		e.robotDist[r] += d
		if !e.opt.SkipSafetyChecks {
			e.endMove(r, geom.Seg(p.from, p.target), p.lookEvent, p.lastStep)
			e.pruneRecentMoves()
		}
		if e.obs != nil {
			e.obs.MoveEnd(MoveInfo{Event: e.now, Robot: r, From: p.from, To: p.target, Dist: d})
		}
		e.completeCycle(r, true)
	}
}

// completeCycle finishes robot r's LCM cycle and attributes it to an
// algorithm phase via the light the cycle published.
func (e *engine) completeCycle(r int, moved bool) {
	e.st[r].Stage = sched.Idle
	e.st[r].StepsLeft = 0
	e.st[r].Cycles++
	e.res.Cycles++
	ph := PhaseOf(e.col[r])
	e.res.PhaseCycles[ph]++
	e.phaseEpoch[ph]++
	if moved {
		e.res.PhaseMoves[ph]++
		e.phaseMoveEpoch[ph]++
	}
	// Remember when the completed cycle's snapshot was taken: quiescence
	// requires every robot to have completed a cycle whose Look happened
	// after the last world change.
	e.lastCleanLook[r] = e.snapLook[r]
	if e.obs != nil {
		e.obs.CycleEnd(CycleInfo{Event: e.now, Robot: r, Phase: ph, Moved: moved})
	}
}

// violate records a safety violation.
func (e *engine) violate(kind ViolationKind, a, b int, detail string) {
	v := Violation{Kind: kind, Event: e.now, Robots: [2]int{a, b}, Detail: detail}
	e.res.Violations = append(e.res.Violations, v)
	switch kind {
	case VColocation, VPassThrough:
		e.res.Collisions++
	case VPathCross:
		e.res.PathCrossings++
	}
	if e.obs != nil {
		e.obs.ViolationFound(v)
	}
}

// noteChange marks the world as changed at the current event.
func (e *engine) noteChange() {
	e.lastChange = e.now
}

// trace records a trace event when enabled and feeds the observer's
// event stream. Both branches are the disabled fast path: a run with no
// observer and no trace pays two predictable not-taken branches.
func (e *engine) trace(r int, kind string) {
	if e.obs != nil {
		e.obs.Event(TraceEvent{Event: e.now, Robot: r, Kind: kind, Pos: e.pos[r], Color: e.col[r], Epoch: e.epochs})
	}
	if !e.opt.RecordTrace {
		return
	}
	e.res.Trace = append(e.res.Trace, TraceEvent{
		Event: e.now, Robot: r, Kind: kind, Pos: e.pos[r], Color: e.col[r], Epoch: e.epochs,
	})
}
