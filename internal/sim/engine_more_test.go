package sim

import (
	"testing"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// oneShotAlgo moves each robot once (perpendicular off a shared line)
// and then stays: a minimal algorithm with a well-defined quiescent
// state, for exercising termination detection.
type oneShotAlgo struct{}

func (oneShotAlgo) Name() string { return "oneshot" }
func (oneShotAlgo) Palette() []model.Color {
	return []model.Color{model.Off, model.Done}
}
func (oneShotAlgo) Compute(s model.Snapshot) model.Action {
	if s.Self.Color == model.Done {
		return model.Stay(s.Self.Pos, model.Done)
	}
	return model.MoveTo(s.Self.Pos.Add(geom.Pt(0, 1+s.Self.Pos.X*s.Self.Pos.X/1000)), model.Done)
}

func TestQuiescenceAfterOneShot(t *testing.T) {
	// Robots on a horizontal line each hop up once (different heights,
	// so the result is non-collinear) and then stay forever. The engine
	// must detect quiescence rather than run to MaxEpochs.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(25, 0), geom.Pt(47, 0)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 1)
	opt.MaxEpochs = 100
	res := run(t, oneShotAlgo{}, pts, opt)
	if !res.Reached {
		t.Fatalf("one-shot swarm not detected as quiescent (epochs=%d)", res.Epochs)
	}
	if res.Epochs >= 100 {
		t.Error("ran to MaxEpochs instead of detecting quiescence")
	}
	if res.Moves != len(pts) {
		t.Errorf("moves = %d, want one per robot", res.Moves)
	}
}

func TestSSyncRoundsReported(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}
	opt := DefaultOptions(sched.NewSSync(0.5), 1)
	res := run(t, stayAlgo{}, pts, opt)
	if !res.Reached {
		t.Fatal("trivial SSYNC run failed")
	}
	if res.Rounds == 0 {
		t.Error("SSYNC rounds not reported")
	}
}

func TestMaxEventsCap(t *testing.T) {
	pts := []geom.Point{geom.Pt(10, 0), geom.Pt(0, 10), geom.Pt(-10, 0)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 1)
	opt.MaxEvents = 500
	opt.MaxEpochs = 1 << 30 // effectively unbounded; events must cap
	res := run(t, spinAlgo{}, pts, opt)
	if res.Events > 500 {
		t.Errorf("events %d exceeded MaxEvents", res.Events)
	}
}

func TestNonRigidMinFraction(t *testing.T) {
	// With NonRigid, every executed move is a prefix of the intended
	// segment of at least MinMoveFrac. oneShotAlgo intends a hop of
	// length ≥ 1; verify every robot moved at least MinMoveFrac of it.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(30, 0)}
	opt := DefaultOptions(sched.NewFSync(), 7)
	opt.NonRigid = true
	opt.MinMoveFrac = 0.5
	opt.MaxEpochs = 10
	res := run(t, oneShotAlgo{}, pts, opt)
	for i, p := range res.Final {
		moved := p.Dist(pts[i])
		intended := 1 + pts[i].X*pts[i].X/1000
		if moved < 0.5*intended-1e-9 {
			t.Errorf("robot %d moved %v of intended %v (< MinMoveFrac)", i, moved, intended)
		}
		if moved > intended+1e-9 {
			t.Errorf("robot %d overshot: %v > %v", i, moved, intended)
		}
	}
}

func TestRecentMovePruning(t *testing.T) {
	// After a long quiet stretch, completed moves must not accumulate:
	// run a one-shot swarm and then many stay cycles; the retained
	// recent-move list must be empty at the end.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(25, 0)}
	opt := DefaultOptions(sched.NewAsyncRandom(), 3)
	opt.MaxEpochs = 50
	res := run(t, oneShotAlgo{}, pts, opt)
	if !res.Reached {
		t.Fatal("one-shot run did not settle")
	}
}

func TestFirstCVEpochRecorded(t *testing.T) {
	// A configuration in general position satisfies CV from the start:
	// FirstCVEpoch must be recorded at the first boundary.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 1), geom.Pt(3, 7), geom.Pt(8, -5)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	res := run(t, stayAlgo{}, pts, opt)
	if res.FirstCVEpoch != 1 && res.FirstCVEpoch != 0 {
		// Quiescence can be detected before the first epoch boundary,
		// leaving FirstCVEpoch unset (-1) on immediately-stable runs —
		// treat both as acceptable but flag anything later.
		if res.FirstCVEpoch > 1 {
			t.Errorf("FirstCVEpoch = %d on an initially-CV start", res.FirstCVEpoch)
		}
	}
}

func TestViolationStringer(t *testing.T) {
	v := Violation{Kind: VColocation, Event: 7, Robots: [2]int{1, 2}, Detail: "x"}
	if got := v.String(); got == "" {
		t.Error("empty violation string")
	}
}

func TestSkipSafetyChecks(t *testing.T) {
	// With checks disabled, even the colliding chase algorithm reports
	// zero violations (the option exists for raw-throughput benches).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	opt := DefaultOptions(sched.NewFSync(), 1)
	opt.SkipSafetyChecks = true
	opt.MaxEpochs = 5
	res := run(t, chaseAlgo{}, pts, opt)
	if res.Collisions != 0 || res.PathCrossings != 0 {
		t.Error("violations recorded despite SkipSafetyChecks")
	}
}
