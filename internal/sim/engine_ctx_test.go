package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// pingpongAlgo oscillates forever between x=0 and x=1 on its own row —
// a run that never quiesces, for exercising cancellation: without a
// deadline it only stops at MaxEpochs.
type pingpongAlgo struct{}

func (pingpongAlgo) Name() string           { return "pingpong" }
func (pingpongAlgo) Palette() []model.Color { return []model.Color{model.Off} }
func (pingpongAlgo) Compute(s model.Snapshot) model.Action {
	if s.Self.Pos.X < 0.5 {
		return model.Action{Target: geom.Pt(1, s.Self.Pos.Y), Color: model.Off}
	}
	return model.Action{Target: geom.Pt(0, s.Self.Pos.Y), Color: model.Off}
}

// rows places n robots on distinct horizontal rows so pingpong motion
// never intersects.
func rows(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(0, float64(3*i))
	}
	return pts
}

func TestRunCtxDeadlineAbortsAtEpochBoundary(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()

	opt := DefaultOptions(sched.NewAsyncRandom(), 1)
	opt.MaxEpochs = 1_000_000
	opt.MaxEvents = 1 << 40
	opt.SampleEpochs = true

	start := time.Now()
	res, err := RunCtx(ctx, pingpongAlgo{}, rows(64), opt)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx error = %v, want context.DeadlineExceeded", err)
	}
	if res.Epochs >= opt.MaxEpochs {
		t.Fatalf("run consumed all %d epochs; cancellation never observed", opt.MaxEpochs)
	}
	// The abort must be prompt — at an epoch boundary shortly after the
	// deadline, not after the (effectively unbounded) epoch cap. The
	// bound is generous to stay robust under -race and loaded CI.
	if elapsed > 30*time.Second {
		t.Fatalf("RunCtx took %v to honor a 30ms deadline", elapsed)
	}
	// Epoch-granular metrics stay internally consistent on abort: one
	// sample per completed epoch, no partial epoch recorded.
	if len(res.EpochSamples) != res.Epochs {
		t.Fatalf("aborted run has %d epoch samples for %d epochs", len(res.EpochSamples), res.Epochs)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	opt := DefaultOptions(sched.NewAsyncRandom(), 1)
	res, err := RunCtx(ctx, pingpongAlgo{}, rows(8), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx error = %v, want context.Canceled", err)
	}
	if res.Events != 0 {
		t.Fatalf("pre-cancelled run executed %d events, want 0", res.Events)
	}
}

func TestRunCtxNilContextMatchesRun(t *testing.T) {
	mkOpt := func() Options {
		opt := DefaultOptions(sched.NewAsyncRoundRobin(), 3)
		opt.MaxEpochs = 8
		return opt
	}
	a, err := RunCtx(nil, pingpongAlgo{}, rows(4), mkOpt())
	if err != nil {
		t.Fatalf("RunCtx(nil): %v", err)
	}
	b, err := Run(pingpongAlgo{}, rows(4), mkOpt())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Events != b.Events || a.Epochs != b.Epochs || a.Moves != b.Moves {
		t.Fatalf("RunCtx(nil) diverged from Run: %+v vs %+v", a, b)
	}
}
