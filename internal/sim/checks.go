package sim

import (
	"fmt"
	"math/bits"
	"time"

	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// quiescent reports whether the run has reached its stable terminal
// state: the world satisfies Complete Visibility, no robot is moving or
// holds a pending relocation, and every robot has completed a full cycle
// whose Look postdates the last world change. Because algorithms are
// deterministic functions of snapshots and the world has been static
// since that change, every future cycle must repeat the observed stay —
// the configuration is stable forever.
func (e *engine) quiescent() bool {
	for i := range e.st {
		if e.isCrashed(i) {
			// A halted robot is frozen scenery: whatever stage it died
			// in, it will never move or look again, so it cannot block
			// stability — only obstruct visibility.
			continue
		}
		switch e.st[i].Stage {
		case sched.Moving:
			return false
		case sched.Computed:
			if !e.act[i].IsStay(e.pos[i]) {
				return false
			}
		}
		if e.lastCleanLook[i] <= e.lastChange {
			return false
		}
	}
	return e.cvNow()
}

// cvNow evaluates Complete Visibility on the current world, cached per
// world version so the O(n² log n) check runs at most once per change.
// The kernel variant fans the per-observer scan across workers on
// multi-core hosts; its verdict is identical to CompleteVisibilityFast.
func (e *engine) cvNow() bool {
	if e.cvCacheAt != e.lastChange {
		e.cvCacheAt = e.lastChange
		e.res.Kernel.CVChecks++
		var t0 time.Time
		if e.obs != nil {
			//lint:allow detsource observer-gated timing counter; never influences control flow
			t0 = time.Now()
		}
		if e.numCrashed > 0 {
			// Crash runs terminate on survivor-CV: every surviving pair
			// mutually visible, crashed robots still obstructing.
			e.cvCacheVal = e.survivorCV()
		} else {
			e.cvCacheVal = e.vk.CompleteVisibilityFast(e.pos)
		}
		if e.obs != nil {
			//lint:allow detsource observer-gated timing counter; never influences control flow
			e.res.Kernel.CVNanos += time.Since(t0).Nanoseconds()
		}
	}
	return e.cvCacheVal
}

// accountEpoch advances the epoch counter when every robot has completed
// at least one cycle since the epoch began, and samples Complete
// Visibility at the boundary for the FirstCVEpoch metric.
func (e *engine) accountEpoch() {
	for i := range e.st {
		if e.isCrashed(i) {
			// Epochs are spans where every *live* robot cycles; counting
			// halted robots would freeze the epoch clock forever.
			continue
		}
		if e.st[i].Cycles <= e.epochBase[i] {
			return
		}
	}
	for i := range e.st {
		e.epochBase[i] = e.st[i].Cycles
	}
	e.epochs++
	if e.res.FirstCVEpoch < 0 && e.cvNow() {
		e.res.FirstCVEpoch = e.epochs
	}
	// An attached observer gets the boundary sample even when the caller
	// did not ask for EpochSamples in the Result; the hull classification
	// is the price of observation, not of the benchmark path.
	if e.opt.SampleEpochs || e.obs != nil {
		smp := e.sampleEpoch()
		if e.opt.SampleEpochs {
			e.res.EpochSamples = append(e.res.EpochSamples, smp)
		}
		if e.obs != nil {
			e.obs.EpochEnd(smp)
		}
	}
	e.phaseEpoch = [NumPhases]int{}
	e.phaseMoveEpoch = [NumPhases]int{}
}

// sampleEpoch aggregates the swarm's hull composition and the finished
// epoch's phase attribution at an epoch boundary.
func (e *engine) sampleEpoch() EpochSample {
	smp := EpochSample{
		Epoch:      e.epochs,
		MovesSoFar: e.res.Moves,
		CV:         e.cvNow(),
		Phases:     e.phaseEpoch,
		PhaseMoves: e.phaseMoveEpoch,
	}
	h := geom.ConvexHull(e.pos)
	for _, p := range e.pos {
		switch h.Classify(p) {
		case geom.HullCorner:
			smp.Corners++
		case geom.HullEdge:
			smp.EdgeRobots++
		default:
			smp.Interior++
		}
	}
	return smp
}

// checkSubStep verifies one executed motion sub-step of robot r from old
// to next against every other robot's current position: exact
// co-location at the landing point and exact pass-through along the
// swept sub-segment are violations. Float predicates act as a strict
// superset filter; only filtered hits pay for exact confirmation.
func (e *engine) checkSubStep(r int, old, next geom.Point) {
	seg := geom.Seg(old, next)
	// The spatial index shortlists candidates near the swept segment
	// (superset semantics: it may over-include, never miss), replacing
	// the O(n) full scan on every sub-step.
	e.nearBuf = e.idx.NearSegment(seg, 10*geom.Eps, e.nearBuf[:0])
	for _, o := range e.nearBuf {
		if o == r {
			continue
		}
		q := e.pos[o]
		if q.Eq(next) {
			// Refine the epsilon hit to bitwise coincidence: colocation
			// is "same exact position", and the exact.* confirmation
			// below only covers the pass-through case.
			//lint:allow floateq exact colocation is the property being checked
			if q.X == next.X && q.Y == next.Y {
				e.violate(VColocation, r, o, fmt.Sprintf("both at %v", next))
			}
			continue
		}
		if seg.Dist(q) <= 10*geom.Eps {
			a, b, m := exact.FromFloat(old), exact.FromFloat(next), exact.FromFloat(q)
			if exact.StrictlyBetween(a, b, m) {
				e.violate(VPassThrough, r, o, fmt.Sprintf("robot %d passed through %v", r, q))
			}
		}
	}
}

// endMove records a just-ended motion of robot r — completed, crash-
// interrupted, or still in flight when the run's event budget expired —
// and verifies its executed segment against every earlier-ended move it
// is concurrent with. Two moves are concurrent when either robot's
// cycle span (from its Look to its move end) overlaps the other's
// motion: in the continuous-time model an adversarial scheduler could
// then have run the motions simultaneously. Properly crossing or
// collinearly overlapping paths of concurrent moves violate the paper's
// "paths do not cross" guarantee.
//
// Every conflicting pair is examined exactly once — when the later of
// the two moves ends. (The earlier move is then still in recentMoves:
// pruning keeps any move that ended after some in-progress cycle's
// Look, and the later mover's own Look pins that window open.) Checking
// at move end rather than move start means the check always sees
// executed segments — for a crash-interrupted move the traveled prefix
// rather than the planned path — so the engine's verdict coincides with
// what verify.Audit reconstructs from the trace.
//
// endEvent is the event of the move's final executed sub-step, not the
// event at which the interruption (crash, budget) was noticed: between
// the two the robot changed nothing, so nothing later can have been
// concurrent with its motion.
func (e *engine) endMove(r int, seg geom.Segment, lookEvent, endEvent int) {
	for _, dm := range e.recentMoves {
		if dm.robot != r && dm.endEvent > lookEvent {
			e.confirmPathCross(r, dm.robot, seg, dm.seg)
		}
	}
	e.recentMoves = append(e.recentMoves, doneMove{
		robot:     r,
		seg:       seg,
		lookEvent: lookEvent,
		endEvent:  endEvent,
	})
}

// flushInFlightMoves ends, at run termination, every move still in
// flight (a robot caught mid-motion by the event budget): its traveled
// prefix is an executed segment the path-crossing accounting must see,
// exactly as verify.Audit will see it when it flushes open moves at the
// trace's last event. Robots are flushed in index order so replays of
// one seed record violations identically.
func (e *engine) flushInFlightMoves() {
	for r := range e.st {
		if e.st[r].Stage != sched.Moving || e.isCrashed(r) {
			continue
		}
		e.endMove(r, geom.Seg(e.plan[r].from, e.pos[r]), e.plan[r].lookEvent, e.plan[r].lastStep)
	}
}

// confirmPathCross classifies one segment pair with the float kernel and
// confirms hits exactly.
func (e *engine) confirmPathCross(r, o int, seg, oseg geom.Segment) {
	kind, _ := seg.Intersect(oseg)
	switch kind {
	case geom.ProperCrossing:
		a1, b1 := exact.FromFloat(seg.A), exact.FromFloat(seg.B)
		a2, b2 := exact.FromFloat(oseg.A), exact.FromFloat(oseg.B)
		if exact.SegmentsProperlyCross(a1, b1, a2, b2) {
			e.violate(VPathCross, r, o, fmt.Sprintf("%v crosses %v", seg, oseg))
		}
	case geom.Overlapping:
		a1, b1 := exact.FromFloat(seg.A), exact.FromFloat(seg.B)
		a2, b2 := exact.FromFloat(oseg.A), exact.FromFloat(oseg.B)
		if exact.SegmentsOverlap(a1, b1, a2, b2) {
			e.violate(VPathCross, r, o, fmt.Sprintf("%v overlaps %v", seg, oseg))
		}
	}
}

// pruneRecentMoves drops completed moves that no in-progress cycle can
// overlap anymore: a completed move matters only while some robot holds
// a snapshot taken before the move ended.
func (e *engine) pruneRecentMoves() {
	minLook := e.now
	for i := range e.st {
		if e.isCrashed(i) {
			// A robot halted past Look holds its snapshot forever; its
			// cycle will never run, so it must not pin the window open.
			continue
		}
		if e.st[i].Stage != sched.Idle && e.snapLook[i] >= 0 && e.snapLook[i] < minLook {
			minLook = e.snapLook[i]
		}
	}
	keep := e.recentMoves[:0]
	for _, dm := range e.recentMoves {
		if dm.endEvent > minLook {
			keep = append(keep, dm)
		}
	}
	e.recentMoves = keep
}

// finish populates the Result's summary fields and re-verifies the
// terminal predicate with exact arithmetic.
func (e *engine) finish() {
	e.res.Events = e.now
	if !e.opt.SkipSafetyChecks {
		e.flushInFlightMoves()
	}
	e.res.Epochs = e.epochs
	if e.vsnap != nil {
		s := e.vsnap.Stats()
		e.res.Kernel.RowsComputed = s.RowsComputed
		e.res.Kernel.RowsReused = s.RowsReused
	}
	if s, ok := e.opt.Scheduler.(*sched.SSync); ok {
		e.res.Rounds = s.Rounds()
	}
	e.res.Final = append([]geom.Point(nil), e.pos...)
	e.res.FinalColors = append([]model.Color(nil), e.col...)
	e.res.MinPairDist = geom.MinPairwiseDist(e.pos)
	e.res.ColorsUsed = bits.OnesCount32(e.colorMask)
	for _, d := range e.robotDist {
		if d > e.res.MaxRobotDist {
			e.res.MaxRobotDist = d
		}
	}
	e.sortCrashed()
	if e.res.Reached && !e.confirmReachedExact() {
		// The float predicate accepted a configuration the exact one
		// rejects; report the run as not reached so experiments surface
		// the discrepancy instead of hiding it.
		e.res.Reached = false
	}
}

// ColorsOf returns the distinct colors present in a color slice; a
// convenience for tests and metrics.
func ColorsOf(cols []model.Color) []model.Color {
	var mask uint32
	for _, c := range cols {
		mask |= 1 << uint(c)
	}
	var out []model.Color
	for _, c := range model.AllColors() {
		if mask&(1<<uint(c)) != 0 {
			out = append(out, c)
		}
	}
	return out
}
