// Stressor plumbing for the scenario layer (internal/scenario): crash
// faults, sensor jitter and non-rigid truncation distributions. Each
// stressor is an orthogonal Options knob with a disabled fast path that
// leaves the clean engine byte-for-byte identical: a run whose crashes
// have not fired yet, or whose jitter amplitude is zero, consumes the
// exact same random stream as a run without the knob, so the
// deterministic-prefix semantics of RunCtx are preserved.
package sim

import (
	"fmt"
	"math"
	"sort"

	"luxvis/internal/exact"
	"luxvis/internal/geom"
	"luxvis/internal/model"
	"luxvis/internal/sched"
)

// CrashSpec schedules one fail-stop fault. The robot halts permanently
// at the first event at or after AtEvent at which it sits in Stage:
// its position and last published light freeze, and it remains fully
// visible (and occluding) to every survivor's Look. A robot crashed
// mid-move stops wherever its last completed sub-step left it.
type CrashSpec struct {
	// Robot is the index of the robot to crash.
	Robot int
	// AtEvent arms the crash: it fires at the first event >= AtEvent at
	// which the robot is in Stage.
	AtEvent int
	// Stage is the LCM stage at which the robot halts. The zero value
	// (sched.Idle) halts it between cycles; sched.Looked freezes a held
	// snapshot, sched.Computed a pending move, sched.Moving a move in
	// flight. A crash armed for a stage the robot never re-enters never
	// fires.
	Stage sched.Stage
}

// NonRigidDist selects the truncation-fraction distribution of the
// non-rigid motion adversary (Options.NonRigid). Every distribution
// draws a fraction f in [MinMoveFrac, 1]; they differ in how hard they
// push toward the adversarial minimum.
type NonRigidDist string

// The non-rigid truncation distributions.
const (
	// NonRigidUniform draws f uniformly from [MinMoveFrac, 1) — the
	// original stress mode, and the meaning of the empty string.
	NonRigidUniform NonRigidDist = "uniform"
	// NonRigidMinimal always truncates to exactly MinMoveFrac: the
	// worst legal adversary, every move cut to its guaranteed floor.
	NonRigidMinimal NonRigidDist = "minimal"
	// NonRigidQuadratic draws f = MinMoveFrac + u²·(1-MinMoveFrac),
	// skewing mass toward the floor while still occasionally letting a
	// move complete.
	NonRigidQuadratic NonRigidDist = "quadratic"
	// NonRigidBimodal truncates to the floor or lets the move complete
	// in full, with equal probability — maximal per-move variance.
	NonRigidBimodal NonRigidDist = "bimodal"
)

// NonRigidDists lists the selectable distributions in canonical order
// (the empty-string default is NonRigidUniform).
func NonRigidDists() []NonRigidDist {
	return []NonRigidDist{NonRigidUniform, NonRigidMinimal, NonRigidQuadratic, NonRigidBimodal}
}

func validNonRigidDist(d NonRigidDist) bool {
	if d == "" {
		return true
	}
	for _, k := range NonRigidDists() {
		if d == k {
			return true
		}
	}
	return false
}

// DefaultMaxEvents is the event cap RunCtx derives when
// Options.MaxEvents is zero, exported so the scenario layer can arm
// crash triggers against the same budget the engine will actually use.
func DefaultMaxEvents(maxEpochs, n int) int {
	return maxEpochs*n*16 + 100_000
}

// jitterSeedSalt decorrelates the sensor-jitter stream from the
// scheduler stream: both derive from Options.Seed, but jitter draws
// never advance the scheduler's RNG, so enabling jitter preserves the
// run's interleaving exactly.
const jitterSeedSalt = 0x5ca1ab1ec0ffee

// validateStressors checks the stressor knobs of opt for a run of n
// robots. It is called by RunCtx after the scheduler/start validation.
func validateStressors(opt *Options, n int) error {
	if len(opt.Crashes) > 0 {
		if len(opt.Crashes) >= n {
			return fmt.Errorf("sim: %d crash specs for %d robots (at least one robot must survive)", len(opt.Crashes), n)
		}
		seen := make(map[int]bool, len(opt.Crashes))
		for i, cs := range opt.Crashes {
			if cs.Robot < 0 || cs.Robot >= n {
				return fmt.Errorf("sim: crash spec %d targets robot %d of %d", i, cs.Robot, n)
			}
			if seen[cs.Robot] {
				return fmt.Errorf("sim: duplicate crash spec for robot %d", cs.Robot)
			}
			seen[cs.Robot] = true
			if cs.AtEvent < 0 {
				return fmt.Errorf("sim: crash spec %d has negative AtEvent %d", i, cs.AtEvent)
			}
			if cs.Stage > sched.Moving {
				return fmt.Errorf("sim: crash spec %d has unknown stage %d", i, cs.Stage)
			}
		}
	}
	if math.IsNaN(opt.SensorJitter) || math.IsInf(opt.SensorJitter, 0) || opt.SensorJitter < 0 {
		return fmt.Errorf("sim: SensorJitter %v is not a finite non-negative amplitude", opt.SensorJitter)
	}
	if !validNonRigidDist(opt.NonRigidDist) {
		return fmt.Errorf("sim: unknown NonRigidDist %q (known: %v)", opt.NonRigidDist, NonRigidDists())
	}
	return nil
}

// fireCrashes fires every armed crash spec whose robot sits in the
// spec's stage, then rebuilds the survivor view and resets the
// scheduler over it. Called once per event while specs are pending;
// it consumes no randomness, so the pre-crash prefix of the run is
// identical to the same run without crash specs.
func (e *engine) fireCrashes() {
	fired := false
	keep := e.crashPending[:0]
	for _, cs := range e.crashPending {
		if e.now >= cs.AtEvent && e.st[cs.Robot].Stage == cs.Stage {
			e.crashRobot(cs.Robot)
			fired = true
			continue
		}
		keep = append(keep, cs)
	}
	e.crashPending = keep
	if !fired {
		return
	}
	e.aliveIdx = e.aliveIdx[:0]
	for i := range e.st {
		if !e.crashed[i] {
			e.aliveIdx = append(e.aliveIdx, i)
		}
	}
	// The scheduler now runs over the compacted survivor view; resetting
	// it keeps its internal per-robot state (subset masks, wave orders)
	// sized to what Next will actually see.
	e.opt.Scheduler.Reset(len(e.aliveIdx))
	// Survivor-CV can differ from full CV at the same world version, so
	// the per-version cache is stale the moment the survivor set changes.
	e.cvCacheAt = -1
}

// crashRobot halts robot r where it stands.
func (e *engine) crashRobot(r int) {
	if e.crashed == nil {
		e.crashed = make([]bool, len(e.st))
	}
	e.crashed[r] = true
	e.numCrashed++
	e.res.Crashed = append(e.res.Crashed, r)
	if e.st[r].Stage == sched.Moving && !e.opt.SkipSafetyChecks {
		// Halted mid-flight: the traveled prefix is an ended relocation
		// for the concurrency-aware path-crossing check, truncated where
		// the robot actually stopped — and ended, for concurrency
		// purposes, at its last executed sub-step, not at the crash.
		e.endMove(r, geom.Seg(e.plan[r].from, e.pos[r]), e.plan[r].lookEvent, e.plan[r].lastStep)
	}
	e.trace(r, "crash")
}

// nextRobot asks the scheduler for the next robot. Without crashes the
// scheduler sees the engine's status slice directly; once a crash has
// fired it sees a compacted survivor view and the chosen index is
// mapped back.
func (e *engine) nextRobot() int {
	if e.numCrashed == 0 {
		r := e.opt.Scheduler.Next(e.st, e.now, e.rng)
		if r < 0 || r >= len(e.st) {
			panic(fmt.Sprintf("sim: scheduler %s returned invalid robot %d", e.opt.Scheduler.Name(), r))
		}
		return r
	}
	e.stBuf = e.stBuf[:0]
	for _, i := range e.aliveIdx {
		e.stBuf = append(e.stBuf, e.st[i])
	}
	c := e.opt.Scheduler.Next(e.stBuf, e.now, e.rng)
	if c < 0 || c >= len(e.stBuf) {
		panic(fmt.Sprintf("sim: scheduler %s returned invalid robot %d", e.opt.Scheduler.Name(), c))
	}
	return e.aliveIdx[c]
}

// isCrashed reports whether robot i has halted.
func (e *engine) isCrashed(i int) bool {
	return e.crashed != nil && e.crashed[i]
}

// survivorCV evaluates the crash-fault terminal predicate on the
// current world: every pair of surviving robots is mutually visible,
// with crashed robots still acting as obstructions. It reads the
// batched snapshot's rows, so the incremental revalidation path is
// shared with Look.
func (e *engine) survivorCV() bool {
	for _, i := range e.aliveIdx {
		row := e.vsnap.Row(i)
		k := 0
		for _, j := range e.aliveIdx {
			if j == i {
				continue
			}
			for k < len(row) && row[k] < j {
				k++
			}
			if k == len(row) || row[k] != j {
				return false
			}
		}
	}
	return true
}

// aliveMask returns the survivor mask for the exact terminal
// confirmation (nil means everyone is alive).
func (e *engine) aliveMask() []bool {
	alive := make([]bool, len(e.pos))
	for i := range alive {
		alive[i] = !e.isCrashed(i)
	}
	return alive
}

// confirmReachedExact re-verifies the terminal predicate with exact
// rational arithmetic: full Complete Visibility for clean runs,
// survivor Complete Visibility for crash runs.
func (e *engine) confirmReachedExact() bool {
	if e.numCrashed > 0 {
		return exact.CompleteVisibilityAmong(e.pos, e.aliveMask())
	}
	return exact.CompleteVisibilityHybrid(e.pos)
}

// sortCrashed canonicalizes Result.Crashed (crashes may fire in any
// spec order within one event).
func (e *engine) sortCrashed() {
	sort.Ints(e.res.Crashed)
}

// drawMoveFrac draws the non-rigid truncation fraction according to
// Options.NonRigidDist. The empty default reproduces the historical
// uniform draw exactly (same RNG consumption), so existing seeds
// replay unchanged.
func (e *engine) drawMoveFrac() float64 {
	min := e.opt.MinMoveFrac
	switch e.opt.NonRigidDist {
	case "", NonRigidUniform:
		return min + e.rng.Float64()*(1-min)
	case NonRigidMinimal:
		return min
	case NonRigidQuadratic:
		u := e.rng.Float64()
		return min + u*u*(1-min)
	case NonRigidBimodal:
		if e.rng.Float64() < 0.5 {
			return min
		}
		return 1
	default:
		// Unreachable: validateStressors rejected unknown distributions.
		return min + e.rng.Float64()*(1-min)
	}
}

// jitterViews perturbs the observed positions of a snapshot's others
// by an independent uniform offset in [-SensorJitter, +SensorJitter]
// per coordinate. The observer's own position is its coordinate origin
// and stays exact, and the world itself is never touched — only what
// the algorithm sees.
func (e *engine) jitterViews(others []model.RobotView) {
	j := e.opt.SensorJitter
	for i := range others {
		others[i].Pos.X += (2*e.jrng.Float64() - 1) * j
		others[i].Pos.Y += (2*e.jrng.Float64() - 1) * j
	}
}
