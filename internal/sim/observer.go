package sim

import (
	"luxvis/internal/geom"
	"luxvis/internal/model"
)

// Phase classifies which algorithm phase a completed LCM cycle executed,
// derived from the light the cycle published. The classification is the
// paper's phase structure: Interior Depletion (interior robots flying to
// BDCP landing slots), Edge Depletion (hull-edge robots bulging outward
// into strict corners), and the corner anchor (corners hold position and
// eventually turn Done). It is what lets the O(log N) epoch bound be
// decomposed empirically: per-epoch phase counters show which phase each
// epoch's work went to.
type Phase uint8

// The phase buckets, in display order.
const (
	// PhaseOther covers cycles published with a pre-classification light
	// (Off, Line): the collinear-breakout prologue and robots that have
	// not yet classified themselves.
	PhaseOther Phase = iota
	// PhaseInterior is Interior Depletion: cycles published with the
	// Interior light (waiting for a usable slot) or the Transit light
	// (a BDCP approach hop or landing flight).
	PhaseInterior
	// PhaseEdge is Edge Depletion: cycles published with the Side light
	// (waiting out landing traffic) or the Beacon light (the outward
	// bulge that turns an edge robot into a strict corner).
	PhaseEdge
	// PhaseCorner is the corner anchor: cycles published with the Corner
	// or Done light. Corners never move; their cycles are the stationary
	// re-confirmations the termination predicate needs.
	PhaseCorner

	// NumPhases is the number of phase buckets.
	NumPhases = 4
)

var phaseNames = [NumPhases]string{"other", "interior-depletion", "edge-depletion", "corner"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// AllPhases returns the phase buckets in declaration order.
func AllPhases() []Phase {
	return []Phase{PhaseOther, PhaseInterior, PhaseEdge, PhaseCorner}
}

// PhaseOf classifies a completed cycle from the light it published.
func PhaseOf(c model.Color) Phase {
	switch c {
	case model.Interior, model.Transit:
		return PhaseInterior
	case model.Side, model.Beacon:
		return PhaseEdge
	case model.Corner, model.Done:
		return PhaseCorner
	default:
		return PhaseOther
	}
}

// RunInfo identifies a run to an Observer before any event fires.
type RunInfo struct {
	Algorithm string
	Scheduler string
	N         int
	Seed      int64
}

// CycleInfo describes one completed LCM cycle.
type CycleInfo struct {
	// Event is the engine event index at which the cycle completed.
	Event int
	Robot int
	// Phase is the phase attribution of the cycle (see PhaseOf).
	Phase Phase
	// Moved reports whether the cycle relocated the robot.
	Moved bool
}

// MoveInfo describes one completed relocation.
type MoveInfo struct {
	// Event is the engine event index at which the move completed.
	Event    int
	Robot    int
	From, To geom.Point
	Dist     float64
}

// Observer receives engine callbacks while a run executes. Set one via
// Options.Observer; a nil Observer costs a single predictable branch per
// event (the benchmark guard in bench_test.go holds the engine to that).
//
// Callbacks run synchronously on the engine goroutine, in deterministic
// event order, and must not mutate anything they are handed (EpochSample
// is a copy; Result in RunEnd is the live result — read-only). A slow
// Observer slows the run; implementations that do I/O should buffer.
// internal/obs provides ready-made implementations (flight recorder,
// phase tallies, Prometheus totals, JSONL telemetry) and combinators.
//
// The concurrent runtime (internal/rt) drives the same interface from
// many robot goroutines at once and never emits Event, MoveEnd or
// ViolationFound — see rt.Options.Observer for its contract.
type Observer interface {
	// RunStart fires once, after input validation, before any event.
	RunStart(info RunInfo)
	// Event fires for every engine micro-event (look, compute, step) —
	// the same stream Options.RecordTrace retains.
	Event(ev TraceEvent)
	// CycleEnd fires when a robot completes an LCM cycle.
	CycleEnd(c CycleInfo)
	// MoveEnd fires when a relocation reaches its target.
	MoveEnd(m MoveInfo)
	// EpochEnd fires at each epoch boundary with the boundary sample
	// (including per-phase cycle counts for the finished epoch).
	EpochEnd(s EpochSample)
	// ViolationFound fires for each detected safety violation, before
	// the violating event is recorded in the trace stream.
	ViolationFound(v Violation)
	// RunEnd fires once, after the Result is final. aborted is non-nil
	// when the run was cancelled by its context; res must be treated as
	// read-only.
	RunEnd(res *Result, aborted error)
}
