// Package config generates initial robot configurations (workloads) for
// the experiments. Every generator returns distinct positions — the only
// precondition the paper places on the input — and is deterministic per
// (family, n, seed). Families cover the regimes the algorithm's phases
// care about: scattered interiors, degenerate lines, deep onion hulls
// (maximum interior depth), convex starts (already near-terminal), and
// adversarial clusters.
package config

import (
	"fmt"
	"math"
	"math/rand"

	"luxvis/internal/geom"
)

// Family names a configuration generator.
type Family string

// The workload families used across the experiment suite.
const (
	// Uniform: n points uniform in a square, minimum-separation
	// rejection sampled.
	Uniform Family = "uniform"
	// Clustered: a few tight Gaussian clusters.
	Clustered Family = "clustered"
	// Line: n exactly collinear points with jittered spacing — the
	// degenerate case of the collinear-breakout phase.
	Line Family = "line"
	// LineEven: n exactly collinear, exactly evenly spaced points — the
	// symmetric worst case of the line phase.
	LineEven Family = "line-even"
	// Circle: n points on a circle with angular jitter — already in
	// strictly convex position (near-terminal input).
	Circle Family = "circle"
	// Onion: concentric rings — maximal hull-peeling depth, the
	// stress case for Interior Depletion.
	Onion Family = "onion"
	// Grid: a jittered lattice (many near-collinear triples).
	Grid Family = "grid"
	// TwoClusters: two distant tight groups (long corridors, extreme
	// aspect ratio).
	TwoClusters Family = "two-clusters"
	// Wedge: points inside a thin triangle (sharp hull corners, the
	// stress case for Edge Depletion bulges).
	Wedge Family = "wedge"
	// Spokes: points on straight rays from a common center — every ray
	// is an exactly collinear chain, so the initial visibility graph is
	// maximally obstructed without being a single line.
	Spokes Family = "spokes"
)

// Families lists all families in canonical order.
func Families() []Family {
	return []Family{
		Uniform, Clustered, Line, LineEven, Circle, Onion, Grid,
		TwoClusters, Wedge, Spokes,
	}
}

// scale is the nominal extent of generated configurations. Separations
// are scaled off it so tolerance behaviour is uniform across families.
const scale = 1000.0

// Generate returns n distinct positions of the given family. It panics
// on n < 1 or an unknown family — workloads are compiled into the
// experiment tables, so either is a programming error.
func Generate(f Family, n int, seed int64) []geom.Point {
	if n < 1 {
		panic("config: n must be positive")
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(f))<<32 ^ int64(n)<<16))
	var pts []geom.Point
	switch f {
	case Uniform:
		pts = uniform(n, rng)
	case Clustered:
		pts = clustered(n, rng)
	case Line:
		pts = line(n, rng, true)
	case LineEven:
		pts = line(n, rng, false)
	case Circle:
		pts = circle(n, rng)
	case Onion:
		pts = onion(n, rng)
	case Grid:
		pts = grid(n, rng)
	case TwoClusters:
		pts = twoClusters(n, rng)
	case Wedge:
		pts = wedge(n, rng)
	case Spokes:
		pts = spokes(n, rng)
	default:
		panic(fmt.Sprintf("config: unknown family %q", f))
	}
	ensureDistinct(pts, rng)
	return pts
}

// minSep is the rejection-sampling separation floor for scattered
// families, scaled down with crowding.
func minSep(n int) float64 {
	return scale / (4 * math.Sqrt(float64(n)) * 4)
}

func uniform(n int, rng *rand.Rand) []geom.Point {
	sep := minSep(n)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
		ok := true
		for _, q := range pts {
			if p.Dist(q) < sep {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func clustered(n int, rng *rand.Rand) []geom.Point {
	k := 3 + rng.Intn(3)
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
	}
	sigma := scale / 30
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		c := centers[rng.Intn(k)]
		p := geom.Pt(c.X+rng.NormFloat64()*sigma, c.Y+rng.NormFloat64()*sigma)
		pts = append(pts, p)
	}
	return pts
}

// line produces exactly collinear points along a slanted line; exact
// collinearity is arranged by construction on the parameter axis.
func line(n int, rng *rand.Rand, jitterGaps bool) []geom.Point {
	a := geom.Pt(rng.Float64()*scale/10, rng.Float64()*scale/10)
	d := geom.Pt(1, 0.5) // fixed rational slope keeps collinearity exact-ish
	ts := make([]float64, n)
	t := 0.0
	for i := range ts {
		gap := scale / float64(n)
		if jitterGaps {
			gap *= 0.5 + rng.Float64()
		}
		t += gap
		ts[i] = t
	}
	pts := make([]geom.Point, n)
	for i, ti := range ts {
		pts[i] = a.Add(d.Mul(ti))
	}
	// Shuffle so robot indices don't follow line order.
	rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func circle(n int, rng *rand.Rand) []geom.Point {
	c := geom.Pt(scale/2, scale/2)
	r := scale / 3
	pts := make([]geom.Point, n)
	base := rng.Float64() * 2 * math.Pi
	for i := range pts {
		jitter := (rng.Float64() - 0.5) * (math.Pi / float64(2*n))
		ang := base + 2*math.Pi*float64(i)/float64(n) + jitter
		pts[i] = geom.Pt(c.X+r*math.Cos(ang), c.Y+r*math.Sin(ang))
	}
	return pts
}

// onion builds concentric rings with slightly rotated phases: the hull
// has ~sqrt(n) peeling layers, maximizing interior depth.
func onion(n int, rng *rand.Rand) []geom.Point {
	c := geom.Pt(scale/2, scale/2)
	layers := int(math.Max(2, math.Sqrt(float64(n))/1.5))
	perLayer := (n + layers - 1) / layers
	pts := make([]geom.Point, 0, n)
	for l := 0; l < layers && len(pts) < n; l++ {
		r := scale/3 - float64(l)*(scale/3)/float64(layers+1)
		m := perLayer
		if len(pts)+m > n {
			m = n - len(pts)
		}
		phase := rng.Float64() * 2 * math.Pi
		for i := 0; i < m; i++ {
			ang := phase + 2*math.Pi*float64(i)/float64(m)
			pts = append(pts, geom.Pt(c.X+r*math.Cos(ang), c.Y+r*math.Sin(ang)))
		}
	}
	return pts
}

func grid(n int, rng *rand.Rand) []geom.Point {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	cell := scale / float64(side+1)
	jitter := cell / 8
	pts := make([]geom.Point, 0, n)
	for y := 0; y < side && len(pts) < n; y++ {
		for x := 0; x < side && len(pts) < n; x++ {
			pts = append(pts, geom.Pt(
				float64(x+1)*cell+(rng.Float64()-0.5)*jitter,
				float64(y+1)*cell+(rng.Float64()-0.5)*jitter,
			))
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

func twoClusters(n int, rng *rand.Rand) []geom.Point {
	sigma := scale / 50
	c1 := geom.Pt(scale/10, scale/2)
	c2 := geom.Pt(scale*9/10, scale/2)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		c := c1
		if len(pts)%2 == 1 {
			c = c2
		}
		pts = append(pts, geom.Pt(c.X+rng.NormFloat64()*sigma, c.Y+rng.NormFloat64()*sigma))
	}
	return pts
}

func wedge(n int, rng *rand.Rand) []geom.Point {
	// A thin triangle with apex angle ~10 degrees.
	apex := geom.Pt(scale/20, scale/2)
	length := scale * 0.9
	halfAngle := math.Pi / 36
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		t := 0.05 + 0.95*rng.Float64()
		a := (rng.Float64()*2 - 1) * halfAngle
		p := apex.Add(geom.Pt(math.Cos(a), math.Sin(a)).Mul(t * length))
		pts = append(pts, p)
	}
	return pts
}

// spokes places points on k straight rays from a common center with
// exactly collinear positions along each ray (t-multiples of one
// direction vector), maximizing initial obstruction: a robot sees only
// its ray neighbours and, across rays, whatever no nearer spoke point
// hides.
func spokes(n int, rng *rand.Rand) []geom.Point {
	center := geom.Pt(scale/2, scale/2)
	k := 3 + rng.Intn(5)
	if n < k {
		k = n
	}
	perRay := (n + k - 1) / k
	pts := make([]geom.Point, 0, n)
	for r := 0; r < k && len(pts) < n; r++ {
		ang := 2*math.Pi*float64(r)/float64(k) + rng.Float64()*0.2
		dir := geom.Pt(math.Cos(ang), math.Sin(ang))
		for i := 1; i <= perRay && len(pts) < n; i++ {
			t := float64(i) * (scale / 2.5) / float64(perRay+1)
			pts = append(pts, center.Add(dir.Mul(t)))
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// ensureDistinct nudges any exact duplicates apart; generators make them
// vanishingly unlikely, but the engine treats duplicates as input errors,
// so the guarantee is enforced here.
func ensureDistinct(pts []geom.Point, rng *rand.Rand) {
	for i := 0; i < len(pts); i++ {
		for j := 0; j < i; j++ {
			for pts[i].Eq(pts[j]) {
				pts[i] = pts[i].Add(geom.Pt(
					(rng.Float64()+0.5)*1e-6*scale,
					(rng.Float64()+0.5)*1e-6*scale,
				))
			}
		}
	}
}
