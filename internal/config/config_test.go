package config

import (
	"testing"

	"luxvis/internal/geom"
)

func TestGenerateAllFamilies(t *testing.T) {
	for _, fam := range Families() {
		for _, n := range []int{1, 2, 3, 7, 16, 40} {
			pts := Generate(fam, n, 11)
			if len(pts) != n {
				t.Fatalf("%s n=%d: generated %d points", fam, n, len(pts))
			}
			for i := 0; i < n; i++ {
				if !pts[i].IsFinite() {
					t.Fatalf("%s n=%d: non-finite point %v", fam, n, pts[i])
				}
				for j := i + 1; j < n; j++ {
					if pts[i].Eq(pts[j]) {
						t.Fatalf("%s n=%d: duplicate points %d, %d", fam, n, i, j)
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a := Generate(fam, 25, 42)
		b := Generate(fam, 25, 42)
		for i := range a {
			if !a[i].Eq(b[i]) {
				t.Fatalf("%s: generation not deterministic at %d", fam, i)
			}
		}
		c := Generate(fam, 25, 43)
		same := true
		for i := range a {
			if !a[i].Eq(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical configurations", fam)
		}
	}
}

func TestLineFamiliesAreCollinear(t *testing.T) {
	for _, fam := range []Family{Line, LineEven} {
		pts := Generate(fam, 30, 5)
		if !geom.AllCollinear(pts) {
			t.Errorf("%s: points not collinear", fam)
		}
	}
}

func TestCircleIsStrictlyConvex(t *testing.T) {
	pts := Generate(Circle, 24, 7)
	if !geom.StrictlyConvexPosition(pts) {
		t.Error("circle family not strictly convex")
	}
}

func TestOnionIsDeep(t *testing.T) {
	pts := Generate(Onion, 100, 3)
	// The onion must have several hull-peeling layers; a scattered set
	// of 100 points has depth ~5-8, the onion should reach at least
	// that via its explicit rings.
	depth := 0
	rest := pts
	for len(rest) > 0 {
		depth++
		h := geom.ConvexHull(rest)
		var next []geom.Point
		for _, p := range rest {
			if c := h.Classify(p); c != geom.HullCorner && c != geom.HullEdge {
				next = append(next, p)
			}
		}
		if len(next) == len(rest) {
			break
		}
		rest = next
	}
	if depth < 4 {
		t.Errorf("onion depth = %d, want ≥ 4", depth)
	}
}

func TestGeneratePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Generate(Uniform, 0, 1) },
		func() { Generate(Family("nonsense"), 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTwoClustersAreSeparated(t *testing.T) {
	pts := Generate(TwoClusters, 40, 9)
	min, max := geom.BoundingBox(pts)
	if max.X-min.X < scale/2 {
		t.Errorf("two-clusters spread %v too small", max.X-min.X)
	}
}

func TestWedgeIsThin(t *testing.T) {
	pts := Generate(Wedge, 60, 4)
	min, max := geom.BoundingBox(pts)
	w, h := max.X-min.X, max.Y-min.Y
	if h > w {
		t.Errorf("wedge aspect inverted: w=%v h=%v", w, h)
	}
}
