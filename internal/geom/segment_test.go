package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Len() != 5 {
		t.Errorf("Len = %v", s.Len())
	}
	if !s.Mid().Eq(Pt(1.5, 2)) {
		t.Errorf("Mid = %v", s.Mid())
	}
	if !s.At(0).Eq(s.A) || !s.At(1).Eq(s.B) {
		t.Error("At endpoints wrong")
	}
	if s.IsDegenerate() {
		t.Error("non-degenerate segment reported degenerate")
	}
	if !Seg(Pt(1, 1), Pt(1, 1)).IsDegenerate() {
		t.Error("degenerate segment not reported")
	}
}

func TestClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p     Point
		wantP Point
		wantT float64
	}{
		{Pt(5, 3), Pt(5, 0), 0.5},
		{Pt(-4, 2), Pt(0, 0), 0},   // clamped to A
		{Pt(14, -2), Pt(10, 0), 1}, // clamped to B
	}
	for _, c := range cases {
		q, tt := s.ClosestPoint(c.p)
		if !q.Eq(c.wantP) || !almostEq(tt, c.wantT) {
			t.Errorf("ClosestPoint(%v) = %v,%v want %v,%v", c.p, q, tt, c.wantP, c.wantT)
		}
	}
	// Degenerate segment.
	d := Seg(Pt(2, 2), Pt(2, 2))
	q, tt := d.ClosestPoint(Pt(5, 5))
	if !q.Eq(Pt(2, 2)) || tt != 0 {
		t.Errorf("degenerate ClosestPoint = %v,%v", q, tt)
	}
}

func TestSegmentIntersect(t *testing.T) {
	cases := []struct {
		name string
		s, u Segment
		want IntersectKind
	}{
		{"proper X", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), ProperCrossing},
		{"disjoint parallel", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), NoIntersection},
		{"disjoint skew", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(5, 5), Pt(6, 9)), NoIntersection},
		{"shared endpoint", Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(5, 5), Pt(9, 0)), Touching},
		{"T touch", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 7)), Touching},
		{"collinear overlap", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), Overlapping},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(9, 0)), NoIntersection},
		{"collinear endpoint touch", Seg(Pt(0, 0), Pt(5, 0)), Seg(Pt(5, 0), Pt(9, 0)), Touching},
		{"containment overlap", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(2, 0), Pt(8, 0)), Overlapping},
	}
	for _, c := range cases {
		got, _ := c.s.Intersect(c.u)
		if got != c.want {
			t.Errorf("%s: Intersect = %v, want %v", c.name, got, c.want)
		}
		// Symmetric.
		got2, _ := c.u.Intersect(c.s)
		if got2 != c.want {
			t.Errorf("%s (swapped): Intersect = %v, want %v", c.name, got2, c.want)
		}
	}
}

func TestProperCrossingPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	u := Seg(Pt(0, 10), Pt(10, 0))
	kind, p := s.Intersect(u)
	if kind != ProperCrossing {
		t.Fatalf("kind = %v", kind)
	}
	if !p.Eq(Pt(5, 5)) {
		t.Errorf("crossing point = %v", p)
	}
}

func TestLineIntersection(t *testing.T) {
	p, ok := LineIntersection(Pt(0, 0), Pt(1, 0), Pt(5, -3), Pt(5, 9))
	if !ok || !p.Eq(Pt(5, 0)) {
		t.Errorf("LineIntersection = %v,%v", p, ok)
	}
	if _, ok := LineIntersection(Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)); ok {
		t.Error("parallel lines reported as intersecting")
	}
}

func TestSegDist(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	u := Seg(Pt(0, 3), Pt(10, 3))
	if got := SegDist(s, u); !almostEq(got, 3) {
		t.Errorf("parallel SegDist = %v", got)
	}
	x := Seg(Pt(0, 0), Pt(10, 10))
	y := Seg(Pt(0, 10), Pt(10, 0))
	if got := SegDist(x, y); got != 0 {
		t.Errorf("crossing SegDist = %v", got)
	}
}

// Property: a proper crossing point lies on both segments.
func TestCrossingPointOnBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	found := 0
	for i := 0; i < 5000 && found < 500; i++ {
		s := Seg(randPt(rng), randPt(rng))
		u := Seg(randPt(rng), randPt(rng))
		kind, p := s.Intersect(u)
		if kind != ProperCrossing {
			continue
		}
		found++
		if s.Dist(p) > 1e-6 || u.Dist(p) > 1e-6 {
			t.Fatalf("crossing point %v not on both segments (%v, %v)", p, s.Dist(p), u.Dist(p))
		}
	}
	if found == 0 {
		t.Error("no proper crossings generated")
	}
}

// Property: ProperlyCrosses is symmetric.
func TestProperlyCrossesSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		s := Seg(randPt(rng), randPt(rng))
		u := Seg(randPt(rng), randPt(rng))
		if s.ProperlyCrosses(u) != u.ProperlyCrosses(s) {
			t.Fatalf("asymmetric crossing verdict for %v vs %v", s, u)
		}
	}
}

func randPt(rng *rand.Rand) Point {
	return Pt(rng.Float64()*100, rng.Float64()*100)
}

func TestContainsInterior(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if !s.ContainsInterior(Pt(5, 0)) {
		t.Error("interior point rejected")
	}
	if s.ContainsInterior(Pt(0, 0)) || s.ContainsInterior(Pt(10, 0)) {
		t.Error("endpoint accepted as interior")
	}
	if got := s.Dist(Pt(5, 2)); !almostEq(got, 2) {
		t.Errorf("Dist = %v", got)
	}
	_ = math.Pi
}
