package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinEnclosingCircleBasic(t *testing.T) {
	// Single point: zero circle.
	c := MinEnclosingCircle([]Point{Pt(3, 4)})
	if !c.Center.Eq(Pt(3, 4)) || c.R != 0 {
		t.Errorf("single point circle = %v", c)
	}
	// Two points: diametral.
	c = MinEnclosingCircle([]Point{Pt(0, 0), Pt(10, 0)})
	if !c.Center.Eq(Pt(5, 0)) || !almostEq(c.R, 5) {
		t.Errorf("two point circle = %v", c)
	}
	// Equilateral-ish triangle: circumcircle.
	c = MinEnclosingCircle([]Point{Pt(0, 0), Pt(10, 0), Pt(5, 8)})
	for _, p := range []Point{Pt(0, 0), Pt(10, 0), Pt(5, 8)} {
		if !c.Contains(p) {
			t.Errorf("triangle point %v outside SEC %v", p, c)
		}
	}
	// Obtuse triangle: SEC is the diametral circle of the long side,
	// strictly smaller than the circumcircle.
	c = MinEnclosingCircle([]Point{Pt(0, 0), Pt(10, 0), Pt(5, 1)})
	if !almostEq(c.R, 5) {
		t.Errorf("obtuse triangle SEC radius = %v, want 5", c.R)
	}
}

func TestMinEnclosingCirclePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty input did not panic")
		}
	}()
	MinEnclosingCircle(nil)
}

// Property: the SEC contains every input point, and shrinking it by any
// meaningful margin loses one.
func TestMinEnclosingCircleProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		c := MinEnclosingCircle(pts)
		// Containment.
		for _, p := range pts {
			if c.Center.Dist(p) > c.R+1e-7*(1+c.R) {
				t.Fatalf("trial %d: point %v outside SEC %v", trial, p, c)
			}
		}
		// Minimality: some point is (nearly) on the boundary.
		onBoundary := false
		for _, p := range pts {
			if c.Center.Dist(p) > c.R-1e-6*(1+c.R) {
				onBoundary = true
				break
			}
		}
		if !onBoundary {
			t.Fatalf("trial %d: no support point on the SEC boundary", trial)
		}
	}
}

// Property: the SEC is invariant under input permutation.
func TestMinEnclosingCircleOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		c1 := MinEnclosingCircle(pts)
		shuffled := append([]Point(nil), pts...)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c2 := MinEnclosingCircle(shuffled)
		if math.Abs(c1.R-c2.R) > 1e-6*(1+c1.R) || c1.Center.Dist(c2.Center) > 1e-6*(1+c1.R) {
			t.Fatalf("trial %d: SEC depends on order: %v vs %v", trial, c1, c2)
		}
	}
}

func TestMinEnclosingCircleCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 3), Pt(7, 7), Pt(10, 10)}
	c := MinEnclosingCircle(pts)
	want := Pt(5, 5)
	if c.Center.Dist(want) > 1e-9 || !almostEq(c.R, want.Dist(Pt(0, 0))) {
		t.Errorf("collinear SEC = %v", c)
	}
}
