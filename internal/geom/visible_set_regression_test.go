package geom_test

// Regression tests for two visibility-precision bugs:
//
//  1. The ±π branch cut: math.Atan2 maps nearly-opposite-ε rays to +π
//     and −π+ε, and the old VisibleSetFast only paired the first and
//     last direction buckets instead of chaining them circularly, so a
//     three-ray chain straddling the cut could report a blocked robot
//     as visible.
//
//  2. Scale-dependence of the folded-angle tolerance: the collinearity
//     predicates accept cross products up to Eps·L1-scale, an angular
//     acceptance that grows like Eps/d² for points at distance d from
//     the observer — at close range it dwarfs the old fixed 1e-6
//     direction-bucket tolerance, so true collinear triples (and the
//     obstructions they imply) were silently missed.
//
// Each test fails on the pre-fix implementation.

import (
	"math"
	"slices"
	"testing"

	"luxvis/internal/geom"
)

func polar(r, theta float64) geom.Point {
	return geom.Pt(r*math.Cos(theta), r*math.Sin(theta))
}

// TestVisibleSetFastBranchCutChain is the three-ray chain across the
// branch cut: from the observer, A and B sit just below −π+tol and C
// just below +π, so circularly A, B and C chain into one direction
// bucket. C (nearest) blocks both others; the pre-fix code only merged
// C's bucket with the single leading ray A and reported B visible.
func TestVisibleSetFastBranchCutChain(t *testing.T) {
	const tol = 1e-6 // the direction-bucket tolerance floor
	pts := []geom.Point{
		geom.Pt(0, 0),
		polar(0.004, -math.Pi+0.2*tol), // A: farthest, just past the cut
		polar(0.002, -math.Pi+0.9*tol), // B: chained to A, not to C directly
		polar(0.001, math.Pi-0.3*tol),  // C: nearest, on the +π side
	}
	got := geom.VisibleSetFast(pts, 0)
	if want := []int{3}; !slices.Equal(got, want) {
		t.Fatalf("VisibleSetFast across the ±π cut = %v, want %v (C blocks A and B)", got, want)
	}
	for i := range pts {
		fast := geom.VisibleSetFast(pts, i)
		ref := geom.VisibleFrom(pts, i)
		if !slices.Equal(fast, ref) {
			t.Fatalf("VisibleSetFast(%v, %d) = %v, reference VisibleFrom = %v", pts, i, fast, ref)
		}
	}
}

// TestVisibleSetFastNegativeXAxis pins the exact negative x-axis: a −0.0
// y-coordinate makes Atan2 return −π instead of +π for the same
// geometric direction, the worst case of the branch cut.
func TestVisibleSetFastNegativeXAxis(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(-1, 0),                    // θ = +π from the observer
		geom.Pt(-2, math.Copysign(0, -1)), // θ = −π from the observer, same ray
		geom.Pt(1, 0),
	}
	got := geom.VisibleSetFast(pts, 0)
	if want := []int{1, 3}; !slices.Equal(got, want) {
		t.Fatalf("VisibleSetFast on the negative x-axis = %v, want %v ((-1,0) blocks (-2,-0))", got, want)
	}
	for i := range pts {
		fast := geom.VisibleSetFast(pts, i)
		ref := geom.VisibleFrom(pts, i)
		if !slices.Equal(fast, ref) {
			t.Fatalf("VisibleSetFast(%v, %d) = %v, reference VisibleFrom = %v", pts, i, fast, ref)
		}
	}
}

// TestCompleteVisibilityFastLargeCoordinates is the scale-dependence
// fixture: at coordinates near 1e4, two points 1e-4 from a third are
// accepted as collinear by AreCollinear (cross 5e-10 ≤ its scaled
// tolerance) while their direction gap, 0.025 rad, is four orders of
// magnitude above the old fixed folding tolerance — so the pre-fix
// CollinearTriples missed the triple and CompleteVisibilityFast
// contradicted CompleteVisibility.
func TestCompleteVisibilityFastLargeCoordinates(t *testing.T) {
	k := geom.Pt(1e4, 1e4)
	pts := []geom.Point{
		k,
		k.Add(geom.Pt(1e-4, 0)),
		k.Add(geom.Pt(2e-4, 5e-6)),
	}
	if geom.CompleteVisibility(pts) {
		t.Fatalf("fixture is broken: the O(n³) reference should reject %v", pts)
	}
	if geom.CompleteVisibilityFast(pts) {
		t.Fatalf("CompleteVisibilityFast(%v) = true, but point 1 blocks point 2 from point 0", pts)
	}
	if len(geom.CollinearTriples(pts, 0)) == 0 {
		t.Fatalf("CollinearTriples(%v) found nothing, want the (1, 2, blocker 0) line", pts)
	}
	for i := range pts {
		fast := geom.VisibleSetFast(pts, i)
		ref := geom.VisibleFrom(pts, i)
		if !slices.Equal(fast, ref) {
			t.Fatalf("VisibleSetFast(%v, %d) = %v, reference VisibleFrom = %v", pts, i, fast, ref)
		}
	}
}

// TestCollinearCandidatesScaleContract re-checks the superset contract
// CollinearCandidates documents for the exact checker on the
// large-coordinate fixture: every confirmed triple must appear among the
// candidates regardless of coordinate magnitude.
func TestCollinearCandidatesScaleContract(t *testing.T) {
	k := geom.Pt(1e4, 1e4)
	pts := []geom.Point{
		k,
		k.Add(geom.Pt(1e-4, 0)),
		k.Add(geom.Pt(2e-4, 5e-6)),
		k.Add(geom.Pt(-3, 7)), // an unrelated, well-separated witness
	}
	cands := geom.CollinearCandidates(pts, 1e-5)
	found := false
	for _, c := range cands {
		if c.Blocker == 0 && ((c.A == 1 && c.B == 2) || (c.A == 2 && c.B == 1)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("CollinearCandidates(%v, 1e-5) = %v, missing the (1, 2) pair through observer 0", pts, cands)
	}
}
