package geom

import (
	"slices"
)

// Hull is the convex hull of a point set. Corners holds the strict hull
// corners in counterclockwise order, with no three consecutive corners
// collinear; collinear boundary points are deliberately excluded from
// Corners and classified as edge points instead, because the Complete
// Visibility algorithms treat corners and edge robots differently.
type Hull struct {
	// Corners are the strict hull vertices in CCW order.
	Corners []Point
}

// ConvexHull computes the convex hull of pts using Andrew's monotone
// chain. Duplicate points are tolerated. For fewer than three distinct
// points the hull degenerates: two corners for a segment, one for a point,
// zero for an empty input.
func ConvexHull(pts []Point) Hull {
	p := make([]Point, len(pts))
	copy(p, pts)
	slices.SortFunc(p, func(a, b Point) int {
		switch {
		case a.Less(b):
			return -1
		case b.Less(a):
			return 1
		default:
			return 0
		}
	})
	// Remove duplicates.
	uniq := p[:0]
	for _, q := range p {
		if len(uniq) == 0 || !uniq[len(uniq)-1].Eq(q) {
			uniq = append(uniq, q)
		}
	}
	p = uniq
	n := len(p)
	if n == 0 {
		return Hull{}
	}
	if n == 1 {
		return Hull{Corners: []Point{p[0]}}
	}
	if AllCollinear(p) {
		lo, hi := LineExtremes(p)
		if lo == hi {
			return Hull{Corners: []Point{p[lo]}}
		}
		return Hull{Corners: []Point{p[lo], p[hi]}}
	}

	// Build lower then upper chain, keeping only strict left turns so
	// that collinear boundary points are dropped from the corner list.
	hull := make([]Point, 0, 2*n)
	for _, q := range p {
		for len(hull) >= 2 && Orient(hull[len(hull)-2], hull[len(hull)-1], q) != CCW {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, q)
	}
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		q := p[i]
		for len(hull) >= lower && Orient(hull[len(hull)-2], hull[len(hull)-1], q) != CCW {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, q)
	}
	return Hull{Corners: hull[:len(hull)-1]}
}

// Degenerate reports whether the hull has fewer than three corners (the
// point set was empty, a single point, or fully collinear).
func (h Hull) Degenerate() bool { return len(h.Corners) < 3 }

// Area returns the (positive) area enclosed by the hull, zero for
// degenerate hulls.
func (h Hull) Area() float64 {
	if h.Degenerate() {
		return 0
	}
	var a float64
	n := len(h.Corners)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += h.Corners[i].Cross(h.Corners[j])
	}
	if a < 0 {
		a = -a
	}
	return a / 2
}

// Perimeter returns the total boundary length of the hull.
func (h Hull) Perimeter() float64 {
	n := len(h.Corners)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += h.Corners[i].Dist(h.Corners[(i+1)%n])
	}
	return s
}

// PointClass classifies a point relative to a convex hull.
type PointClass int

const (
	// HullCorner: the point is a strict corner of the hull.
	HullCorner PointClass = iota
	// HullEdge: the point lies on the hull boundary strictly between two
	// corners.
	HullEdge
	// HullInterior: the point lies strictly inside the hull.
	HullInterior
	// HullOutside: the point lies strictly outside the hull.
	HullOutside
)

func (c PointClass) String() string {
	switch c {
	case HullCorner:
		return "corner"
	case HullEdge:
		return "edge"
	case HullInterior:
		return "interior"
	case HullOutside:
		return "outside"
	default:
		return "unknown"
	}
}

// Classify locates p relative to the hull. For degenerate hulls (all
// points collinear) corners are the segment endpoints, edge points are the
// interior of the segment, and everything off the line is outside.
func (h Hull) Classify(p Point) PointClass {
	n := len(h.Corners)
	switch n {
	case 0:
		return HullOutside
	case 1:
		if h.Corners[0].Eq(p) {
			return HullCorner
		}
		return HullOutside
	case 2:
		a, b := h.Corners[0], h.Corners[1]
		if a.Eq(p) || b.Eq(p) {
			return HullCorner
		}
		if StrictlyBetween(a, b, p) {
			return HullEdge
		}
		return HullOutside
	}
	for _, c := range h.Corners {
		if c.Eq(p) {
			return HullCorner
		}
	}
	inside := true
	onEdge := false
	for i := 0; i < n; i++ {
		a, b := h.Corners[i], h.Corners[(i+1)%n]
		switch Orient(a, b, p) {
		case CW:
			return HullOutside
		case Collinear:
			if OnSegment(a, b, p) {
				onEdge = true
			} else {
				return HullOutside
			}
		case CCW:
			// strictly inside this edge's half-plane; keep going
		}
		_ = inside
	}
	if onEdge {
		return HullEdge
	}
	return HullInterior
}

// EdgeOf returns the hull edge (corner pair, CCW order) whose closed
// segment contains p, for points classified HullEdge or HullCorner. ok is
// false when p is not on the boundary.
func (h Hull) EdgeOf(p Point) (a, b Point, ok bool) {
	n := len(h.Corners)
	if n == 2 {
		if OnSegment(h.Corners[0], h.Corners[1], p) {
			return h.Corners[0], h.Corners[1], true
		}
		return Point{}, Point{}, false
	}
	for i := 0; i < n; i++ {
		a, b := h.Corners[i], h.Corners[(i+1)%n]
		if OnSegment(a, b, p) {
			return a, b, true
		}
	}
	return Point{}, Point{}, false
}

// Contains reports whether p lies in the closed hull region.
func (h Hull) Contains(p Point) bool {
	c := h.Classify(p)
	return c == HullCorner || c == HullEdge || c == HullInterior
}

// StrictlyConvexPosition reports whether every point of pts is a strict
// corner of the hull of pts and all points are distinct. Points in
// strictly convex position are pairwise mutually visible, which is the
// terminal configuration of the Complete Visibility algorithms.
func StrictlyConvexPosition(pts []Point) bool {
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Eq(pts[j]) {
				return false
			}
		}
	}
	if len(pts) <= 2 {
		return true
	}
	h := ConvexHull(pts)
	if h.Degenerate() {
		// Three or more collinear points are never strictly convex.
		return false
	}
	if len(h.Corners) != len(pts) {
		return false
	}
	return true
}
