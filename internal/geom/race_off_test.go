//go:build !race

package geom_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
