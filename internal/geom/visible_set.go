package geom

import (
	"math"
	"slices"
	"sort"
)

// VisibleSetFast returns the indices of the points visible from pts[i] in
// O(n log n): points are bucketed by their ray direction from pts[i];
// within a bucket of collinear same-side points only the nearest is
// visible, and points collinear through pts[i] on opposite sides do not
// obstruct each other. The result matches VisibleFrom (the O(n²)
// reference) and the equivalence is property-tested.
//
// Coincident points (violating the model's distinctness invariant) are
// treated as mutually invisible, matching Visible.
func VisibleSetFast(pts []Point, i int) []int {
	type ray struct {
		theta float64 // direction in (-π, π]
		dist2 float64
		idx   int
	}
	self := pts[i]
	rays := make([]ray, 0, len(pts)-1)
	for j, p := range pts {
		if j == i {
			continue
		}
		d := p.Sub(self)
		if d.Norm2() == 0 {
			continue // coincident: not visible
		}
		rays = append(rays, ray{theta: math.Atan2(d.Y, d.X), dist2: d.Norm2(), idx: j})
	}
	slices.SortFunc(rays, func(a, b ray) int {
		switch {
		case a.theta < b.theta:
			return -1
		case a.theta > b.theta:
			return 1
		case a.dist2 < b.dist2:
			return -1
		case a.dist2 > b.dist2:
			return 1
		default:
			return 0
		}
	})

	visible := make([]int, 0, len(rays))
	// Cluster runs of near-equal direction; runs are tiny in non-
	// degenerate configurations, so the quadratic confirmation inside a
	// run is cheap.
	process := func(run []ray) {
		if len(run) == 1 {
			visible = append(visible, run[0].idx)
			return
		}
		for a := 0; a < len(run); a++ {
			blocked := false
			for b := 0; b < len(run); b++ {
				if a == b {
					continue
				}
				if StrictlyBetween(self, pts[run[a].idx], pts[run[b].idx]) {
					blocked = true
					break
				}
			}
			if !blocked {
				visible = append(visible, run[a].idx)
			}
		}
	}
	for lo := 0; lo < len(rays); {
		hi := lo + 1
		for hi < len(rays) && rays[hi].theta-rays[hi-1].theta < angleFoldTol {
			hi++
		}
		// Wrap-around: the final run merges with the leading run when the
		// circular gap closes. Handle by extending the last run with the
		// leading elements (directions near -π and near +π coincide).
		if hi == len(rays) && lo > 0 &&
			rays[0].theta+2*math.Pi-rays[len(rays)-1].theta < angleFoldTol {
			run := append([]ray{}, rays[lo:hi]...)
			k := 0
			for k < lo && (rays[k].theta+2*math.Pi-rays[len(rays)-1].theta) < angleFoldTol {
				k++
			}
			// The leading elements were already emitted by the first run;
			// redo visibility for the merged run and drop the earlier
			// verdicts for those indices.
			if k > 0 {
				drop := make(map[int]bool, k)
				for _, r := range rays[:k] {
					drop[r.idx] = true
				}
				filtered := visible[:0]
				for _, v := range visible {
					if !drop[v] {
						filtered = append(filtered, v)
					}
				}
				visible = filtered
				run = append(run, rays[:k]...)
			}
			process(run)
			lo = hi
			continue
		}
		process(rays[lo:hi])
		lo = hi
	}
	sort.Ints(visible)
	return visible
}
