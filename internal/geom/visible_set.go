package geom

import (
	"math"
	"slices"
)

// ray is one direction from an observer to another point: the
// pseudo-angle of the offset, the squared distance, and the target's
// index.
type ray struct {
	theta float64 // pseudo-angle in [-2, 2], see pseudoAngle
	dist2 float64
	idx   int
}

// pseudoAngle maps direction d to a monotone stand-in for its polar
// angle: the position of d on the diamond |x|+|y| = 1, in [-2, 2],
// strictly increasing with Atan2(d.Y, d.X) and hitting ±2 at the
// negative x-axis branch cut. It costs one division instead of a
// transcendental, and a small angular gap of g radians maps to a
// pseudo-angle gap in [g/2, g] — so clustering pseudo-angles with a
// radian-derived tolerance only ever joins more, never fewer,
// near-equal directions than clustering true angles would.
func pseudoAngle(d Point) float64 {
	r := d.X / (abs(d.X) + abs(d.Y))
	if d.Y < 0 {
		return r - 1 // lower half plane: (-2, 0)
	}
	return 1 - r // upper half plane (incl. ±0): [0, 2]
}

// rowArena is the reusable scratch of one visibility-row computation.
// Buffers grow to the swarm size once and are reused thereafter, so a
// warm arena computes rows without allocating.
type rowArena struct {
	rays []ray
	tmp  []ray   // bucket-sort scatter target, swapped with rays
	cnt  []int32 // bucket-sort counters
	run  []ray   // scratch for runs that wrap across the branch cut
	mask []byte  // per-point visible flags, emitted in index order
}

// sortRays sorts a.rays by (theta, dist2). Large ray sets use a bucket
// sort over the pseudo-angle range: directions from an observer are
// near-uniform in practice, so buckets hold O(1) rays and the sort runs
// in linear time; pathological bucket skew falls back to the comparison
// sort. The sorted order — all the downstream clustering sees — is
// identical either way.
func (a *rowArena) sortRays() {
	rays := a.rays
	n := len(rays)
	if n < 48 {
		sortRaysCmp(rays)
		return
	}
	nb := 1
	for nb < n && nb < 1<<16 {
		nb <<= 1
	}
	if cap(a.cnt) < nb+1 {
		a.cnt = make([]int32, nb+1)
	}
	cnt := a.cnt[:nb+1]
	for i := range cnt {
		cnt[i] = 0
	}
	if cap(a.tmp) < n {
		a.tmp = make([]ray, n)
	}
	tmp := a.tmp[:n]
	scale := float64(nb) / 4
	bucketOf := func(theta float64) int {
		v := (theta + 2) * scale
		if !(v > 0) { // negative or a NaN pseudo-angle
			return 0
		}
		c := int(v)
		if c >= nb {
			c = nb - 1
		}
		return c
	}
	maxBucket := int32(0)
	for i := range rays {
		c := bucketOf(rays[i].theta)
		cnt[c+1]++
		if cnt[c+1] > maxBucket {
			maxBucket = cnt[c+1]
		}
	}
	if maxBucket > 64 {
		// Heavily skewed directions (clustered configurations): the
		// per-bucket insertion sorts would go quadratic.
		sortRaysCmp(rays)
		return
	}
	for c := 1; c < len(cnt); c++ {
		cnt[c] += cnt[c-1]
	}
	for i := range rays {
		c := bucketOf(rays[i].theta)
		tmp[cnt[c]] = rays[i]
		cnt[c]++
	}
	// cnt[c] now holds the end offset of bucket c; buckets are already
	// ordered relative to each other, so a bounded insertion sort within
	// each finishes the job.
	lo := int32(0)
	for c := 0; c < nb; c++ {
		hi := cnt[c]
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && rayLess(tmp[j], tmp[j-1]); j-- {
				tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
			}
		}
		lo = hi
	}
	a.rays, a.tmp = tmp, rays
}

func rayLess(x, y ray) bool {
	if x.theta != y.theta {
		return x.theta < y.theta
	}
	return x.dist2 < y.dist2
}

func sortRaysCmp(rays []ray) {
	slices.SortFunc(rays, func(x, y ray) int {
		switch {
		case x.theta < y.theta:
			return -1
		case x.theta > y.theta:
			return 1
		case x.dist2 < y.dist2:
			return -1
		case x.dist2 > y.dist2:
			return 1
		default:
			return 0
		}
	})
}

// visibleRow computes the visible set of pts[i] into out (which is
// truncated and appended to, so callers can reuse its backing array) and
// returns it, sorted by index. It is the single implementation behind
// VisibleSetFast, RowCache and the batched Kernel: identical inputs give
// identical outputs regardless of which entry point or arena is used.
func (a *rowArena) visibleRow(pts []Point, i int, out []int) []int {
	self := pts[i]
	rays := a.rays[:0]
	minD2 := math.Inf(1)
	maxL1 := 0.0
	for j, p := range pts {
		if j == i {
			continue
		}
		d := p.Sub(self)
		d2 := d.Norm2()
		if d2 == 0 {
			continue // coincident: not visible
		}
		rays = append(rays, ray{theta: pseudoAngle(d), dist2: d2, idx: j})
		if d2 < minD2 {
			minD2 = d2
		}
		if l1 := abs(d.X) + abs(d.Y); l1 > maxL1 {
			maxL1 = l1
		}
	}
	a.rays = rays
	out = out[:0]
	if len(rays) == 0 {
		return out
	}
	// Verdicts accumulate in a per-point mask and are emitted in index
	// order at the end — an O(n) pass instead of sorting the result.
	if cap(a.mask) < len(pts) {
		a.mask = make([]byte, len(pts))
	}
	mask := a.mask[:len(pts)]
	for j := range mask {
		mask[j] = 0
	}
	a.sortRays()
	rays = a.rays

	tol, ok := foldTol(minD2, maxL1)
	if !ok {
		// Degenerate observer (some point nearly coincident with it): no
		// angular tolerance can bound the obstruction cone, so fall back
		// to the quadratic confirmation over all rays at once. This is
		// exactly the O(n²) reference semantics of VisibleFrom.
		markRunVerdicts(pts, self, rays, mask)
		return emitMask(mask, out)
	}

	// Cluster the rays into circular runs of near-equal direction:
	// consecutive (circularly, so the branch cut at pseudo-angle ±2
	// does not split a run) rays closer than tol chain into one run.
	// Runs are tiny in non-degenerate configurations, so the quadratic
	// confirmation inside a run is cheap.
	n := len(rays)
	gapAfter := func(j int) float64 {
		if j == n-1 {
			return rays[0].theta + 4 - rays[n-1].theta
		}
		return rays[j+1].theta - rays[j].theta
	}
	start := -1
	for j := 0; j < n; j++ {
		if gapAfter(j) >= tol {
			start = (j + 1) % n
			break
		}
	}
	if start < 0 {
		// Every circular gap closes: the whole set is one run.
		markRunVerdicts(pts, self, rays, mask)
		return emitMask(mask, out)
	}
	for consumed, lo := 0, start; consumed < n; {
		runLen := 1
		for consumed+runLen < n && gapAfter((lo+runLen-1)%n) < tol {
			runLen++
		}
		if lo+runLen <= n {
			markRunVerdicts(pts, self, rays[lo:lo+runLen], mask)
		} else {
			// The run wraps across the branch cut: gather it into the
			// contiguous scratch so the all-pairs confirmation sees the
			// first and last direction buckets merged.
			wrapped := a.run[:0]
			for k := 0; k < runLen; k++ {
				wrapped = append(wrapped, rays[(lo+k)%n])
			}
			a.run = wrapped
			markRunVerdicts(pts, self, wrapped, mask)
		}
		consumed += runLen
		lo = (lo + runLen) % n
	}
	return emitMask(mask, out)
}

// markRunVerdicts marks the run's visible members in mask: a member is
// visible unless another member of the same run lies strictly between
// the observer and it. Singleton runs are visible by construction;
// points absent from any run (coincident with the observer) keep their
// zero mask.
func markRunVerdicts(pts []Point, self Point, run []ray, mask []byte) {
	if len(run) == 1 {
		mask[run[0].idx] = 1
		return
	}
	for a := 0; a < len(run); a++ {
		blocked := false
		for b := 0; b < len(run); b++ {
			if a == b {
				continue
			}
			if StrictlyBetween(self, pts[run[a].idx], pts[run[b].idx]) {
				blocked = true
				break
			}
		}
		if !blocked {
			mask[run[a].idx] = 1
		}
	}
}

// emitMask appends the marked indices to out in increasing order.
func emitMask(mask []byte, out []int) []int {
	for j, m := range mask {
		if m != 0 {
			out = append(out, j)
		}
	}
	return out
}

// VisibleSetFast returns the indices of the points visible from pts[i] in
// O(n log n): points are bucketed by their ray direction from pts[i];
// within a bucket of collinear same-side points only the nearest is
// visible, and points collinear through pts[i] on opposite sides do not
// obstruct each other. The result matches VisibleFrom (the O(n²)
// reference) and the equivalence is property-tested and fuzzed.
//
// Buckets are chained circularly, so directions straddling the negative
// x-axis branch cut (angle +π versus −π+ε, including the -0.0
// y-coordinate case) merge into one bucket, and the bucket tolerance
// adapts to the observer's ray geometry (see foldTol) so that
// close-range obstructions with a wide angular footprint are never
// missed.
//
// Coincident points (violating the model's distinctness invariant) are
// treated as mutually invisible, matching Visible.
//
// Each call allocates its own scratch; hot paths should use a RowCache
// or a Kernel Snapshot, which reuse arenas across calls.
func VisibleSetFast(pts []Point, i int) []int {
	var a rowArena
	return a.visibleRow(pts, i, nil)
}

// RowCache computes single visibility rows with reusable buffers: after
// the first call the returned slice and all internal scratch are
// recycled, so a warm cache computes rows without allocating. The result
// of VisibleSet is valid until the next call and must not be retained or
// mutated. A RowCache is not goroutine-safe; use one per goroutine (the
// concurrent runtime keeps one per robot).
type RowCache struct {
	a   rowArena
	out []int
}

// VisibleSet returns the visible set of pts[i], identical to
// VisibleSetFast(pts, i), reusing the cache's buffers.
func (c *RowCache) VisibleSet(pts []Point, i int) []int {
	c.out = c.a.visibleRow(pts, i, c.out)
	return c.out
}
