package geom

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the batched visibility kernel: a worker pool with
// per-worker arenas that computes all n visible sets of a configuration
// in one parallel pass, an incrementally-maintained Snapshot that reuses
// rows across single-robot moves (the common ASYNC case), and a parallel
// variant of the Complete Visibility check. All row computation funnels
// through rowArena.visibleRow, so kernel results are identical — not just
// equivalent — to VisibleSetFast.

const (
	// kernelMinParallel is the swarm size below which batch operations
	// run on the caller's goroutine: fan-out overhead beats the work
	// itself for small n, and small runs never spawn the pool at all.
	kernelMinParallel = 128
	// pendingCap bounds the Snapshot move log. When it overflows, the
	// snapshot raises a barrier and every stale row recomputes fully.
	pendingCap = 16
	// reuseScanMax bounds how many logged moves a lazy row revalidation
	// will scan before giving up and recomputing: past that the O(moves·n)
	// isolation scan costs as much as the O(n log n) recompute.
	reuseScanMax = 8
)

// kernelArena is one worker's private scratch plus its stat cells for the
// current batch (summed into the snapshot after the join, so workers
// never write shared memory).
type kernelArena struct {
	row          rowArena
	dirs         []dir
	rowsComputed int64
	rowsReused   int64

	// cvEmit is the persistent collinearObserver callback for CV scans,
	// built once per arena so the steady state allocates nothing; it
	// reads the observer and points through cvObs/cvPts.
	cvEmit func(x, y int, confirmable bool) bool
	cvObs  int
	cvPts  []Point
}

// kernelJob is one batch dispatched to every worker: a snapshot row fill
// when snap is set, a Complete Visibility scan over pts otherwise.
type kernelJob struct {
	snap *Snapshot
	pts  []Point
}

// Kernel owns the worker pool and arenas for batched visibility
// computation. Workers are spawned lazily on the first batch large
// enough to parallelize and live until Close; dispatch is a channel
// handshake with no per-batch allocation. A Kernel's methods must not be
// called concurrently with each other — it serves one engine loop — but
// distinct Kernels are fully independent.
type Kernel struct {
	workers int
	arenas  []kernelArena
	jobs    []chan kernelJob
	wg      sync.WaitGroup
	started bool
	closed  bool
	cvFound atomic.Bool
}

// NewKernel returns a kernel with the given number of workers;
// workers <= 0 selects runtime.NumCPU(). Close must be called to release
// the pool (a never-parallelized kernel holds no resources, and Close is
// still safe).
func NewKernel(workers int) *Kernel {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Kernel{
		workers: workers,
		arenas:  make([]kernelArena, workers),
	}
}

// Workers reports the pool size.
func (k *Kernel) Workers() int { return k.workers }

// Close stops the worker pool. The kernel must not be used afterwards.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	if k.started {
		for _, c := range k.jobs {
			close(c)
		}
	}
}

// start spawns the workers on first parallel use.
func (k *Kernel) start() {
	if k.started {
		return
	}
	k.started = true
	k.jobs = make([]chan kernelJob, k.workers)
	for w := range k.jobs {
		// Buffered by one so dispatch never blocks: the dispatcher joins
		// every batch before issuing the next, so at most one job is ever
		// in flight per worker.
		k.jobs[w] = make(chan kernelJob, 1)
		go k.worker(w)
	}
}

// dispatch hands one job to every worker and waits for the batch.
func (k *Kernel) dispatch(job kernelJob) {
	k.start()
	k.wg.Add(k.workers)
	for w := range k.jobs {
		k.jobs[w] <- job
	}
	k.wg.Wait()
}

func (k *Kernel) worker(w int) {
	for job := range k.jobs[w] {
		if job.snap != nil {
			k.fillRows(w, job.snap)
		} else {
			k.cvScan(&k.arenas[w], job.pts, w, k.workers)
		}
		k.wg.Done()
	}
}

// fillRows brings worker w's stride of snapshot rows up to date.
func (k *Kernel) fillRows(w int, s *Snapshot) {
	a := &k.arenas[w]
	for r := w; r < len(s.pts); r += k.workers {
		if s.rowVer[r] == s.version {
			continue
		}
		if s.fillRow(r, a) {
			a.rowsComputed++
		} else {
			a.rowsReused++
		}
	}
}

// cvScan runs one stride of the Complete Visibility scan over observers
// start, start+step, …: duplicate detection for pairs anchored at the
// strided index plus the folded-direction collinear scan with that index
// as observer, with a shared early-exit flag once any refutation is
// found. Workers call it with their stride; the serial path calls it
// once with stride 1.
func (k *Kernel) cvScan(a *kernelArena, pts []Point, start, step int) {
	if a.cvEmit == nil {
		a.cvEmit = func(x, y int, confirmable bool) bool {
			if k.cvFound.Load() {
				return true
			}
			if !confirmable || AreCollinear(a.cvPts[a.cvObs], a.cvPts[x], a.cvPts[y]) {
				k.cvFound.Store(true)
				return true
			}
			return false
		}
	}
	a.cvPts = pts
	defer func() { a.cvPts = nil }()
	n := len(pts)
	for i := start; i < n; i += step {
		if k.cvFound.Load() {
			return
		}
		for j := i + 1; j < n; j++ {
			if pts[i].Eq(pts[j]) {
				k.cvFound.Store(true)
				return
			}
		}
		a.cvObs = i
		var stop bool
		a.dirs, stop = collinearObserver(pts, i, 0, a.dirs, a.cvEmit)
		if stop {
			return
		}
	}
}

// CompleteVisibilityFast is the parallel variant of the package-level
// CompleteVisibilityFast with an identical verdict: both report
// distinctness plus the absence of any confirmed collinear triple, and
// the per-observer scan is the same code for both. Small inputs run
// serially on the caller's goroutine (still allocation-free once warm).
func (k *Kernel) CompleteVisibilityFast(pts []Point) bool {
	k.cvFound.Store(false)
	if len(pts) < kernelMinParallel || k.workers <= 1 {
		k.cvScan(&k.arenas[0], pts, 0, 1)
		return !k.cvFound.Load()
	}
	k.dispatch(kernelJob{pts: pts})
	return !k.cvFound.Load()
}

// pendingMove is one logged position change since the snapshot barrier.
type pendingMove struct {
	robot int
	ver   int64 // snapshot version immediately after this move
	old   Point
}

// SnapshotStats counts how rows were produced since Reset.
type SnapshotStats struct {
	// RowsComputed counts full O(n log n) row computations.
	RowsComputed int64
	// RowsReused counts rows revalidated by the incremental isolation
	// check instead of recomputed.
	RowsReused int64
}

// Snapshot is an incrementally-maintained view of all n visibility rows
// of a configuration. Positions change through Update, rows are read
// through Row (lazily brought up to date) or ComputeAll (batched across
// the kernel's workers). Rows are always exactly what VisibleSetFast
// would return for the current positions — the incremental path only
// skips recomputation when it can prove the answer is unchanged.
//
// A Snapshot is single-owner: its methods must not be called
// concurrently (ComputeAll parallelizes internally and returns only
// after the batch joins). Row results are valid until the owning row is
// next recomputed and must not be mutated.
type Snapshot struct {
	k       *Kernel
	pts     []Point
	rows    [][]int
	rowVer  []int64 // version at which rows[r] was last valid
	version int64   // increments on every Reset/Update
	barrier int64   // rows older than this must recompute fully
	pending []pendingMove

	rowsComputed int64
	rowsReused   int64
}

// NewSnapshot returns an empty snapshot bound to the kernel; call Reset
// to load a configuration.
func (k *Kernel) NewSnapshot() *Snapshot {
	return &Snapshot{k: k}
}

// Reset loads a configuration, invalidating every row. The snapshot
// keeps its buffers, so resetting to same-size configurations does not
// allocate once warm.
func (s *Snapshot) Reset(pts []Point) {
	s.pts = append(s.pts[:0], pts...)
	n := len(pts)
	for len(s.rows) < n {
		s.rows = append(s.rows, nil)
	}
	s.rows = s.rows[:n]
	for len(s.rowVer) < n {
		s.rowVer = append(s.rowVer, 0)
	}
	s.rowVer = s.rowVer[:n]
	for i := range s.rowVer {
		s.rowVer[i] = 0 // version is always ≥ 1: marks the row stale
	}
	s.version++
	s.barrier = s.version
	s.pending = s.pending[:0]
}

// Len returns the number of points in the snapshot.
func (s *Snapshot) Len() int { return len(s.pts) }

// At returns the current position of point m.
func (s *Snapshot) At(m int) Point { return s.pts[m] }

// Update moves point m to p, logging the old position so unaffected rows
// can be revalidated instead of recomputed. When the log overflows the
// snapshot raises a barrier: every row computed before it recomputes
// fully on next access.
func (s *Snapshot) Update(m int, p Point) {
	if len(s.pending) >= pendingCap {
		s.version++
		s.barrier = s.version
		s.pending = s.pending[:0]
		s.pts[m] = p
		return
	}
	s.version++
	s.pending = append(s.pending, pendingMove{robot: m, ver: s.version, old: s.pts[m]})
	s.pts[m] = p
}

// Row returns the visible set of point r for the current positions,
// bringing the row up to date if needed. The result is
// VisibleSetFast(current positions, r), byte for byte.
func (s *Snapshot) Row(r int) []int {
	if s.rowVer[r] != s.version {
		if s.fillRow(r, &s.k.arenas[0]) {
			s.rowsComputed++
		} else {
			s.rowsReused++
		}
	}
	return s.rows[r]
}

// ComputeAll brings every row up to date in one batch, fanned out across
// the kernel's workers for large n. Afterwards Row(r) is O(1) for all r
// until the next Update.
func (s *Snapshot) ComputeAll() {
	n := len(s.pts)
	if n < kernelMinParallel || s.k.workers <= 1 {
		for r := 0; r < n; r++ {
			s.Row(r)
		}
		return
	}
	s.k.dispatch(kernelJob{snap: s})
	for w := range s.k.arenas {
		a := &s.k.arenas[w]
		s.rowsComputed += a.rowsComputed
		s.rowsReused += a.rowsReused
		a.rowsComputed = 0
		a.rowsReused = 0
	}
}

// Stats reports the row accounting since Reset.
func (s *Snapshot) Stats() SnapshotStats {
	return SnapshotStats{RowsComputed: s.rowsComputed, RowsReused: s.rowsReused}
}

// fillRow brings row r up to date using arena a and reports whether a
// full recompute was needed. Workers call it on disjoint rows: it reads
// shared snapshot state (positions, move log) and writes only row r.
func (s *Snapshot) fillRow(r int, a *kernelArena) (computed bool) {
	if s.rowVer[r] >= s.barrier && s.rowUnaffected(r) {
		s.rowVer[r] = s.version
		return false
	}
	s.rows[r] = a.row.visibleRow(s.pts, r, s.rows[r])
	s.rowVer[r] = s.version
	return true
}

// rowUnaffected reports whether row r provably survived every move
// logged since it was computed. The rule: a move of robot m cannot
// change row r if both the old and the new position of m are angularly
// isolated, as seen from r, from every position any other robot held in
// the window — then m forms a singleton direction bucket before and
// after, every other ray keeps its bucket, and all verdicts (which are
// confirmed by the tolerance-independent StrictlyBetween predicate)
// stand. The isolation tolerance is foldTol over the union of current
// positions and logged old positions, which dominates the tolerance any
// recompute in the window would have used (foldTol is monotone in
// shrinking minimum distance and growing extent), so the proof covers
// every intermediate configuration.
func (s *Snapshot) rowUnaffected(r int) bool {
	lo := len(s.pending)
	for lo > 0 && s.pending[lo-1].ver > s.rowVer[r] {
		lo--
	}
	win := s.pending[lo:]
	if len(win) == 0 {
		return true
	}
	if len(win) > reuseScanMax {
		return false
	}
	for _, pm := range win {
		if pm.robot == r {
			return false
		}
	}
	// Union ray statistics from observer r: current positions plus the
	// windowed old positions.
	self := s.pts[r]
	minD2 := math.Inf(1)
	maxL1 := 0.0
	acc := func(p Point) bool {
		d := p.Sub(self)
		d2 := d.Norm2()
		if d2 == 0 {
			return false // coincident with the observer: recompute
		}
		if d2 < minD2 {
			minD2 = d2
		}
		if l1 := abs(d.X) + abs(d.Y); l1 > maxL1 {
			maxL1 = l1
		}
		return true
	}
	for j := range s.pts {
		if j == r {
			continue
		}
		if !acc(s.pts[j]) {
			return false
		}
	}
	for _, pm := range win {
		if !acc(pm.old) {
			return false
		}
	}
	tolB, ok := foldTol(minD2, maxL1)
	if !ok {
		return false
	}
	// Clustering measures pseudo-angle gaps, which understate radian
	// gaps by at most 2×: a ray forms a singleton bucket whenever its
	// radian gap to every other ray is at least 2·tolB. sin(x) ≤ x, so
	// using 2·tolB directly for the sine threshold only ever flags more
	// rays as too close — conservative.
	sinT2 := 4 * tolB * tolB
	for _, pm := range win {
		if !s.isolated(r, pm.robot, pm.old, win, sinT2) {
			return false
		}
		if !s.isolated(r, pm.robot, s.pts[pm.robot], win, sinT2) {
			return false
		}
	}
	return true
}

// isolated reports whether position q of robot m is angularly separated,
// as seen from observer r, from every position any robot other than r
// and m holds now or held in the move window.
func (s *Snapshot) isolated(r, m int, q Point, win []pendingMove, sinT2 float64) bool {
	u := q.Sub(s.pts[r])
	u2 := u.Norm2()
	if u2 == 0 {
		return false
	}
	for j := range s.pts {
		if j == r || j == m {
			continue
		}
		if !rayApart(u, u2, s.pts[j].Sub(s.pts[r]), sinT2) {
			return false
		}
	}
	for _, pm := range win {
		if pm.robot == r || pm.robot == m {
			continue
		}
		if !rayApart(u, u2, pm.old.Sub(s.pts[r]), sinT2) {
			return false
		}
	}
	return true
}

// rayApart reports whether rays u and v (u2 = ‖u‖²) are separated by
// more than the angular tolerance encoded as sinT2 = sin²(tol):
// sin²(angle) = cross²/(‖u‖²‖v‖²), and a non-positive dot product means
// the rays are at least a quarter turn apart — far beyond any tolerance
// foldTol can produce.
func rayApart(u Point, u2 float64, v Point, sinT2 float64) bool {
	v2 := v.Norm2()
	if v2 == 0 {
		return false
	}
	if u.Dot(v) <= 0 {
		return true
	}
	c := u.Cross(v)
	return c*c >= sinT2*u2*v2
}
