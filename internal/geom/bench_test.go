package geom

import (
	"math/rand"
	"testing"
)

func benchPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func BenchmarkConvexHull(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ConvexHull(pts)
			}
		})
	}
}

func BenchmarkVisibleSetFast(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = VisibleSetFast(pts, i%n)
			}
		})
	}
}

func BenchmarkVisibleFromNaive(b *testing.B) {
	// The O(n²) reference, for the speedup comparison with the fast
	// variant above.
	pts := benchPoints(512, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = VisibleFrom(pts, i%512)
	}
}

func BenchmarkCompleteVisibilityFast(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = CompleteVisibilityFast(pts)
			}
		})
	}
}

func BenchmarkMinEnclosingCircle(b *testing.B) {
	pts := benchPoints(512, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MinEnclosingCircle(pts)
	}
}

func BenchmarkSegmentIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	segs := make([]Segment, 256)
	for i := range segs {
		segs[i] = Seg(Pt(rng.Float64()*100, rng.Float64()*100), Pt(rng.Float64()*100, rng.Float64()*100))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := segs[i%256]
		u := segs[(i*7+1)%256]
		_, _ = s.Intersect(u)
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "n64"
	case 512:
		return "n512"
	default:
		return "n"
	}
}
