package geom

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

func benchPoints(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

func BenchmarkConvexHull(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ConvexHull(pts)
			}
		})
	}
}

func BenchmarkVisibleSetFast(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = VisibleSetFast(pts, i%n)
			}
		})
	}
}

func BenchmarkVisibleFromNaive(b *testing.B) {
	// The O(n²) reference, for the speedup comparison with the fast
	// variant above.
	pts := benchPoints(512, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = VisibleFrom(pts, i%512)
	}
}

func BenchmarkCompleteVisibilityFast(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 3)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = CompleteVisibilityFast(pts)
			}
		})
	}
}

func BenchmarkMinEnclosingCircle(b *testing.B) {
	pts := benchPoints(512, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MinEnclosingCircle(pts)
	}
}

func BenchmarkSegmentIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	segs := make([]Segment, 256)
	for i := range segs {
		segs[i] = Seg(Pt(rng.Float64()*100, rng.Float64()*100), Pt(rng.Float64()*100, rng.Float64()*100))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := segs[i%256]
		u := segs[(i*7+1)%256]
		_, _ = s.Intersect(u)
	}
}

// kernelBenchSizes is the N sweep of the visibility-kernel benchmarks;
// cmd/visbench mirrors it (visBenchSizes) when producing
// BENCH_visibility.json.
var kernelBenchSizes = []int{64, 256, 1024, 4096}

// BenchmarkVisibilityKernel measures a full batched pass — all n rows
// recomputed — after asserting, once per size, that every kernel row is
// identical to per-Look VisibleSetFast. Compare against
// BenchmarkVisibilityPerLook for the speedup; the zero-allocation
// steady state is additionally enforced by TestKernelZeroAllocSteadyState.
func BenchmarkVisibilityKernel(b *testing.B) {
	for _, n := range kernelBenchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 2)
			kern := NewKernel(0)
			defer kern.Close()
			snap := kern.NewSnapshot()
			snap.Reset(pts)
			snap.ComputeAll()
			for r := range pts {
				if !slices.Equal(snap.Row(r), VisibleSetFast(pts, r)) {
					b.Fatalf("kernel row %d diverges from VisibleSetFast at n=%d", r, n)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Reset(pts)
				snap.ComputeAll()
			}
		})
	}
}

// BenchmarkVisibilityPerLook is the pre-kernel baseline: n independent
// allocating VisibleSetFast calls, the cost the engine used to pay per
// cycle of Looks.
func BenchmarkVisibilityPerLook(b *testing.B) {
	for _, n := range kernelBenchSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					_ = VisibleSetFast(pts, r)
				}
			}
		})
	}
}

// BenchmarkSnapshotUpdate measures the incremental path: one robot
// oscillates between two far-apart positions and all rows are re-read,
// so most rows revalidate through the isolation check instead of
// recomputing.
func BenchmarkSnapshotUpdate(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			pts := benchPoints(n, 2)
			kern := NewKernel(0)
			defer kern.Close()
			snap := kern.NewSnapshot()
			snap.Reset(pts)
			snap.ComputeAll()
			home := pts[n/2]
			away := Pt(home.X+431.7, home.Y-219.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					snap.Update(n/2, away)
				} else {
					snap.Update(n/2, home)
				}
				for r := 0; r < n; r++ {
					_ = snap.Row(r)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return fmt.Sprintf("n%d", n)
}
