package geom

// This file implements the obstructed-visibility predicates of the robots
// with lights model: robot k blocks i from j iff k lies strictly inside
// the open segment (i, j). Complete Visibility holds when every pair is
// mutually visible.

// Visible reports whether points i and j of pts see each other: no third
// point lies strictly between them. Coincident points never see each
// other (they violate the model's distinctness invariant anyway).
func Visible(pts []Point, i, j int) bool {
	if i == j {
		return false
	}
	a, b := pts[i], pts[j]
	if a.Eq(b) {
		return false
	}
	for k, p := range pts {
		if k == i || k == j {
			continue
		}
		if StrictlyBetween(a, b, p) {
			return false
		}
	}
	return true
}

// VisibleFrom returns the indices of all points visible from point i,
// in increasing index order.
func VisibleFrom(pts []Point, i int) []int {
	var out []int
	for j := range pts {
		if j != i && Visible(pts, i, j) {
			out = append(out, j)
		}
	}
	return out
}

// VisibilityCount returns the number of mutually visible pairs among pts.
func VisibilityCount(pts []Point) int {
	n := 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if Visible(pts, i, j) {
				n++
			}
		}
	}
	return n
}

// CompleteVisibility reports whether every pair of points is mutually
// visible. This is the goal predicate of the paper. For n ≤ 1 it holds
// trivially.
func CompleteVisibility(pts []Point) bool {
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Eq(pts[j]) {
				return false
			}
			if !Visible(pts, i, j) {
				return false
			}
		}
	}
	return true
}

// Blockers returns the indices of points that block i from j (points
// strictly between them).
func Blockers(pts []Point, i, j int) []int {
	var out []int
	a, b := pts[i], pts[j]
	for k, p := range pts {
		if k == i || k == j {
			continue
		}
		if StrictlyBetween(a, b, p) {
			out = append(out, k)
		}
	}
	return out
}

// BlockedPairs returns every ordered-once pair (i < j) that is not
// mutually visible. Used by the metrics module to chart visibility-graph
// densification over a run.
func BlockedPairs(pts []Point) [][2]int {
	var out [][2]int
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if !Visible(pts, i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// PathClear reports whether the open corridor from `from` to `to` is free
// of every point in obstacles: no obstacle lies strictly inside the
// segment and no obstacle coincides with the destination. Points within
// margin of the segment (but not collinear) also fail the check when
// margin > 0 — the algorithms use a small margin to keep moving robots
// from brushing past stationary ones.
func PathClear(from, to Point, obstacles []Point, margin float64) bool {
	seg := Seg(from, to)
	for _, p := range obstacles {
		if p.Eq(from) {
			continue
		}
		if p.Eq(to) {
			return false
		}
		if StrictlyBetween(from, to, p) {
			return false
		}
		if margin > 0 && seg.Dist(p) < margin {
			return false
		}
	}
	return true
}
