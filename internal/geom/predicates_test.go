package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	cases := []struct {
		a, b, c Point
		want    Orientation
	}{
		{Pt(0, 0), Pt(1, 0), Pt(0, 1), CCW},
		{Pt(0, 0), Pt(1, 0), Pt(0, -1), CW},
		{Pt(0, 0), Pt(1, 0), Pt(2, 0), Collinear},
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), Collinear},
		{Pt(0, 0), Pt(1, 1), Pt(2, 2.0001), CCW},
		{Pt(0, 0), Pt(1, 1), Pt(2, 1.9999), CW},
	}
	for _, c := range cases {
		if got := Orient(c.a, c.b, c.c); got != c.want {
			t.Errorf("Orient(%v,%v,%v) = %v, want %v", c.a, c.b, c.c, got, c.want)
		}
	}
}

// Property: swapping two arguments flips the orientation.
func TestOrientAntisymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := Pt(rng.Float64()*1000, rng.Float64()*1000)
		b := Pt(rng.Float64()*1000, rng.Float64()*1000)
		c := Pt(rng.Float64()*1000, rng.Float64()*1000)
		o1, o2 := Orient(a, b, c), Orient(b, a, c)
		if o1 == Collinear || o2 == Collinear {
			continue // banded predicate may disagree near the line
		}
		if o1 != -o2 {
			t.Fatalf("Orient not antisymmetric for %v %v %v: %v vs %v", a, b, c, o1, o2)
		}
	}
}

// Property: orientation is invariant under translation.
func TestOrientTranslationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		d := Pt(rng.Float64()*10, rng.Float64()*10)
		o1 := Orient(a, b, c)
		o2 := Orient(a.Add(d), b.Add(d), c.Add(d))
		if o1 != Collinear && o2 != Collinear && o1 != o2 {
			t.Fatalf("translation changed orientation: %v -> %v", o1, o2)
		}
	}
}

func TestStrictlyBetween(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	cases := []struct {
		m    Point
		want bool
	}{
		{Pt(5, 0), true},
		{Pt(0, 0), false},  // endpoint
		{Pt(10, 0), false}, // endpoint
		{Pt(11, 0), false}, // beyond
		{Pt(-1, 0), false}, // before
		{Pt(5, 1), false},  // off the line
		{Pt(0.001, 0), true},
	}
	for _, c := range cases {
		if got := StrictlyBetween(a, b, c.m); got != c.want {
			t.Errorf("StrictlyBetween(%v,%v,%v) = %v, want %v", a, b, c.m, got, c.want)
		}
	}
	// Vertical segment exercises the dominant-axis switch.
	va, vb := Pt(0, 0), Pt(0, 10)
	if !StrictlyBetween(va, vb, Pt(0, 5)) {
		t.Error("vertical between failed")
	}
	if StrictlyBetween(va, vb, Pt(0, 10.5)) {
		t.Error("vertical beyond accepted")
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 10)
	if !OnSegment(a, b, a) || !OnSegment(a, b, b) {
		t.Error("endpoints must be on the closed segment")
	}
	if !OnSegment(a, b, Pt(5, 5)) {
		t.Error("midpoint must be on the segment")
	}
	if OnSegment(a, b, Pt(11, 11)) {
		t.Error("point beyond endpoint accepted")
	}
	if OnSegment(a, b, Pt(5, 6)) {
		t.Error("off-line point accepted")
	}
}

func TestAllCollinear(t *testing.T) {
	if !AllCollinear(nil) || !AllCollinear([]Point{Pt(1, 1)}) || !AllCollinear([]Point{Pt(1, 1), Pt(2, 2)}) {
		t.Error("small sets must be trivially collinear")
	}
	line := []Point{Pt(0, 0), Pt(1, 0.5), Pt(2, 1), Pt(4, 2), Pt(-2, -1)}
	if !AllCollinear(line) {
		t.Error("collinear set rejected")
	}
	bent := append(append([]Point{}, line...), Pt(1, 2))
	if AllCollinear(bent) {
		t.Error("non-collinear set accepted")
	}
}

func TestLineExtremes(t *testing.T) {
	pts := []Point{Pt(3, 3), Pt(1, 1), Pt(5, 5), Pt(2, 2)}
	lo, hi := LineExtremes(pts)
	if !pts[lo].Eq(Pt(1, 1)) || !pts[hi].Eq(Pt(5, 5)) {
		t.Errorf("LineExtremes = %v %v", pts[lo], pts[hi])
	}
	// Vertical line exercises the axis switch.
	vpts := []Point{Pt(0, 3), Pt(0, -2), Pt(0, 7)}
	lo, hi = LineExtremes(vpts)
	if !vpts[lo].Eq(Pt(0, -2)) || !vpts[hi].Eq(Pt(0, 7)) {
		t.Errorf("vertical LineExtremes = %v %v", vpts[lo], vpts[hi])
	}
}

func TestProjectOntoLine(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	proj, tt := ProjectOntoLine(a, b, Pt(3, 7))
	if !proj.Eq(Pt(3, 0)) || !almostEq(tt, 0.3) {
		t.Errorf("projection = %v t=%v", proj, tt)
	}
	proj, tt = ProjectOntoLine(a, b, Pt(-5, 2))
	if !proj.Eq(Pt(-5, 0)) || !almostEq(tt, -0.5) {
		t.Errorf("projection before segment = %v t=%v", proj, tt)
	}
}

func TestDistToLine(t *testing.T) {
	if got := DistToLine(Pt(0, 0), Pt(10, 0), Pt(5, 3)); !almostEq(got, 3) {
		t.Errorf("DistToLine = %v", got)
	}
}

// Property: the projection foot is the closest line point.
func TestProjectionIsClosest(t *testing.T) {
	f := func(px, py, tshift float64) bool {
		if math.IsNaN(px+py+tshift) || math.Abs(px) > 1e6 || math.Abs(py) > 1e6 || math.Abs(tshift) > 1e3 {
			return true
		}
		a, b := Pt(-3, 1), Pt(7, 4)
		p := Pt(px, py)
		proj, tt := ProjectOntoLine(a, b, p)
		other := a.Add(b.Sub(a).Mul(tt + tshift))
		return p.Dist(proj) <= p.Dist(other)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StrictlyBetween implies the distances add up.
func TestBetweenDistancesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		tt := rng.Float64()
		m := a.Lerp(b, tt)
		if StrictlyBetween(a, b, m) {
			if !almostEq(a.Dist(m)+m.Dist(b), a.Dist(b)) {
				t.Fatalf("distances do not add for %v between %v-%v", m, a, b)
			}
		}
	}
}
