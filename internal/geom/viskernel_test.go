package geom_test

import (
	"math/rand"
	"slices"
	"testing"

	"luxvis/internal/geom"
)

// randomConfig draws a point set from one of three families: continuous
// uniform (rarely degenerate), small integer grid (rich in collinear
// triples, duplicates and branch-cut rays), and tight clusters at large
// offsets (exercises the adaptive tolerance and degenerate fallback).
func randomConfig(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	switch rng.Intn(3) {
	case 0:
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
	case 1:
		for i := range pts {
			pts[i] = geom.Pt(float64(rng.Intn(17)-8), float64(rng.Intn(17)-8))
		}
	default:
		base := geom.Pt(rng.Float64()*2e4-1e4, rng.Float64()*2e4-1e4)
		for i := range pts {
			pts[i] = base.Add(geom.Pt(rng.Float64()*1e-2, rng.Float64()*1e-2))
		}
	}
	return pts
}

// checkAllRows asserts every snapshot row equals a from-scratch
// VisibleSetFast on the current positions.
func checkAllRows(t *testing.T, snap *geom.Snapshot, cur []geom.Point, ctxt string) {
	t.Helper()
	for r := range cur {
		got := snap.Row(r)
		want := geom.VisibleSetFast(cur, r)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: Snapshot.Row(%d) = %v, from-scratch VisibleSetFast = %v (pts=%v)",
				ctxt, r, got, want, cur)
		}
	}
}

// TestSnapshotComputeAllParity checks the batched path, serial and
// parallel, against per-Look VisibleSetFast.
func TestSnapshotComputeAllParity(t *testing.T) {
	kern := geom.NewKernel(4)
	defer kern.Close()
	snap := kern.NewSnapshot()
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 40, 130, 200} { // 130+ takes the parallel path
		for trial := 0; trial < 5; trial++ {
			pts := randomConfig(rng, n)
			snap.Reset(pts)
			snap.ComputeAll()
			checkAllRows(t, snap, pts, "after ComputeAll")
		}
	}
}

// TestSnapshotUpdateParity is the incremental-path property test: across
// 1000 randomized configurations, after a random single-robot move every
// row of the snapshot must agree index-for-index with a from-scratch
// VisibleSetFast of the moved configuration. Moves mix far jumps, tiny
// nudges (angularly non-isolated, so rows must correctly refuse reuse)
// and adversarial placements exactly on the segment between two other
// robots.
func TestSnapshotUpdateParity(t *testing.T) {
	kern := geom.NewKernel(4)
	defer kern.Close()
	snap := kern.NewSnapshot()
	rng := rand.New(rand.NewSource(11))
	for cfg := 0; cfg < 1000; cfg++ {
		n := 3 + rng.Intn(12)
		pts := randomConfig(rng, n)
		snap.Reset(pts)
		snap.ComputeAll()

		m := rng.Intn(n)
		var np geom.Point
		switch rng.Intn(3) {
		case 0: // far jump
			np = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		case 1: // tiny nudge
			np = pts[m].Add(geom.Pt(rng.Float64()*1e-3, rng.Float64()*1e-3))
		default: // land exactly on a line through two others
			a, b := rng.Intn(n), rng.Intn(n)
			np = pts[a].Lerp(pts[b], rng.Float64())
		}
		snap.Update(m, np)
		cur := slices.Clone(pts)
		cur[m] = np
		checkAllRows(t, snap, cur, "after Update")
	}
}

// TestSnapshotUpdateSequence drives one snapshot through a long stream
// of moves with interleaved partial reads, so rows are revalidated
// against multi-move windows and across log-overflow barriers.
func TestSnapshotUpdateSequence(t *testing.T) {
	kern := geom.NewKernel(4)
	defer kern.Close()
	snap := kern.NewSnapshot()
	rng := rand.New(rand.NewSource(23))
	n := 40
	cur := randomConfig(rng, n)
	snap.Reset(cur)
	for step := 0; step < 400; step++ {
		m := rng.Intn(n)
		var np geom.Point
		if rng.Intn(2) == 0 {
			np = geom.Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		} else {
			np = cur[m].Add(geom.Pt(rng.Float64()*0.1-0.05, rng.Float64()*0.1-0.05))
		}
		snap.Update(m, np)
		cur[m] = np
		switch step % 7 {
		case 0:
			snap.ComputeAll()
			checkAllRows(t, snap, cur, "sequence ComputeAll")
		case 3:
			// Partial read: only a few rows, leaving the rest stale so
			// later revalidations see longer move windows.
			for k := 0; k < 5; k++ {
				r := rng.Intn(n)
				got := snap.Row(r)
				want := geom.VisibleSetFast(cur, r)
				if !slices.Equal(got, want) {
					t.Fatalf("step %d: Row(%d) = %v, want %v", step, r, got, want)
				}
			}
		}
	}
	snap.ComputeAll()
	checkAllRows(t, snap, cur, "sequence end")
	st := snap.Stats()
	if st.RowsComputed == 0 {
		t.Fatalf("stats recorded no computed rows over the sequence: %+v", st)
	}
}

// TestSnapshotResetReuse checks that Reset fully invalidates state from
// a previous configuration, including a size change.
func TestSnapshotResetReuse(t *testing.T) {
	kern := geom.NewKernel(2)
	defer kern.Close()
	snap := kern.NewSnapshot()
	rng := rand.New(rand.NewSource(31))
	sizes := []int{20, 7, 33, 20, 1}
	for _, n := range sizes {
		pts := randomConfig(rng, n)
		snap.Reset(pts)
		if snap.Len() != n {
			t.Fatalf("Len() = %d after Reset with %d points", snap.Len(), n)
		}
		snap.ComputeAll()
		checkAllRows(t, snap, pts, "after re-Reset")
	}
}

// TestKernelCompleteVisibilityParity checks the parallel CV verdict
// against the serial one on configurations both above and below the
// parallel threshold, with and without planted refutations.
func TestKernelCompleteVisibilityParity(t *testing.T) {
	kern := geom.NewKernel(4)
	defer kern.Close()
	rng := rand.New(rand.NewSource(43))
	plant := func(pts []geom.Point, kind int) {
		n := len(pts)
		switch kind {
		case 0: // collinear triple
			pts[n-1] = pts[0].Lerp(pts[1], 0.5)
		case 1: // duplicate
			pts[n-1] = pts[0]
		}
	}
	for trial := 0; trial < 30; trial++ {
		for _, n := range []int{10, 60, 200} {
			pts := randomConfig(rng, n)
			if k := rng.Intn(3); k < 2 {
				plant(pts, k)
			}
			got := kern.CompleteVisibilityFast(pts)
			want := geom.CompleteVisibilityFast(pts)
			if got != want {
				t.Fatalf("Kernel.CompleteVisibilityFast = %v, serial = %v (n=%d, pts=%v)",
					got, want, n, pts)
			}
		}
	}
}

// TestRowCacheParity checks the arena-reusing single-row path.
func TestRowCacheParity(t *testing.T) {
	var cache geom.RowCache
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		pts := randomConfig(rng, 2+rng.Intn(30))
		for i := range pts {
			got := cache.VisibleSet(pts, i)
			want := geom.VisibleSetFast(pts, i)
			if !slices.Equal(got, want) {
				t.Fatalf("RowCache.VisibleSet(%v, %d) = %v, want %v", pts, i, got, want)
			}
		}
	}
}

// TestKernelCloseIdempotent makes sure Close is safe on never-started
// and already-closed kernels.
func TestKernelCloseIdempotent(t *testing.T) {
	k := geom.NewKernel(3)
	k.Close()
	k.Close()

	k2 := geom.NewKernel(3)
	snap := k2.NewSnapshot()
	pts := randomConfig(rand.New(rand.NewSource(61)), 200)
	snap.Reset(pts)
	snap.ComputeAll() // starts the pool
	k2.Close()
	k2.Close()
}
