package geom

// Edge-case batteries for the predicates the algorithms lean on hardest:
// hull classification at boundaries, arcs at extreme sagittas, visibility
// under exact degeneracy, and tolerance behaviour far from the origin.

import (
	"math"
	"math/rand"
	"testing"
)

func TestClassifyNearBoundary(t *testing.T) {
	h := ConvexHull([]Point{Pt(0, 0), Pt(100, 0), Pt(100, 100), Pt(0, 100)})
	cases := []struct {
		name string
		p    Point
		want PointClass
	}{
		{"just inside bottom", Pt(50, 1e-3), HullInterior},
		{"just outside bottom", Pt(50, -1e-3), HullOutside},
		{"well within corner tolerance", Pt(1e-12, 1e-12), HullCorner},
		{"edge midpoint", Pt(50, 0), HullEdge},
		{"outside near corner", Pt(-1e-3, -1e-3), HullOutside},
	}
	for _, c := range cases {
		if got := h.Classify(c.p); got != c.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

func TestClassifyFarFromOrigin(t *testing.T) {
	// The banded predicates must behave identically when the whole
	// configuration is translated far away (relative tolerance).
	const off = 1e6
	h := ConvexHull([]Point{
		Pt(off, off), Pt(off+100, off), Pt(off+100, off+100), Pt(off, off+100),
	})
	if got := h.Classify(Pt(off+50, off+50)); got != HullInterior {
		t.Errorf("interior far from origin = %v", got)
	}
	if got := h.Classify(Pt(off+50, off)); got != HullEdge {
		t.Errorf("edge far from origin = %v", got)
	}
	if got := h.Classify(Pt(off+50, off-1)); got != HullOutside {
		t.Errorf("outside far from origin = %v", got)
	}
}

func TestVisibilityExactDegeneracies(t *testing.T) {
	// Four exactly collinear points: each sees only its neighbours.
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	wants := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	for i, want := range wants {
		got := VisibleSetFast(pts, i)
		if len(got) != len(want) {
			t.Fatalf("point %d sees %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("point %d sees %v, want %v", i, got, want)
			}
		}
	}
}

func TestVisibilityOppositeRays(t *testing.T) {
	// Points collinear through the observer on OPPOSITE sides do not
	// block each other (the observer is between them, not a third
	// robot).
	pts := []Point{Pt(0, 0), Pt(-5, 0), Pt(5, 0)}
	got := VisibleSetFast(pts, 0)
	if len(got) != 2 {
		t.Fatalf("center of a 3-line sees %v, want both neighbours", got)
	}
	// And the outer pair is blocked by the center.
	if Visible(pts, 1, 2) {
		t.Error("outer pair sees through the center")
	}
}

func TestVisibilityWrapAroundDirection(t *testing.T) {
	// Collinear points whose shared ray direction is exactly along the
	// atan2 discontinuity (θ = ±π): the run-merging in VisibleSetFast
	// must still hide the far one.
	pts := []Point{Pt(0, 0), Pt(-5, 0), Pt(-10, 0), Pt(3, 7)}
	got := VisibleSetFast(pts, 0)
	for _, j := range got {
		if j == 2 {
			t.Fatalf("far point on the -x ray visible: %v", got)
		}
	}
	if len(got) != 2 {
		t.Fatalf("sees %v, want the near -x point and the off-line point", got)
	}
}

func TestArcExtremeSagittas(t *testing.T) {
	a, b := Pt(0, 0), Pt(100, 0)
	// Very shallow: still strictly convex samples, still on circle.
	shallow := ArcThrough(a, b, 1e-6)
	mids := []Point{shallow.At(0.25), shallow.At(0.5), shallow.At(0.75)}
	for _, m := range mids {
		if m.Y <= 0 {
			t.Errorf("shallow arc sample %v not above chord", m)
		}
	}
	// Semicircle-ish: sagitta = half chord.
	deep := ArcThrough(a, b, 50)
	if got := deep.At(0.5); math.Abs(got.Y-50) > 1e-9 {
		t.Errorf("semicircle apex = %v", got)
	}
	// Beyond semicircle (major arc geometry still consistent).
	major := ArcThrough(a, b, 80)
	if got := major.Sagitta(); math.Abs(got-80) > 1e-6 {
		t.Errorf("major arc sagitta = %v", got)
	}
}

func TestOrientConsistencyUnderScale(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		a := randPt(rng)
		b := randPt(rng)
		c := randPt(rng)
		o := Orient(a, b, c)
		if o == Collinear {
			continue
		}
		for _, s := range []float64{1e-3, 1e3} {
			oa, ob, oc := a.Mul(s), b.Mul(s), c.Mul(s)
			if got := Orient(oa, ob, oc); got != o && got != Collinear {
				t.Fatalf("scaling by %v flipped orientation: %v -> %v", s, o, got)
			}
		}
	}
}

func TestHullOfManyCollinearPlusOne(t *testing.T) {
	// 50 collinear points plus one apex: the hull must have exactly 3
	// corners (two line extremes + apex), everything else edge points.
	var pts []Point
	for i := 0; i < 50; i++ {
		pts = append(pts, Pt(float64(i), 2*float64(i)))
	}
	pts = append(pts, Pt(25, 500))
	h := ConvexHull(pts)
	if len(h.Corners) != 3 {
		t.Fatalf("hull corners = %d, want 3", len(h.Corners))
	}
	edge := 0
	for _, p := range pts {
		if h.Classify(p) == HullEdge {
			edge++
		}
	}
	if edge != 48 {
		t.Errorf("edge points = %d, want 48", edge)
	}
}

func TestPathClearMarginBoundary(t *testing.T) {
	obstacles := []Point{Pt(5, 1)}
	// Obstacle exactly at the margin boundary: the < comparison means a
	// clearance of exactly the margin passes.
	if !PathClear(Pt(0, 0), Pt(10, 0), obstacles, 1) {
		t.Error("obstacle at exactly the margin rejected")
	}
	if PathClear(Pt(0, 0), Pt(10, 0), obstacles, 1.001) {
		t.Error("obstacle inside the margin accepted")
	}
}

func TestBlockedPairsCount(t *testing.T) {
	// k collinear points produce C(k,2) - (k-1) blocked pairs.
	var pts []Point
	for i := 0; i < 6; i++ {
		pts = append(pts, Pt(float64(i), 0))
	}
	want := 6*5/2 - 5
	if got := len(BlockedPairs(pts)); got != want {
		t.Errorf("blocked pairs = %d, want %d", got, want)
	}
}
