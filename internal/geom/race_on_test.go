//go:build race

package geom_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are meaningless under its shadow-memory
// bookkeeping and skip themselves.
const raceEnabled = true
