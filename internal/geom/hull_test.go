package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), // corners
		Pt(2, 0), Pt(4, 2), // edge points
		Pt(2, 2), Pt(1, 3), // interior
	}
	h := ConvexHull(pts)
	if len(h.Corners) != 4 {
		t.Fatalf("hull corners = %d, want 4 (%v)", len(h.Corners), h.Corners)
	}
	if h.Degenerate() {
		t.Error("square hull reported degenerate")
	}
	if !almostEq(h.Area(), 16) {
		t.Errorf("Area = %v", h.Area())
	}
	if !almostEq(h.Perimeter(), 16) {
		t.Errorf("Perimeter = %v", h.Perimeter())
	}
}

func TestConvexHullCCWOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 30)
		for i := range pts {
			pts[i] = randPt(rng)
		}
		h := ConvexHull(pts)
		n := len(h.Corners)
		if n < 3 {
			t.Fatal("random hull degenerate")
		}
		for i := 0; i < n; i++ {
			a, b, c := h.Corners[i], h.Corners[(i+1)%n], h.Corners[(i+2)%n]
			if Orient(a, b, c) != CCW {
				t.Fatalf("hull corners not in strict CCW order at %d", i)
			}
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h.Corners) != 0 {
		t.Error("empty hull has corners")
	}
	if h := ConvexHull([]Point{Pt(1, 2)}); len(h.Corners) != 1 {
		t.Error("single-point hull wrong")
	}
	line := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	h := ConvexHull(line)
	if len(h.Corners) != 2 {
		t.Fatalf("line hull corners = %d", len(h.Corners))
	}
	if !h.Degenerate() {
		t.Error("line hull not degenerate")
	}
	// Duplicates are tolerated.
	dup := []Point{Pt(0, 0), Pt(0, 0), Pt(1, 0), Pt(0, 1)}
	if got := len(ConvexHull(dup).Corners); got != 3 {
		t.Errorf("dup hull corners = %d", got)
	}
}

func TestClassify(t *testing.T) {
	h := ConvexHull([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	cases := []struct {
		p    Point
		want PointClass
	}{
		{Pt(0, 0), HullCorner},
		{Pt(4, 4), HullCorner},
		{Pt(2, 0), HullEdge},
		{Pt(4, 2), HullEdge},
		{Pt(2, 2), HullInterior},
		{Pt(0.001, 0.001), HullInterior},
		{Pt(5, 2), HullOutside},
		{Pt(-0.001, 2), HullOutside},
	}
	for _, c := range cases {
		if got := h.Classify(c.p); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClassifyDegenerate(t *testing.T) {
	seg := ConvexHull([]Point{Pt(0, 0), Pt(4, 4)})
	if got := seg.Classify(Pt(0, 0)); got != HullCorner {
		t.Errorf("segment endpoint = %v", got)
	}
	if got := seg.Classify(Pt(2, 2)); got != HullEdge {
		t.Errorf("segment interior = %v", got)
	}
	if got := seg.Classify(Pt(1, 2)); got != HullOutside {
		t.Errorf("off segment = %v", got)
	}
	single := ConvexHull([]Point{Pt(1, 1)})
	if got := single.Classify(Pt(1, 1)); got != HullCorner {
		t.Errorf("single point = %v", got)
	}
	if got := single.Classify(Pt(2, 2)); got != HullOutside {
		t.Errorf("single other = %v", got)
	}
}

func TestEdgeOf(t *testing.T) {
	h := ConvexHull([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	a, b, ok := h.EdgeOf(Pt(2, 0))
	if !ok {
		t.Fatal("edge point not found on any edge")
	}
	if !OnSegment(a, b, Pt(2, 0)) {
		t.Errorf("EdgeOf returned wrong edge %v-%v", a, b)
	}
	if _, _, ok := h.EdgeOf(Pt(2, 2)); ok {
		t.Error("interior point assigned an edge")
	}
}

func TestContains(t *testing.T) {
	h := ConvexHull([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 4)})
	if !h.Contains(Pt(2, 1)) || !h.Contains(Pt(0, 0)) || !h.Contains(Pt(2, 0)) {
		t.Error("Contains rejected inside/boundary points")
	}
	if h.Contains(Pt(4, 4)) {
		t.Error("Contains accepted outside point")
	}
}

func TestStrictlyConvexPosition(t *testing.T) {
	if !StrictlyConvexPosition([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 4)}) {
		t.Error("triangle rejected")
	}
	if StrictlyConvexPosition([]Point{Pt(0, 0), Pt(2, 0), Pt(4, 0)}) {
		t.Error("collinear triple accepted")
	}
	if StrictlyConvexPosition([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(2, 2)}) {
		t.Error("interior point accepted")
	}
	if StrictlyConvexPosition([]Point{Pt(0, 0), Pt(0, 0), Pt(4, 0)}) {
		t.Error("duplicate points accepted")
	}
	if !StrictlyConvexPosition([]Point{Pt(0, 0), Pt(1, 1)}) {
		t.Error("pair rejected")
	}
	// Regular polygon: always strictly convex.
	var poly []Point
	for i := 0; i < 12; i++ {
		ang := 2 * math.Pi * float64(i) / 12
		poly = append(poly, Pt(math.Cos(ang)*10, math.Sin(ang)*10))
	}
	if !StrictlyConvexPosition(poly) {
		t.Error("regular 12-gon rejected")
	}
}

// Property: every input point is inside or on the hull, and hull corners
// are input points.
func TestHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		pts := make([]Point, 3+rng.Intn(60))
		for i := range pts {
			pts[i] = randPt(rng)
		}
		h := ConvexHull(pts)
		for _, p := range pts {
			if h.Classify(p) == HullOutside {
				t.Fatalf("input point %v outside its own hull", p)
			}
		}
		for _, c := range h.Corners {
			found := false
			for _, p := range pts {
				if p.Eq(c) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hull corner %v is not an input point", c)
			}
		}
	}
}

// Property: points strictly on a circle are in strictly convex position.
func TestCirclePointsStrictlyConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		base := rng.Float64()
		for i := range pts {
			ang := base + 2*math.Pi*float64(i)/float64(n)
			pts[i] = Pt(500+300*math.Cos(ang), 500+300*math.Sin(ang))
		}
		if !StrictlyConvexPosition(pts) {
			t.Fatalf("circle points not strictly convex (n=%d)", n)
		}
		if !CompleteVisibility(pts) {
			t.Fatalf("circle points not completely visible (n=%d)", n)
		}
	}
}
