package geom

import (
	"fmt"
	"math"
)

// Circle is a circle given by center and radius.
type Circle struct {
	Center Point
	R      float64
}

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p Point) bool { return c.Center.Dist(p) <= c.R+Eps }

// OnBoundary reports whether p lies on the circle within tolerance.
func (c Circle) OnBoundary(p Point) bool {
	return math.Abs(c.Center.Dist(p)-c.R) <= Eps*math.Max(1, c.R)
}

// PointAt returns the boundary point at the given polar angle.
func (c Circle) PointAt(angle float64) Point {
	s, cos := math.Sincos(angle)
	return Point{c.Center.X + c.R*cos, c.Center.Y + c.R*s}
}

// AngleOf returns the polar angle of p as seen from the center.
func (c Circle) AngleOf(p Point) float64 { return p.Sub(c.Center).Angle() }

// String formats the circle for diagnostics.
func (c Circle) String() string { return fmt.Sprintf("circle(%v, r=%.6g)", c.Center, c.R) }

// Circumcircle returns the circle through three non-collinear points.
// ok is false when the points are (near-)collinear.
func Circumcircle(a, b, c Point) (Circle, bool) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	scale := math.Max(1, math.Max(a.Dist(b), a.Dist(c)))
	if math.Abs(d) <= Eps*scale*scale {
		return Circle{}, false
	}
	a2, b2, c2 := a.Norm2(), b.Norm2(), c.Norm2()
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	center := Point{ux, uy}
	return Circle{Center: center, R: center.Dist(a)}, true
}

// Arc is a minor circular arc from A to B that bulges toward the side of
// chord AB indicated at construction. Arcs are the curves of
// Beacon-Directed Curve Positioning: strictly convex, so any number of
// distinct points placed on one arc are in strictly convex position with
// the arc's neighbours.
type Arc struct {
	Circle Circle
	// A and B are the chord endpoints.
	A, B Point
	// angA and angB are the polar angles of A and B from the center,
	// with angB adjusted so that sweeping from angA to angB traverses
	// the arc (minor side chosen at construction).
	angA, angB float64
}

// ArcThrough builds the shallow arc with chord a→b and sagitta (maximum
// height above the chord) h, bulging toward the left of the directed
// chord a→b when h > 0 and toward the right when h < 0. It panics when a
// and b coincide or h is zero: a flat "arc" is a caller bug.
func ArcThrough(a, b Point, h float64) Arc {
	if a.Eq(b) {
		panic("geom: ArcThrough with coincident chord endpoints")
	}
	if h == 0 {
		panic("geom: ArcThrough with zero sagitta")
	}
	half := a.Dist(b) / 2
	// r from sagitta: r = (half² + h²) / (2h), center on the opposite
	// side of the chord from the bulge.
	ah := math.Abs(h)
	r := (half*half + ah*ah) / (2 * ah)
	mid := a.Mid(b)
	n := b.Sub(a).Perp().Unit() // left normal of a→b
	side := 1.0
	if h < 0 {
		side = -1
	}
	center := mid.Add(n.Mul(-side * (r - ah)))
	c := Circle{Center: center, R: r}
	arc := Arc{Circle: c, A: a, B: b}
	arc.angA = c.AngleOf(a)
	arc.angB = c.AngleOf(b)
	// The bulge point sits at mid + side·h·n; make sure the parametric
	// sweep from angA to angB passes through it by choosing the sweep
	// direction whose midpoint angle lands on the bulge.
	bulge := mid.Add(n.Mul(side * ah))
	sweep := normAngle(arc.angB - arc.angA)
	midAngle := arc.angA + sweep/2
	if c.PointAt(midAngle).Dist(bulge) > c.PointAt(midAngle+math.Pi).Dist(bulge) {
		// Wrong side; sweep the other way.
		if sweep > 0 {
			sweep -= 2 * math.Pi
		} else {
			sweep += 2 * math.Pi
		}
	}
	arc.angB = arc.angA + sweep
	return arc
}

// normAngle maps an angle to (-π, π].
func normAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// At returns the arc point at parameter t ∈ [0, 1], with At(0) = A and
// At(1) = B.
func (arc Arc) At(t float64) Point {
	return arc.Circle.PointAt(arc.angA + t*(arc.angB-arc.angA))
}

// Sagitta returns the maximum height of the arc above its chord.
func (arc Arc) Sagitta() float64 {
	mid := arc.At(0.5)
	return DistToLine(arc.A, arc.B, mid)
}

// ParamOf returns the parameter t of the arc point nearest to p, clamped
// to [0, 1].
func (arc Arc) ParamOf(p Point) float64 {
	ang := arc.Circle.AngleOf(p)
	sweep := arc.angB - arc.angA
	if sweep == 0 {
		return 0
	}
	d := ang - arc.angA
	// Choose the representative of d (mod 2π) closest to the sweep range.
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	t := d / sweep
	return math.Max(0, math.Min(1, t))
}
