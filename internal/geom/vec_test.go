package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(a)+math.Abs(b)) }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); !got.Eq(Pt(2, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(4, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Mul(2); !got.Eq(Pt(6, 8)) {
		t.Errorf("Mul = %v", got)
	}
	if got := p.Neg(); !got.Eq(Pt(-3, -4)) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Dot(q); got != 3*-1+4*2 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*2-4*-1 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Hypot(4, 2)) {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnitAndPerp(t *testing.T) {
	p := Pt(3, 4)
	u := p.Unit()
	if !almostEq(u.Norm(), 1) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := (Point{}).Unit(); !got.Eq(Point{}) {
		t.Errorf("Unit of zero = %v", got)
	}
	perp := p.Perp()
	if got := p.Dot(perp); got != 0 {
		t.Errorf("Perp not orthogonal: dot = %v", got)
	}
	if p.Cross(perp) <= 0 {
		t.Error("Perp should rotate counterclockwise")
	}
}

func TestRotate(t *testing.T) {
	p := Pt(1, 0)
	q := p.Rotate(math.Pi / 2)
	if !almostEq(q.X, 0) || !almostEq(q.Y, 1) {
		t.Errorf("Rotate 90° = %v", q)
	}
	c := Pt(5, 5)
	r := Pt(6, 5).RotateAround(c, math.Pi)
	if !almostEq(r.X, 4) || !almostEq(r.Y, 5) {
		t.Errorf("RotateAround 180° = %v", r)
	}
}

func TestLerpMid(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Mid(b); !got.Eq(Pt(5, 10)) {
		t.Errorf("Mid = %v", got)
	}
}

func TestLess(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(0, 0), Pt(1, 0), true},
		{Pt(1, 0), Pt(0, 0), false},
		{Pt(0, 0), Pt(0, 1), true},
		{Pt(0, 1), Pt(0, 0), false},
		{Pt(0, 0), Pt(0, 0), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	for _, p := range []Point{
		{math.NaN(), 0}, {0, math.NaN()},
		{math.Inf(1), 0}, {0, math.Inf(-1)},
	} {
		if p.IsFinite() {
			t.Errorf("%v reported finite", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); !got.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Centroid of empty set did not panic")
		}
	}()
	Centroid(nil)
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{Pt(3, -1), Pt(-2, 4), Pt(0, 0)}
	min, max := BoundingBox(pts)
	if !min.Eq(Pt(-2, -1)) || !max.Eq(Pt(3, 4)) {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
}

func TestMinPairwiseDist(t *testing.T) {
	if got := MinPairwiseDist([]Point{Pt(0, 0)}); !math.IsInf(got, 1) {
		t.Errorf("single point min dist = %v", got)
	}
	pts := []Point{Pt(0, 0), Pt(3, 0), Pt(3, 1)}
	if got := MinPairwiseDist(pts); got != 1 {
		t.Errorf("min dist = %v", got)
	}
}

// Property: rotation preserves norms and pairwise distances.
func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, angle float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(angle) ||
			math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return true
		}
		p := Pt(x, y)
		return almostEq(p.Rotate(angle).Norm(), p.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverse.
func TestAddSubInverse(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // out of the library's operating range
			}
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		// Exact in magnitude-similar ranges; tolerant otherwise
		// (floating point absorption).
		got := a.Add(b).Sub(b)
		return got.Dist(a) <= 1e-6*math.Max(1, math.Max(a.Norm(), b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lerp endpoints are exact and midpoints symmetric.
func TestLerpSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax+ay+bx+by) || math.Abs(ax)+math.Abs(ay)+math.Abs(bx)+math.Abs(by) > 1e9 {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Mid(b).Eq(b.Mid(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
