package geom

import (
	"math"
	"math/rand"
	"testing"
)

func bruteClosest(pts []Point) (int, int, float64) {
	bi, bj, bd := -1, -1, math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj, bd
}

func TestClosestPairSmall(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10.5, 0.5), Pt(-4, 9)}
	i, j, d := ClosestPair(pts)
	if !(i == 1 && j == 2 || i == 2 && j == 1) {
		t.Errorf("pair = %d,%d", i, j)
	}
	if !almostEq(d, math.Hypot(0.5, 0.5)) {
		t.Errorf("dist = %v", d)
	}
}

func TestClosestPairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single point did not panic")
		}
	}()
	ClosestPair([]Point{Pt(1, 1)})
}

// Property: agrees with the O(n²) brute force on random and structured
// inputs.
func TestClosestPairAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			switch trial % 3 {
			case 0: // uniform
				pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
			case 1: // clustered (many near-ties)
				pts[i] = Pt(rng.NormFloat64()*5+500, rng.NormFloat64()*5+500)
			default: // collinear-ish (stresses the strip)
				x := rng.Float64() * 1000
				pts[i] = Pt(x, x*0.001+rng.Float64()*0.1)
			}
		}
		_, _, got := ClosestPair(pts)
		_, _, want := bruteClosest(pts)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (n=%d): got %v, want %v", trial, n, got, want)
		}
	}
}

func TestMinPairwiseDistUsesClosestPair(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := make([]Point, 700) // above the delegation threshold
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	_, _, want := bruteClosest(pts)
	if got := MinPairwiseDist(pts); math.Abs(got-want) > 1e-9 {
		t.Errorf("MinPairwiseDist = %v, want %v", got, want)
	}
}

func BenchmarkClosestPair(b *testing.B) {
	pts := benchPoints(2048, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = ClosestPair(pts)
	}
}
