package geom

import "math"

// Orientation is the sign of the signed area of an ordered point triple.
type Orientation int

// Orientation values. CCW is a left turn, CW a right turn.
const (
	CW        Orientation = -1
	Collinear Orientation = 0
	CCW       Orientation = 1
)

func (o Orientation) String() string {
	switch o {
	case CW:
		return "cw"
	case CCW:
		return "ccw"
	default:
		return "collinear"
	}
}

// Cross2 returns the cross product (b-a) × (c-a): positive when a,b,c make
// a left turn, negative for a right turn, zero when collinear.
func Cross2(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Orient classifies the ordered triple (a, b, c). The collinearity band is
// scaled by the magnitude of the coordinates involved so that the
// predicate behaves consistently for swarms far from the origin. The
// scale uses the L1 norm — within √2 of Euclidean and far cheaper, and
// this is the hottest function in the simulator.
func Orient(a, b, c Point) Orientation {
	cr := Cross2(a, b, c)
	ab := abs(b.X-a.X) + abs(b.Y-a.Y)
	ac := abs(c.X-a.X) + abs(c.Y-a.Y)
	scale := ab
	if ac > scale {
		scale = ac
	}
	if scale < 1 {
		scale = 1
	}
	tol := Eps * scale
	switch {
	case cr > tol:
		return CCW
	case cr < -tol:
		return CW
	default:
		return Collinear
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AreCollinear reports whether a, b and c lie on one line within tolerance.
func AreCollinear(a, b, c Point) bool { return Orient(a, b, c) == Collinear }

// StrictlyBetween reports whether m lies strictly inside the open segment
// (a, b): collinear with a and b, and strictly between them. This is the
// obstruction predicate of the robots-with-lights model — robot m blocks a
// from seeing b exactly when StrictlyBetween(a, b, m).
func StrictlyBetween(a, b, m Point) bool {
	if !AreCollinear(a, b, m) {
		return false
	}
	// Project onto the dominant axis of ab to avoid a second tolerance.
	d := b.Sub(a)
	var ta, tb, tm float64
	if math.Abs(d.X) >= math.Abs(d.Y) {
		ta, tb, tm = a.X, b.X, m.X
	} else {
		ta, tb, tm = a.Y, b.Y, m.Y
	}
	lo, hi := math.Min(ta, tb), math.Max(ta, tb)
	return tm > lo+Eps && tm < hi-Eps
}

// OnSegment reports whether m lies on the closed segment [a, b], endpoints
// included, within tolerance.
func OnSegment(a, b, m Point) bool {
	if !AreCollinear(a, b, m) {
		return false
	}
	d := b.Sub(a)
	if abs(d.X) <= Eps && abs(d.Y) <= Eps {
		// Degenerate segment: projection onto a dominant axis would
		// ignore the other coordinate entirely, so [a, a] would
		// "contain" any point sharing one coordinate with a. It
		// contains only a itself.
		return abs(m.X-a.X) <= Eps && abs(m.Y-a.Y) <= Eps
	}
	var ta, tb, tm float64
	if math.Abs(d.X) >= math.Abs(d.Y) {
		ta, tb, tm = a.X, b.X, m.X
	} else {
		ta, tb, tm = a.Y, b.Y, m.Y
	}
	lo, hi := math.Min(ta, tb), math.Max(ta, tb)
	return tm >= lo-Eps && tm <= hi+Eps
}

// AllCollinear reports whether every point in pts lies on a single line.
// Sets of fewer than three points are trivially collinear.
func AllCollinear(pts []Point) bool {
	if len(pts) < 3 {
		return true
	}
	// Pick the two most distant of the first few points as the base to
	// keep the predicate stable when the first two points are very close.
	a, b := pts[0], pts[1]
	for _, p := range pts[2:] {
		if p.Dist2(a) > b.Dist2(a) {
			b = p
		}
	}
	for _, p := range pts {
		if !AreCollinear(a, b, p) {
			return false
		}
	}
	return true
}

// LineExtremes returns the indices of the two extreme points of a
// collinear point set (the endpoints of the segment spanned by pts). It
// panics if pts has fewer than two points; callers establish
// AllCollinear(pts) first.
func LineExtremes(pts []Point) (lo, hi int) {
	if len(pts) < 2 {
		panic("geom: LineExtremes needs at least two points")
	}
	min, max := BoundingBox(pts)
	d := max.Sub(min)
	horizontal := math.Abs(d.X) >= math.Abs(d.Y)
	lo, hi = 0, 0
	for i, p := range pts {
		key := p.Y
		cur := pts[lo].Y
		curHi := pts[hi].Y
		if horizontal {
			key, cur, curHi = p.X, pts[lo].X, pts[hi].X
		}
		if key < cur {
			lo = i
		}
		if key > curHi {
			hi = i
		}
	}
	return lo, hi
}

// ProjectOntoLine returns the orthogonal projection of p onto the infinite
// line through a and b, and the line parameter t such that the projection
// equals a + t·(b-a). It panics when a and b coincide.
func ProjectOntoLine(a, b, p Point) (Point, float64) {
	d := b.Sub(a)
	n2 := d.Norm2()
	if n2 == 0 {
		panic("geom: ProjectOntoLine with coincident line points")
	}
	t := p.Sub(a).Dot(d) / n2
	return a.Add(d.Mul(t)), t
}

// DistToLine returns the distance from p to the infinite line through a, b.
func DistToLine(a, b, p Point) float64 {
	proj, _ := ProjectOntoLine(a, b, p)
	return p.Dist(proj)
}

// SideOfLine returns which side of the directed line a→b the point p lies
// on: CCW for the left half-plane, CW for the right, Collinear on the line.
func SideOfLine(a, b, p Point) Orientation { return Orient(a, b, p) }
