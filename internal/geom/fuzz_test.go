package geom_test

// Fuzz targets for the visibility and segment-intersection predicates.
//
// Inputs are decoded onto the int8 integer grid, where the float
// predicates are provably exact: coordinates up to 255 in magnitude
// make every nonzero cross product at least 1, far above Orient's
// scaled tolerance (Eps·L1-scale ≈ 5e-7), so the fuzz oracle — exact
// rational arithmetic and the O(n²) reference — must agree bit for
// bit. Any divergence is a real bug, never a tolerance artifact.

import (
	"slices"
	"testing"

	"luxvis/internal/exact"
	"luxvis/internal/geom"
)

// decodePoints reads consecutive (x, y) int8 pairs, capping the swarm
// at 24 points to keep the O(n³) naive oracle cheap per input.
func decodePoints(data []byte) []geom.Point {
	n := len(data) / 2
	if n > 24 {
		n = 24
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(int8(data[2*i])), float64(int8(data[2*i+1])))
	}
	return pts
}

// FuzzVisibleAgainstNaive cross-checks three implementations of the
// obstructed-visibility predicate on every fuzzed configuration: the
// O(n log n) angular-sweep VisibleSetFast, the O(n²) reference
// VisibleFrom, and the exact rational referee.
func FuzzVisibleAgainstNaive(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0})             // collinear chain
	f.Add([]byte{0, 0, 10, 0, 5, 0, 5, 5})            // blocker + witness
	f.Add([]byte{0, 0, 0, 0, 1, 1})                   // coincident pair
	f.Add([]byte{251, 0, 5, 0, 0, 0, 0, 5, 0, 251})   // spokes through origin (-5..5)
	f.Add([]byte{0, 0, 1, 0, 2, 0, 0, 1, 1, 1, 2, 1}) // 3x2 grid
	f.Add([]byte{128, 128, 127, 127, 0, 0})           // extreme corners
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		if len(pts) < 2 {
			return
		}
		ex := exact.FromFloats(pts)
		for i := range pts {
			fast := geom.VisibleSetFast(pts, i)
			slices.Sort(fast)
			ref := geom.VisibleFrom(pts, i)
			if !slices.Equal(fast, ref) {
				t.Fatalf("VisibleSetFast(%v, %d) = %v, reference VisibleFrom = %v",
					pts, i, fast, ref)
			}
			for j := range pts {
				got := geom.Visible(pts, i, j)
				want := exact.Visible(ex, i, j)
				if got != want {
					t.Fatalf("Visible(%v, %d, %d) = %v, exact referee says %v",
						pts, i, j, got, want)
				}
			}
		}
		fast := geom.CompleteVisibilityFast(pts)
		if want := exact.CompleteVisibilityFloat(pts); fast != want {
			t.Fatalf("CompleteVisibilityFast(%v) = %v, exact referee says %v",
				pts, fast, want)
		}
	})
}

// decodeSegments reads 8 int8 values as two segments.
func decodeSegments(data []byte) (geom.Segment, geom.Segment, bool) {
	if len(data) < 8 {
		return geom.Segment{}, geom.Segment{}, false
	}
	c := make([]float64, 8)
	for i := range c {
		c[i] = float64(int8(data[i]))
	}
	s := geom.Seg(geom.Pt(c[0], c[1]), geom.Pt(c[2], c[3]))
	u := geom.Seg(geom.Pt(c[4], c[5]), geom.Pt(c[6], c[7]))
	return s, u, true
}

// exactKind classifies the intersection of two int-grid segments with
// rational arithmetic, mirroring Segment.Intersect's four-way verdict.
func exactKind(s, u geom.Segment) geom.IntersectKind {
	a1, b1 := exact.FromFloat(s.A), exact.FromFloat(s.B)
	a2, b2 := exact.FromFloat(u.A), exact.FromFloat(u.B)
	switch {
	case exact.SegmentsProperlyCross(a1, b1, a2, b2):
		return geom.ProperCrossing
	case exact.SegmentsOverlap(a1, b1, a2, b2):
		return geom.Overlapping
	case exact.OnSegment(a1, b1, a2) || exact.OnSegment(a1, b1, b2) ||
		exact.OnSegment(a2, b2, a1) || exact.OnSegment(a2, b2, b1):
		return geom.Touching
	default:
		return geom.NoIntersection
	}
}

// FuzzSegmentCross cross-checks the float segment-intersection
// classifier against the exact rational one, plus two self-
// consistency laws: symmetry in the operands and agreement of
// ProperlyCrosses with the full classifier.
func FuzzSegmentCross(f *testing.F) {
	f.Add([]byte{0, 0, 10, 10, 0, 10, 10, 0})  // proper X crossing
	f.Add([]byte{0, 0, 10, 0, 5, 0, 5, 10})    // T-touch at interior
	f.Add([]byte{0, 0, 10, 0, 5, 0, 15, 0})    // collinear overlap
	f.Add([]byte{0, 0, 10, 0, 10, 0, 20, 10})  // shared endpoint
	f.Add([]byte{0, 0, 1, 1, 5, 5, 6, 6})      // collinear disjoint
	f.Add([]byte{3, 3, 3, 3, 0, 0, 10, 10})    // degenerate on interior
	f.Add([]byte{128, 128, 127, 127, 0, 0, 1, 255}) // extreme coordinates
	f.Fuzz(func(t *testing.T, data []byte) {
		s, u, ok := decodeSegments(data)
		if !ok {
			return
		}
		kind, _ := s.Intersect(u)
		if want := exactKind(s, u); kind != want {
			t.Fatalf("%v.Intersect(%v) = %v, exact referee says %v", s, u, kind, want)
		}
		if back, _ := u.Intersect(s); back != kind {
			t.Fatalf("Intersect is asymmetric: %v vs %v for %v, %v", kind, back, s, u)
		}
		if got := s.ProperlyCrosses(u); got != (kind == geom.ProperCrossing) {
			t.Fatalf("ProperlyCrosses(%v, %v) = %v, classifier says %v", s, u, got, kind)
		}
	})
}
