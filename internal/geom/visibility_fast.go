package geom

import (
	"math"
	"slices"
)

// This file implements the O(n² log n) Complete Visibility check used by
// the engine at epoch boundaries, where the naive O(n³) predicate would
// dominate the run time at swarm sizes in the thousands.
//
// The key observation: Complete Visibility fails iff some robot k has two
// other robots collinear with it — if i and j lie on one line through k,
// then either k is between them (k blocks the pair i,j) or one of i,j is
// between k and the other (it blocks that pair). So CV ⟺ for every k,
// the directions of all other robots from k, folded modulo π, are
// pairwise distinct. Folding and sorting gives O(n log n) per robot.

// angleFoldTol is the angular tolerance for treating two folded
// directions as collinear candidates. Candidates are confirmed with the
// cross-product predicate, so the tolerance only has to be loose enough
// to never miss a true collinearity.
const angleFoldTol = 1e-6

// Triple records a collinear triple (A, B, Blocker): Blocker lies on the
// line through A and B (not necessarily between them).
type Triple struct {
	A, B, Blocker int
}

// CollinearTriples returns, for each point k, the (i, j) pairs whose
// directions from k fold to the same angle and that pass the
// cross-product collinearity confirmation. If the result is empty the
// point set has no three collinear points and Complete Visibility holds.
// maxTriples truncates the scan (0 = unlimited) since one triple already
// refutes CV.
func CollinearTriples(pts []Point, maxTriples int) []Triple {
	return collinearScan(pts, angleFoldTol, true, maxTriples)
}

// CollinearCandidates is the unconfirmed variant of CollinearTriples: it
// returns every pair whose folded directions agree within tol, without
// the float collinearity confirmation. The exact checker uses it as a
// superset filter: every exactly-collinear triple has a folded-angle gap
// far below any reasonable tol, so confirming only the candidates with
// exact arithmetic decides Complete Visibility exactly.
func CollinearCandidates(pts []Point, tol float64) []Triple {
	if tol <= 0 {
		tol = angleFoldTol
	}
	return collinearScan(pts, tol, false, 0)
}

func collinearScan(pts []Point, tol float64, confirm bool, maxTriples int) []Triple {
	n := len(pts)
	var out []Triple
	type dir struct {
		phi float64 // direction folded to [0, π)
		idx int
	}
	dirs := make([]dir, 0, n)
	emit := func(a, b, k int) bool {
		if confirm && !AreCollinear(pts[k], pts[a], pts[b]) {
			return false
		}
		out = append(out, Triple{A: a, B: b, Blocker: k})
		return maxTriples > 0 && len(out) >= maxTriples
	}
	for k := 0; k < n; k++ {
		dirs = dirs[:0]
		for j := 0; j < n; j++ {
			if j == k {
				continue
			}
			d := pts[j].Sub(pts[k])
			if d.Norm2() == 0 {
				// Coincident points: report as a degenerate triple with
				// the duplicate as blocker so callers fail the config.
				out = append(out, Triple{A: k, B: j, Blocker: j})
				continue
			}
			phi := math.Atan2(d.Y, d.X)
			if phi < 0 {
				phi += math.Pi
			}
			if phi >= math.Pi {
				phi -= math.Pi
			}
			dirs = append(dirs, dir{phi: phi, idx: j})
		}
		slices.SortFunc(dirs, func(a, b dir) int {
			switch {
			case a.phi < b.phi:
				return -1
			case a.phi > b.phi:
				return 1
			default:
				return 0
			}
		})
		// Cluster the sorted angles into runs of near-equal direction and
		// emit every pair within a run: adjacent-only comparison could
		// miss a collinear pair separated by a third, almost-collinear
		// direction sitting between them.
		for i := 0; i < len(dirs); {
			j := i + 1
			for j < len(dirs) && dirs[j].phi-dirs[j-1].phi < tol {
				j++
			}
			for a := i; a < j; a++ {
				for b := a + 1; b < j; b++ {
					if emit(dirs[a].idx, dirs[b].idx, k) {
						return out
					}
				}
			}
			i = j
		}
		// Wrap-around: angles near 0 and near π fold to the same line.
		// Pair the leading run with the trailing run when the folded gap
		// closes, unless the whole set was a single run already.
		if len(dirs) >= 2 && dirs[len(dirs)-1].phi-dirs[0].phi >= tol {
			lo := 0
			for lo+1 < len(dirs) && dirs[lo+1].phi-dirs[lo].phi < tol {
				lo++
			}
			hi := len(dirs) - 1
			for hi-1 >= 0 && dirs[hi].phi-dirs[hi-1].phi < tol {
				hi--
			}
			if dirs[0].phi+math.Pi-dirs[len(dirs)-1].phi < tol && hi > lo {
				for a := 0; a <= lo; a++ {
					for b := hi; b < len(dirs); b++ {
						if emit(dirs[a].idx, dirs[b].idx, k) {
							return out
						}
					}
				}
			}
		}
	}
	return out
}

// CompleteVisibilityFast reports whether all points are distinct and
// pairwise mutually visible, in O(n² log n). It agrees with
// CompleteVisibility up to float tolerance; the engine's terminal
// verification re-confirms suspicious triples with exact arithmetic.
func CompleteVisibilityFast(pts []Point) bool {
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Eq(pts[j]) {
				return false
			}
		}
	}
	// Any collinear triple implies some blocked pair (see file comment),
	// and CV requires none.
	return len(CollinearTriples(pts, 1)) == 0
}
