package geom

import (
	"math"
	"slices"
)

// This file implements the O(n² log n) Complete Visibility check used by
// the engine at epoch boundaries, where the naive O(n³) predicate would
// dominate the run time at swarm sizes in the thousands.
//
// The key observation: Complete Visibility fails iff some robot k has two
// other robots collinear with it — if i and j lie on one line through k,
// then either k is between them (k blocks the pair i,j) or one of i,j is
// between k and the other (it blocks that pair). So CV ⟺ for every k,
// the directions of all other robots from k, folded modulo π, are
// pairwise distinct. Folding and sorting gives O(n log n) per robot.

// angleFoldTol is the floor of the angular tolerance for treating two
// folded directions as collinear candidates. Candidates are confirmed
// with the cross-product predicate, so the tolerance only has to be loose
// enough to never miss a true collinearity — which is scale-dependent:
// AreCollinear accepts |cross| up to Eps·max(‖d_i‖₁, ‖d_j‖₁, 1), an
// angular acceptance that grows like Eps·diameter/dist² when points sit
// close together relative to the set's diameter. foldTol widens the
// tolerance accordingly per observer; this constant alone is only
// sufficient for well-spread configurations.
const angleFoldTol = 1e-6

// maxFoldTol caps the adaptive tolerance. An observer whose bound
// exceeds it has a neighbor so close that direction bucketing cannot
// separate anything reliably; scans then fall back to confirming all
// pairs for that observer (quadratic, but only for degenerate inputs).
const maxFoldTol = 0.1

// foldTol returns the angular clustering tolerance for an observer whose
// rays to the other points have minimum squared length minD2 and maximum
// L1 length maxL1. The bound dominates the angular acceptance of the
// Orient/AreCollinear predicates (≈ Eps·max(maxL1,1)/minD2, see Orient's
// scaled tolerance), with a 4× margin absorbing atan2 rounding and the
// fold. ok=false signals the degenerate fallback.
func foldTol(minD2, maxL1 float64) (tol float64, ok bool) {
	scale := maxL1
	if scale < 1 {
		scale = 1
	}
	bound := 4 * Eps * scale / minD2
	if bound > maxFoldTol || math.IsNaN(bound) {
		return 0, false
	}
	if bound < angleFoldTol {
		bound = angleFoldTol
	}
	return bound, true
}

// Triple records a collinear triple (A, B, Blocker): Blocker lies on the
// line through A and B (not necessarily between them).
type Triple struct {
	A, B, Blocker int
}

// CollinearTriples returns, for each point k, the (i, j) pairs whose
// directions from k fold to the same angle and that pass the
// cross-product collinearity confirmation. If the result is empty the
// point set has no three collinear points and Complete Visibility holds.
// maxTriples truncates the scan (0 = unlimited) since one triple already
// refutes CV.
func CollinearTriples(pts []Point, maxTriples int) []Triple {
	return collinearScan(pts, 0, true, maxTriples)
}

// CollinearCandidates is the unconfirmed variant of CollinearTriples: it
// returns every pair whose folded directions agree within tol, without
// the float collinearity confirmation. The exact checker uses it as a
// superset filter: every exactly-collinear triple has a folded-angle gap
// far below any reasonable tol, so confirming only the candidates with
// exact arithmetic decides Complete Visibility exactly. tol acts as a
// floor — per observer the scan widens it to the scale-aware foldTol
// bound, so the superset contract holds at any coordinate magnitude.
func CollinearCandidates(pts []Point, tol float64) []Triple {
	if tol <= 0 {
		tol = angleFoldTol
	}
	return collinearScan(pts, tol, false, 0)
}

// dir is one folded direction from a scan observer.
type dir struct {
	phi float64 // pseudo-angle folded to [0, 2), i.e. direction mod π
	idx int
}

// collinearObserver scans a single observer k: it folds the directions of
// all other points modulo π, clusters them circularly (the runs near 0
// and near π chain across the fold, mirroring the ±π branch cut handling
// of visibleRow), and calls emit for every pair within a run. Degenerate
// pairs (coincident with k) and observers whose adaptive tolerance
// blows past maxFoldTol emit with confirmable=false / all pairs
// respectively. dirs is reusable caller-owned scratch. A true return
// from emit stops the scan and propagates.
func collinearObserver(pts []Point, k int, floorTol float64, dirs []dir, emit func(a, b int, confirmable bool) bool) ([]dir, bool) {
	dirs = dirs[:0]
	minD2 := math.Inf(1)
	maxL1 := 0.0
	for j := range pts {
		if j == k {
			continue
		}
		d := pts[j].Sub(pts[k])
		d2 := d.Norm2()
		if d2 == 0 {
			// Coincident points: report as a degenerate pair so callers
			// fail the configuration.
			if emit(j, j, false) {
				return dirs, true
			}
			continue
		}
		phi := pseudoAngle(d)
		if phi < 0 {
			phi += 2
		}
		if phi >= 2 {
			phi -= 2
		}
		dirs = append(dirs, dir{phi: phi, idx: j})
		if d2 < minD2 {
			minD2 = d2
		}
		if l1 := abs(d.X) + abs(d.Y); l1 > maxL1 {
			maxL1 = l1
		}
	}
	if len(dirs) < 2 {
		return dirs, false
	}
	tol, ok := foldTol(minD2, maxL1)
	if !ok {
		// Degenerate observer: bucketing is meaningless, emit every pair
		// and let the confirmation predicate decide.
		for a := 0; a < len(dirs); a++ {
			for b := a + 1; b < len(dirs); b++ {
				if emit(dirs[a].idx, dirs[b].idx, true) {
					return dirs, true
				}
			}
		}
		return dirs, false
	}
	if tol < floorTol {
		tol = floorTol
	}
	slices.SortFunc(dirs, func(a, b dir) int {
		switch {
		case a.phi < b.phi:
			return -1
		case a.phi > b.phi:
			return 1
		default:
			return 0
		}
	})
	// Cluster the sorted folded pseudo-angles into circular runs of
	// near-equal direction and emit every pair within a run:
	// adjacent-only comparison could miss a collinear pair separated by
	// a third, almost-collinear direction between them, and runs near 0
	// and near the fold boundary 2 are the same line, so clustering
	// wraps around the fold. Pseudo-angle gaps understate radian gaps
	// (by at most 2×), so a radian-derived tolerance only ever widens
	// the candidate set here.
	m := len(dirs)
	gapAfter := func(j int) float64 {
		if j == m-1 {
			return dirs[0].phi + 2 - dirs[m-1].phi
		}
		return dirs[j+1].phi - dirs[j].phi
	}
	start := -1
	for j := 0; j < m; j++ {
		if gapAfter(j) >= tol {
			start = (j + 1) % m
			break
		}
	}
	if start < 0 {
		// All folded directions chain into one run.
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if emit(dirs[a].idx, dirs[b].idx, true) {
					return dirs, true
				}
			}
		}
		return dirs, false
	}
	for consumed, lo := 0, start; consumed < m; {
		runLen := 1
		for consumed+runLen < m && gapAfter((lo+runLen-1)%m) < tol {
			runLen++
		}
		for a := 0; a < runLen; a++ {
			for b := a + 1; b < runLen; b++ {
				if emit(dirs[(lo+a)%m].idx, dirs[(lo+b)%m].idx, true) {
					return dirs, true
				}
			}
		}
		consumed += runLen
		lo = (lo + runLen) % m
	}
	return dirs, false
}

func collinearScan(pts []Point, floorTol float64, confirm bool, maxTriples int) []Triple {
	n := len(pts)
	var out []Triple
	dirs := make([]dir, 0, n)
	for k := 0; k < n; k++ {
		var stop bool
		dirs, stop = collinearObserver(pts, k, floorTol, dirs, func(a, b int, confirmable bool) bool {
			if confirmable && confirm && !AreCollinear(pts[k], pts[a], pts[b]) {
				return false
			}
			if !confirmable {
				// Coincident pair (k, a): preserve the degenerate-triple
				// shape with the duplicate as blocker.
				out = append(out, Triple{A: k, B: a, Blocker: b})
				return false
			}
			out = append(out, Triple{A: a, B: b, Blocker: k})
			return maxTriples > 0 && len(out) >= maxTriples
		})
		if stop {
			return out
		}
	}
	return out
}

// CompleteVisibilityFast reports whether all points are distinct and
// pairwise mutually visible, in O(n² log n). It agrees with
// CompleteVisibility up to float tolerance; the engine's terminal
// verification re-confirms suspicious triples with exact arithmetic.
// Kernel.CompleteVisibilityFast is the multi-core variant with an
// identical verdict.
func CompleteVisibilityFast(pts []Point) bool {
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Eq(pts[j]) {
				return false
			}
		}
	}
	// Any collinear triple implies some blocked pair (see file comment),
	// and CV requires none.
	return len(CollinearTriples(pts, 1)) == 0
}
