package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircumcircle(t *testing.T) {
	c, ok := Circumcircle(Pt(0, 0), Pt(4, 0), Pt(2, 2))
	if !ok {
		t.Fatal("circumcircle of triangle failed")
	}
	for _, p := range []Point{Pt(0, 0), Pt(4, 0), Pt(2, 2)} {
		if !c.OnBoundary(p) {
			t.Errorf("point %v not on circumcircle %v", p, c)
		}
	}
	if _, ok := Circumcircle(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear circumcircle should fail")
	}
}

func TestCirclePointAtAngleOf(t *testing.T) {
	c := Circle{Center: Pt(10, 10), R: 5}
	p := c.PointAt(0)
	if !p.Eq(Pt(15, 10)) {
		t.Errorf("PointAt(0) = %v", p)
	}
	if got := c.AngleOf(Pt(10, 15)); !almostEq(got, math.Pi/2) {
		t.Errorf("AngleOf = %v", got)
	}
	if !c.Contains(Pt(12, 10)) || c.Contains(Pt(16, 10)) {
		t.Error("Contains wrong")
	}
}

func TestArcThrough(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	arc := ArcThrough(a, b, 2)
	if !arc.At(0).Eq(a) || !arc.At(1).Eq(b) {
		t.Fatalf("arc endpoints wrong: %v %v", arc.At(0), arc.At(1))
	}
	// Sagitta: the arc's midpoint is h above the chord, on the left of
	// a→b for h > 0 (positive Y here).
	mid := arc.At(0.5)
	if !almostEq(mid.X, 5) || !almostEq(mid.Y, 2) {
		t.Errorf("arc midpoint = %v, want (5, 2)", mid)
	}
	if !almostEq(arc.Sagitta(), 2) {
		t.Errorf("Sagitta = %v", arc.Sagitta())
	}
	// Negative sagitta bulges the other way.
	neg := ArcThrough(a, b, -2)
	if m := neg.At(0.5); !almostEq(m.Y, -2) {
		t.Errorf("negative arc midpoint = %v", m)
	}
}

func TestArcStrictlyConvex(t *testing.T) {
	// Distinct points sampled on one arc must be in strictly convex
	// position — the property that makes arc landings corners.
	arc := ArcThrough(Pt(0, 0), Pt(100, 0), 6)
	var pts []Point
	for i := 0; i <= 20; i++ {
		pts = append(pts, arc.At(float64(i)/20))
	}
	if !StrictlyConvexPosition(pts) {
		t.Fatal("arc samples not strictly convex")
	}
	if !CompleteVisibility(pts) {
		t.Fatal("arc samples not completely visible")
	}
}

func TestArcParamOf(t *testing.T) {
	arc := ArcThrough(Pt(0, 0), Pt(10, 0), 3)
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := arc.At(tt)
		if got := arc.ParamOf(p); !almostEq(got, tt) {
			t.Errorf("ParamOf(At(%v)) = %v", tt, got)
		}
	}
}

func TestArcThroughPanics(t *testing.T) {
	for _, c := range []struct {
		name string
		f    func()
	}{
		{"coincident", func() { ArcThrough(Pt(1, 1), Pt(1, 1), 1) }},
		{"zero sagitta", func() { ArcThrough(Pt(0, 0), Pt(1, 0), 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

// Property: arc points stay on the arc's circle and on the bulge side.
func TestArcOnCircle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		a := randPt(rng)
		b := randPt(rng)
		if a.Dist(b) < 1 {
			continue
		}
		h := (rng.Float64()*0.3 + 0.01) * a.Dist(b)
		if rng.Intn(2) == 0 {
			h = -h
		}
		arc := ArcThrough(a, b, h)
		for _, tt := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			p := arc.At(tt)
			if !arc.Circle.OnBoundary(p) {
				t.Fatalf("arc point %v off its circle (trial %d)", p, trial)
			}
			side := Orient(a, b, p)
			wantSide := CCW
			if h < 0 {
				wantSide = CW
			}
			if side != wantSide {
				t.Fatalf("arc point %v on wrong side (trial %d, h=%v)", p, trial, h)
			}
		}
	}
}
