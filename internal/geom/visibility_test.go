package geom

import (
	"math/rand"
	"testing"
)

func TestVisibleBasic(t *testing.T) {
	// 0 --- 1 --- 2 on a line: 1 blocks 0 from 2.
	pts := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}
	if !Visible(pts, 0, 1) || !Visible(pts, 1, 2) {
		t.Error("adjacent points should see each other")
	}
	if Visible(pts, 0, 2) {
		t.Error("blocked pair reported visible")
	}
	if Visible(pts, 0, 0) {
		t.Error("self-visibility should be false")
	}
}

func TestVisibleCoincident(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(0, 0)}
	if Visible(pts, 0, 1) {
		t.Error("coincident points reported visible")
	}
}

func TestVisibleFromAndBlockers(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(5, 5)}
	vis := VisibleFrom(pts, 0)
	want := []int{1, 3}
	if len(vis) != len(want) {
		t.Fatalf("VisibleFrom = %v", vis)
	}
	for i := range want {
		if vis[i] != want[i] {
			t.Fatalf("VisibleFrom = %v, want %v", vis, want)
		}
	}
	bl := Blockers(pts, 0, 2)
	if len(bl) != 1 || bl[0] != 1 {
		t.Errorf("Blockers = %v", bl)
	}
}

func TestCompleteVisibility(t *testing.T) {
	if !CompleteVisibility([]Point{Pt(0, 0), Pt(4, 0), Pt(2, 4)}) {
		t.Error("triangle not CV")
	}
	if CompleteVisibility([]Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}) {
		t.Error("line reported CV")
	}
	if CompleteVisibility([]Point{Pt(0, 0), Pt(0, 0)}) {
		t.Error("duplicate points reported CV")
	}
	if !CompleteVisibility([]Point{Pt(1, 1)}) || !CompleteVisibility(nil) {
		t.Error("trivial sets must be CV")
	}
	// Interior point in general position: CV without convex position.
	if !CompleteVisibility([]Point{Pt(0, 0), Pt(10, 0), Pt(5, 10), Pt(5, 3)}) {
		t.Error("general-position set with interior point should be CV")
	}
}

func TestVisibilityCountAndBlockedPairs(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0)}
	if got := VisibilityCount(pts); got != 2 {
		t.Errorf("VisibilityCount = %d", got)
	}
	bp := BlockedPairs(pts)
	if len(bp) != 1 || bp[0] != [2]int{0, 2} {
		t.Errorf("BlockedPairs = %v", bp)
	}
}

func TestPathClear(t *testing.T) {
	obstacles := []Point{Pt(5, 0), Pt(3, 2)}
	if PathClear(Pt(0, 0), Pt(10, 0), obstacles, 0) {
		t.Error("path through obstacle reported clear")
	}
	if !PathClear(Pt(0, 0), Pt(10, 5), obstacles, 0) {
		t.Error("clear path reported blocked")
	}
	// Margin widens the corridor.
	if PathClear(Pt(0, 0), Pt(10, 4), obstacles, 1.5) {
		t.Error("margin violation not detected")
	}
	// Destination occupied.
	if PathClear(Pt(0, 0), Pt(5, 0), obstacles, 0) {
		t.Error("occupied destination reported clear")
	}
	// Own position in the obstacle list is ignored.
	if !PathClear(Pt(3, 2), Pt(3, 5), obstacles, 0) {
		t.Error("own position blocked the path")
	}
}

func TestCompleteVisibilityFastAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	agree := 0
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPt(rng)
		}
		// Half the trials get a forced collinear triple.
		if trial%2 == 0 && n >= 3 {
			pts[2] = pts[0].Mid(pts[1])
		}
		naive := CompleteVisibility(pts)
		fast := CompleteVisibilityFast(pts)
		if naive != fast {
			t.Fatalf("disagreement on %v: naive=%v fast=%v", pts, naive, fast)
		}
		agree++
	}
	if agree == 0 {
		t.Fatal("no trials ran")
	}
}

func TestVisibleSetFastAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randPt(rng)
		}
		// Force collinear structure in half the trials.
		if trial%2 == 0 && n >= 4 {
			pts[1] = pts[0].Lerp(pts[2], 0.5)
			pts[3] = pts[0].Lerp(pts[2], 2)
		}
		for i := 0; i < n; i++ {
			fast := VisibleSetFast(pts, i)
			naive := VisibleFrom(pts, i)
			if len(fast) != len(naive) {
				t.Fatalf("trial %d robot %d: fast=%v naive=%v pts=%v", trial, i, fast, naive, pts)
			}
			for k := range fast {
				if fast[k] != naive[k] {
					t.Fatalf("trial %d robot %d: fast=%v naive=%v", trial, i, fast, naive)
				}
			}
		}
	}
}

func TestCollinearTriples(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(5, 0), Pt(10, 0), Pt(3, 7)}
	triples := CollinearTriples(pts, 0)
	if len(triples) == 0 {
		t.Fatal("collinear triple not detected")
	}
	// The blocked configuration must be detected from the blocker's
	// perspective: some triple must name point 1 (the middle).
	found := false
	for _, tr := range triples {
		if tr.Blocker == 1 || tr.A == 1 || tr.B == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("middle point absent from triples %v", triples)
	}
	if got := CollinearTriples([]Point{Pt(0, 0), Pt(5, 0), Pt(5, 5)}, 0); len(got) != 0 {
		t.Errorf("triangle produced triples %v", got)
	}
}

// The line-visibility lemma the algorithm relies on: in a non-collinear
// swarm, every robot sees at least one robot off any line through it.
func TestOffLineVisibilityLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(20)
		pts := make([]Point, n)
		// Most robots on a line, a few off it.
		for i := range pts {
			x := rng.Float64() * 100
			pts[i] = Pt(x, x*0.5)
		}
		pts[n-1] = Pt(rng.Float64()*100, rng.Float64()*100+200)
		for i := range pts {
			vis := VisibleSetFast(pts, i)
			allCollinear := true
			viewPts := []Point{pts[i]}
			for _, j := range vis {
				viewPts = append(viewPts, pts[j])
			}
			allCollinear = AllCollinear(viewPts)
			if allCollinear {
				t.Fatalf("robot %d sees an all-collinear view in a non-collinear swarm", i)
			}
		}
	}
}
