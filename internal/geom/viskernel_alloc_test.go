package geom_test

// The zero-allocation guard for the kernel's steady state: once the
// arenas and row buffers are warm, neither the batched pass (serial or
// parallel) nor the incremental Update/Row path may allocate. CI runs
// this as part of the ordinary test job, so an allocation sneaking into
// the hot path fails the build, not just a benchmark report.

import (
	"math/rand"
	"testing"

	"luxvis/internal/geom"
)

func assertZeroAllocs(t *testing.T, what string, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(10, f); allocs != 0 {
		t.Fatalf("%s allocates %.1f times per run in steady state, want 0", what, allocs)
	}
}

func TestKernelZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{64, 256} { // below and above the parallel threshold
		kern := geom.NewKernel(4)
		defer kern.Close()
		snap := kern.NewSnapshot()
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		// Warm the arenas: first passes grow every buffer to its final
		// size.
		for warm := 0; warm < 3; warm++ {
			snap.Reset(pts)
			snap.ComputeAll()
		}
		assertZeroAllocs(t, "Reset+ComputeAll", func() {
			snap.Reset(pts)
			snap.ComputeAll()
		})
		target := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		home := pts[n/2]
		snap.Update(n/2, target)
		snap.ComputeAll()
		assertZeroAllocs(t, "Update+Row", func() {
			snap.Update(n/2, home)
			for r := 0; r < n; r++ {
				_ = snap.Row(r)
			}
			home, target = target, home
		})
		assertZeroAllocs(t, "Kernel.CompleteVisibilityFast", func() {
			_ = kern.CompleteVisibilityFast(pts)
		})
	}
}

func TestRowCacheZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	var cache geom.RowCache
	for i := range pts {
		_ = cache.VisibleSet(pts, i) // warm
	}
	assertZeroAllocs(t, "RowCache.VisibleSet", func() {
		for i := range pts {
			_ = cache.VisibleSet(pts, i)
		}
	})
}
