// Package geom is the planar geometry kernel used by the luxvis simulator
// and algorithms. It provides points/vectors, orientation and betweenness
// predicates, segments and their intersections, convex hulls with
// corner/edge-point classification, circles and shallow arcs, and the
// obstructed-visibility predicates of the robots-with-lights model.
//
// All computations use float64 with a relative epsilon; the companion
// package internal/exact re-implements the safety-critical predicates over
// big.Rat so that the simulation *checker* is immune to rounding. The
// algorithms themselves deliberately keep clear of degeneracies (targets
// are placed in open interval interiors, bulges are strictly positive), so
// float64 is adequate for the decision side.
package geom

import (
	"fmt"
	"math"
)

// Eps is the absolute tolerance used by the float predicates. Coordinates
// in luxvis simulations live in roughly [0, 1e4], so 1e-9 gives about six
// orders of magnitude of slack above the 1e-15 float64 noise floor while
// staying far below any distance the algorithms ever construct.
const Eps = 1e-9

// Point is a point (or free vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Mul returns the scalar product s·p.
func (p Point) Mul(s float64) Point { return Point{p.X * s, p.Y * s} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance |p - q|.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance |p - q|².
func (p Point) Dist2(q Point) float64 { return p.Sub(q).Norm2() }

// Unit returns p scaled to unit length. The zero vector is returned
// unchanged (callers must not rely on Unit of a zero vector).
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Mul(1 / n)
}

// Perp returns p rotated by +90 degrees (counterclockwise).
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Rotate returns p rotated about the origin by the given angle (radians,
// counterclockwise).
func (p Point) Rotate(angle float64) Point {
	s, c := math.Sincos(angle)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// RotateAround returns p rotated about center by the given angle.
func (p Point) RotateAround(center Point, angle float64) Point {
	return p.Sub(center).Rotate(angle).Add(center)
}

// Angle returns the polar angle of p in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Lerp returns the point (1-t)·p + t·q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point { return p.Lerp(q, 0.5) }

// Eq reports whether p and q coincide within Eps in both coordinates.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Less orders points lexicographically by (X, Y). It is the tie-break
// order used by the hull and by deterministic sorting throughout luxvis.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String formats the point for diagnostics.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Centroid returns the arithmetic mean of the given points. It panics if
// pts is empty: a centroid of nothing is a caller bug, not a data case.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var s Point
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Mul(1 / float64(len(pts)))
}

// BoundingBox returns the axis-aligned bounding box (min, max) of pts.
// It panics if pts is empty.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}

// MinPairwiseDist returns the smallest pairwise distance among pts, or
// +Inf if fewer than two points are given. Small inputs use the direct
// O(n²) scan; larger ones delegate to the O(n log n) ClosestPair.
func MinPairwiseDist(pts []Point) float64 {
	if len(pts) < 2 {
		return math.Inf(1)
	}
	if len(pts) > 256 {
		_, _, d := ClosestPair(pts)
		return d
	}
	best := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}
