package geom

// Smallest enclosing circle (Welzl's algorithm, deterministic order).
// Used by the CircleVis reference algorithm, whose robots all move onto
// the smallest circle enclosing the swarm, and by metrics.

// MinEnclosingCircle returns the smallest circle containing every point
// of pts. It panics on an empty input — the callers always have at least
// the calling robot itself. The implementation is Welzl's move-to-front
// algorithm processed in input order: deterministic (a requirement for
// robot algorithms, which must be pure functions of their snapshot) with
// expected near-linear behaviour on non-adversarial inputs.
func MinEnclosingCircle(pts []Point) Circle {
	if len(pts) == 0 {
		panic("geom: MinEnclosingCircle of empty point set")
	}
	c := Circle{Center: pts[0], R: 0}
	for i := 1; i < len(pts); i++ {
		if c.Contains(pts[i]) {
			continue
		}
		// pts[i] is on the boundary of the circle for pts[:i+1].
		c = circleWithOne(pts[:i], pts[i])
	}
	return c
}

// circleWithOne returns the smallest circle containing pts with q on its
// boundary.
func circleWithOne(pts []Point, q Point) Circle {
	c := Circle{Center: q, R: 0}
	for i := 0; i < len(pts); i++ {
		if c.Contains(pts[i]) {
			continue
		}
		c = circleWithTwo(pts[:i], q, pts[i])
	}
	return c
}

// circleWithTwo returns the smallest circle containing pts with q1 and
// q2 on its boundary.
func circleWithTwo(pts []Point, q1, q2 Point) Circle {
	c := circleFrom2(q1, q2)
	for i := 0; i < len(pts); i++ {
		if c.Contains(pts[i]) {
			continue
		}
		c = circleFrom3(q1, q2, pts[i])
	}
	return c
}

// circleFrom2 is the circle with diameter q1–q2.
func circleFrom2(q1, q2 Point) Circle {
	center := q1.Mid(q2)
	return Circle{Center: center, R: center.Dist(q1)}
}

// circleFrom3 is the circumcircle of three points, falling back to the
// smallest two-point circle when they are (near-)collinear.
func circleFrom3(a, b, c Point) Circle {
	if cc, ok := Circumcircle(a, b, c); ok {
		return cc
	}
	// Collinear: the diametral circle of the farthest pair.
	best := circleFrom2(a, b)
	if alt := circleFrom2(a, c); alt.R > best.R {
		best = alt
	}
	if alt := circleFrom2(b, c); alt.R > best.R {
		best = alt
	}
	return best
}
