package geom

import (
	"fmt"
	"math"
)

// Segment is the closed straight segment from A to B. Motion paths in the
// simulator are segments (robots move in straight lines in the LCM model),
// so segment intersection is the primitive behind the collision and
// path-crossing checks.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Len returns the length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the (non-normalized) direction vector B - A.
func (s Segment) Dir() Point { return s.B.Sub(s.A) }

// At returns the point A + t·(B-A).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// IsDegenerate reports whether the endpoints coincide.
func (s Segment) IsDegenerate() bool { return s.A.Eq(s.B) }

// String formats the segment for diagnostics.
func (s Segment) String() string { return fmt.Sprintf("[%v -> %v]", s.A, s.B) }

// ClosestPoint returns the point of the closed segment nearest to p, and
// the clamped parameter t ∈ [0,1] at which it occurs.
func (s Segment) ClosestPoint(p Point) (Point, float64) {
	d := s.Dir()
	n2 := d.Norm2()
	if n2 == 0 {
		return s.A, 0
	}
	t := p.Sub(s.A).Dot(d) / n2
	t = math.Max(0, math.Min(1, t))
	return s.At(t), t
}

// Dist returns the distance from p to the closed segment.
func (s Segment) Dist(p Point) float64 {
	q, _ := s.ClosestPoint(p)
	return p.Dist(q)
}

// Contains reports whether p lies on the closed segment within tolerance.
func (s Segment) Contains(p Point) bool { return s.Dist(p) <= Eps }

// ContainsInterior reports whether p lies on the segment strictly between
// the endpoints.
func (s Segment) ContainsInterior(p Point) bool {
	return StrictlyBetween(s.A, s.B, p)
}

// IntersectKind classifies how two segments meet.
type IntersectKind int

const (
	// NoIntersection: the closed segments are disjoint.
	NoIntersection IntersectKind = iota
	// ProperCrossing: the segments cross at a single point interior to
	// both. This is the "paths cross" event the paper forbids.
	ProperCrossing
	// Touching: the segments meet at a single point that is an endpoint
	// of at least one of them.
	Touching
	// Overlapping: the segments are collinear and share more than one
	// point.
	Overlapping
)

func (k IntersectKind) String() string {
	switch k {
	case NoIntersection:
		return "none"
	case ProperCrossing:
		return "proper-crossing"
	case Touching:
		return "touching"
	case Overlapping:
		return "overlapping"
	default:
		return fmt.Sprintf("IntersectKind(%d)", int(k))
	}
}

// Intersect classifies the intersection of segments s and u and, when the
// intersection is a single point, returns it. For Overlapping the returned
// point is one point of the shared portion.
func (s Segment) Intersect(u Segment) (IntersectKind, Point) {
	o1 := Orient(s.A, s.B, u.A)
	o2 := Orient(s.A, s.B, u.B)
	o3 := Orient(u.A, u.B, s.A)
	o4 := Orient(u.A, u.B, s.B)

	if o1 != o2 && o3 != o4 && o1 != Collinear && o2 != Collinear &&
		o3 != Collinear && o4 != Collinear {
		// Strict crossing: compute the point by line-line intersection.
		p, ok := lineLineIntersection(s.A, s.B, u.A, u.B)
		if !ok {
			// Numerically near-parallel despite the orientation test;
			// fall back to the midpoint of the closest approach.
			p = s.Mid()
		}
		return ProperCrossing, p
	}

	// Collect endpoint-on-segment contacts.
	type contact struct{ p Point }
	var contacts []contact
	if OnSegment(s.A, s.B, u.A) {
		contacts = append(contacts, contact{u.A})
	}
	if OnSegment(s.A, s.B, u.B) {
		contacts = append(contacts, contact{u.B})
	}
	if OnSegment(u.A, u.B, s.A) {
		contacts = append(contacts, contact{s.A})
	}
	if OnSegment(u.A, u.B, s.B) {
		contacts = append(contacts, contact{s.B})
	}
	if len(contacts) == 0 {
		return NoIntersection, Point{}
	}
	// Deduplicate coincident contact points.
	uniq := contacts[:1]
	for _, c := range contacts[1:] {
		dup := false
		for _, e := range uniq {
			if e.p.Eq(c.p) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, c)
		}
	}
	if len(uniq) == 1 {
		return Touching, uniq[0].p
	}
	return Overlapping, uniq[0].p
}

// ProperlyCrosses reports whether s and u cross at a point interior to
// both segments.
func (s Segment) ProperlyCrosses(u Segment) bool {
	k, _ := s.Intersect(u)
	return k == ProperCrossing
}

// lineLineIntersection intersects the infinite lines through (a,b) and
// (c,d). ok is false when the lines are parallel within tolerance.
func lineLineIntersection(a, b, c, d Point) (Point, bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	den := r.Cross(s)
	if math.Abs(den) <= Eps*math.Max(1, r.Norm()*s.Norm()) {
		return Point{}, false
	}
	t := c.Sub(a).Cross(s) / den
	return a.Add(r.Mul(t)), true
}

// LineIntersection exposes lineLineIntersection: the intersection of the
// infinite lines through (a,b) and (c,d), with ok=false for parallels.
func LineIntersection(a, b, c, d Point) (Point, bool) {
	return lineLineIntersection(a, b, c, d)
}

// SegDist returns the minimum distance between the two closed segments.
func SegDist(s, u Segment) float64 {
	if k, _ := s.Intersect(u); k != NoIntersection {
		return 0
	}
	d := math.Min(s.Dist(u.A), s.Dist(u.B))
	d = math.Min(d, u.Dist(s.A))
	return math.Min(d, u.Dist(s.B))
}
