package geom

import (
	"math"
	"slices"
)

// ClosestPair returns the indices of the two nearest points of pts and
// their distance, via the classic divide-and-conquer in O(n log n). It
// panics on fewer than two points. MinPairwiseDist delegates here above
// a size threshold; the engine's end-of-run minimum-separation metric at
// N in the thousands is the consumer that needed better than O(n²).
func ClosestPair(pts []Point) (i, j int, dist float64) {
	if len(pts) < 2 {
		panic("geom: ClosestPair needs at least two points")
	}
	idx := make([]int, len(pts))
	for k := range idx {
		idx[k] = k
	}
	// Sort indices by x (then y) once; recursion partitions this order.
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case pts[a].Less(pts[b]):
			return -1
		case pts[b].Less(pts[a]):
			return 1
		default:
			return 0
		}
	})
	buf := make([]int, len(pts))
	i, j, d2 := cpRec(pts, idx, buf)
	return i, j, math.Sqrt(d2)
}

// cpRec solves the closest pair over the x-sorted index slice, returning
// the best pair and squared distance. On return, idx is re-sorted by y
// (the merge step of the classic algorithm).
func cpRec(pts []Point, idx []int, buf []int) (int, int, float64) {
	n := len(idx)
	if n <= 3 {
		bi, bj, bd := -1, -1, math.Inf(1)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if d := pts[idx[a]].Dist2(pts[idx[b]]); d < bd {
					bi, bj, bd = idx[a], idx[b], d
				}
			}
		}
		// Sort the tiny slice by y for the parent's merge.
		slices.SortFunc(idx, func(a, b int) int {
			switch {
			case pts[a].Y < pts[b].Y:
				return -1
			case pts[a].Y > pts[b].Y:
				return 1
			default:
				return 0
			}
		})
		return bi, bj, bd
	}

	mid := n / 2
	midX := pts[idx[mid]].X
	li, lj, ld := cpRec(pts, idx[:mid], buf[:mid])
	ri, rj, rd := cpRec(pts, idx[mid:], buf[mid:])
	bi, bj, bd := li, lj, ld
	if rd < bd {
		bi, bj, bd = ri, rj, rd
	}

	// Merge the two y-sorted halves into buf, then copy back.
	merge(pts, idx[:mid], idx[mid:], buf)
	copy(idx, buf[:n])

	// Strip: points within sqrt(bd) of the dividing line, in y order;
	// each needs comparing to at most the next few strip members.
	strip := make([]int, 0, n)
	for _, id := range idx {
		dx := pts[id].X - midX
		if dx*dx < bd {
			strip = append(strip, id)
		}
	}
	for a := 0; a < len(strip); a++ {
		for b := a + 1; b < len(strip); b++ {
			dy := pts[strip[b]].Y - pts[strip[a]].Y
			if dy*dy >= bd {
				break
			}
			if d := pts[strip[a]].Dist2(pts[strip[b]]); d < bd {
				bi, bj, bd = strip[a], strip[b], d
			}
		}
	}
	return bi, bj, bd
}

// merge combines two y-sorted index runs into out (stable).
func merge(pts []Point, a, b, out []int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if pts[a[i]].Y <= pts[b[j]].Y {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for ; i < len(a); i++ {
		out[k] = a[i]
		k++
	}
	for ; j < len(b); j++ {
		out[k] = b[j]
		k++
	}
}
