package geom_test

// Fuzz target for the incremental snapshot path, sharing the int8-grid
// input format of FuzzVisibleAgainstNaive (its checked-in corpus seeds
// this target directly): the last three bytes pick the moving robot and
// its destination, the rest decodes the start configuration. After the
// move, every snapshot row must agree with a from-scratch VisibleSetFast
// and with the O(n²) reference.

import (
	"slices"
	"testing"

	"luxvis/internal/geom"
)

func FuzzSnapshotUpdate(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 1, 4, 0})           // chain, robot 1 stays on the line
	f.Add([]byte{0, 0, 10, 0, 5, 0, 5, 5, 3, 5, 255})        // blocker flips sides
	f.Add([]byte{0, 0, 0, 0, 1, 1, 0, 7, 7})                 // coincident pair separates
	f.Add([]byte{251, 0, 5, 0, 0, 0, 0, 5, 0, 251, 2, 3, 3}) // spokes, center leaves
	f.Add([]byte{128, 128, 127, 127, 0, 0, 1, 128, 127})     // extreme corners
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			return
		}
		mv := data[len(data)-3:]
		pts := decodePoints(data[:len(data)-3])
		if len(pts) < 2 {
			return
		}
		kern := geom.NewKernel(2)
		defer kern.Close()
		snap := kern.NewSnapshot()
		snap.Reset(pts)
		snap.ComputeAll()
		m := int(mv[0]) % len(pts)
		np := geom.Pt(float64(int8(mv[1])), float64(int8(mv[2])))
		snap.Update(m, np)
		cur := slices.Clone(pts)
		cur[m] = np
		for r := range cur {
			got := snap.Row(r)
			if want := geom.VisibleSetFast(cur, r); !slices.Equal(got, want) {
				t.Fatalf("after moving %d to %v: Row(%d) = %v, VisibleSetFast = %v (pts=%v)",
					m, np, r, got, want, cur)
			}
			if ref := geom.VisibleFrom(cur, r); !slices.Equal(got, ref) {
				t.Fatalf("after moving %d to %v: Row(%d) = %v, reference VisibleFrom = %v (pts=%v)",
					m, np, r, got, ref, cur)
			}
		}
	})
}
