package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"luxvis/internal/config"
	"luxvis/internal/core"
	"luxvis/internal/sched"
	"luxvis/internal/sim"
	"luxvis/internal/trace"
)

// sliceSource serves a fixed frame slice — a deterministic Source for
// pacing and filter tests.
type sliceSource struct {
	frames []Frame
	i      int
}

func (s *sliceSource) Next(ctx context.Context) (Frame, error) {
	if s.i >= len(s.frames) {
		return Frame{}, io.EOF
	}
	f := s.frames[s.i]
	s.i++
	return f, nil
}

func makeFrames(events int) []Frame {
	frames := []Frame{{Seq: 1, Kind: "header", Data: []byte(`{"kind":"header"}`)}}
	for i := 0; i < events; i++ {
		frames = append(frames, Frame{
			Seq:   uint64(i + 2),
			Kind:  "look",
			Epoch: i / 4, // 4 events per epoch
			Data:  []byte(`{"kind":"look"}`),
		})
	}
	return frames
}

// TestReplayPacing: with Speed set, every event frame waits one interval
// of 1/(DefaultReplayEventsPerSec*Speed); the header frame is never
// paced. A fake Sleep makes the assertion exact.
func TestReplayPacing(t *testing.T) {
	var sleeps []time.Duration
	opt := ReplayOptions{
		Speed: 2,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	}
	var emitted []Frame
	err := Replay(context.Background(), &sliceSource{frames: makeFrames(20)}, opt,
		func(f Frame) error { emitted = append(emitted, f); return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(emitted) != 21 {
		t.Fatalf("emitted %d frames, want 21", len(emitted))
	}
	if len(sleeps) != 20 {
		t.Fatalf("slept %d times, want once per event frame (20)", len(sleeps))
	}
	want := time.Duration(float64(time.Second) / (DefaultReplayEventsPerSec * 2))
	for i, d := range sleeps {
		if d != want {
			t.Fatalf("sleep %d was %v, want %v", i, d, want)
		}
	}
}

// TestReplayUnpaced: Speed 0 emits as fast as the sink accepts — the
// Sleep hook must never fire.
func TestReplayUnpaced(t *testing.T) {
	opt := ReplayOptions{
		Speed: 0,
		Sleep: func(ctx context.Context, d time.Duration) error {
			t.Fatal("Sleep called with Speed=0")
			return nil
		},
	}
	n := 0
	err := Replay(context.Background(), &sliceSource{frames: makeFrames(50)}, opt,
		func(Frame) error { n++; return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != 51 {
		t.Fatalf("emitted %d frames, want 51", n)
	}
}

// TestReplayFromEpoch: the epoch seek forwards the header plus only the
// event frames stamped at or after the requested epoch.
func TestReplayFromEpoch(t *testing.T) {
	var emitted []Frame
	err := Replay(context.Background(), &sliceSource{frames: makeFrames(20)},
		ReplayOptions{FromEpoch: 3},
		func(f Frame) error { emitted = append(emitted, f); return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if emitted[0].Kind != "header" {
		t.Fatalf("first emitted frame %q, want the header regardless of seek", emitted[0].Kind)
	}
	// Epochs 0,1,2 (12 events) skipped; epochs 3,4 (8 events) kept.
	if len(emitted) != 9 {
		t.Fatalf("emitted %d frames, want 9 (header + 8 events of epoch >= 3)", len(emitted))
	}
	for _, f := range emitted[1:] {
		if f.Epoch < 3 {
			t.Fatalf("frame seq %d epoch %d leaked through FromEpoch=3", f.Seq, f.Epoch)
		}
	}
}

// TestReplayAfterSeq: the file-replay resume cursor skips everything the
// client already has, header included.
func TestReplayAfterSeq(t *testing.T) {
	var emitted []Frame
	err := Replay(context.Background(), &sliceSource{frames: makeFrames(20)},
		ReplayOptions{AfterSeq: 15},
		func(f Frame) error { emitted = append(emitted, f); return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(emitted) != 6 {
		t.Fatalf("emitted %d frames, want 6 (seqs 16..21)", len(emitted))
	}
	if emitted[0].Seq != 16 {
		t.Fatalf("first emitted seq %d, want 16", emitted[0].Seq)
	}
}

// TestReplayErrorPropagation: sink errors and cancelled pacing waits
// surface from Replay.
func TestReplayErrorPropagation(t *testing.T) {
	sinkErr := errors.New("client went away")
	err := Replay(context.Background(), &sliceSource{frames: makeFrames(5)},
		ReplayOptions{}, func(Frame) error { return sinkErr })
	if err != sinkErr {
		t.Fatalf("sink error: got %v, want %v", err, sinkErr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Replay(ctx, &sliceSource{frames: makeFrames(5)},
		ReplayOptions{Speed: 1}, func(Frame) error { return nil })
	if err != context.Canceled {
		t.Fatalf("cancelled pacing: got %v, want context.Canceled", err)
	}
}

// TestFileSourceForwardsBytes: replaying a stored trace re-emits every
// line byte-identical — concatenating the frames reconstructs the file.
func TestFileSourceForwardsBytes(t *testing.T) {
	pts := config.Generate(config.Uniform, 8, 3)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 3)
	opt.RecordTrace = true
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	var stored bytes.Buffer
	if err := trace.WriteJSONL(&stored, res); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}

	src, dec, err := NewFileSource(bytes.NewReader(stored.Bytes()))
	if err != nil {
		t.Fatalf("NewFileSource: %v", err)
	}
	if dec.Header().N != 8 {
		t.Fatalf("decoder header N=%d, want 8", dec.Header().N)
	}
	var rebuilt bytes.Buffer
	seq := uint64(0)
	err = Replay(context.Background(), src, ReplayOptions{}, func(f Frame) error {
		if f.Seq != seq+1 {
			t.Fatalf("seq %d after %d: file sources must number like a live hub", f.Seq, seq)
		}
		seq = f.Seq
		rebuilt.Write(f.Data)
		rebuilt.WriteByte('\n')
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !bytes.Equal(rebuilt.Bytes(), stored.Bytes()) {
		t.Fatalf("replayed stream is not byte-identical to the stored trace (%d vs %d bytes)",
			rebuilt.Len(), stored.Len())
	}
}

// TestLiveStreamMatchesStoredTrace is the byte-compatibility contract
// from the issue: attach a hub to a real engine run that also records
// its trace, and every event frame the hub published must be
// byte-identical to the corresponding line of the stored trace. Only the
// headers differ (the live one cannot know the totals yet). The full
// live stream must also parse with the stored-trace decoder.
func TestLiveStreamMatchesStoredTrace(t *testing.T) {
	h := NewHub(HubOptions{History: 1 << 17, SubscriberBuf: 1 << 17})
	pts := config.Generate(config.Uniform, 8, 3)
	opt := sim.DefaultOptions(sched.NewAsyncRandom(), 3)
	opt.RecordTrace = true
	opt.Observer = h
	res, err := sim.Run(core.NewLogVis(), pts, opt)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if !h.Done() {
		t.Fatal("hub not closed by RunEnd")
	}

	var stored bytes.Buffer
	if err := trace.WriteJSONL(&stored, res); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	storedLines := bytes.Split(bytes.TrimRight(stored.Bytes(), "\n"), []byte("\n"))

	s := h.Subscribe(0)
	defer s.Close()
	frames := drain(t, s)
	if s.Gap() != 0 {
		t.Fatalf("run overflowed the history ring (gap %d); grow History", s.Gap())
	}
	if len(frames) != len(storedLines) {
		t.Fatalf("live stream has %d frames, stored trace %d lines", len(frames), len(storedLines))
	}
	if frames[0].Kind != "header" {
		t.Fatalf("first frame kind %q, want header", frames[0].Kind)
	}
	for i := 1; i < len(frames); i++ {
		if !bytes.Equal(frames[i].Data, storedLines[i]) {
			t.Fatalf("event line %d differs:\n live: %s\nfile: %s", i, frames[i].Data, storedLines[i])
		}
	}

	// The live stream, reassembled, parses with the stored-trace decoder.
	var live bytes.Buffer
	for _, f := range frames {
		live.Write(f.Data)
		live.WriteByte('\n')
	}
	dec, err := trace.NewDecoder(bytes.NewReader(live.Bytes()))
	if err != nil {
		t.Fatalf("live stream does not decode as a trace: %v", err)
	}
	if dec.Header().Note == "" {
		t.Fatal("live header missing the live-stream note")
	}
	n := 0
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding live stream event %d: %v", n, err)
		}
		n++
	}
	if n != len(res.Trace) {
		t.Fatalf("decoded %d events from live stream, engine recorded %d", n, len(res.Trace))
	}
}
