package stream

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"luxvis/internal/geom"
	"luxvis/internal/sim"
)

// pump feeds a hub a synthetic run: header, n events, close.
func pump(h *Hub, n int) {
	h.RunStart(sim.RunInfo{Algorithm: "logvis", Scheduler: "fsync", N: 4, Seed: 1})
	for i := 0; i < n; i++ {
		h.Event(sim.TraceEvent{Event: i, Robot: i % 4, Kind: "look", Pos: geom.Pt(float64(i), 0)})
	}
	h.Close(nil)
}

// drain reads a subscriber to end of stream, returning the frames.
func drain(t *testing.T, s *Subscriber) []Frame {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []Frame
	for {
		f, err := s.Next(ctx)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, f)
	}
}

// TestHubFanOutOrdering: every subscriber sees the same frames in the
// same order with contiguous seqs, and the payloads are shared (encoded
// once, not per subscriber).
func TestHubFanOutOrdering(t *testing.T) {
	h := NewHub(HubOptions{History: 1024, SubscriberBuf: 1024})
	const subs = 8
	var got [subs][]Frame
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		s := h.Subscribe(0)
		defer s.Close()
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			got[i] = drain(t, s)
		}(i, s)
	}
	pump(h, 100)
	wg.Wait()

	for i := 0; i < subs; i++ {
		if len(got[i]) != 101 {
			t.Fatalf("subscriber %d got %d frames, want 101", i, len(got[i]))
		}
		for j, f := range got[i] {
			if f.Seq != uint64(j+1) {
				t.Fatalf("subscriber %d frame %d has seq %d", i, j, f.Seq)
			}
			// Same backing array as subscriber 0's frame: one encode.
			if j < len(got[0]) && &f.Data[0] != &got[0][j].Data[0] {
				t.Fatalf("subscriber %d frame %d not sharing the encoded payload", i, j)
			}
		}
		if got[i][0].Kind != "header" {
			t.Fatalf("first frame kind %q, want header", got[i][0].Kind)
		}
	}
}

// TestHubResumeFromRing: a subscriber with a Last-Event-ID cursor gets
// exactly the retained frames after it; a cursor older than the ring
// reports the gap.
func TestHubResumeFromRing(t *testing.T) {
	h := NewHub(HubOptions{History: 32, SubscriberBuf: 64})
	pump(h, 100) // frames 1..101; ring retains the last 32 (seqs 70..101)

	s := h.Subscribe(80)
	defer s.Close()
	frames := drain(t, s)
	if s.Gap() != 0 {
		t.Fatalf("resume within ring reported gap %d", s.Gap())
	}
	if len(frames) != 21 {
		t.Fatalf("got %d frames, want 21 (seqs 81..101)", len(frames))
	}
	if frames[0].Seq != 81 || frames[len(frames)-1].Seq != 101 {
		t.Fatalf("resume range [%d..%d], want [81..101]", frames[0].Seq, frames[len(frames)-1].Seq)
	}

	// Cursor far behind the ring: stream resumes at the oldest retained
	// frame and the gap is exact.
	s2 := h.Subscribe(10)
	defer s2.Close()
	frames2 := drain(t, s2)
	if frames2[0].Seq != 70 {
		t.Fatalf("truncated resume starts at %d, want 70", frames2[0].Seq)
	}
	if want := uint64(70 - 11); s2.Gap() != want {
		t.Fatalf("gap %d, want %d", s2.Gap(), want)
	}
}

// TestHubDropOldestExactCount: the satellite contract — the drop counter
// equals the ring-overwrite count exactly. A subscriber that never reads
// while M frames flow through a ring of capacity R loses exactly M-R.
func TestHubDropOldestExactCount(t *testing.T) {
	const ringCap, total = 16, 400 // 400 frames incl. header
	h := NewHub(HubOptions{History: 8, SubscriberBuf: ringCap, Policy: DropOldest})
	s := h.Subscribe(0)
	defer s.Close()

	pump(h, total-1) // header + total-1 events = total frames
	if want := uint64(total - ringCap); s.Dropped() != want {
		t.Fatalf("dropped %d, want exactly %d", s.Dropped(), want)
	}
	// What remains is the newest ringCap frames, in order.
	frames := drain(t, s)
	if len(frames) != ringCap {
		t.Fatalf("drained %d frames, want %d", len(frames), ringCap)
	}
	for i, f := range frames {
		if want := uint64(total - ringCap + i + 1); f.Seq != want {
			t.Fatalf("frame %d has seq %d, want %d", i, f.Seq, want)
		}
	}
}

// TestHubEvictPolicy: with Evict, a stalled subscriber is detached the
// moment its ring overflows; it drains what it buffered, then sees
// ErrEvicted. Fast subscribers on the same hub are unaffected.
func TestHubEvictPolicy(t *testing.T) {
	h := NewHub(HubOptions{History: 512, SubscriberBuf: 8, Policy: Evict})
	slow := h.Subscribe(0)
	defer slow.Close()

	// The fast reader still drains asynchronously, so give it headroom —
	// per-subscriber buffers are exactly for consumers with different
	// latency profiles on one hub.
	fast := h.SubscribeBuf(0, 256)
	defer fast.Close()
	var fastFrames []Frame
	done := make(chan struct{})
	go func() {
		defer close(done)
		fastFrames = drain(t, fast)
	}()

	pump(h, 100)
	<-done
	if len(fastFrames) != 101 {
		t.Fatalf("fast subscriber got %d frames, want 101", len(fastFrames))
	}

	ctx := context.Background()
	got := 0
	for {
		_, err := slow.Next(ctx)
		if err == ErrEvicted {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got++
	}
	if got != 8 {
		t.Fatalf("evicted subscriber drained %d frames, want its full ring of 8", got)
	}
	if !slow.Evicted() {
		t.Fatal("Evicted() false after eviction")
	}
	if h.Stats().Subscribers != 1 {
		t.Fatalf("hub still tracks %d subscribers, want 1 (slow evicted)", h.Stats().Subscribers)
	}
}

// TestHubStalledSubscriberNeverBlocksPublisher: the core backpressure
// contract — publishing with a subscriber that never reads completes
// promptly (the engine observer callback can never be blocked by a
// consumer). Run with -race in CI.
func TestHubStalledSubscriberNeverBlocksPublisher(t *testing.T) {
	h := NewHub(HubOptions{History: 64, SubscriberBuf: 4, Policy: DropOldest})
	stalled := h.Subscribe(0)
	defer stalled.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		pump(h, 50000)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher blocked by a stalled subscriber")
	}
	// The recovery window is the hub history (64), not the subscriber's
	// tiny ring: everything beyond it is lost, counted exactly, eagerly
	// (no Next call has happened yet).
	if want := uint64(50001 - 64); stalled.Dropped() != want {
		t.Fatalf("dropped %d, want %d", stalled.Dropped(), want)
	}
}

// TestHubSlowConsumerRecoversFromHistory: a consumer whose own ring is
// far too small for the publish burst still receives every frame,
// because Next refills overwritten spans from the hub history. This is
// the contract that makes `curl /stream | visreplay -verify` audit
// cleanly on a live run: within the History window the stream is
// lossless no matter how bursty the publisher.
func TestHubSlowConsumerRecoversFromHistory(t *testing.T) {
	const total = 1000 // incl. header; well within default History
	h := NewHub(HubOptions{SubscriberBuf: 4, Policy: DropOldest})
	s := h.Subscribe(0)
	defer s.Close()

	pump(h, total-1) // synchronous burst: the 4-slot ring is overrun at once
	h.Close(nil)

	frames := drain(t, s)
	if len(frames) != total {
		t.Fatalf("drained %d frames, want all %d", len(frames), total)
	}
	for i, f := range frames {
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d, want %d (gapless)", i, f.Seq, i+1)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0 (history covered the whole burst)", s.Dropped())
	}
	if s.Gap() != 0 {
		t.Fatalf("gap %d, want 0", s.Gap())
	}
}

// TestHubConcurrentChurn hammers the hub from all sides under -race:
// one publisher, readers draining, and subscribe/close churn.
func TestHubConcurrentChurn(t *testing.T) {
	var c Counters
	h := NewHub(HubOptions{History: 128, SubscriberBuf: 16, Counters: &c})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				s := h.Subscribe(uint64(k * i))
				for j := 0; j < 50; j++ {
					if _, err := s.Next(ctx); err != nil {
						break
					}
				}
				s.Close()
			}
		}(i)
	}
	pump(h, 20000)
	wg.Wait()

	snap := c.Snapshot()
	if snap.Subscribers != 0 {
		t.Fatalf("subscriber gauge %d after all closed, want 0", snap.Subscribers)
	}
	if snap.FramesTotal != 20001 {
		t.Fatalf("framesTotal %d, want 20001 (header + 20000 events)", snap.FramesTotal)
	}
	if snap.HubDepth != 128 {
		t.Fatalf("hubDepth %d, want full ring 128", snap.HubDepth)
	}
	h.Release()
	if c.Snapshot().HubDepth != 0 {
		t.Fatalf("hubDepth %d after Release, want 0", c.Snapshot().HubDepth)
	}
}

// TestHubTeardown: subscribers attached before, during and after Close
// all drain cleanly to io.EOF; late subscribers replay from the ring.
func TestHubTeardown(t *testing.T) {
	h := NewHub(HubOptions{History: 1024, SubscriberBuf: 2048})
	early := h.Subscribe(0)
	defer early.Close()

	pump(h, 200)

	if got := drain(t, early); len(got) != 201 {
		t.Fatalf("early subscriber got %d frames, want 201", len(got))
	}
	// Subscribing after close replays the retained history, then EOF —
	// the replay-from-cache path.
	late := h.Subscribe(0)
	defer late.Close()
	if got := drain(t, late); len(got) != 201 {
		t.Fatalf("late subscriber got %d frames, want 201", len(got))
	}
	// Publishing after close is a no-op.
	h.Event(sim.TraceEvent{Event: 999, Kind: "look"})
	if h.Stats().Frames != 201 {
		t.Fatalf("frames published after close: %d, want 201", h.Stats().Frames)
	}
	if h.EndNote() == nil {
		t.Fatal("EndNote nil after close")
	}
}

// TestHubCloseWakesParkedSubscriber: a subscriber parked in Next wakes
// on Close with io.EOF, not a hang.
func TestHubCloseWakesParkedSubscriber(t *testing.T) {
	h := NewHub(HubOptions{})
	s := h.Subscribe(0)
	defer s.Close()

	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := s.Next(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it park
	h.Close(fmt.Errorf("run aborted"))
	if err := <-errc; err != io.EOF {
		t.Fatalf("parked Next returned %v, want io.EOF", err)
	}
}
