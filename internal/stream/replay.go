package stream

import (
	"context"
	"io"
	"time"

	"luxvis/internal/trace"
)

// Source yields stream frames in order: a live Subscriber, or a stored
// trace opened with NewFileSource. Next returns io.EOF at a clean end of
// stream.
type Source interface {
	Next(ctx context.Context) (Frame, error)
}

// fileSource adapts a stored JSONL trace to the Source interface,
// assigning the same seq numbering a live hub would (header = 1), so a
// resume cursor means the same thing against a file as against a hub.
// Lines are forwarded byte-identical to the stored trace (Decoder.Raw),
// never re-encoded.
type fileSource struct {
	dec     *trace.Decoder
	nextSeq uint64
	header  bool // header frame not yet emitted
}

// NewFileSource wraps a stored trace stream. The header is validated
// eagerly (a bad file fails before any frame is served).
func NewFileSource(r io.Reader) (Source, *trace.Decoder, error) {
	dec, err := trace.NewDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	return &fileSource{dec: dec, nextSeq: 1, header: true}, dec, nil
}

func (f *fileSource) Next(ctx context.Context) (Frame, error) {
	if f.header {
		f.header = false
		seq := f.nextSeq
		f.nextSeq++
		return Frame{Seq: seq, Kind: "header", Data: append([]byte(nil), f.dec.Raw()...)}, nil
	}
	ev, err := f.dec.Next()
	if err != nil {
		return Frame{}, err
	}
	seq := f.nextSeq
	f.nextSeq++
	return Frame{
		Seq:   seq,
		Kind:  ev.Kind,
		Epoch: ev.Epoch,
		Data:  append([]byte(nil), f.dec.Raw()...),
	}, nil
}

// DefaultReplayEventsPerSec is the 1x replay pace: how many event frames
// per second a Speed=1 replay emits. Traces carry no wall-clock
// timestamps (the ASYNC model has no global clock), so replay time is
// synthetic: a uniform event rate scaled by the speed multiplier.
const DefaultReplayEventsPerSec = 256.0

// ReplayOptions shapes one replayed (or pumped) stream.
type ReplayOptions struct {
	// Speed is the pace multiplier over DefaultReplayEventsPerSec.
	// 0 (or negative) disables pacing: frames are emitted as fast as the
	// source and sink allow — also the right setting for live sources,
	// which are already paced by the run itself.
	Speed float64
	// FromEpoch skips event frames stamped with an earlier epoch. The
	// header frame is always forwarded. Traces recorded before epoch
	// stamps carry 0 on every event, so a positive FromEpoch skips them
	// all — seeking needs a stamped trace.
	FromEpoch int
	// AfterSeq skips frames with Seq <= AfterSeq — the file-replay
	// resume cursor. (Live resume is handled by Hub.Subscribe instead,
	// which can also report the gap.)
	AfterSeq uint64
	// Sleep intercepts pacing waits; nil uses a real timer honoring ctx.
	// Tests inject a fake to make pacing assertions deterministic.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Replay pumps src to emit, applying the pacing and filtering in opt.
// It returns nil at a clean end of stream, the emit error if the sink
// fails, or ctx.Err when cancelled. The emit callback owns flushing.
func Replay(ctx context.Context, src Source, opt ReplayOptions, emit func(Frame) error) error {
	sleep := opt.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	var interval time.Duration
	if opt.Speed > 0 {
		interval = time.Duration(float64(time.Second) / (DefaultReplayEventsPerSec * opt.Speed))
	}
	for {
		f, err := src.Next(ctx)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if f.Seq <= opt.AfterSeq {
			continue
		}
		if f.Kind != "header" {
			if f.Epoch < opt.FromEpoch {
				continue
			}
			if interval > 0 {
				if err := sleep(ctx, interval); err != nil {
					return err
				}
			}
		}
		if err := emit(f); err != nil {
			return err
		}
	}
}

// realSleep waits for d or until ctx is done.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
